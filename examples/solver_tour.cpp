// A tour of the solver registry: one instance, every strategy.
//
// The solver layer turns each of the paper's algorithms into an
// interchangeable strategy behind a uniform Instance -> Solution contract,
// so comparing the whole field is a loop over registry names — the same
// mechanism treeplace_cli's `solve --algo` and bench/solver_matrix use.
// This example builds one mid-size power instance and prints what every
// registered solver makes of it.
#include <iomanip>
#include <iostream>

#include "treeplace.h"

using namespace treeplace;

int main() {
  std::cout << "treeplace solver tour — one instance, every strategy\n\n";

  // A 20-node tree with 4 servers already running, in the paper's
  // Experiment 3 power setting (W1=5, W2=10, P_i = W1^3/10 + W_i^3).
  TreeGenConfig gen;
  gen.num_internal = 20;
  gen.shape = kHighShape;
  gen.client_probability = 0.8;
  gen.min_requests = 1;
  gen.max_requests = 5;
  Tree tree = generate_tree(gen, /*seed=*/7, /*tree_index=*/0);
  Xoshiro256 rng = make_rng(7, 0, RngStream::kPreExisting);
  assign_random_pre_existing(tree, 4, rng, /*num_modes=*/2);

  Instance instance{std::move(tree), ModeSet({5, 10}, 12.5, 3.0),
                    CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001),
                    /*cost_budget=*/std::nullopt};

  const SolverRegistry& registry = SolverRegistry::instance();
  std::cout << registry.size() << " registered strategies\n\n"
            << std::left << std::setw(18) << "solver" << std::right
            << std::setw(6) << "kind" << std::setw(10) << "cost"
            << std::setw(10) << "power" << std::setw(9) << "servers"
            << std::setw(10) << "frontier" << "\n";

  for (const SolverInfo& info : registry.infos()) {
    if (!info.accepts(instance.num_internal(),
                      instance.modes.count())) {
      continue;
    }
    const Solution solution = registry.create(info.name)->solve(instance);
    std::cout << std::left << std::setw(18) << info.name << std::right
              << std::setw(6) << (info.exact ? "exact" : "heur");
    if (!solution.feasible) {
      std::cout << "  infeasible\n";
      continue;
    }
    std::cout << std::setw(10) << solution.breakdown.cost << std::setw(10)
              << solution.power << std::setw(9)
              << solution.breakdown.servers << std::setw(10)
              << solution.frontier.size() << "\n";
  }

  // The bounded-cost query: re-solve with a budget and the bi-criteria
  // solvers pick the least-power point that fits instead.
  instance.cost_budget = 8.0;
  const Solution budgeted = make_solver("power-sym")->solve(instance);
  std::cout << "\npower-sym with cost budget 8.0: "
            << (budgeted.budget_met
                    ? "power " + std::to_string(budgeted.power) + " at cost " +
                          std::to_string(budgeted.breakdown.cost)
                    : "no solution within budget")
            << "\n";
  return 0;
}
