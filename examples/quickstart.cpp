// Quickstart: build the paper's Figure 1 tree by hand, run the greedy
// baseline and the update DP, and print both solutions.
//
// The instance: root r with a local client, child A, grandchildren B
// (pre-existing server, 4 requests below) and C (7 requests below), server
// capacity W = 10.  With 2 requests at the root the optimum keeps B; with 4
// it deletes B and serves from C — the trade-off that makes greedy
// strategies suboptimal (paper Section 3.1).
#include <iostream>

#include "core/dp_update.h"
#include "core/greedy.h"
#include "model/placement.h"
#include "tree/io.h"
#include "tree/tree.h"

using namespace treeplace;

namespace {

struct Fig1Tree {
  Tree tree;
  NodeId r, a, b, c;
};

Fig1Tree make_fig1_tree(RequestCount root_requests) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  builder.add_client(r, root_requests);
  const NodeId a = builder.add_internal(r);
  const NodeId b = builder.add_internal(a);
  builder.add_client(b, 4);
  const NodeId c = builder.add_internal(a);
  builder.add_client(c, 7);
  builder.set_pre_existing(b);  // the pre-existing replica of Figure 1
  return Fig1Tree{std::move(builder).build(), r, a, b, c};
}

void describe(const Tree& tree, const Placement& placement,
              const char* label) {
  const FlowResult flows = compute_flows(tree, placement);
  std::cout << "  " << label << ": servers at {";
  bool first = true;
  for (NodeId node : placement.nodes()) {
    std::cout << (first ? "" : ", ") << node
              << (tree.pre_existing(node) ? " (reused)" : " (new)")
              << " load=" << flows.load(tree, node);
    first = false;
  }
  std::cout << "}\n";
}

}  // namespace

int main() {
  std::cout << "treeplace quickstart — paper Figure 1\n\n";
  const MinCostConfig config{/*capacity=*/10, /*create=*/0.1,
                             /*delete_cost=*/0.01};

  for (RequestCount root_requests : {RequestCount{2}, RequestCount{4}}) {
    Fig1Tree instance = make_fig1_tree(root_requests);
    std::cout << "Root client issues " << root_requests << " requests:\n";

    const GreedyResult gr =
        solve_greedy_min_count(instance.tree, config.capacity);
    describe(instance.tree, gr.placement, "greedy GR ");

    const MinCostResult dp = solve_min_cost_with_pre(instance.tree, config);
    describe(instance.tree, dp.placement, "update DP ");
    std::cout << "  DP cost " << dp.breakdown.cost << " ("
              << dp.breakdown.reused << " reused, " << dp.breakdown.created
              << " created, " << dp.breakdown.deleted << " deleted)\n\n";
  }

  std::cout << "Graphviz rendering of the 4-request instance:\n"
            << to_dot(make_fig1_tree(4).tree);
  return 0;
}
