// Dynamic replica management over a day — the paper's Section 6 outlook.
//
// When client demand drifts hour by hour, the operator chooses an *update
// policy*: recompute placements every step ("systematic"), only when the
// current placement becomes invalid ("lazy"), or every k steps
// ("periodic").  The paper frames the trade-off — systematic updates
// optimize resource usage but pay reconfiguration cost at every step; lazy
// updates are cheap but drift into poor configurations.  This example
// quantifies the trade-off with the optimal single-step DP as the building
// block, plus the fast heuristic chain as a cheaper alternative.
#include <iostream>
#include <string>

#include "treeplace.h"

using namespace treeplace;

namespace {

// Operators plan with headroom: placements are computed for a capacity of
// 8 streams but servers can absorb 10, so small drift does not immediately
// invalidate a configuration and the lazy/periodic policies have room to
// coast.
constexpr RequestCount kPlanCapacity = 8;
constexpr RequestCount kServeCapacity = 10;
constexpr std::size_t kHours = 24;
const MinCostConfig kDpConfig{kPlanCapacity, /*create=*/0.4,
                              /*delete_cost=*/0.15};
const CostModel kCosts = CostModel::simple(0.4, 0.15);

/// Hourly demand drift: smooth perturbation instead of full re-draws.
void advance_hour(Tree& tree, std::size_t hour) {
  Xoshiro256 rng = make_rng(606, hour, RngStream::kWorkloadUpdate);
  perturb_requests(tree, 1, 6, /*max_delta=*/1, rng);
}

bool placement_still_valid(const Tree& tree, const Placement& placement) {
  return validate(tree, placement, ModeSet::single(kServeCapacity)).valid;
}

struct PolicyOutcome {
  double total_cost = 0.0;       ///< accumulated reconfiguration cost
  std::size_t reconfigs = 0;     ///< steps that changed the placement
  std::size_t invalid_hours = 0; ///< hours served by an overloaded config
};

/// Runs one policy over the day.  `period` = 1 is systematic, a large
/// period approximates lazy (update only on invalidity), k in between is
/// periodic.  When the placement is invalid at a non-update hour, the hour
/// counts as degraded service.
PolicyOutcome run_policy(Tree tree, std::size_t period, bool lazy,
                         bool use_heuristic) {
  PolicyOutcome outcome;
  Placement current;
  // The DP chain runs warm: hourly drift touches a few clients, so a
  // persistent subtree cache (core/dp_cache.h) re-solves only the dirty
  // root paths — the same mechanism the serving loop's SolveSessions use.
  dp::MinCostSubtreeCache dp_cache;
  MinCostConfig dp_config = kDpConfig;
  dp_config.cache = &dp_cache;
  for (std::size_t hour = 0; hour < kHours; ++hour) {
    advance_hour(tree, hour);
    const bool scheduled = !lazy && (hour % period == 0);
    const bool forced = !placement_still_valid(tree, current);
    if (!(scheduled || forced)) {
      continue;  // keep the current placement one more hour
    }
    if (forced && !scheduled) ++outcome.invalid_hours;
    set_pre_existing_from_placement(tree, current);
    Placement next;
    if (use_heuristic) {
      GreedyResult gr = solve_greedy_prefer_pre(tree, kPlanCapacity);
      TREEPLACE_CHECK(gr.feasible);
      improve_reuse(tree, kPlanCapacity, kCosts, gr.placement);
      next = std::move(gr.placement);
    } else {
      MinCostResult dp = solve_min_cost_with_pre(tree, dp_config);
      TREEPLACE_CHECK(dp.feasible);
      next = std::move(dp.placement);
    }
    if (!(next == current)) {
      outcome.total_cost += evaluate_cost(tree, next, kCosts).cost;
      ++outcome.reconfigs;
      current = std::move(next);
    }
  }
  return outcome;
}

void print(const std::string& name, const PolicyOutcome& o) {
  std::cout << "  " << name << ": total cost " << o.total_cost << " over "
            << o.reconfigs << " reconfigurations";
  if (o.invalid_hours > 0) {
    std::cout << ", " << o.invalid_hours << " degraded hours";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "Update policies over a 24-hour demand cycle\n"
            << "(optimal single-step updates via the Section 3 DP)\n\n";

  TreeGenConfig gen;
  gen.num_internal = 60;
  gen.shape = kFatShape;
  gen.client_probability = 0.6;
  gen.min_requests = 1;
  gen.max_requests = 6;
  const Tree base = generate_tree(gen, /*seed=*/515, /*tree_index=*/0);

  std::cout << "Network: " << base.num_internal() << " nodes, "
            << base.num_clients() << " client groups\n\n";

  print("systematic (every hour, DP)  ",
        run_policy(base, 1, /*lazy=*/false, /*use_heuristic=*/false));
  print("periodic (every 4 hours, DP) ",
        run_policy(base, 4, /*lazy=*/false, /*use_heuristic=*/false));
  print("periodic (every 8 hours, DP) ",
        run_policy(base, 8, /*lazy=*/false, /*use_heuristic=*/false));
  print("lazy (only when invalid, DP) ",
        run_policy(base, 1, /*lazy=*/true, /*use_heuristic=*/false));
  print("systematic (heuristic chain) ",
        run_policy(base, 1, /*lazy=*/false, /*use_heuristic=*/true));

  std::cout << "\nLazy updating minimizes reconfiguration spend but rides "
               "through demand spikes\nwith overloaded replicas; systematic "
               "updating never degrades but pays every hour.\nThe optimal "
               "interval depends on the drift rate — exactly the trade-off "
               "the paper's\nSection 6 lays out for future work.\n";
  return 0;
}
