// Bi-criteria power planning — MinPower-BoundedCost end to end.
//
// An operator with a reconfiguration budget wants the least-power replica
// configuration.  The power DP computes the entire cost-power Pareto
// frontier in one pass; this example prints it, answers a few budget
// queries, and shows how the greedy capacity sweep compares — the paper's
// Figure 8 story on a single concrete network.
#include <iomanip>
#include <iostream>

#include "treeplace.h"

using namespace treeplace;

int main() {
  std::cout << "Power-aware replica planning under a cost budget\n\n";

  // A mid-size distribution tree with some servers already running.
  TreeGenConfig gen;
  gen.num_internal = 40;
  gen.shape = kFatShape;
  gen.client_probability = 0.8;
  gen.min_requests = 1;
  gen.max_requests = 5;
  Tree tree = generate_tree(gen, /*seed=*/2026, /*tree_index=*/0);
  Xoshiro256 rng = make_rng(2026, 0, RngStream::kPreExisting);
  assign_random_pre_existing(tree, 6, rng, /*num_modes=*/2);

  // Paper Experiment 3 models: W1=5, W2=10, P_i = W1³/10 + W_i³.
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);

  std::cout << "Network: " << tree.num_internal() << " nodes, "
            << tree.num_clients() << " client groups, "
            << tree.total_requests() << " requests/s, "
            << tree.num_pre_existing() << " servers already running\n"
            << "Modes: W1=5 (137.5 W), W2=10 (1012.5 W)\n\n";

  const PowerDPResult dp = solve_power_symmetric(tree, modes, costs);
  TREEPLACE_CHECK(dp.feasible);

  std::cout << "Cost-power Pareto frontier (" << dp.frontier.size()
            << " points):\n   cost    power  servers  @W1  @W2\n";
  for (const PowerParetoPoint& p : dp.frontier) {
    int slow = 0;
    for (int m : p.placement.modes()) slow += (m == 0);
    std::cout << std::setw(7) << std::fixed << std::setprecision(2) << p.cost
              << std::setw(9) << std::setprecision(1) << p.power
              << std::setw(9) << p.breakdown.servers << std::setw(5) << slow
              << std::setw(5) << (p.breakdown.servers - slow) << "\n";
  }

  const GreedyPowerResult gr = solve_greedy_power(tree, modes, costs);
  std::cout << "\nBudget queries (optimal DP vs greedy capacity sweep):\n";
  for (double budget : {20.0, 26.0, 32.0, 40.0}) {
    const PowerParetoPoint* opt = dp.best_within_cost(budget);
    const GreedyPowerCandidate* g = gr.best_within_cost(budget);
    std::cout << "  budget " << std::setw(5) << budget << ": ";
    if (opt == nullptr) {
      std::cout << "no feasible reconfiguration\n";
      continue;
    }
    std::cout << "DP " << std::setprecision(1) << opt->power << " W";
    if (g != nullptr) {
      std::cout << ", greedy " << g->power << " W ("
                << std::setprecision(1)
                << (g->power / opt->power - 1.0) * 100.0 << "% more)";
    } else {
      std::cout << ", greedy finds nothing in budget";
    }
    std::cout << "\n";
  }

  const PowerParetoPoint* unconstrained = dp.min_power();
  std::cout << "\nUnconstrained optimum: " << unconstrained->power << " W at cost "
            << unconstrained->cost << " — the price of ignoring the budget.\n";
  return 0;
}
