// CDN reconfiguration scenario — the paper's motivating application
// ("electronic, ISP, or VOD service delivery").
//
// A video-on-demand provider operates a three-level distribution tree:
// one origin, regional PoPs, and edge sites serving metro areas.  An
// overnight catalogue update shifts demand between metros; the operator
// must decide which existing replica servers to keep, which to
// decommission, and where to bring up new ones — exactly MinCost-WithPre.
// We compare the demand-oblivious greedy (install from scratch, paper [19])
// with the update DP, which prices reuse, creation and deletion.
#include <iostream>

#include "treeplace.h"

using namespace treeplace;

namespace {

struct Network {
  Tree tree;
  std::vector<NodeId> regions;
  std::vector<NodeId> edges;
};

/// Origin -> 3 regions -> 4 edge sites each; every edge site serves one
/// metro whose demand we control.
Network build_network(const std::vector<RequestCount>& metro_demand) {
  TREEPLACE_CHECK(metro_demand.size() == 12);
  TreeBuilder builder;
  Network net;
  const NodeId origin = builder.add_root();
  std::size_t metro = 0;
  for (int r = 0; r < 3; ++r) {
    const NodeId region = builder.add_internal(origin);
    net.regions.push_back(region);
    for (int e = 0; e < 4; ++e) {
      const NodeId edge = builder.add_internal(region);
      net.edges.push_back(edge);
      builder.add_client(edge, metro_demand[metro++]);
    }
  }
  net.tree = std::move(builder).build();
  return net;
}

void report(const Tree& tree, const Placement& placement,
            const CostBreakdown& breakdown, const char* label) {
  const FlowResult flows = compute_flows(tree, placement);
  std::cout << label << ": " << breakdown.servers << " servers (reused "
            << breakdown.reused << ", new " << breakdown.created
            << ", decommissioned " << breakdown.deleted << "), cost "
            << breakdown.cost << "\n   sites:";
  for (NodeId node : placement.nodes()) {
    std::cout << " n" << node << "(load " << flows.load(tree, node) << ")";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "CDN replica update — MinCost-WithPre in action\n\n";
  constexpr RequestCount kCapacity = 20;  // streams per replica server
  const MinCostConfig config{kCapacity, /*create=*/0.4, /*delete_cost=*/0.15};

  // Evening demand profile; yesterday's placement was computed for it.
  Network net = build_network({12, 6, 3, 2, 9, 8, 2, 1, 5, 4, 4, 3});
  const MinCostResult evening = solve_min_cost_with_pre(net.tree, config);
  std::cout << "Evening profile (fresh install):\n";
  report(net.tree, evening.placement, evening.breakdown, "  plan");

  // Overnight catalogue update: region 0 heats up slightly past region 1,
  // region 2 cools down.  One region now has to host a replica; the greedy
  // absorbs the hottest one (region 0, no hardware there), while the DP
  // absorbs region 1, whose server from yesterday is still racked.
  const std::vector<RequestCount> morning{5, 4, 3, 2, 4, 4, 3, 2,
                                          2, 1, 1, 1};
  std::size_t metro = 0;
  for (NodeId edge : net.edges) {
    for (NodeId child : net.tree.children(edge)) {
      if (net.tree.is_client(child)) {
        net.tree.set_requests(child, morning[metro]);
      }
    }
    ++metro;
  }

  // Yesterday's servers are now pre-existing infrastructure.
  set_pre_existing_from_placement(net.tree, evening.placement);
  std::cout << "\nMorning profile, " << net.tree.num_pre_existing()
            << " servers already deployed:\n";

  // Option 1: ignore the existing fleet (greedy from scratch).
  const GreedyResult greedy = solve_greedy_min_count(net.tree, kCapacity);
  TREEPLACE_CHECK(greedy.feasible);
  const CostModel costs = CostModel::simple(config.create, config.delete_cost);
  report(net.tree, greedy.placement, evaluate_cost(net.tree, greedy.placement, costs),
         "  greedy (reuse-oblivious)");

  // Option 2: the update DP.
  const MinCostResult dp = solve_min_cost_with_pre(net.tree, config);
  TREEPLACE_CHECK(dp.feasible);
  report(net.tree, dp.placement, dp.breakdown, "  update DP");

  const double saving = evaluate_cost(net.tree, greedy.placement, costs).cost -
                        dp.breakdown.cost;
  std::cout << "\nThe DP plan saves " << saving
            << " cost units by keeping paid-for hardware in place.\n";
  return 0;
}
