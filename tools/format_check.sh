#!/usr/bin/env bash
# Reports clang-format drift across the C++ sources.  Blocking by design:
# CI runs it as a gating step, so drift exits non-zero (run with --fix to
# reformat).  Only tool availability is forgiven — a machine without
# clang-format skips the check rather than failing it.
#
# Usage: tools/format_check.sh [--fix]
set -u

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not installed; skipping" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.cpp' '*.h')
if [ "${#files[@]}" -eq 0 ]; then
  echo "format_check: no C++ sources found" >&2
  exit 0
fi

if [ "${1:-}" = "--fix" ]; then
  clang-format -i "${files[@]}"
  echo "format_check: reformatted ${#files[@]} files"
  exit 0
fi

drifted=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    drifted=$((drifted + 1))
  fi
done

if [ "$drifted" -eq 0 ]; then
  echo "format_check: all ${#files[@]} files clean"
  exit 0
fi
echo "format_check: $drifted of ${#files[@]} files drift from .clang-format"
echo "format_check: run tools/format_check.sh --fix to reformat"
exit 1
