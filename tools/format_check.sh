#!/usr/bin/env bash
# Reports clang-format drift across the C++ sources.  Informational by
# design: CI runs it as a non-blocking step, so it prints offending files
# and a diff summary but the exit code only reflects tool availability.
#
# Usage: tools/format_check.sh [--fix]
set -u

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format_check: clang-format not installed; skipping" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.cpp' '*.h')
if [ "${#files[@]}" -eq 0 ]; then
  echo "format_check: no C++ sources found" >&2
  exit 0
fi

if [ "${1:-}" = "--fix" ]; then
  clang-format -i "${files[@]}"
  echo "format_check: reformatted ${#files[@]} files"
  exit 0
fi

drifted=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    drifted=$((drifted + 1))
  fi
done

if [ "$drifted" -eq 0 ]; then
  echo "format_check: all ${#files[@]} files clean"
else
  echo "format_check: $drifted of ${#files[@]} files drift from .clang-format"
  echo "format_check: run tools/format_check.sh --fix to reformat"
fi
exit 0
