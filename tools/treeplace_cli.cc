// treeplace command-line tool — drive the library without writing C++.
//
//   treeplace gen --nodes 50 --shape fat --seed 7 > tree.txt
//   treeplace solve --algo update-dp --capacity 10 --create 0.1 \
//             --delete 0.01 < tree.txt
//   treeplace solve --algo power-sym --modes 5,10 --static 12.5 --alpha 3 \
//             --create 0.1 --delete 0.01 --changed 0.001 [--budget 25] \
//             < tree.txt
//   treeplace solve --list-algos
//   treeplace serve --algo power-sym --modes 5,10 --threads 8 < stream.txt
//   treeplace validate --capacity 10 --servers 0,3,7 < tree.txt
//   treeplace stats < tree.txt
//   treeplace dot < tree.txt | dot -Tpng > tree.png
//
// Every placement algorithm is selected by name through the SolverRegistry
// (solver/registry.h); `solve --list-algos` enumerates them.  Trees are
// read/written in the text format of tree/io.h; `serve` additionally
// accepts scenario-delta records (serve/request_stream.h).
//
// Exit codes: 0 success; 1 infeasible instance or unmet --budget; 2 usage
// error (including unknown commands and unknown --algo names).
#include <sys/resource.h>

#include <algorithm>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "serve/net_server.h"
#include "serve/stream_server.h"
#include "treeplace.h"
#include "tree/aggregate.h"
#include "tree/metrics.h"

using namespace treeplace;

namespace {

constexpr int kExitSuccess = 0;
constexpr int kExitInfeasible = 1;
constexpr int kExitUsage = 2;

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: treeplace <command> [options]\n"
      "\n"
      "commands:\n"
      "  gen          generate a random distribution tree to stdout\n"
      "               --nodes N --shape fat|high --client-prob P\n"
      "               --requests LO,HI --pre E --modes M --seed S --index I\n"
      "  workload     emit a simulated day of diurnal traffic as a serve\n"
      "               stream (one skew tree + one scenario-delta record per\n"
      "               tick) — pipe into `treeplace serve`\n"
      "               --internal N       skew-tree internal nodes (400)\n"
      "               --users U          client population (100000)\n"
      "               --skew A           Zipf attachment skew (0.8)\n"
      "               --requests LO,HI --pre E --seed S --index I\n"
      "               --ticks T          delta batches (default: one day)\n"
      "               --tick-seconds S   batch cadence (300 = 288/day)\n"
      "               --touch F          clients re-drawn per tick (0.02)\n"
      "               --amplitude A      diurnal swing (0.6)\n"
      "               --flash-prob P     flash-crowd chance per tick (0.01)\n"
      "               --aggregate        emit the aggregated tree and fold\n"
      "                                  each batch into attachment-point\n"
      "                                  records (Aggregation::map_deltas)\n"
      "  solve        run a registered solver on the tree(s) from stdin;\n"
      "               concatenated trees stream as a batch (one placement\n"
      "               per tree, shared solver instance)\n"
      "               --algo NAME        solver to run (see --list-algos)\n"
      "               --list-algos       list registered solvers and exit\n"
      "               --threads K        solver-internal threads (power DPs\n"
      "                                  shard child merges; results are\n"
      "                                  bit-identical to --threads 1)\n"
      "               --capacity W       single-mode capacity (default 10)\n"
      "               --modes W1,W2,...  mode capacities (multi-mode)\n"
      "               --static P --alpha A      power model (Eq. 3)\n"
      "               --create C --delete D     cost model (Eq. 2/4)\n"
      "               --changed X --changed-same Y\n"
      "               --budget B         bounded-cost query\n"
      "  serve        batch-serving loop: read a stream of tree records\n"
      "               and scenario-delta records from stdin, keep hot\n"
      "               topologies resident, dispatch solves across a thread\n"
      "               pool and emit one result record per request (in\n"
      "               request order, bit-identical to a serial run)\n"
      "               --algo NAME        solver serving every request\n"
      "               --threads N        pool size (default: all cores)\n"
      "               --queue Q          bound on in-flight solves (4xN)\n"
      "               --cache C          resident topologies (default 16)\n"
      "               --session-bytes B  warm-state byte budget per resident\n"
      "                                  topology (0 = unbounded)\n"
      "               --contract         frozen-subtree contraction: warm\n"
      "                                  delta solves run on a tree the size\n"
      "                                  of the dirty region (bit-identical;\n"
      "                                  ignored with --session-bytes)\n"
      "               --solver-threads K solver-internal threads\n"
      "               (instance flags as for solve)\n"
      "               network mode (instead of stdin/stdout):\n"
      "               --listen HOST:PORT accept concurrent TCP connections,\n"
      "                                  each speaking the record protocol\n"
      "                                  (port 0 = ephemeral, printed as a\n"
      "                                  `# listen:` line); SIGTERM drains\n"
      "                                  gracefully\n"
      "               --max-conns N      connection cap (default 4096)\n"
      "               --idle-timeout S   reap idle connections after S\n"
      "                                  seconds (0 = never, default 300)\n"
      "               --keepalive S      arm TCP keepalive probes on every\n"
      "                                  accepted socket (SO_KEEPALIVE,\n"
      "                                  first probe after S idle seconds)\n"
      "                                  so half-dead peers are reaped by\n"
      "                                  the kernel (0 = off, default)\n"
      "               --shards K         independent serving shards behind\n"
      "                                  the router (default 1); a hello\n"
      "                                  name= pins a client to its shard\n"
      "                                  by consistent hashing; SIGUSR1\n"
      "                                  drains one shard (round-robin)\n"
      "               --persist DIR      snapshot named sessions to DIR at\n"
      "                                  shard drain and restore them when\n"
      "                                  the name republishes its trees\n"
      "  list-algos   same as solve --list-algos\n"
      "  validate     check a placement --capacity W --servers id,id,...\n"
      "  stats        structural metrics of the tree on stdin\n"
      "  dot          Graphviz rendering of the tree on stdin\n"
      "\n"
      "exit codes: 0 ok, 1 infeasible or over budget, 2 usage error\n";
  std::exit(kExitUsage);
}

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
      key = key.substr(2);
      // "exact" stays a value-less flag so the legacy `solve-power --exact`
      // invocation reaches the migration hint instead of dying in parsing.
      if (key == "list-algos" || key == "exact" || key == "aggregate" ||
          key == "contract") {
        values_[key] = "1";
      } else {
        if (i + 1 >= argc) usage("missing value for --" + key);
        values_[key] = argv[++i];
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::vector<std::uint64_t> get_list(const std::string& key) const {
    std::vector<std::uint64_t> out;
    auto it = values_.find(key);
    if (it == values_.end()) return out;
    std::istringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stoull(item));
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
};

Tree read_tree() { return parse_tree(std::cin); }

/// A non-negative count flag; `--threads -1` wrapping to SIZE_MAX would
/// silently disable the serving loop's bounded-queue guarantee.
std::size_t get_count(const Args& args, const std::string& key,
                      std::int64_t fallback, std::int64_t min_value) {
  const std::int64_t value = args.get_int(key, fallback);
  if (value < min_value) {
    usage("--" + key + " must be >= " + std::to_string(min_value));
  }
  return static_cast<std::size_t>(value);
}

void print_placement(const Topology& topo, const Scenario& scen,
                     const Placement& placement) {
  const FlowResult flows = compute_flows(topo, scen, placement);
  for (std::size_t i = 0; i < placement.nodes().size(); ++i) {
    const NodeId node = placement.nodes()[i];
    std::cout << "  node " << node << "  mode " << placement.modes()[i]
              << "  load " << flows.load(topo, node)
              << (scen.pre_existing(node) ? "  (reused)" : "  (new)") << "\n";
  }
}

int cmd_gen(const Args& args) {
  TreeGenConfig config;
  config.num_internal = static_cast<int>(args.get_int("nodes", 50));
  const std::string shape = args.get("shape", "fat");
  if (shape == "fat") {
    config.shape = kFatShape;
  } else if (shape == "high") {
    config.shape = kHighShape;
  } else {
    usage("unknown shape '" + shape + "'");
  }
  config.client_probability = args.get_double("client-prob", 0.5);
  const auto requests = args.get_list("requests");
  if (requests.size() == 2) {
    config.min_requests = requests[0];
    config.max_requests = requests[1];
  } else if (!requests.empty()) {
    usage("--requests expects LO,HI");
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto index = static_cast<std::uint64_t>(args.get_int("index", 0));
  Tree tree = generate_tree(config, seed, index);
  const auto num_pre = static_cast<std::size_t>(args.get_int("pre", 0));
  if (num_pre > 0) {
    Xoshiro256 rng = make_rng(seed, index, RngStream::kPreExisting);
    assign_random_pre_existing(tree, num_pre, rng,
                               static_cast<int>(args.get_int("modes", 1)));
  }
  serialize_tree(tree, std::cout);
  return kExitSuccess;
}

/// One scenario delta as a serve-stream record line (the grammar of
/// serve/request_stream.h — the inverse of its parse_delta_line).
void print_delta_line(std::ostream& os, const ScenarioDelta& d) {
  switch (d.op) {
    case ScenarioDelta::Op::kSetRequests:
      os << "R " << d.node << " " << d.requests << "\n";
      break;
    case ScenarioDelta::Op::kSetPreExisting:
      os << "E " << d.node << " " << d.mode << "\n";
      break;
    case ScenarioDelta::Op::kClearPreExisting:
      os << "X " << d.node << "\n";
      break;
    case ScenarioDelta::Op::kClearAllPre:
      os << "Z\n";
      break;
  }
}

/// The diurnal workload engine driven through the serve stream format:
/// one skew tree record, then one `treeplace-scenario v1 1` record per
/// tick.  With --aggregate the *aggregated* tree is published and each
/// user-level batch is folded through Aggregation::map_deltas into
/// attachment-point records first — the million-user day collapses to a
/// stream whose per-tick record count is bounded by the number of touched
/// attachment points, not touched users.
int cmd_workload(const Args& args) {
  SkewTreeConfig gen;
  gen.num_internal = static_cast<int>(get_count(args, "internal", 400, 1));
  gen.num_users = get_count(args, "users", 100000, 1);
  gen.attach_skew = args.get_double("skew", 0.8);
  const auto requests = args.get_list("requests");
  if (requests.size() == 2) {
    gen.min_requests = requests[0];
    gen.max_requests = requests[1];
  } else if (!requests.empty()) {
    usage("--requests expects LO,HI");
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto index = static_cast<std::uint64_t>(args.get_int("index", 0));
  Tree tree = generate_skew_tree(gen, seed, index);
  const std::size_t num_pre = get_count(args, "pre", 0, 0);
  if (num_pre > 0) {
    Xoshiro256 pre_rng = make_rng(seed, index, RngStream::kPreExisting);
    assign_random_pre_existing(tree, num_pre, pre_rng,
                               static_cast<int>(args.get_int("modes", 1)));
  }

  DiurnalConfig day;
  day.tick_seconds = args.get_double("tick-seconds", day.tick_seconds);
  day.touch_fraction = args.get_double("touch", day.touch_fraction);
  day.amplitude = args.get_double("amplitude", day.amplitude);
  day.flash_probability = args.get_double("flash-prob", day.flash_probability);
  day.min_requests = gen.min_requests;
  day.max_requests = gen.max_requests;
  DiurnalWorkload workload(tree.topology_ptr(), day,
                           make_rng(seed, index, RngStream::kWorkloadUpdate));
  const std::size_t ticks =
      get_count(args, "ticks", static_cast<std::int64_t>(
                                   workload.ticks_per_day()), 1);

  const bool aggregate = args.has("aggregate");
  std::optional<Aggregation> agg;
  if (aggregate) {
    agg.emplace(tree.topology_ptr());
    serialize_tree(Tree(agg->aggregated(), agg->aggregate(tree.scenario())),
                   std::cout);
  } else {
    serialize_tree(tree, std::cout);
  }

  for (std::size_t tick = 0; tick < ticks; ++tick) {
    DiurnalWorkload::Tick t = workload.next();
    // map_deltas reads post-delta client masses, so the user-level
    // scenario is kept current even when only aggregate records are
    // emitted.
    for (const ScenarioDelta& d : t.deltas) apply_delta(tree.scenario(), d);
    std::cout << "# tick " << tick << " sim_s=" << t.sim_seconds
              << " mult=" << t.multiplier << (t.flash ? " flash" : "")
              << "\n";
    std::cout << "treeplace-scenario v1 1\n";
    if (aggregate) {
      for (const ScenarioDelta& d :
           agg->map_deltas(tree.scenario(), t.deltas)) {
        print_delta_line(std::cout, d);
      }
    } else {
      for (const ScenarioDelta& d : t.deltas) print_delta_line(std::cout, d);
    }
  }
  return kExitSuccess;
}

int cmd_list_algos() {
  const auto infos = SolverRegistry::instance().infos();
  std::cout << infos.size() << " registered solvers:\n\n";
  for (const SolverInfo& info : infos) {
    std::cout << "  " << info.name << "\n    " << info.summary << "\n    ["
              << (info.exact ? "exact" : "heuristic")
              << ", objective: "
              << (info.objective == Objective::kMinPower ? "min-power"
                                                         : "min-cost");
    if (info.needs_modes) std::cout << ", multi-mode";
    if (info.supports_pre_existing) std::cout << ", reuse-aware";
    if (!info.provides_placement) std::cout << ", value-only oracle";
    if (info.single_mode_only) std::cout << ", single-mode instances";
    if (info.max_internal > 0) {
      std::cout << ", N <= " << info.max_internal;
    }
    std::cout << "]\n";
  }
  return kExitSuccess;
}

/// The per-instance parameters assembled from CLI flags, shared by the
/// one-shot `solve` path and the `serve` loop (which applies them to every
/// request of the stream).
struct InstanceParams {
  ModeSet modes = ModeSet::single(10);
  CostModel costs = CostModel::simple(0.1, 0.01);
  std::optional<double> budget;
  /// Classic single-mode problem class: original modes of pre-existing
  /// servers are projected to 0 (Instance::single_mode semantics).
  bool single_mode = true;
};

/// Interprets the instance flags.  --modes (or a mode-aware solver with no
/// explicit --capacity) selects the multi-mode Eq. 4 setting with the
/// defaults of the paper's experiments; otherwise the classic single-mode
/// Eq. 2 setting — so `--capacity` is always honored, even for power
/// solvers (they then run with the single mode W).
InstanceParams parse_instance_params(const Args& args,
                                     const SolverInfo& info) {
  if (args.has("modes") && args.has("capacity")) {
    usage("--capacity conflicts with --modes; the capacity is W_M");
  }
  InstanceParams params;
  if (args.has("budget")) params.budget = args.get_double("budget", 0.0);
  if (args.has("modes") || (info.needs_modes && !args.has("capacity"))) {
    auto caps = args.get_list("modes");
    if (caps.empty()) caps = {5, 10};
    params.modes = ModeSet(std::vector<RequestCount>(caps.begin(), caps.end()),
                           args.get_double("static", 0.0),
                           args.get_double("alpha", 3.0));
    params.costs = CostModel::uniform(
        params.modes.count(), args.get_double("create", 0.1),
        args.get_double("delete", 0.01), args.get_double("changed", 0.0),
        args.get_double("changed-same", 0.0));
    params.single_mode = false;
    return params;
  }
  const auto capacity = static_cast<RequestCount>(args.get_int("capacity", 10));
  // Honor the power-model flags in the single-mode setting too (they
  // matter when a min-power solver runs with one mode).
  params.modes = ModeSet({capacity}, args.get_double("static", 0.0),
                         args.get_double("alpha", 3.0));
  params.costs = CostModel::simple(args.get_double("create", 0.1),
                                   args.get_double("delete", 0.01));
  params.single_mode = true;
  return params;
}

Instance build_instance(const InstanceParams& params, Tree tree) {
  auto topology = tree.topology_ptr();
  Scenario scen = std::move(tree.scenario());
  if (params.single_mode) project_to_single_mode(scen);
  return Instance{std::move(topology), std::move(scen), params.modes,
                  params.costs, params.budget};
}

/// Solves one tree and prints the result.  Returns the per-tree exit code.
int solve_one(const std::string& algo, const SolverInfo& info,
              const Solver& solver, const Instance& instance) {
  if (!info.accepts(instance.num_internal(), instance.modes.count())) {
    std::cerr << "error: '" << algo << "' does not accept this instance ("
              << instance.num_internal() << " internal nodes, "
              << instance.modes.count() << " modes";
    if (info.max_internal > 0) {
      std::cerr << "; solver limit N <= " << info.max_internal;
    }
    if (info.single_mode_only) std::cerr << "; single-mode only";
    std::cerr << ")\n";
    return kExitUsage;
  }

  const Solution solution = solver.solve(instance);
  if (!solution.feasible) {
    std::cout << "infeasible: some client group exceeds the capacity W_M\n";
    return kExitInfeasible;
  }

  if (!solution.frontier.empty()) {
    std::cout << "cost-power Pareto frontier (" << solution.frontier.size()
              << " points):\n";
    for (const PowerParetoPoint& p : solution.frontier) {
      std::cout << "  cost " << p.cost << "  power " << p.power;
      if (!p.placement.empty()) {
        std::cout << "  servers " << p.breakdown.servers;
      }
      std::cout << "\n";
    }
  }

  const bool multi_mode = instance.modes.count() > 1;
  std::cout << algo << ": cost " << solution.breakdown.cost;
  if (multi_mode) std::cout << "  power " << solution.power;
  if (info.provides_placement) {
    std::cout << "  (" << solution.breakdown.servers << " servers: "
              << solution.breakdown.reused << " reused, "
              << solution.breakdown.created << " new, "
              << solution.breakdown.deleted << " deleted)";
  } else {
    std::cout << "  (value-only oracle: optimal values certified, no "
                 "placement reconstructed)";
  }
  std::cout << "  [" << solution.stats.seconds << " s]\n";
  if (instance.cost_budget && !solution.budget_met) {
    std::cout << "no solution within budget " << *instance.cost_budget
              << "\n";
    return kExitInfeasible;
  }
  if (instance.cost_budget) {
    std::cout << "best within budget " << *instance.cost_budget << ": ";
    if (multi_mode) std::cout << "power " << solution.power << " at ";
    std::cout << "cost " << solution.breakdown.cost << "\n";
  }
  print_placement(instance.topo(), instance.scen(), solution.placement);
  return kExitSuccess;
}

/// Streaming batch serve: one placement per input tree.  A single tree on
/// stdin behaves exactly as before; concatenated trees (`cat a.txt b.txt`)
/// are solved one at a time by one solver instance, each over its own
/// zero-copy Instance.
int cmd_solve(const Args& args) {
  if (args.has("list-algos")) return cmd_list_algos();
  if (!args.has("algo")) usage("solve requires --algo NAME (or --list-algos)");
  const std::string algo = args.get("algo", "");
  const SolverRegistry& registry = SolverRegistry::instance();
  const SolverInfo* info = registry.find(algo);
  if (info == nullptr) {
    std::cerr << "error: unknown algorithm '" << algo << "'\n"
              << "available algorithms: " << registry.catalog() << "\n"
              << "(run `treeplace list-algos` for descriptions)\n";
    return kExitUsage;
  }

  const auto solver = make_solver(algo);
  const auto threads = static_cast<int>(get_count(args, "threads", 1, 1));
  if (threads != 1) solver->set_options(Solver::Options{threads});
  const InstanceParams params = parse_instance_params(args, *info);
  TreeStreamReader reader(std::cin);
  int worst = kExitSuccess;
  for (std::optional<Tree> tree = reader.next(); tree;
       tree = reader.next()) {
    if (reader.trees_read() > 1) {
      std::cout << "\n== tree " << reader.trees_read() << " ==\n";
    }
    const Instance instance = build_instance(params, std::move(*tree));
    // A per-instance failure (capability rejection, infeasibility) never
    // aborts the stream: remaining trees are still served and the exit
    // code reports the worst outcome.
    worst = std::max(worst, solve_one(algo, *info, *solver, instance));
  }
  if (reader.trees_read() == 0) usage("no tree on stdin");
  return worst;
}

serve::NetServer* g_net_server = nullptr;

extern "C" void handle_drain_signal(int) {
  // NetServer::shutdown() is async-signal-safe (atomic store + write()).
  if (g_net_server != nullptr) g_net_server->shutdown();
}

extern "C" void handle_kill_shard_signal(int) {
  // kill_next_shard() is async-signal-safe too (atomics + write()).
  if (g_net_server != nullptr) g_net_server->kill_next_shard();
}

/// Thousands of connections need thousands of fds; lift the soft limit to
/// the hard limit (best-effort).
void raise_nofile_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

/// `serve --listen`: the async TCP front-end (serve/net_server.h).
int cmd_serve_net(const Args& args, serve::StreamServerConfig stream_config) {
  const std::string listen = args.get("listen", "");
  const auto colon = listen.rfind(':');
  if (colon == std::string::npos) usage("--listen expects HOST:PORT");
  serve::NetServerConfig config;
  config.host = listen.substr(0, colon);
  const std::int64_t port = std::stoll(listen.substr(colon + 1));
  if (port < 0 || port > 65535) usage("--listen port out of range");
  config.port = static_cast<std::uint16_t>(port);
  config.max_conns = get_count(args, "max-conns", 4096, 1);
  config.idle_timeout_seconds = args.get_double("idle-timeout", 300.0);
  config.keepalive_seconds =
      static_cast<int>(get_count(args, "keepalive", 0, 0));
  config.shards = get_count(args, "shards", 1, 1);
  config.persist_dir = args.get("persist", "");
  config.stream = std::move(stream_config);

  raise_nofile_limit();
  serve::NetServer server(std::move(config));
  const std::uint16_t bound = server.listen_and_bind();
  // Port 0 callers (tests, benches, scripts) learn the real port here.
  std::cout << "# listen: " << listen.substr(0, colon) << ":" << bound << "\n"
            << std::flush;

  g_net_server = &server;
  std::signal(SIGTERM, handle_drain_signal);
  std::signal(SIGINT, handle_drain_signal);
  std::signal(SIGUSR1, handle_kill_shard_signal);
  const serve::NetServerSummary summary = server.run(std::cout);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGUSR1, SIG_DFL);
  g_net_server = nullptr;

  if (summary.errors > 0 || summary.protocol_errors > 0) return kExitUsage;
  if (summary.infeasible > 0 || summary.over_budget > 0) {
    return kExitInfeasible;
  }
  return kExitSuccess;
}

/// The batch-serving loop: mixed tree / scenario-delta records on stdin,
/// one result record per request on stdout (see serve/stream_server.h).
int cmd_serve(const Args& args) {
  if (!args.has("algo")) usage("serve requires --algo NAME");
  const std::string algo = args.get("algo", "");
  const SolverRegistry& registry = SolverRegistry::instance();
  const SolverInfo* info = registry.find(algo);
  if (info == nullptr) {
    std::cerr << "error: unknown algorithm '" << algo << "'\n"
              << "available algorithms: " << registry.catalog() << "\n";
    return kExitUsage;
  }
  const InstanceParams params = parse_instance_params(args, *info);

  serve::StreamServerConfig config;
  config.dispatcher.algos = {algo};
  config.dispatcher.threads = get_count(args, "threads", 0, 0);
  config.dispatcher.queue_capacity = get_count(args, "queue", 0, 0);
  config.dispatcher.solver_threads =
      static_cast<int>(get_count(args, "solver-threads", 1, 1));
  config.cache_capacity = get_count(args, "cache", 16, 1);
  config.session_max_bytes = get_count(args, "session-bytes", 0, 0);
  config.session_contract = args.has("contract");
  if (config.session_contract && config.session_max_bytes != 0) {
    usage("--contract is incompatible with --session-bytes (budget shedding "
          "could evict the tables sealed leaves splice in)");
  }
  config.modes = params.modes;
  config.costs = params.costs;
  config.cost_budget = params.budget;
  config.project_original_modes = params.single_mode;

  if (args.has("listen")) return cmd_serve_net(args, std::move(config));

  serve::StreamServer server(std::move(config));
  const serve::StreamServerSummary summary = server.serve(std::cin, std::cout);
  if (summary.stream_error) {
    std::cerr << "error: malformed request stream: "
              << summary.stream_error_message << "\n";
    return kExitUsage;
  }
  if (summary.requests == 0) usage("no request on stdin");
  if (summary.errors > 0) return kExitUsage;
  if (summary.infeasible > 0 || summary.over_budget > 0) {
    return kExitInfeasible;
  }
  return kExitSuccess;
}

int cmd_validate(const Args& args) {
  const Tree tree = read_tree();
  const auto capacity = static_cast<RequestCount>(args.get_int("capacity", 10));
  Placement placement;
  for (std::uint64_t id : args.get_list("servers")) {
    placement.add(static_cast<NodeId>(id), 0);
  }
  const ValidationResult v =
      validate(tree, placement, ModeSet::single(capacity));
  if (v.valid) {
    std::cout << "valid placement (" << placement.size() << " servers)\n";
    return kExitSuccess;
  }
  std::cout << "INVALID: " << v.reason << "\n";
  return kExitInfeasible;
}

int cmd_stats(const Args&) {
  const Tree tree = read_tree();
  const TreeMetrics m = compute_metrics(tree);
  std::cout << "internal nodes: " << m.num_internal << "\n"
            << "clients:        " << m.num_clients << "\n"
            << "pre-existing:   " << m.num_pre_existing << "\n"
            << "depth:          " << m.depth << "\n"
            << "fan-out:        " << m.min_fanout << ".." << m.max_fanout
            << " (mean " << m.mean_fanout << ")\n"
            << "total requests: " << m.total_requests << "\n"
            << "max client:     " << m.max_client_requests << "\n";
  return kExitSuccess;
}

int cmd_dot(const Args&) {
  std::cout << to_dot(read_tree());
  return kExitSuccess;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "gen") return cmd_gen(args);
    if (command == "workload") return cmd_workload(args);
    if (command == "solve") return cmd_solve(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "list-algos" || command == "--list-algos") {
      return cmd_list_algos();
    }
    if (command == "validate") return cmd_validate(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "dot") return cmd_dot(args);
    if (command == "solve-cost" || command == "solve-power" ||
        command == "greedy") {
      const std::string replacement =
          command == "solve-cost"
              ? "update-dp"
              : command == "greedy"
                    ? "greedy"
                    : args.has("exact") ? "power-exact" : "power-sym";
      usage("'" + command +
            "' was replaced by the generic solver interface; use `treeplace "
            "solve --algo " +
            replacement + "` (see `treeplace list-algos`)");
    }
    usage("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitUsage;
  }
}
