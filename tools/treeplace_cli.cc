// treeplace command-line tool — drive the library without writing C++.
//
//   treeplace gen --nodes 50 --shape fat --seed 7 > tree.txt
//   treeplace solve-cost --capacity 10 --create 0.1 --delete 0.01 < tree.txt
//   treeplace solve-power --modes 5,10 --static 12.5 --alpha 3 \
//             --create 0.1 --delete 0.01 --changed 0.001 [--budget 25] < tree.txt
//   treeplace greedy --capacity 10 < tree.txt
//   treeplace validate --capacity 10 --servers 0,3,7 < tree.txt
//   treeplace stats < tree.txt
//   treeplace dot < tree.txt | dot -Tpng > tree.png
//
// Trees are read/written in the text format of tree/io.h.
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "treeplace.h"
#include "tree/metrics.h"

using namespace treeplace;

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: treeplace <command> [options]\n"
      "\n"
      "commands:\n"
      "  gen          generate a random distribution tree to stdout\n"
      "               --nodes N --shape fat|high --client-prob P\n"
      "               --requests LO,HI --pre E --modes M --seed S --index I\n"
      "  solve-cost   optimal update (MinCost-WithPre DP) for the tree on stdin\n"
      "               --capacity W --create C --delete D\n"
      "  solve-power  cost-power Pareto frontier (MinPower-BoundedCost DP)\n"
      "               --modes W1,W2,... --static P --alpha A\n"
      "               --create C --delete D --changed X [--budget B] [--exact]\n"
      "  greedy       greedy GR baseline --capacity W\n"
      "  validate     check a placement --capacity W --servers id,id,...\n"
      "  stats        structural metrics of the tree on stdin\n"
      "  dot          Graphviz rendering of the tree on stdin\n";
  std::exit(2);
}

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) usage("unexpected argument '" + key + "'");
      key = key.substr(2);
      if (key == "exact") {
        values_[key] = "1";
      } else {
        if (i + 1 >= argc) usage("missing value for --" + key);
        values_[key] = argv[++i];
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::vector<std::uint64_t> get_list(const std::string& key) const {
    std::vector<std::uint64_t> out;
    auto it = values_.find(key);
    if (it == values_.end()) return out;
    std::istringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stoull(item));
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
};

Tree read_tree() { return parse_tree(std::cin); }

void print_placement(const Tree& tree, const Placement& placement) {
  const FlowResult flows = compute_flows(tree, placement);
  for (std::size_t i = 0; i < placement.nodes().size(); ++i) {
    const NodeId node = placement.nodes()[i];
    std::cout << "  node " << node << "  mode " << placement.modes()[i]
              << "  load " << flows.load(tree, node)
              << (tree.pre_existing(node) ? "  (reused)" : "  (new)") << "\n";
  }
}

int cmd_gen(const Args& args) {
  TreeGenConfig config;
  config.num_internal = static_cast<int>(args.get_int("nodes", 50));
  const std::string shape = args.get("shape", "fat");
  if (shape == "fat") {
    config.shape = kFatShape;
  } else if (shape == "high") {
    config.shape = kHighShape;
  } else {
    usage("unknown shape '" + shape + "'");
  }
  config.client_probability = args.get_double("client-prob", 0.5);
  const auto requests = args.get_list("requests");
  if (requests.size() == 2) {
    config.min_requests = requests[0];
    config.max_requests = requests[1];
  } else if (!requests.empty()) {
    usage("--requests expects LO,HI");
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto index = static_cast<std::uint64_t>(args.get_int("index", 0));
  Tree tree = generate_tree(config, seed, index);
  const auto num_pre = static_cast<std::size_t>(args.get_int("pre", 0));
  if (num_pre > 0) {
    Xoshiro256 rng = make_rng(seed, index, RngStream::kPreExisting);
    assign_random_pre_existing(tree, num_pre, rng,
                               static_cast<int>(args.get_int("modes", 1)));
  }
  serialize_tree(tree, std::cout);
  return 0;
}

int cmd_solve_cost(const Args& args) {
  const Tree tree = read_tree();
  const MinCostConfig config{
      static_cast<RequestCount>(args.get_int("capacity", 10)),
      args.get_double("create", 0.1), args.get_double("delete", 0.01)};
  const MinCostResult result = solve_min_cost_with_pre(tree, config);
  if (!result.feasible) {
    std::cout << "infeasible: some client group exceeds the capacity\n";
    return 1;
  }
  std::cout << "optimal cost " << result.breakdown.cost << "  ("
            << result.breakdown.servers << " servers: "
            << result.breakdown.reused << " reused, "
            << result.breakdown.created << " new, " << result.breakdown.deleted
            << " deleted)\n";
  print_placement(tree, result.placement);
  return 0;
}

int cmd_solve_power(const Args& args) {
  const Tree tree = read_tree();
  auto caps = args.get_list("modes");
  if (caps.empty()) caps = {5, 10};
  const ModeSet modes(std::vector<RequestCount>(caps.begin(), caps.end()),
                      args.get_double("static", 0.0),
                      args.get_double("alpha", 3.0));
  const CostModel costs = CostModel::uniform(
      modes.count(), args.get_double("create", 0.1),
      args.get_double("delete", 0.01), args.get_double("changed", 0.0),
      args.get_double("changed-same", 0.0));
  const PowerDPResult result =
      args.has("exact") ? solve_power_exact(tree, modes, costs)
                        : solve_power_auto(tree, modes, costs);
  if (!result.feasible) {
    std::cout << "infeasible: some client group exceeds W_M\n";
    return 1;
  }
  std::cout << "cost-power Pareto frontier (" << result.frontier.size()
            << " points):\n";
  for (const PowerParetoPoint& p : result.frontier) {
    std::cout << "  cost " << p.cost << "  power " << p.power << "  servers "
              << p.breakdown.servers << "\n";
  }
  if (args.has("budget")) {
    const double budget = args.get_double("budget", 0.0);
    const PowerParetoPoint* best = result.best_within_cost(budget);
    if (best == nullptr) {
      std::cout << "no solution within budget " << budget << "\n";
      return 1;
    }
    std::cout << "best within budget " << budget << ": power " << best->power
              << " at cost " << best->cost << "\n";
    print_placement(tree, best->placement);
  }
  return 0;
}

int cmd_greedy(const Args& args) {
  const Tree tree = read_tree();
  const auto capacity = static_cast<RequestCount>(args.get_int("capacity", 10));
  const GreedyResult result = solve_greedy_min_count(tree, capacity);
  if (!result.feasible) {
    std::cout << "infeasible: some client group exceeds the capacity\n";
    return 1;
  }
  std::cout << result.placement.size() << " replicas (minimum count):\n";
  print_placement(tree, result.placement);
  return 0;
}

int cmd_validate(const Args& args) {
  const Tree tree = read_tree();
  const auto capacity = static_cast<RequestCount>(args.get_int("capacity", 10));
  Placement placement;
  for (std::uint64_t id : args.get_list("servers")) {
    placement.add(static_cast<NodeId>(id), 0);
  }
  const ValidationResult v =
      validate(tree, placement, ModeSet::single(capacity));
  if (v.valid) {
    std::cout << "valid placement (" << placement.size() << " servers)\n";
    return 0;
  }
  std::cout << "INVALID: " << v.reason << "\n";
  return 1;
}

int cmd_stats(const Args&) {
  const Tree tree = read_tree();
  const TreeMetrics m = compute_metrics(tree);
  std::cout << "internal nodes: " << m.num_internal << "\n"
            << "clients:        " << m.num_clients << "\n"
            << "pre-existing:   " << m.num_pre_existing << "\n"
            << "depth:          " << m.depth << "\n"
            << "fan-out:        " << m.min_fanout << ".." << m.max_fanout
            << " (mean " << m.mean_fanout << ")\n"
            << "total requests: " << m.total_requests << "\n"
            << "max client:     " << m.max_client_requests << "\n";
  return 0;
}

int cmd_dot(const Args&) {
  std::cout << to_dot(read_tree());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Args args(argc, argv);
  try {
    if (command == "gen") return cmd_gen(args);
    if (command == "solve-cost") return cmd_solve_cost(args);
    if (command == "solve-power") return cmd_solve_power(args);
    if (command == "greedy") return cmd_greedy(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "dot") return cmd_dot(args);
    usage("unknown command '" + command + "'");
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
