#!/usr/bin/env python3
"""Loopback smoke test for `treeplace serve --listen` (the CI gate for the
async TCP front-end at the CLI level; the in-process coverage lives in
tests/serve/net_server_test.cc and bench/connection_churn.cc).

Starts the server on an ephemeral port, computes the reference output by
running the same binary in single-stream serve mode, then drives a few
hundred short-lived concurrent connections, each publishing a tree plus
three scenario deltas and asserting its bytes are ordered and
bit-identical (timings stripped) to the stream-mode reference.  Finally
SIGTERMs the server and asserts a graceful exit with a flushed summary.

With --shards > 1 the server runs the sharded router and, after the main
connection sweep, the test SIGUSR1s the server to kill one shard and
asserts the survivors keep serving bit-identical results (one retry per
connection tolerates the drain window) and that the summary reports
exactly one killed shard.

Usage: tools/net_smoke.py [--binary build/treeplace] [--shards 1]
                          [--connections 200] [--concurrency 8]
"""

import argparse
import re
import signal
import socket
import subprocess
import sys
import threading
import time

# The serve-test topology: internal nodes 0/1/2/6, clients 3/4/5/7.
TREE = """treeplace-tree v1
I 0 -1 0 -1
I 1 0 0 -1
I 2 0 0 -1
C 3 1 5
C 4 1 3
C 5 2 4
I 6 2 0 -1
C 7 6 2
"""

# One connection's conversation: the tree plus three delta records.
STREAM = (
    TREE
    + "treeplace-scenario v1 1\nE 2\nE 6 0\n"
    + "treeplace-scenario v1 1\nZ\nR 3 7\n"
    + "treeplace-scenario v1 1\nE 2\nX 2\n"
)

SERVE_ARGS = ["serve", "--algo", "update-dp", "--modes", "10", "--cache", "64"]

TIMING_TOKEN = re.compile(r"\s+(?:queue_s|solve_s)=\S+")


def strip_timings(text: str) -> str:
    """Mirror of serve::strip_timings: drop queue_s=/solve_s= tokens."""
    return "".join(
        TIMING_TOKEN.sub("", line) + "\n" for line in text.splitlines()
    )


def stream_reference(binary: str) -> str:
    """Result lines StreamServer emits for STREAM, timings stripped."""
    proc = subprocess.run(
        [binary] + SERVE_ARGS,
        input=STREAM.encode(),
        stdout=subprocess.PIPE,
        check=True,
    )
    results = "".join(
        line + "\n"
        for line in proc.stdout.decode().splitlines()
        if line.startswith("result ")
    )
    return strip_timings(results)


def one_connection(
    port: int, reference: str, failures: list, lock, retries: int = 0
) -> None:
    # retries > 0 tolerates the shard-kill drain window: a connection the
    # router handed to the dying shard is closed unserved, and its retry
    # must land on a survivor.
    for attempt in range(retries + 1):
        try:
            with socket.create_connection(
                ("127.0.0.1", port), timeout=30
            ) as s:
                s.sendall(STREAM.encode())
                s.shutdown(socket.SHUT_WR)
                chunks = []
                while True:
                    chunk = s.recv(65536)
                    if not chunk:
                        break
                    chunks.append(chunk)
            received = strip_timings(b"".join(chunks).decode())
            if received == reference:
                return
            error = "mismatch:\n--- got ---\n%s--- want ---\n%s" % (
                received,
                reference,
            )
        except OSError as err:
            error = "connection failed: %s" % err
        if attempt < retries:
            time.sleep(0.2)
    with lock:
        failures.append(error)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--binary", default="build/treeplace")
    ap.add_argument("--shards", type=int, default=1)
    ap.add_argument("--connections", type=int, default=200)
    ap.add_argument("--concurrency", type=int, default=8)
    args = ap.parse_args()

    reference = stream_reference(args.binary)
    if "status=ok" not in reference:
        print("smoke: stream-mode reference has no ok results:\n" + reference)
        return 1

    serve_args = SERVE_ARGS + ["--listen", "127.0.0.1:0"]
    if args.shards > 1:
        serve_args += ["--shards", str(args.shards)]
    server = subprocess.Popen(
        [args.binary] + serve_args,
        stdout=subprocess.PIPE,
    )
    try:
        # The first stdout line publishes the resolved ephemeral port.
        line = server.stdout.readline().decode()
        match = re.match(r"# listen: 127\.0\.0\.1:(\d+)", line)
        if not match:
            print("smoke: expected '# listen:' line, got: %r" % line)
            return 1
        port = int(match.group(1))

        failures: list = []
        lock = threading.Lock()
        remaining = args.connections
        while remaining > 0 and not failures:
            batch = min(args.concurrency, remaining)
            threads = [
                threading.Thread(
                    target=one_connection, args=(port, reference, failures, lock)
                )
                for _ in range(batch)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            remaining -= batch

        # Kill one shard between batches (no connections in flight) and
        # assert the survivors keep serving bit-identical results.
        kill_conns = 0
        if args.shards > 1 and not failures:
            server.send_signal(signal.SIGUSR1)
            time.sleep(0.5)  # let the shard drain and leave the ring
            remaining = kill_conns = 2 * args.concurrency
            while remaining > 0 and not failures:
                batch = min(args.concurrency, remaining)
                threads = [
                    threading.Thread(
                        target=one_connection,
                        args=(port, reference, failures, lock, 1),
                    )
                    for _ in range(batch)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                remaining -= batch
    finally:
        server.send_signal(signal.SIGTERM)
        tail = server.stdout.read().decode()
        code = server.wait(timeout=60)

    if failures:
        print("smoke: %d of %d connections diverged from stream mode"
              % (len(failures), args.connections))
        print(failures[0])
        return 1
    if code != 0:
        print("smoke: server exited %d after graceful drain\n%s" % (code, tail))
        return 1
    if "# serve:" not in tail:
        print("smoke: no summary block after SIGTERM drain:\n" + tail)
        return 1
    served = (args.connections + kill_conns) * 4  # 4 records per connection
    match = re.search(r"# serve: (\d+) requests", tail)
    if not match:
        print("smoke: no '# serve: N requests' line in summary:\n" + tail)
        return 1
    # Retried connections may leave extra requests behind on the drained
    # shard, so the aggregate is a floor, not an exact count.
    if int(match.group(1)) < served:
        print("smoke: summary reports %s requests, want >= %d:\n%s"
              % (match.group(1), served, tail))
        return 1
    if args.shards > 1:
        killed = sum(int(k) for k in re.findall(r" killed=(\d+)", tail))
        if killed != 1:
            print("smoke: summary reports %d killed shards, want 1:\n%s"
                  % (killed, tail))
            return 1
    print("smoke: %d connections (%d concurrent, %d shard%s), all "
          "bit-identical to stream mode; graceful drain ok"
          % (args.connections + kill_conns, args.concurrency, args.shards,
             "" if args.shards == 1 else "s"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
