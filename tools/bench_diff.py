#!/usr/bin/env python3
"""Diff a fresh solver-matrix JSON against the committed baseline.

The solver matrix (bench/solver_matrix) is deterministic in everything but
its timings: for a fixed instance set, every registered solver must report
the same feasibility, cost, power, server count and frontier size on every
machine.  CI therefore runs this script after the bench:

  * result-value drift (any non-timing column differs, or a baseline row
    disappeared) FAILS the build — a solver changed behavior;
  * timing regressions beyond --timing-ratio (default 2x, ignoring solves
    under --timing-floor seconds) are WARNED about — machines differ, so
    timings inform the trajectory but never gate;
  * rows only present in the fresh run are reported as additions (new
    solvers and instances are expected as the matrix grows).

Usage:
  tools/bench_diff.py --baseline bench_results/baseline_solver_matrix.json \
                      --fresh bench_results/BENCH_solver_matrix.json \
                      [--report bench_results/solver_matrix_diff.txt] \
                      [--timing-ratio 2.0] [--timing-floor 0.01]

Exit codes: 0 clean (warnings allowed), 1 result drift, 2 usage/IO error.
"""

import argparse
import json
import sys

TIMING_COLUMNS = {"seconds"}
KEY_COLUMNS = ("solver", "instance")
FLOAT_ABS_TOL = 1e-6
FLOAT_REL_TOL = 1e-9


def load_rows(path):
    with open(path) as f:
        data = json.load(f)
    columns = data["columns"]
    for key in KEY_COLUMNS:
        if key not in columns:
            raise ValueError(f"{path}: missing key column '{key}'")
    rows = {}
    for row in data["rows"]:
        cells = dict(zip(columns, row))
        key = tuple(cells[k] for k in KEY_COLUMNS)
        if key in rows:
            raise ValueError(f"{path}: duplicate row for {key}")
        rows[key] = cells
    return columns, rows


def values_equal(a, b):
    if isinstance(a, float) or isinstance(b, float):
        try:
            fa, fb = float(a), float(b)
        except (TypeError, ValueError):
            return a == b
        return abs(fa - fb) <= max(FLOAT_ABS_TOL, FLOAT_REL_TOL * max(abs(fa), abs(fb)))
    return a == b


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--report", help="also write the diff to this file")
    parser.add_argument("--timing-ratio", type=float, default=2.0)
    parser.add_argument("--timing-floor", type=float, default=0.01,
                        help="ignore timing changes of solves faster than this")
    args = parser.parse_args()

    try:
        base_columns, baseline = load_rows(args.baseline)
        _, fresh = load_rows(args.fresh)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    result_columns = [c for c in base_columns
                      if c not in TIMING_COLUMNS and c not in KEY_COLUMNS]
    drift, warnings, additions = [], [], []

    for key, base_row in sorted(baseline.items()):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            drift.append(f"MISSING  {key}: row present in baseline only")
            continue
        for column in result_columns:
            if column not in fresh_row:
                drift.append(f"DRIFT    {key}: column '{column}' missing")
            elif not values_equal(base_row[column], fresh_row[column]):
                drift.append(
                    f"DRIFT    {key}: {column} {base_row[column]!r} -> "
                    f"{fresh_row[column]!r}")
        for column in TIMING_COLUMNS:
            if column not in base_row or column not in fresh_row:
                continue
            old, new = float(base_row[column]), float(fresh_row[column])
            if new < args.timing_floor:
                continue
            if old > 0 and new / old > args.timing_ratio:
                warnings.append(
                    f"TIMING   {key}: {column} {old:.4f}s -> {new:.4f}s "
                    f"({new / old:.1f}x)")

    for key in sorted(fresh.keys() - baseline.keys()):
        additions.append(f"NEW      {key}: not in baseline")

    lines = [
        f"bench_diff: {args.fresh} vs {args.baseline}",
        f"rows: baseline={len(baseline)} fresh={len(fresh)} "
        f"drift={len(drift)} timing-warnings={len(warnings)} "
        f"new={len(additions)}",
    ] + drift + warnings + additions
    if not drift and not warnings:
        lines.append("clean: all result values match the baseline")
    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)

    return 1 if drift else 0


if __name__ == "__main__":
    sys.exit(main())
