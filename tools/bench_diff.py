#!/usr/bin/env python3
"""Diff a fresh bench JSON against its committed baseline.

Bench tables (bench/solver_matrix, bench/warm_start, bench/serve_throughput)
are deterministic in everything but their timings: for a fixed instance set,
every solver must report the same feasibility, cost, power, server count,
frontier size and work counters on every machine.  CI therefore runs this
script after each gated bench:

  * result-value drift (any non-timing column differs, or a baseline row
    disappeared) FAILS the build — a solver changed behavior;
  * timing regressions beyond --timing-ratio (default 2x, ignoring solves
    under --timing-floor seconds) are WARNED about — machines differ, so
    timings inform the trajectory but never gate;
  * rows only present in the fresh run are reported as additions (new
    solvers and instances are expected as the matrix grows).

Usage:
  tools/bench_diff.py --baseline bench_results/baseline_solver_matrix.json \
                      --fresh bench_results/BENCH_solver_matrix.json \
                      [--report bench_results/solver_matrix_diff.txt] \
                      [--key-columns solver,instance] \
                      [--timing-columns seconds] \
                      [--timing-ratio 2.0] [--timing-floor 0.01] \
                      [--update-baseline]

--key-columns names the columns that identify a row (default
"solver,instance"); --timing-columns the columns treated as timings
(warn-only; default "seconds").  --update-baseline rewrites the baseline
file with the fresh run after reporting — use it deliberately, commit the
result, and let review see the diff.  Under --update-baseline, changed
result columns are reported as REBASE lines with the old->new ratio, so
the report artifact documents exactly how far each deliberately
re-baselined value moved.

Exit codes: 0 clean (warnings allowed, and always after --update-baseline),
1 result drift, 2 usage/IO error.
"""

import argparse
import json
import shutil
import sys

FLOAT_ABS_TOL = 1e-6
FLOAT_REL_TOL = 1e-9


def load_rows(path, key_columns):
    with open(path) as f:
        data = json.load(f)
    columns = data["columns"]
    for key in key_columns:
        if key not in columns:
            raise ValueError(f"{path}: missing key column '{key}'")
    rows = {}
    for row in data["rows"]:
        cells = dict(zip(columns, row))
        key = tuple(cells[k] for k in key_columns)
        if key in rows:
            raise ValueError(f"{path}: duplicate row for {key}")
        rows[key] = cells
    return columns, rows


def values_equal(a, b):
    if isinstance(a, float) or isinstance(b, float):
        try:
            fa, fb = float(a), float(b)
        except (TypeError, ValueError):
            return a == b
        return abs(fa - fb) <= max(FLOAT_ABS_TOL, FLOAT_REL_TOL * max(abs(fa), abs(fb)))
    return a == b


def change_ratio(old, new):
    """The old->new ratio as a suffix string, when both are numeric."""
    if isinstance(old, bool) or isinstance(new, bool):
        return ""
    try:
        fo, fn = float(old), float(new)
    except (TypeError, ValueError):
        return ""
    if fo == 0:
        return " (was 0)"
    return f" ({fn / fo:.3f}x)"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument("--report", help="also write the diff to this file")
    parser.add_argument("--key-columns", default="solver,instance",
                        help="comma-separated columns identifying a row")
    parser.add_argument("--timing-columns", default="seconds",
                        help="comma-separated columns treated as timings "
                             "(warn-only)")
    parser.add_argument("--timing-ratio", type=float, default=2.0)
    parser.add_argument("--timing-floor", type=float, default=0.01,
                        help="ignore timing changes of solves faster than this")
    parser.add_argument("--update-baseline", action="store_true",
                        help="after reporting, overwrite the baseline with "
                             "the fresh run and exit 0")
    args = parser.parse_args()

    key_columns = tuple(c for c in args.key_columns.split(",") if c)
    timing_columns = {c for c in args.timing_columns.split(",") if c}
    if not key_columns:
        print("bench_diff: --key-columns must name at least one column",
              file=sys.stderr)
        return 2

    try:
        _, fresh = load_rows(args.fresh, key_columns)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2
    try:
        base_columns, baseline = load_rows(args.baseline, key_columns)
    except FileNotFoundError:
        if not args.update_baseline:
            print(f"bench_diff: missing baseline file: {args.baseline}\n"
                  "  A gated bench needs its baseline committed to the "
                  "repository. If this is a new\n"
                  "  bench (or the file was removed), create the baseline "
                  "from the fresh run and\n"
                  "  commit it:\n"
                  f"    python3 tools/bench_diff.py --baseline "
                  f"{args.baseline} --fresh {args.fresh} --update-baseline",
                  file=sys.stderr)
            return 2
        base_columns, baseline = [], {}  # bootstrapping a new baseline
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_diff: {e}", file=sys.stderr)
        return 2

    result_columns = [c for c in base_columns
                      if c not in timing_columns and c not in key_columns]
    drift, warnings, additions = [], [], []

    for key, base_row in sorted(baseline.items()):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            drift.append(f"MISSING  {key}: row present in baseline only")
            continue
        # A drift found while refreshing the baseline is a deliberate
        # re-baseline: label it as such and quantify the move.
        drift_tag = "REBASE  " if args.update_baseline else "DRIFT   "
        for column in result_columns:
            if column not in fresh_row:
                drift.append(f"{drift_tag} {key}: column '{column}' missing")
            elif not values_equal(base_row[column], fresh_row[column]):
                drift.append(
                    f"{drift_tag} {key}: {column} {base_row[column]!r} -> "
                    f"{fresh_row[column]!r}"
                    f"{change_ratio(base_row[column], fresh_row[column])}")
        for column in timing_columns:
            if column not in base_row or column not in fresh_row:
                continue
            try:
                old, new = float(base_row[column]), float(fresh_row[column])
            except (TypeError, ValueError):
                continue
            if new < args.timing_floor:
                continue
            if old > 0 and new / old > args.timing_ratio:
                warnings.append(
                    f"TIMING   {key}: {column} {old:.4f}s -> {new:.4f}s "
                    f"({new / old:.1f}x)")

    for key in sorted(fresh.keys() - baseline.keys()):
        additions.append(f"NEW      {key}: not in baseline")

    lines = [
        f"bench_diff: {args.fresh} vs {args.baseline}",
        f"rows: baseline={len(baseline)} fresh={len(fresh)} "
        f"drift={len(drift)} timing-warnings={len(warnings)} "
        f"new={len(additions)}",
    ] + drift + warnings + additions
    if not drift and not warnings:
        lines.append("clean: all result values match the baseline")
    if args.update_baseline:
        lines.append(f"baseline updated: {args.fresh} -> {args.baseline}")
    report = "\n".join(lines) + "\n"
    print(report, end="")
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)

    if args.update_baseline:
        shutil.copyfile(args.fresh, args.baseline)
        return 0
    return 1 if drift else 0


if __name__ == "__main__":
    sys.exit(main())
