#include "sim/experiment2.h"

#include <algorithm>
#include <memory>

#include "gen/preexisting.h"
#include "gen/workload.h"
#include "model/placement.h"
#include "solver/registry.h"
#include "support/parallel.h"
#include "support/thread_pool.h"

namespace treeplace {

namespace {

struct PerTreeTrace {
  std::vector<int> reused_dp;
  std::vector<int> reused_gr;
  std::vector<int> servers;
};

}  // namespace

Experiment2Result run_experiment2(const Experiment2Config& config) {
  TREEPLACE_CHECK(config.num_steps >= 1);
  const std::size_t threads =
      config.threads ? config.threads : ThreadPool::default_thread_count();
  ThreadPool pool(threads);

  const std::unique_ptr<Solver> optimizer =
      SolverRegistry::instance().create(config.optimizer_algo);
  const std::unique_ptr<Solver> baseline =
      SolverRegistry::instance().create(config.baseline_algo);
  for (const Solver* solver : {optimizer.get(), baseline.get()}) {
    // Both chains feed their placements back as the next pre-existing set,
    // so placement-less oracles cannot participate.
    TREEPLACE_CHECK_MSG(
        solver->info().provides_placement &&
            solver->info().accepts(
                static_cast<std::size_t>(config.tree.num_internal),
                /*num_modes=*/1),
        "solver '" << solver->name()
                   << "' cannot run experiment 2's instances");
  }

  const auto traces = parallel_map(
      pool, config.num_trees, [&](std::size_t t) -> PerTreeTrace {
        // One shared topology per tree; the workload redraws mutate a base
        // scenario in place and each chained solve forks it.
        Tree tree = generate_tree(config.tree, config.seed, t);
        const std::shared_ptr<const Topology>& topo = tree.topology_ptr();
        PerTreeTrace trace;
        Placement prev_dp;  // empty: no pre-existing servers initially
        Placement prev_gr;
        const auto chained_solve = [&](const Solver& solver,
                                       const Placement& prev) -> Solution {
          // The chain's previous servers become this step's pre-existing
          // set; the breakdown's reuse count is then the overlap with it.
          Scenario scen = tree.scenario();  // fork
          set_pre_existing_from_placement(scen, prev);
          const Solution solution = solver.solve(
              Instance::single_mode(topo, std::move(scen), config.capacity,
                                    config.create, config.delete_cost));
          TREEPLACE_CHECK(solution.feasible);
          return solution;
        };
        for (std::size_t step = 0; step < config.num_steps; ++step) {
          Xoshiro256 workload_rng =
              make_rng(derive_seed(config.seed, step), t,
                       RngStream::kWorkloadUpdate);
          redraw_requests(tree.scenario(), config.tree.min_requests,
                          config.tree.max_requests, workload_rng);

          const Solution dp = chained_solve(*optimizer, prev_dp);
          trace.reused_dp.push_back(dp.breakdown.reused);
          trace.servers.push_back(dp.breakdown.servers);

          const Solution gr = chained_solve(*baseline, prev_gr);
          trace.reused_gr.push_back(gr.breakdown.reused);

          prev_dp = dp.placement;
          prev_gr = gr.placement;
        }
        return trace;
      });

  Experiment2Result result;
  result.num_trees = config.num_trees;
  result.num_steps = config.num_steps;
  result.step_reused_dp.assign(config.num_steps, 0.0);
  result.step_reused_gr.assign(config.num_steps, 0.0);
  result.step_servers.assign(config.num_steps, 0.0);
  for (const PerTreeTrace& trace : traces) {
    for (std::size_t s = 0; s < config.num_steps; ++s) {
      result.step_reused_dp[s] += trace.reused_dp[s];
      result.step_reused_gr[s] += trace.reused_gr[s];
      result.step_servers[s] += trace.servers[s];
      result.diff_histogram.add(trace.reused_dp[s] - trace.reused_gr[s]);
    }
  }
  const auto n = static_cast<double>(std::max<std::size_t>(1, config.num_trees));
  double cum_dp = 0.0;
  double cum_gr = 0.0;
  for (std::size_t s = 0; s < config.num_steps; ++s) {
    result.step_reused_dp[s] /= n;
    result.step_reused_gr[s] /= n;
    result.step_servers[s] /= n;
    cum_dp += result.step_reused_dp[s];
    cum_gr += result.step_reused_gr[s];
    result.cumulative_reused_dp.push_back(cum_dp);
    result.cumulative_reused_gr.push_back(cum_gr);
  }
  return result;
}

}  // namespace treeplace
