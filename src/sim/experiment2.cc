#include "sim/experiment2.h"

#include <algorithm>
#include <future>
#include <utility>

#include "gen/preexisting.h"
#include "gen/workload.h"
#include "model/placement.h"
#include "serve/dispatcher.h"
#include "solver/session.h"
#include "support/thread_pool.h"

namespace treeplace {

namespace {

struct PerTreeTrace {
  std::vector<int> reused_dp;
  std::vector<int> reused_gr;
  std::vector<int> servers;
};

}  // namespace

Experiment2Result run_experiment2(const Experiment2Config& config) {
  TREEPLACE_CHECK(config.num_steps >= 1);

  // The chained solves run through the batch-serving dispatcher: solver 0
  // is the optimizer chain, solver 1 the baseline chain, and every step is
  // one wavefront of 2 x num_trees independent requests through the
  // bounded work queue.
  serve::DispatcherConfig dispatch;
  dispatch.algos = {config.optimizer_algo, config.baseline_algo};
  dispatch.threads =
      config.threads ? config.threads : ThreadPool::default_thread_count();
  serve::SolveDispatcher dispatcher(dispatch);
  for (std::size_t i = 0; i < dispatcher.num_solvers(); ++i) {
    // Both chains feed their placements back as the next pre-existing set,
    // so placement-less oracles cannot participate.
    const Solver& solver = dispatcher.solver(i);
    TREEPLACE_CHECK_MSG(
        solver.info().provides_placement &&
            solver.info().accepts(
                static_cast<std::size_t>(config.tree.num_internal),
                /*num_modes=*/1),
        "solver '" << solver.name()
                   << "' cannot run experiment 2's instances");
  }

  // One resident tree (= shared topology + workload scenario) per chain;
  // the per-step redraws mutate it in place and every solve forks it.
  // Each (tree, chain) pair keeps a persistent SolveSession, so chained
  // re-solves run warm when the solver is incremental-capable (update-dp);
  // non-incremental baselines fall back to cold solves through the same
  // path, and results are bit-identical either way.
  std::vector<Tree> trees;
  trees.reserve(config.num_trees);
  std::vector<std::shared_ptr<SolveSession>> dp_sessions;
  std::vector<std::shared_ptr<SolveSession>> gr_sessions;
  for (std::size_t t = 0; t < config.num_trees; ++t) {
    trees.push_back(generate_tree(config.tree, config.seed, t));
    dp_sessions.push_back(
        std::make_shared<SolveSession>(trees.back().topology_ptr()));
    gr_sessions.push_back(
        std::make_shared<SolveSession>(trees.back().topology_ptr()));
  }
  std::vector<Placement> prev_dp(config.num_trees);  // empty initially
  std::vector<Placement> prev_gr(config.num_trees);
  std::vector<PerTreeTrace> traces(config.num_trees);

  // The chain's previous servers become this step's pre-existing set; the
  // breakdown's reuse count is then the overlap with it.
  const auto chained_instance = [&](const Tree& tree,
                                    const Placement& prev) -> Instance {
    Scenario scen = tree.scenario();  // fork
    set_pre_existing_from_placement(scen, prev);
    return Instance::single_mode(tree.topology_ptr(), std::move(scen),
                                 config.capacity, config.create,
                                 config.delete_cost);
  };

  std::vector<std::future<serve::ServeResult>> dp_futures(config.num_trees);
  std::vector<std::future<serve::ServeResult>> gr_futures(config.num_trees);
  for (std::size_t step = 0; step < config.num_steps; ++step) {
    for (std::size_t t = 0; t < config.num_trees; ++t) {
      Xoshiro256 workload_rng = make_rng(derive_seed(config.seed, step), t,
                                         RngStream::kWorkloadUpdate);
      redraw_requests(trees[t].scenario(), config.tree.min_requests,
                      config.tree.max_requests, workload_rng);
      dp_futures[t] = dispatcher.submit(
          0, chained_instance(trees[t], prev_dp[t]), dp_sessions[t]);
      gr_futures[t] = dispatcher.submit(
          1, chained_instance(trees[t], prev_gr[t]), gr_sessions[t]);
    }
    for (std::size_t t = 0; t < config.num_trees; ++t) {
      serve::ServeResult dp = dp_futures[t].get();
      TREEPLACE_CHECK_MSG(dp.ok, dp.error);
      TREEPLACE_CHECK(dp.solution.feasible);
      traces[t].reused_dp.push_back(dp.solution.breakdown.reused);
      traces[t].servers.push_back(dp.solution.breakdown.servers);
      prev_dp[t] = std::move(dp.solution.placement);

      serve::ServeResult gr = gr_futures[t].get();
      TREEPLACE_CHECK_MSG(gr.ok, gr.error);
      TREEPLACE_CHECK(gr.solution.feasible);
      traces[t].reused_gr.push_back(gr.solution.breakdown.reused);
      prev_gr[t] = std::move(gr.solution.placement);
    }
  }

  Experiment2Result result;
  result.num_trees = config.num_trees;
  result.num_steps = config.num_steps;
  result.step_reused_dp.assign(config.num_steps, 0.0);
  result.step_reused_gr.assign(config.num_steps, 0.0);
  result.step_servers.assign(config.num_steps, 0.0);
  for (const PerTreeTrace& trace : traces) {
    for (std::size_t s = 0; s < config.num_steps; ++s) {
      result.step_reused_dp[s] += trace.reused_dp[s];
      result.step_reused_gr[s] += trace.reused_gr[s];
      result.step_servers[s] += trace.servers[s];
      result.diff_histogram.add(trace.reused_dp[s] - trace.reused_gr[s]);
    }
  }
  const auto n = static_cast<double>(std::max<std::size_t>(1, config.num_trees));
  double cum_dp = 0.0;
  double cum_gr = 0.0;
  for (std::size_t s = 0; s < config.num_steps; ++s) {
    result.step_reused_dp[s] /= n;
    result.step_reused_gr[s] /= n;
    result.step_servers[s] /= n;
    cum_dp += result.step_reused_dp[s];
    cum_gr += result.step_reused_gr[s];
    result.cumulative_reused_dp.push_back(cum_dp);
    result.cumulative_reused_gr.push_back(cum_gr);
  }
  return result;
}

}  // namespace treeplace
