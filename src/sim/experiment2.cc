#include "sim/experiment2.h"

#include <algorithm>

#include "core/dp_update.h"
#include "core/greedy.h"
#include "gen/preexisting.h"
#include "gen/workload.h"
#include "model/placement.h"
#include "support/parallel.h"
#include "support/thread_pool.h"

namespace treeplace {

namespace {

struct PerTreeTrace {
  std::vector<int> reused_dp;
  std::vector<int> reused_gr;
  std::vector<int> servers;
};

/// |a ∩ b| for sorted placement node lists.
int intersection_size(const std::vector<NodeId>& a,
                      const std::vector<NodeId>& b) {
  int count = 0;
  auto it_a = a.begin();
  auto it_b = b.begin();
  while (it_a != a.end() && it_b != b.end()) {
    if (*it_a < *it_b) {
      ++it_a;
    } else if (*it_b < *it_a) {
      ++it_b;
    } else {
      ++count;
      ++it_a;
      ++it_b;
    }
  }
  return count;
}

}  // namespace

Experiment2Result run_experiment2(const Experiment2Config& config) {
  TREEPLACE_CHECK(config.num_steps >= 1);
  const std::size_t threads =
      config.threads ? config.threads : ThreadPool::default_thread_count();
  ThreadPool pool(threads);

  const MinCostConfig dp_config{config.capacity, config.create,
                                config.delete_cost};

  const auto traces = parallel_map(
      pool, config.num_trees, [&](std::size_t t) -> PerTreeTrace {
        Tree tree = generate_tree(config.tree, config.seed, t);
        PerTreeTrace trace;
        Placement prev_dp;  // empty: no pre-existing servers initially
        Placement prev_gr;
        for (std::size_t step = 0; step < config.num_steps; ++step) {
          Xoshiro256 workload_rng =
              make_rng(derive_seed(config.seed, step), t,
                       RngStream::kWorkloadUpdate);
          redraw_requests(tree, config.tree.min_requests,
                          config.tree.max_requests, workload_rng);

          // DP chain: previous DP servers are this step's pre-existing set.
          set_pre_existing_from_placement(tree, prev_dp);
          const MinCostResult dp = solve_min_cost_with_pre(tree, dp_config);
          TREEPLACE_CHECK(dp.feasible);
          trace.reused_dp.push_back(dp.breakdown.reused);
          trace.servers.push_back(dp.breakdown.servers);

          // GR chain: oblivious to pre-existing servers; reuse is the
          // overlap with its own previous placement.
          const GreedyResult gr =
              solve_greedy_min_count(tree, config.capacity);
          TREEPLACE_CHECK(gr.feasible);
          trace.reused_gr.push_back(
              intersection_size(gr.placement.nodes(), prev_gr.nodes()));

          prev_dp = dp.placement;
          prev_gr = gr.placement;
        }
        return trace;
      });

  Experiment2Result result;
  result.num_trees = config.num_trees;
  result.num_steps = config.num_steps;
  result.step_reused_dp.assign(config.num_steps, 0.0);
  result.step_reused_gr.assign(config.num_steps, 0.0);
  result.step_servers.assign(config.num_steps, 0.0);
  for (const PerTreeTrace& trace : traces) {
    for (std::size_t s = 0; s < config.num_steps; ++s) {
      result.step_reused_dp[s] += trace.reused_dp[s];
      result.step_reused_gr[s] += trace.reused_gr[s];
      result.step_servers[s] += trace.servers[s];
      result.diff_histogram.add(trace.reused_dp[s] - trace.reused_gr[s]);
    }
  }
  const auto n = static_cast<double>(std::max<std::size_t>(1, config.num_trees));
  double cum_dp = 0.0;
  double cum_gr = 0.0;
  for (std::size_t s = 0; s < config.num_steps; ++s) {
    result.step_reused_dp[s] /= n;
    result.step_reused_gr[s] /= n;
    result.step_servers[s] /= n;
    cum_dp += result.step_reused_dp[s];
    cum_gr += result.step_reused_gr[s];
    result.cumulative_reused_dp.push_back(cum_dp);
    result.cumulative_reused_gr.push_back(cum_gr);
  }
  return result;
}

}  // namespace treeplace
