// Experiment 3 (paper Figures 8-11): bi-criteria power minimization.
//
// For each tree, the optimizer (default: the symmetric power DP) computes
// the whole cost-power Pareto frontier once and the baseline (default: the
// greedy capacity sweep) once; every cost bound of the sweep is then
// answered from those frontiers.  The paper's "power inverse" y-axis is
// normalized per tree by the best achievable power (the unbounded-cost
// optimizer minimum): score = P_opt / P_algo(bound), 0 when no solution
// fits the budget (see DESIGN.md).  The raw GR/DP power ratio — the paper's
// ">30% more power" claim — is reported alongside.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/tree_gen.h"
#include "tree/tree.h"

namespace treeplace {

struct Experiment3Config {
  std::size_t num_trees = 100;
  TreeGenConfig tree{};               ///< paper: N=50, fat, p=0.5, r in [1,5]
  std::size_t num_pre_existing = 5;   ///< 0 for the NoPre variant (Fig. 9)
  std::vector<RequestCount> mode_capacities{5, 10};  ///< W_1, W_2
  double static_power = 12.5;         ///< paper: W_1^3 / 10
  double alpha = 3.0;
  double cost_create = 0.1;
  double cost_delete = 0.01;
  double cost_changed = 0.001;        ///< paper Exp. 3: same for o==i and o!=i
  std::vector<double> cost_bounds;    ///< swept thresholds (x axis)
  std::uint64_t seed = 44;
  std::size_t threads = 0;
  bool use_exact_dp = false;          ///< ablation: general DP instead of the
                                      ///< symmetric-cost fast path
  /// Registry names; an empty optimizer_algo resolves to "power-exact" when
  /// use_exact_dp is set and "power-sym" otherwise.  The optimizer must
  /// produce the full Pareto frontier (a min-power solver).
  std::string optimizer_algo;
  std::string baseline_algo = "power-greedy";
};

struct Experiment3Row {
  double cost_bound = 0.0;
  double score_dp = 0.0;       ///< mean normalized inverse power, DP
  double score_gr = 0.0;       ///< mean normalized inverse power, GR
  double solved_dp = 0.0;      ///< fraction of trees DP solves within bound
  double solved_gr = 0.0;
  /// Mean of P_GR / P_DP over trees where both find a solution (>= 1).
  double power_ratio = 0.0;
  std::size_t both_solved = 0; ///< trees contributing to power_ratio
};

struct Experiment3Result {
  std::vector<Experiment3Row> rows;
  double mean_dp_seconds = 0.0;  ///< mean per-tree DP solve time
};

Experiment3Result run_experiment3(const Experiment3Config& config);

}  // namespace treeplace
