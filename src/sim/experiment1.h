// Experiment 1 (paper Figures 4 and 6): impact of pre-existing servers.
//
// Random trees are drawn once; for each swept value E of the pre-existing
// server count, E random internal nodes become pre-existing and both the
// optimizer (default: the Section 3 update DP) and the baseline (default:
// the greedy GR of [19]) are run.  Both defaults return minimum-replica-
// count solutions under the experiment's cost parameters, so the comparison
// is the number of pre-existing servers each reuses.  Either side can be
// swapped for any registered solver (solver/registry.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/tree_gen.h"
#include "tree/tree.h"

namespace treeplace {

struct Experiment1Config {
  std::size_t num_trees = 200;
  TreeGenConfig tree{};             ///< paper: N=100, fat, p=0.5, r in [1,6]
  RequestCount capacity = 10;       ///< W
  std::vector<std::size_t> pre_existing_counts;  ///< swept E values
  double create = 0.1;              ///< Eq. 2 parameters (see DESIGN.md)
  double delete_cost = 0.01;
  std::uint64_t seed = 42;
  std::size_t threads = 0;          ///< 0: ThreadPool::default_thread_count()
  std::string optimizer_algo = "update-dp";  ///< registry name, "dp" series
  std::string baseline_algo = "greedy";      ///< registry name, "gr" series
};

struct Experiment1Row {
  std::size_t num_pre_existing = 0;  ///< E
  double reused_dp = 0.0;            ///< mean reused servers, DP
  double reused_gr = 0.0;            ///< mean reused servers, GR
  double cost_dp = 0.0;
  double cost_gr = 0.0;
  double servers_dp = 0.0;           ///< mean replica count (equal for both)
  double servers_gr = 0.0;
  double max_reuse_advantage = 0.0;  ///< max over trees of (DP - GR) reuse
};

std::vector<Experiment1Row> run_experiment1(const Experiment1Config& config);

}  // namespace treeplace
