// Experiment 2 (paper Figures 5 and 7): consecutive update steps.
//
// Starting with no replicas, the client request volumes are re-drawn at
// every step and each algorithm recomputes a placement *chained on its own
// previous solution* (the previous servers become its pre-existing set).
// The default optimizer (the update DP) exploits reuse explicitly; the
// default baseline (GR) is oblivious and reuses only by accident.  Either
// chain can run any registered solver.  Reported: per-step and cumulative
// mean reuse for both chains, and the histogram of per-step differences
// (the paper's right panels).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/tree_gen.h"
#include "support/stats.h"
#include "tree/tree.h"

namespace treeplace {

struct Experiment2Config {
  std::size_t num_trees = 200;
  TreeGenConfig tree{};          ///< paper: N=100, fat, p=0.5, r in [1,6]
  RequestCount capacity = 10;
  std::size_t num_steps = 20;
  double create = 0.1;
  double delete_cost = 0.01;
  std::uint64_t seed = 43;
  std::size_t threads = 0;
  std::string optimizer_algo = "update-dp";  ///< registry name, "dp" chain
  std::string baseline_algo = "greedy";      ///< registry name, "gr" chain
};

struct Experiment2Result {
  /// Index s in [0, num_steps): means over trees at step s+1.
  std::vector<double> step_reused_dp;
  std::vector<double> step_reused_gr;
  std::vector<double> cumulative_reused_dp;  ///< running sums of the above
  std::vector<double> cumulative_reused_gr;
  std::vector<double> step_servers;          ///< mean replica count per step
  /// Occurrences of (reused_dp - reused_gr) over all (tree, step) pairs.
  IntHistogram diff_histogram;
  std::size_t num_trees = 0;
  std::size_t num_steps = 0;
};

Experiment2Result run_experiment2(const Experiment2Config& config);

}  // namespace treeplace
