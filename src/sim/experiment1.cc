#include "sim/experiment1.h"

#include <algorithm>

#include "core/dp_update.h"
#include "core/greedy.h"
#include "gen/preexisting.h"
#include "model/placement.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace treeplace {

namespace {

struct PerTreeRow {
  double reused_dp = 0.0;
  double reused_gr = 0.0;
  double cost_dp = 0.0;
  double cost_gr = 0.0;
  double servers_dp = 0.0;
  double servers_gr = 0.0;
};

}  // namespace

std::vector<Experiment1Row> run_experiment1(const Experiment1Config& config) {
  TREEPLACE_CHECK(!config.pre_existing_counts.empty());
  const std::size_t threads =
      config.threads ? config.threads : ThreadPool::default_thread_count();
  ThreadPool pool(threads);

  const CostModel costs = CostModel::simple(config.create, config.delete_cost);
  const MinCostConfig dp_config{config.capacity, config.create,
                                config.delete_cost};

  const auto per_tree = parallel_map(
      pool, config.num_trees, [&](std::size_t t) -> std::vector<PerTreeRow> {
        Tree tree = generate_tree(config.tree, config.seed, t);
        // GR ignores pre-existing servers, so one run covers every E.
        const GreedyResult gr = solve_greedy_min_count(tree, config.capacity);
        TREEPLACE_CHECK_MSG(gr.feasible, "experiment tree infeasible");

        std::vector<PerTreeRow> rows;
        rows.reserve(config.pre_existing_counts.size());
        for (std::size_t e_index = 0;
             e_index < config.pre_existing_counts.size(); ++e_index) {
          const std::size_t e = config.pre_existing_counts[e_index];
          Xoshiro256 pre_rng =
              make_rng(derive_seed(config.seed, e_index), t,
                       RngStream::kPreExisting);
          assign_random_pre_existing(tree, e, pre_rng, /*num_modes=*/1);

          const MinCostResult dp = solve_min_cost_with_pre(tree, dp_config);
          TREEPLACE_CHECK(dp.feasible);
          const CostBreakdown gr_cost = evaluate_cost(tree, gr.placement,
                                                      costs);
          rows.push_back(PerTreeRow{
              static_cast<double>(dp.breakdown.reused),
              static_cast<double>(gr_cost.reused),
              dp.breakdown.cost,
              gr_cost.cost,
              static_cast<double>(dp.breakdown.servers),
              static_cast<double>(gr_cost.servers),
          });
        }
        return rows;
      });

  std::vector<Experiment1Row> result;
  result.reserve(config.pre_existing_counts.size());
  for (std::size_t e_index = 0; e_index < config.pre_existing_counts.size();
       ++e_index) {
    RunningStats reused_dp, reused_gr, cost_dp, cost_gr, servers_dp,
        servers_gr, advantage;
    for (const auto& rows : per_tree) {
      const PerTreeRow& r = rows[e_index];
      reused_dp.add(r.reused_dp);
      reused_gr.add(r.reused_gr);
      cost_dp.add(r.cost_dp);
      cost_gr.add(r.cost_gr);
      servers_dp.add(r.servers_dp);
      servers_gr.add(r.servers_gr);
      advantage.add(r.reused_dp - r.reused_gr);
    }
    result.push_back(Experiment1Row{
        config.pre_existing_counts[e_index],
        reused_dp.mean(),
        reused_gr.mean(),
        cost_dp.mean(),
        cost_gr.mean(),
        servers_dp.mean(),
        servers_gr.mean(),
        advantage.max(),
    });
  }
  return result;
}

}  // namespace treeplace
