#include "sim/experiment1.h"

#include <algorithm>
#include <memory>

#include "gen/preexisting.h"
#include "model/placement.h"
#include "solver/registry.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace treeplace {

namespace {

struct PerTreeRow {
  double reused_dp = 0.0;
  double reused_gr = 0.0;
  double cost_dp = 0.0;
  double cost_gr = 0.0;
  double servers_dp = 0.0;
  double servers_gr = 0.0;
};

}  // namespace

std::vector<Experiment1Row> run_experiment1(const Experiment1Config& config) {
  TREEPLACE_CHECK(!config.pre_existing_counts.empty());
  const std::size_t threads =
      config.threads ? config.threads : ThreadPool::default_thread_count();
  ThreadPool pool(threads);

  // Solvers are stateless strategies; one instance each serves all threads.
  const std::unique_ptr<Solver> optimizer =
      SolverRegistry::instance().create(config.optimizer_algo);
  const std::unique_ptr<Solver> baseline =
      SolverRegistry::instance().create(config.baseline_algo);
  for (const Solver* solver : {optimizer.get(), baseline.get()}) {
    TREEPLACE_CHECK_MSG(
        solver->info().provides_placement &&
            solver->info().accepts(
                static_cast<std::size_t>(config.tree.num_internal),
                /*num_modes=*/1),
        "solver '" << solver->name()
                   << "' cannot run experiment 1's instances");
  }

  // A reuse-oblivious baseline (like GR) places identically for every E, so
  // one solve per tree covers the whole sweep and only the pricing changes.
  const bool baseline_oblivious = !baseline->info().supports_pre_existing;

  const auto per_tree = parallel_map(
      pool, config.num_trees, [&](std::size_t t) -> std::vector<PerTreeRow> {
        // One shared topology per tree; every solve below forks the base
        // scenario instead of copying the tree.
        const Tree tree = generate_tree(config.tree, config.seed, t);
        const std::shared_ptr<const Topology>& topo = tree.topology_ptr();

        Placement hoisted_baseline;
        if (baseline_oblivious) {
          const Solution base = baseline->solve(
              Instance::single_mode(topo, tree.scenario(), config.capacity,
                                    config.create, config.delete_cost));
          TREEPLACE_CHECK_MSG(base.feasible, "experiment tree infeasible");
          hoisted_baseline = base.placement;
        }

        std::vector<PerTreeRow> rows;
        rows.reserve(config.pre_existing_counts.size());
        for (std::size_t e_index = 0;
             e_index < config.pre_existing_counts.size(); ++e_index) {
          const std::size_t e = config.pre_existing_counts[e_index];
          Xoshiro256 pre_rng =
              make_rng(derive_seed(config.seed, e_index), t,
                       RngStream::kPreExisting);
          Scenario scen = tree.scenario();  // fork
          assign_random_pre_existing(scen, e, pre_rng, /*num_modes=*/1);

          const Instance instance =
              Instance::single_mode(topo, std::move(scen), config.capacity,
                                    config.create, config.delete_cost);
          const Solution opt = optimizer->solve(instance);
          TREEPLACE_CHECK_MSG(opt.feasible, "experiment tree infeasible");

          CostBreakdown base_breakdown;
          if (baseline_oblivious) {
            base_breakdown = evaluate_cost(instance.topo(), instance.scen(),
                                           hoisted_baseline, instance.costs);
          } else {
            const Solution base = baseline->solve(instance);
            TREEPLACE_CHECK_MSG(base.feasible, "experiment tree infeasible");
            base_breakdown = base.breakdown;
          }
          rows.push_back(PerTreeRow{
              static_cast<double>(opt.breakdown.reused),
              static_cast<double>(base_breakdown.reused),
              opt.breakdown.cost,
              base_breakdown.cost,
              static_cast<double>(opt.breakdown.servers),
              static_cast<double>(base_breakdown.servers),
          });
        }
        return rows;
      });

  std::vector<Experiment1Row> result;
  result.reserve(config.pre_existing_counts.size());
  for (std::size_t e_index = 0; e_index < config.pre_existing_counts.size();
       ++e_index) {
    RunningStats reused_dp, reused_gr, cost_dp, cost_gr, servers_dp,
        servers_gr, advantage;
    for (const auto& rows : per_tree) {
      const PerTreeRow& r = rows[e_index];
      reused_dp.add(r.reused_dp);
      reused_gr.add(r.reused_gr);
      cost_dp.add(r.cost_dp);
      cost_gr.add(r.cost_gr);
      servers_dp.add(r.servers_dp);
      servers_gr.add(r.servers_gr);
      advantage.add(r.reused_dp - r.reused_gr);
    }
    result.push_back(Experiment1Row{
        config.pre_existing_counts[e_index],
        reused_dp.mean(),
        reused_gr.mean(),
        cost_dp.mean(),
        cost_gr.mean(),
        servers_dp.mean(),
        servers_gr.mean(),
        advantage.max(),
    });
  }
  return result;
}

}  // namespace treeplace
