#include "sim/experiment3.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "gen/preexisting.h"
#include "solver/registry.h"
#include "support/parallel.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace treeplace {

namespace {

struct PerTree {
  // Per cost bound: the achieved power (infinity when unsolved).
  std::vector<double> power_dp;
  std::vector<double> power_gr;
  double p_opt = 0.0;  ///< unconstrained optimizer minimum power
  double dp_seconds = 0.0;
};

constexpr double kUnsolved = std::numeric_limits<double>::infinity();

}  // namespace

Experiment3Result run_experiment3(const Experiment3Config& config) {
  TREEPLACE_CHECK(!config.cost_bounds.empty());
  const std::size_t threads =
      config.threads ? config.threads : ThreadPool::default_thread_count();
  ThreadPool pool(threads);

  const ModeSet modes(config.mode_capacities, config.static_power,
                      config.alpha);
  const CostModel costs = CostModel::uniform(
      modes.count(), config.cost_create, config.cost_delete,
      config.cost_changed, config.cost_changed);

  const std::string optimizer_name =
      !config.optimizer_algo.empty()
          ? config.optimizer_algo
          : (config.use_exact_dp ? "power-exact" : "power-sym");
  const std::unique_ptr<Solver> optimizer =
      SolverRegistry::instance().create(optimizer_name);
  const std::unique_ptr<Solver> baseline =
      SolverRegistry::instance().create(config.baseline_algo);
  for (const Solver* solver : {optimizer.get(), baseline.get()}) {
    TREEPLACE_CHECK_MSG(
        solver->info().accepts(
            static_cast<std::size_t>(config.tree.num_internal),
            modes.count()),
        "solver '" << solver->name()
                   << "' does not accept the experiment's instances");
  }

  const auto per_tree = parallel_map(
      pool, config.num_trees, [&](std::size_t t) -> PerTree {
        // One shared topology; the instance takes the scenario zero-copy.
        Tree tree = generate_tree(config.tree, config.seed, t);
        Xoshiro256 pre_rng = make_rng(config.seed, t, RngStream::kPreExisting);
        assign_random_pre_existing(tree.scenario(), config.num_pre_existing,
                                   pre_rng, modes.count());

        const Instance instance{std::move(tree), modes, costs, std::nullopt};
        const Solution dp = optimizer->solve(instance);
        const PowerParetoPoint* unconstrained = dp.min_power();
        TREEPLACE_CHECK_MSG(dp.feasible,
                            "experiment tree infeasible for the power DP");
        TREEPLACE_CHECK_MSG(unconstrained != nullptr,
                            "optimizer '"
                                << optimizer->name()
                                << "' produced no cost-power frontier; "
                                   "experiment 3 needs bi-criteria solvers");
        const Solution gr = baseline->solve(instance);
        // The per-bound scoring below reads both frontiers; a frontier-less
        // baseline would silently score 0 on every bound.
        TREEPLACE_CHECK_MSG(!gr.feasible || !gr.frontier.empty(),
                            "baseline '"
                                << baseline->name()
                                << "' produced no cost-power frontier; "
                                   "experiment 3 needs bi-criteria solvers");

        PerTree r;
        r.p_opt = unconstrained->power;
        r.dp_seconds = dp.stats.seconds;
        r.power_dp.reserve(config.cost_bounds.size());
        r.power_gr.reserve(config.cost_bounds.size());
        for (double bound : config.cost_bounds) {
          const PowerParetoPoint* dp_point = dp.best_within_cost(bound);
          r.power_dp.push_back(dp_point ? dp_point->power : kUnsolved);
          const PowerParetoPoint* gr_point = gr.best_within_cost(bound);
          r.power_gr.push_back(gr_point ? gr_point->power : kUnsolved);
        }
        return r;
      });

  Experiment3Result result;
  RunningStats dp_seconds;
  for (const PerTree& r : per_tree) dp_seconds.add(r.dp_seconds);
  result.mean_dp_seconds = dp_seconds.mean();

  result.rows.reserve(config.cost_bounds.size());
  for (std::size_t b = 0; b < config.cost_bounds.size(); ++b) {
    RunningStats score_dp, score_gr, ratio;
    std::size_t solved_dp = 0;
    std::size_t solved_gr = 0;
    for (const PerTree& r : per_tree) {
      const double p_dp = r.power_dp[b];
      const double p_gr = r.power_gr[b];
      score_dp.add(std::isfinite(p_dp) ? r.p_opt / p_dp : 0.0);
      score_gr.add(std::isfinite(p_gr) ? r.p_opt / p_gr : 0.0);
      if (std::isfinite(p_dp)) ++solved_dp;
      if (std::isfinite(p_gr)) ++solved_gr;
      if (std::isfinite(p_dp) && std::isfinite(p_gr)) ratio.add(p_gr / p_dp);
    }
    const auto n =
        static_cast<double>(std::max<std::size_t>(1, config.num_trees));
    result.rows.push_back(Experiment3Row{
        config.cost_bounds[b],
        score_dp.mean(),
        score_gr.mean(),
        static_cast<double>(solved_dp) / n,
        static_cast<double>(solved_gr) / n,
        ratio.count() ? ratio.mean() : 0.0,
        static_cast<std::size_t>(ratio.count()),
    });
  }
  return result;
}

}  // namespace treeplace
