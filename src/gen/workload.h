// Workload dynamics for the 20-step update experiment (paper Experiment 2).
//
// The paper states only that "we update the number of requests per client"
// between steps; we re-draw each client's volume from the same uniform
// distribution as the initial one (documented substitution, DESIGN.md).
//
// The primary entry points take a Scenario so experiment loops can mutate a
// forked scenario over a shared topology; the Tree& overloads forward.
#pragma once

#include "support/prng.h"
#include "tree/scenario_delta.h"
#include "tree/tree.h"

namespace treeplace {

/// Re-draws every client's request count uniformly in [lo, hi].
void redraw_requests(Scenario& scen, RequestCount lo, RequestCount hi,
                     Xoshiro256& rng);
inline void redraw_requests(Tree& tree, RequestCount lo, RequestCount hi,
                            Xoshiro256& rng) {
  redraw_requests(tree.scenario(), lo, hi, rng);
}

/// Perturbs each client's request count by +/- `max_delta`, clamped to
/// [lo, hi] — a smoother dynamic used by the dynamic_day example to model
/// gradual daily drift rather than full re-draws.
void perturb_requests(Scenario& scen, RequestCount lo, RequestCount hi,
                      RequestCount max_delta, Xoshiro256& rng);
inline void perturb_requests(Tree& tree, RequestCount lo, RequestCount hi,
                             RequestCount max_delta, Xoshiro256& rng) {
  perturb_requests(tree.scenario(), lo, hi, max_delta, rng);
}

// ---------------------------------------------------------------------------
// Diurnal workload engine
//
// A streaming generator of time-varying scenario-delta records: per
// simulated tick it re-draws a random subset of clients with volumes
// scaled by a diurnal sine (requests peak mid-day, trough at night) plus
// occasional flash-crowd spikes (a multiplier ramp over a few ticks, in
// the spirit of the mobile content-replication workloads of
// arXiv:0909.2024).  Deltas are the serving tier's native vocabulary, so
// a DiurnalWorkload drives `treeplace serve` (via the `treeplace
// workload` record emitter) and the in-process day_serve bench directly.

struct DiurnalConfig {
  double day_seconds = 86400.0;   ///< one simulated day
  double tick_seconds = 300.0;    ///< delta batch cadence (288 ticks/day)
  /// Fraction of clients re-drawn per tick (bursts of R records — the
  /// rolling lazy-join footprint is sized by this).
  double touch_fraction = 0.02;
  /// Base per-client volume draw, scaled by the diurnal multiplier.
  RequestCount min_requests = 1;
  RequestCount max_requests = 5;
  /// Diurnal sine: multiplier in [1-amplitude, 1+amplitude], peaking at
  /// `peak_fraction` of the day.
  double amplitude = 0.6;
  double peak_fraction = 0.58;  ///< ~14:00 — afternoon peak
  /// Flash crowds: per tick, with `flash_probability`, a spike starts and
  /// multiplies the next `flash_ticks` ticks' volumes by up to
  /// `flash_magnitude` (triangular ramp up and down).
  double flash_probability = 0.01;
  double flash_magnitude = 4.0;
  int flash_ticks = 6;
};

class DiurnalWorkload {
 public:
  /// One tick's output: the simulated time, the effective volume
  /// multiplier (diurnal x flash) and the delta batch to apply/serve.
  struct Tick {
    double sim_seconds = 0.0;
    double multiplier = 1.0;
    bool flash = false;  ///< a flash crowd is active this tick
    std::vector<ScenarioDelta> deltas;
  };

  /// Streams over the clients of `topology`; deterministic in `rng`'s
  /// seed.  The generator is topology-only — it never touches a Scenario,
  /// so one workload can feed both the original and (via
  /// Aggregation::map_deltas) the aggregated serving path.
  DiurnalWorkload(std::shared_ptr<const Topology> topology,
                  DiurnalConfig config, Xoshiro256 rng);

  /// Number of ticks in one simulated day.
  std::size_t ticks_per_day() const { return ticks_per_day_; }

  /// Advances one tick and returns its delta batch.  Runs forever (day
  /// wraps around); callers stop after ticks_per_day() for one day.
  Tick next();

 private:
  double multiplier_at(double sim_seconds) const;

  std::shared_ptr<const Topology> topology_;
  DiurnalConfig config_;
  Xoshiro256 rng_;
  std::size_t ticks_per_day_ = 0;
  std::uint64_t tick_index_ = 0;
  int flash_remaining_ = 0;  ///< ticks left in the active flash crowd
};

}  // namespace treeplace
