// Workload dynamics for the 20-step update experiment (paper Experiment 2).
//
// The paper states only that "we update the number of requests per client"
// between steps; we re-draw each client's volume from the same uniform
// distribution as the initial one (documented substitution, DESIGN.md).
//
// The primary entry points take a Scenario so experiment loops can mutate a
// forked scenario over a shared topology; the Tree& overloads forward.
#pragma once

#include "support/prng.h"
#include "tree/tree.h"

namespace treeplace {

/// Re-draws every client's request count uniformly in [lo, hi].
void redraw_requests(Scenario& scen, RequestCount lo, RequestCount hi,
                     Xoshiro256& rng);
inline void redraw_requests(Tree& tree, RequestCount lo, RequestCount hi,
                            Xoshiro256& rng) {
  redraw_requests(tree.scenario(), lo, hi, rng);
}

/// Perturbs each client's request count by +/- `max_delta`, clamped to
/// [lo, hi] — a smoother dynamic used by the dynamic_day example to model
/// gradual daily drift rather than full re-draws.
void perturb_requests(Scenario& scen, RequestCount lo, RequestCount hi,
                      RequestCount max_delta, Xoshiro256& rng);
inline void perturb_requests(Tree& tree, RequestCount lo, RequestCount hi,
                             RequestCount max_delta, Xoshiro256& rng) {
  perturb_requests(tree.scenario(), lo, hi, max_delta, rng);
}

}  // namespace treeplace
