#include "gen/preexisting.h"

#include <algorithm>

namespace treeplace {

void assign_random_pre_existing(Tree& tree, std::size_t count, Xoshiro256& rng,
                                int num_modes) {
  TREEPLACE_CHECK(num_modes >= 1);
  tree.clear_all_pre_existing();
  std::vector<NodeId> candidates = tree.internal_ids();
  count = std::min(count, candidates.size());
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform(i, candidates.size() - 1));
    std::swap(candidates[i], candidates[j]);
    const int mode = num_modes == 1 ? 0 : rng.uniform_int(0, num_modes - 1);
    tree.set_pre_existing(candidates[i], mode);
  }
}

void set_pre_existing_from_placement(Tree& tree, const Placement& placement) {
  tree.clear_all_pre_existing();
  for (std::size_t i = 0; i < placement.nodes().size(); ++i) {
    tree.set_pre_existing(placement.nodes()[i], placement.modes()[i]);
  }
}

}  // namespace treeplace
