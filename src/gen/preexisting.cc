#include "gen/preexisting.h"

#include <algorithm>

namespace treeplace {

void assign_random_pre_existing(Scenario& scen, std::size_t count,
                                Xoshiro256& rng, int num_modes) {
  TREEPLACE_CHECK(num_modes >= 1);
  scen.clear_all_pre_existing();
  std::vector<NodeId> candidates = scen.topology().internal_ids();
  count = std::min(count, candidates.size());
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = static_cast<std::size_t>(
        rng.uniform(i, candidates.size() - 1));
    std::swap(candidates[i], candidates[j]);
    const int mode = num_modes == 1 ? 0 : rng.uniform_int(0, num_modes - 1);
    scen.set_pre_existing(candidates[i], mode);
  }
}

void set_pre_existing_from_placement(Scenario& scen,
                                     const Placement& placement) {
  scen.clear_all_pre_existing();
  for (std::size_t i = 0; i < placement.nodes().size(); ++i) {
    scen.set_pre_existing(placement.nodes()[i], placement.modes()[i]);
  }
}

}  // namespace treeplace
