#include "gen/workload.h"

#include <algorithm>

namespace treeplace {

void redraw_requests(Scenario& scen, RequestCount lo, RequestCount hi,
                     Xoshiro256& rng) {
  TREEPLACE_CHECK(lo <= hi);
  for (NodeId client : scen.topology().client_ids()) {
    scen.set_requests(client, static_cast<RequestCount>(rng.uniform(lo, hi)));
  }
}

void perturb_requests(Scenario& scen, RequestCount lo, RequestCount hi,
                      RequestCount max_delta, Xoshiro256& rng) {
  TREEPLACE_CHECK(lo <= hi);
  for (NodeId client : scen.topology().client_ids()) {
    const auto delta = static_cast<std::int64_t>(rng.uniform(0, 2 * max_delta)) -
                       static_cast<std::int64_t>(max_delta);
    const auto current = static_cast<std::int64_t>(scen.requests(client));
    const std::int64_t next =
        std::clamp(current + delta, static_cast<std::int64_t>(lo),
                   static_cast<std::int64_t>(hi));
    scen.set_requests(client, static_cast<RequestCount>(next));
  }
}

}  // namespace treeplace
