#include "gen/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace treeplace {

void redraw_requests(Scenario& scen, RequestCount lo, RequestCount hi,
                     Xoshiro256& rng) {
  TREEPLACE_CHECK(lo <= hi);
  for (NodeId client : scen.topology().client_ids()) {
    scen.set_requests(client, static_cast<RequestCount>(rng.uniform(lo, hi)));
  }
}

void perturb_requests(Scenario& scen, RequestCount lo, RequestCount hi,
                      RequestCount max_delta, Xoshiro256& rng) {
  TREEPLACE_CHECK(lo <= hi);
  for (NodeId client : scen.topology().client_ids()) {
    const auto delta = static_cast<std::int64_t>(rng.uniform(0, 2 * max_delta)) -
                       static_cast<std::int64_t>(max_delta);
    const auto current = static_cast<std::int64_t>(scen.requests(client));
    const std::int64_t next =
        std::clamp(current + delta, static_cast<std::int64_t>(lo),
                   static_cast<std::int64_t>(hi));
    scen.set_requests(client, static_cast<RequestCount>(next));
  }
}

DiurnalWorkload::DiurnalWorkload(std::shared_ptr<const Topology> topology,
                                 DiurnalConfig config, Xoshiro256 rng)
    : topology_(std::move(topology)), config_(config), rng_(rng) {
  TREEPLACE_CHECK(topology_ != nullptr && !topology_->empty());
  TREEPLACE_CHECK(config_.day_seconds > 0.0 && config_.tick_seconds > 0.0);
  TREEPLACE_CHECK(config_.touch_fraction > 0.0 &&
                  config_.touch_fraction <= 1.0);
  TREEPLACE_CHECK(config_.min_requests <= config_.max_requests);
  TREEPLACE_CHECK(config_.amplitude >= 0.0 && config_.amplitude < 1.0);
  TREEPLACE_CHECK(config_.flash_magnitude >= 1.0 && config_.flash_ticks >= 1);
  ticks_per_day_ = static_cast<std::size_t>(
      std::ceil(config_.day_seconds / config_.tick_seconds));
}

double DiurnalWorkload::multiplier_at(double sim_seconds) const {
  const double phase =
      sim_seconds / config_.day_seconds - config_.peak_fraction;
  constexpr double kTau = 6.283185307179586;
  return 1.0 + config_.amplitude * std::cos(kTau * phase);
}

DiurnalWorkload::Tick DiurnalWorkload::next() {
  Tick tick;
  tick.sim_seconds = std::fmod(
      static_cast<double>(tick_index_) * config_.tick_seconds,
      config_.day_seconds);
  ++tick_index_;

  double flash_boost = 1.0;
  if (flash_remaining_ > 0) {
    // Triangular ramp: climbs to flash_magnitude mid-spike, decays back.
    const double progress =
        1.0 - static_cast<double>(flash_remaining_) / config_.flash_ticks;
    const double shape = 1.0 - std::abs(2.0 * progress - 1.0);
    flash_boost = 1.0 + (config_.flash_magnitude - 1.0) * shape;
    tick.flash = true;
    --flash_remaining_;
  } else if (rng_.bernoulli(config_.flash_probability)) {
    flash_remaining_ = config_.flash_ticks;
  }
  tick.multiplier = multiplier_at(tick.sim_seconds) * flash_boost;

  const auto& clients = topology_->client_ids();
  const auto touched = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(clients.size()) *
                                  config_.touch_fraction));
  tick.deltas.reserve(touched);
  for (std::size_t k = 0; k < touched; ++k) {
    const NodeId client = clients[rng_.uniform(0, clients.size() - 1)];
    const auto base =
        rng_.uniform(config_.min_requests, config_.max_requests);
    const auto scaled = static_cast<RequestCount>(std::llround(
        std::max(1.0, static_cast<double>(base) * tick.multiplier)));
    tick.deltas.push_back(ScenarioDelta::set_requests(client, scaled));
  }
  return tick;
}

}  // namespace treeplace
