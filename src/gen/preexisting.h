// Seeding the pre-existing server set E for experiments.
//
// The primary entry points take a Scenario so experiment loops can fork one
// scenario per solve over a shared topology; the Tree& overloads forward.
#pragma once

#include "model/placement.h"
#include "support/prng.h"
#include "tree/tree.h"

namespace treeplace {

/// Clears E and marks `count` distinct random internal nodes as pre-existing
/// servers.  Original modes are drawn uniformly from [0, num_modes) — the
/// paper does not specify them (see DESIGN.md).  `count` is clamped to the
/// number of internal nodes.
void assign_random_pre_existing(Scenario& scen, std::size_t count,
                                Xoshiro256& rng, int num_modes = 1);
inline void assign_random_pre_existing(Tree& tree, std::size_t count,
                                       Xoshiro256& rng, int num_modes = 1) {
  assign_random_pre_existing(tree.scenario(), count, rng, num_modes);
}

/// Clears E and installs `placement`'s servers as the pre-existing set with
/// their configured modes — the chaining step of the dynamic experiment
/// (each update starts from the servers placed at the previous step).
void set_pre_existing_from_placement(Scenario& scen,
                                     const Placement& placement);
inline void set_pre_existing_from_placement(Tree& tree,
                                            const Placement& placement) {
  set_pre_existing_from_placement(tree.scenario(), placement);
}

}  // namespace treeplace
