// Random distribution trees following the paper's Section 5 setup.
//
// Two shapes are used in the experiments:
//   * "fat"  trees: each internal node has between 6 and 9 internal
//     children (Experiments 1-3 main runs),
//   * "high" trees: between 2 and 4 internal children (the "high trees"
//     variants, Figures 6, 7, 10).
// Clients are distributed randomly: each internal node carries a client
// with probability `client_probability`, issuing U[min_requests,
// max_requests] requests.
#pragma once

#include "support/prng.h"
#include "tree/tree.h"

namespace treeplace {

struct TreeShape {
  int min_children = 2;
  int max_children = 4;
};

/// Paper shape presets.
inline constexpr TreeShape kFatShape{6, 9};
inline constexpr TreeShape kHighShape{2, 4};

struct TreeGenConfig {
  int num_internal = 100;             ///< |N|, internal nodes
  TreeShape shape = kFatShape;
  double client_probability = 0.5;    ///< per internal node
  RequestCount min_requests = 1;
  RequestCount max_requests = 6;
};

/// Generates one random tree.  Shape, client attachment and request volumes
/// draw from independent streams so that, e.g., changing the request range
/// does not reshuffle topologies.
Tree generate_tree(const TreeGenConfig& config, Xoshiro256& shape_rng,
                   Xoshiro256& client_rng, Xoshiro256& request_rng);

/// Convenience overload deriving the three streams from (seed, tree_index).
Tree generate_tree(const TreeGenConfig& config, std::uint64_t seed,
                   std::uint64_t tree_index);

/// The million-user serving shape: a skew-fanout internal skeleton (a few
/// hub nodes with large fan-out over a mostly narrow tree — the CDN-style
/// topology the aggregation pass targets) carrying a large population of
/// single-user client leaves whose attachment points follow a Zipf law.
/// Aggregation (tree/aggregate.h) collapses those populations to one
/// client per attachment point, so the DP cost depends on `num_internal`
/// while `num_users` scales freely.
struct SkewTreeConfig {
  int num_internal = 1000;
  TreeShape shape = kHighShape;  ///< fan-out of the non-hub majority
  double hub_probability = 0.05; ///< chance an internal node is a hub
  int hub_fanout = 32;           ///< hubs draw U[shape.max_children, this]
  /// Client population: `num_users` leaves, each issuing
  /// U[min_requests, max_requests], attached to internal nodes ranked by
  /// a Zipf(attach_skew) draw over a shuffled node order — a few hot
  /// attachment points own most of the users.
  std::uint64_t num_users = 100000;
  double attach_skew = 0.8;
  RequestCount min_requests = 1;
  RequestCount max_requests = 5;
};

/// Generates one skew tree; deterministic in (seed, tree_index) with the
/// same independent-stream discipline as generate_tree.
Tree generate_skew_tree(const SkewTreeConfig& config, std::uint64_t seed,
                        std::uint64_t tree_index);

}  // namespace treeplace
