#include "gen/tree_gen.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace treeplace {

Tree generate_tree(const TreeGenConfig& config, Xoshiro256& shape_rng,
                   Xoshiro256& client_rng, Xoshiro256& request_rng) {
  TREEPLACE_CHECK(config.num_internal >= 1);
  TREEPLACE_CHECK(config.shape.min_children >= 1);
  TREEPLACE_CHECK(config.shape.min_children <= config.shape.max_children);
  TREEPLACE_CHECK(config.client_probability >= 0.0 &&
                  config.client_probability <= 1.0);
  TREEPLACE_CHECK(config.min_requests <= config.max_requests);

  TreeBuilder builder;
  const NodeId root = builder.add_root();
  int remaining = config.num_internal - 1;

  // Breadth-first expansion: pop a node, give it U[min,max] internal
  // children (clamped by the remaining budget), enqueue them.  This yields
  // the paper's fan-out everywhere except at the frontier where the node
  // budget runs out.
  std::deque<NodeId> frontier{root};
  std::vector<NodeId> internal_nodes{root};
  while (remaining > 0) {
    TREEPLACE_DCHECK(!frontier.empty());
    const NodeId node = frontier.front();
    frontier.pop_front();
    const int want = shape_rng.uniform_int(config.shape.min_children,
                                           config.shape.max_children);
    const int k = std::min(want, remaining);
    for (int i = 0; i < k; ++i) {
      const NodeId child = builder.add_internal(node);
      frontier.push_back(child);
      internal_nodes.push_back(child);
    }
    remaining -= k;
  }

  // Client attachment: each internal node carries one client w.p. p.
  for (NodeId node : internal_nodes) {
    if (client_rng.bernoulli(config.client_probability)) {
      const auto r = static_cast<RequestCount>(request_rng.uniform(
          config.min_requests, config.max_requests));
      builder.add_client(node, r);
    }
  }
  return std::move(builder).build();
}

Tree generate_tree(const TreeGenConfig& config, std::uint64_t seed,
                   std::uint64_t tree_index) {
  Xoshiro256 shape_rng = make_rng(seed, tree_index, RngStream::kTreeShape);
  Xoshiro256 client_rng = make_rng(seed, tree_index, RngStream::kClients);
  Xoshiro256 request_rng = make_rng(seed, tree_index, RngStream::kRequests);
  return generate_tree(config, shape_rng, client_rng, request_rng);
}

Tree generate_skew_tree(const SkewTreeConfig& config, std::uint64_t seed,
                        std::uint64_t tree_index) {
  TREEPLACE_CHECK(config.num_internal >= 1);
  TREEPLACE_CHECK(config.shape.min_children >= 1);
  TREEPLACE_CHECK(config.shape.min_children <= config.shape.max_children);
  TREEPLACE_CHECK(config.hub_fanout >= config.shape.max_children);
  TREEPLACE_CHECK(config.hub_probability >= 0.0 &&
                  config.hub_probability <= 1.0);
  TREEPLACE_CHECK(config.attach_skew >= 0.0);
  TREEPLACE_CHECK(config.min_requests <= config.max_requests);
  Xoshiro256 shape_rng = make_rng(seed, tree_index, RngStream::kTreeShape);
  Xoshiro256 client_rng = make_rng(seed, tree_index, RngStream::kClients);
  Xoshiro256 request_rng = make_rng(seed, tree_index, RngStream::kRequests);

  // Skeleton: BFS expansion as generate_tree, but a hub draw widens the
  // fan-out — the heavy-tailed degree mix of content-distribution trees.
  TreeBuilder builder;
  const NodeId root = builder.add_root();
  int remaining = config.num_internal - 1;
  std::deque<NodeId> frontier{root};
  std::vector<NodeId> internal_nodes{root};
  while (remaining > 0) {
    TREEPLACE_DCHECK(!frontier.empty());
    const NodeId node = frontier.front();
    frontier.pop_front();
    const bool hub = shape_rng.bernoulli(config.hub_probability);
    const int want =
        hub ? shape_rng.uniform_int(config.shape.max_children,
                                    config.hub_fanout)
            : shape_rng.uniform_int(config.shape.min_children,
                                    config.shape.max_children);
    const int k = std::min(want, remaining);
    for (int i = 0; i < k; ++i) {
      const NodeId child = builder.add_internal(node);
      frontier.push_back(child);
      internal_nodes.push_back(child);
    }
    remaining -= k;
  }

  // Zipf attachment: shuffle the internal nodes (so the hot attachment
  // points are not biased toward the root), weight rank r by 1/(r+1)^s,
  // then place each user by binary search over the cumulative weights.
  std::vector<NodeId> ranked = internal_nodes;
  for (std::size_t i = ranked.size(); i > 1; --i) {
    const std::size_t j = client_rng.uniform(0, i - 1);
    std::swap(ranked[i - 1], ranked[j]);
  }
  std::vector<double> cumulative(ranked.size());
  double total = 0.0;
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), config.attach_skew);
    cumulative[r] = total;
  }
  for (std::uint64_t u = 0; u < config.num_users; ++u) {
    const double draw = client_rng.uniform_double() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), draw);
    const std::size_t rank = std::min(
        static_cast<std::size_t>(it - cumulative.begin()), ranked.size() - 1);
    const auto r = static_cast<RequestCount>(
        request_rng.uniform(config.min_requests, config.max_requests));
    builder.add_client(ranked[rank], r);
  }
  return std::move(builder).build();
}

}  // namespace treeplace
