// Reconfiguration cost models: paper Eq. 2 (single mode) and Eq. 4 (modes).
//
// A solution is priced per server: every operated server costs 1; a *new*
// server additionally costs create_i (its mode); a *reused* pre-existing
// server additionally costs changed_{o,i} (original mode o -> new mode i);
// every pre-existing server that is not reused costs delete_o.
#pragma once

#include <vector>

#include "support/check.h"

namespace treeplace {

class CostModel {
 public:
  /// Fully general Eq. 4 parameters.  `create` and `del` are indexed by
  /// mode; `changed[o][i]` prices switching a pre-existing server from mode
  /// o to mode i (changed[o][o] is typically 0).
  CostModel(std::vector<double> create, std::vector<double> del,
            std::vector<std::vector<double>> changed);

  /// Mode-independent parameters (the form used in all paper experiments):
  /// create_i = create, delete_i = del, changed_{o,i} = (o == i ?
  /// changed_same : changed_diff).
  static CostModel uniform(int num_modes, double create, double del,
                           double changed_diff, double changed_same = 0.0);

  /// Single-mode Eq. 2 model.
  static CostModel simple(double create, double del);

  int num_modes() const { return static_cast<int>(create_.size()); }

  double create(int mode) const {
    TREEPLACE_DCHECK(mode >= 0 && mode < num_modes());
    return create_[static_cast<std::size_t>(mode)];
  }
  double del(int mode) const {
    TREEPLACE_DCHECK(mode >= 0 && mode < num_modes());
    return delete_[static_cast<std::size_t>(mode)];
  }
  double changed(int from_mode, int to_mode) const {
    TREEPLACE_DCHECK(from_mode >= 0 && from_mode < num_modes());
    TREEPLACE_DCHECK(to_mode >= 0 && to_mode < num_modes());
    return changed_[static_cast<std::size_t>(from_mode)]
                   [static_cast<std::size_t>(to_mode)];
  }

  /// Cost of one new server at `mode`, including the operating cost of 1.
  double new_server_cost(int mode) const { return 1.0 + create(mode); }
  /// Cost of one reused server moved from `from_mode` to `to_mode`,
  /// including the operating cost of 1.
  double reused_server_cost(int from_mode, int to_mode) const {
    return 1.0 + changed(from_mode, to_mode);
  }
  /// Cost of deleting one pre-existing server at `mode`.
  double delete_server_cost(int mode) const { return del(mode); }

  /// True iff the model has the symmetric structure required by the
  /// reduced-state power DP: create and delete independent of the mode, and
  /// changed_{o,i} a function of (o == i) only.
  bool is_symmetric() const;

  /// For symmetric models only: the collapsed parameters.
  double symmetric_create() const;
  double symmetric_delete() const;
  double symmetric_changed_same() const;
  double symmetric_changed_diff() const;

 private:
  std::vector<double> create_;
  std::vector<double> delete_;
  std::vector<std::vector<double>> changed_;
};

/// Cost accounting of a concrete solution, as reported by solvers and by the
/// independent evaluator in model/placement.h.
struct CostBreakdown {
  int servers = 0;        ///< R: total number of operated servers
  int reused = 0;         ///< e: pre-existing servers kept
  int created = 0;        ///< R - e: new servers
  int deleted = 0;        ///< E - e: pre-existing servers removed
  int mode_changes = 0;   ///< reused servers whose mode changed
  double cost = 0.0;      ///< Eq. 2 / Eq. 4 value
};

}  // namespace treeplace
