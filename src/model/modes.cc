#include "model/modes.h"

namespace treeplace {

ModeSet::ModeSet(std::vector<RequestCount> capacities, double static_power,
                 double alpha)
    : capacities_(std::move(capacities)),
      static_power_(static_power),
      alpha_(alpha) {
  TREEPLACE_CHECK_MSG(!capacities_.empty(), "ModeSet needs at least one mode");
  TREEPLACE_CHECK_MSG(static_power_ >= 0.0, "negative static power");
  TREEPLACE_CHECK_MSG(alpha_ >= 1.0, "alpha must be >= 1");
  for (std::size_t i = 1; i < capacities_.size(); ++i) {
    TREEPLACE_CHECK_MSG(capacities_[i - 1] < capacities_[i],
                        "mode capacities must be strictly increasing");
  }
  power_.reserve(capacities_.size());
  for (RequestCount w : capacities_) {
    power_.push_back(static_power_ +
                     std::pow(static_cast<double>(w), alpha_));
  }
}

ModeSet ModeSet::single(RequestCount capacity) {
  return ModeSet({capacity}, /*static_power=*/0.0, /*alpha=*/2.0);
}

}  // namespace treeplace
