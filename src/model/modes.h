// Server operating modes and the power model of paper Section 2.2.
//
// Servers run at one of M modes with capacities W_1 < ... < W_M = W.  A
// server configured at mode i can process up to W_i requests and dissipates
//   P(i) = P_static + W_i^alpha        (paper Eq. 3, alpha in [2, 3]).
//
// The paper states that the mode is the smallest one covering the load; the
// bi-criteria DP nevertheless "sets it to all possible modes" because a
// changed_{o,i} cost can make keeping a higher original mode cheaper.  We
// therefore model the mode as a configured value with the feasibility
// constraint load <= W_mode (see DESIGN.md, "Mode semantics").
#pragma once

#include <cmath>
#include <vector>

#include "support/check.h"
#include "tree/tree.h"

namespace treeplace {

class ModeSet {
 public:
  /// `capacities` must be strictly increasing; `alpha` in [2, 3] per the
  /// paper's power models (we accept any alpha >= 1 for experimentation).
  ModeSet(std::vector<RequestCount> capacities, double static_power,
          double alpha);

  /// Single-mode set: the classic cost-only problems (M = 1, capacity W).
  static ModeSet single(RequestCount capacity);

  /// Number of modes M.
  int count() const { return static_cast<int>(capacities_.size()); }

  /// Capacity W_{mode+1} of 0-based `mode`.
  RequestCount capacity(int mode) const {
    TREEPLACE_DCHECK(mode >= 0 && mode < count());
    return capacities_[static_cast<std::size_t>(mode)];
  }

  /// Maximum capacity W = W_M.
  RequestCount max_capacity() const { return capacities_.back(); }

  double static_power() const { return static_power_; }
  double alpha() const { return alpha_; }

  /// Power dissipated by one server configured at `mode` (Eq. 3 summand).
  double power(int mode) const {
    TREEPLACE_DCHECK(mode >= 0 && mode < count());
    return power_[static_cast<std::size_t>(mode)];
  }

  /// Smallest mode whose capacity covers `load`; -1 if load > W_M.
  int mode_for_load(RequestCount load) const {
    for (int m = 0; m < count(); ++m) {
      if (load <= capacity(m)) return m;
    }
    return -1;
  }

  bool operator==(const ModeSet& other) const = default;

 private:
  std::vector<RequestCount> capacities_;
  double static_power_ = 0.0;
  double alpha_ = 2.0;
  std::vector<double> power_;
};

}  // namespace treeplace
