// Replica placements, closest-policy flows, and the independent evaluator.
//
// A Placement is a set of servers (internal nodes) with a configured mode
// each.  The *closest* service policy (paper Section 2.1) is implicit: a
// client's requests are processed by the first ancestor holding a replica,
// and a server processes every request that reaches it.  compute_flows()
// realizes that policy; validate() / total_power() / evaluate_cost()
// re-derive every reported quantity from first principles so tests can check
// solver outputs against an implementation they do not share code with.
//
// Every evaluator takes the topology/scenario split explicitly — structure
// from the shared immutable Topology, per-scenario state (requests, the
// pre-existing set E, original modes) from the Scenario overlay — so solves
// over forked scenarios of one shared topology never touch a Tree.  The
// Tree& overloads forward for callers still holding the bundled view.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/cost.h"
#include "model/modes.h"
#include "tree/tree.h"

namespace treeplace {

class Placement {
 public:
  Placement() = default;

  /// Adds a server at internal node `node` configured at `mode` (0-based).
  void add(NodeId node, int mode = 0);

  /// Removes the server at `node`; no-op if absent.
  void remove(NodeId node);

  bool contains(NodeId node) const;

  /// Configured mode of the server at `node`; requires contains(node).
  int mode(NodeId node) const;
  void set_mode(NodeId node, int mode);

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Server nodes in ascending id order.
  const std::vector<NodeId>& nodes() const { return nodes_; }
  /// Modes parallel to nodes().
  const std::vector<int>& modes() const { return modes_; }

  bool operator==(const Placement& other) const = default;

 private:
  std::size_t find(NodeId node) const;  // index or size() if absent

  std::vector<NodeId> nodes_;  // sorted
  std::vector<int> modes_;
};

/// Result of routing all client requests through a placement under the
/// closest policy.
struct FlowResult {
  /// Per internal node (indexed by Topology::internal_index): requests
  /// processed there if it is a server, else requests passing through it
  /// upward.
  std::vector<RequestCount> through;
  /// Requests that escape past the root unserved (0 in any valid solution).
  RequestCount unserved = 0;

  /// Load of server at `node` == through at that node.
  RequestCount load(const Topology& topo, NodeId node) const {
    return through[topo.internal_index(node)];
  }
  RequestCount load(const Tree& tree, NodeId node) const {
    return load(tree.topology(), node);
  }
};

/// Routes requests bottom-up; servers absorb everything reaching them.
FlowResult compute_flows(const Topology& topo, const Scenario& scen,
                         const Placement& placement);
inline FlowResult compute_flows(const Tree& tree, const Placement& placement) {
  return compute_flows(tree.topology(), tree.scenario(), placement);
}

struct ValidationResult {
  bool valid = true;
  std::string reason;  // first violation, empty when valid
};

/// Full validity check: every client served (no unserved residue at the
/// root), every server's load within its configured mode capacity, modes in
/// range, servers on internal nodes.
ValidationResult validate(const Topology& topo, const Scenario& scen,
                          const Placement& placement, const ModeSet& modes);
inline ValidationResult validate(const Tree& tree, const Placement& placement,
                                 const ModeSet& modes) {
  return validate(tree.topology(), tree.scenario(), placement, modes);
}

/// Total power consumption (paper Eq. 3) of the placement.
double total_power(const Placement& placement, const ModeSet& modes);

/// Cost of `placement` as a reconfiguration of the scenario's pre-existing
/// server set E (paper Eq. 2 / Eq. 4).  The scenario's original_mode() of
/// each pre-existing server prices mode changes.
CostBreakdown evaluate_cost(const Topology& topo, const Scenario& scen,
                            const Placement& placement,
                            const CostModel& costs);
inline CostBreakdown evaluate_cost(const Tree& tree,
                                   const Placement& placement,
                                   const CostModel& costs) {
  return evaluate_cost(tree.topology(), tree.scenario(), placement, costs);
}

/// Lowers every server's configured mode to the smallest one covering its
/// load (the paper's load-determined mode reading).  Requires a valid
/// placement.
void minimize_modes(const Topology& topo, const Scenario& scen,
                    Placement& placement, const ModeSet& modes);
inline void minimize_modes(const Tree& tree, Placement& placement,
                           const ModeSet& modes) {
  minimize_modes(tree.topology(), tree.scenario(), placement, modes);
}

/// For each client, the id of the serving node (first ancestor in the
/// placement), or kNoNode if unserved.  Exercises the closest policy
/// client-by-client; used by tests as an independent cross-check of
/// compute_flows().
std::vector<NodeId> assign_clients(const Topology& topo,
                                   const Placement& placement);
inline std::vector<NodeId> assign_clients(const Tree& tree,
                                          const Placement& placement) {
  return assign_clients(tree.topology(), placement);
}

}  // namespace treeplace
