#include "model/cost.h"

#include <cmath>

namespace treeplace {

namespace {
constexpr double kEps = 1e-12;
bool close(double a, double b) { return std::fabs(a - b) <= kEps; }
}  // namespace

CostModel::CostModel(std::vector<double> create, std::vector<double> del,
                     std::vector<std::vector<double>> changed)
    : create_(std::move(create)),
      delete_(std::move(del)),
      changed_(std::move(changed)) {
  TREEPLACE_CHECK_MSG(!create_.empty(), "CostModel needs at least one mode");
  TREEPLACE_CHECK(delete_.size() == create_.size());
  TREEPLACE_CHECK(changed_.size() == create_.size());
  for (const auto& row : changed_) {
    TREEPLACE_CHECK(row.size() == create_.size());
  }
  for (double c : create_) TREEPLACE_CHECK_MSG(c >= 0, "negative create cost");
  for (double d : delete_) TREEPLACE_CHECK_MSG(d >= 0, "negative delete cost");
  for (const auto& row : changed_) {
    for (double x : row) TREEPLACE_CHECK_MSG(x >= 0, "negative changed cost");
  }
}

CostModel CostModel::uniform(int num_modes, double create, double del,
                             double changed_diff, double changed_same) {
  TREEPLACE_CHECK(num_modes >= 1);
  const auto m = static_cast<std::size_t>(num_modes);
  std::vector<std::vector<double>> changed(m, std::vector<double>(m));
  for (std::size_t o = 0; o < m; ++o) {
    for (std::size_t i = 0; i < m; ++i) {
      changed[o][i] = (o == i) ? changed_same : changed_diff;
    }
  }
  return CostModel(std::vector<double>(m, create), std::vector<double>(m, del),
                   std::move(changed));
}

CostModel CostModel::simple(double create, double del) {
  return uniform(1, create, del, /*changed_diff=*/0.0);
}

bool CostModel::is_symmetric() const {
  for (double c : create_) {
    if (!close(c, create_[0])) return false;
  }
  for (double d : delete_) {
    if (!close(d, delete_[0])) return false;
  }
  const double same = changed_[0][0];
  const double diff =
      num_modes() > 1 ? changed_[0][1] : changed_[0][0];
  for (std::size_t o = 0; o < changed_.size(); ++o) {
    for (std::size_t i = 0; i < changed_.size(); ++i) {
      const double expected = (o == i) ? same : diff;
      if (!close(changed_[o][i], expected)) return false;
    }
  }
  return true;
}

double CostModel::symmetric_create() const {
  TREEPLACE_CHECK(is_symmetric());
  return create_[0];
}

double CostModel::symmetric_delete() const {
  TREEPLACE_CHECK(is_symmetric());
  return delete_[0];
}

double CostModel::symmetric_changed_same() const {
  TREEPLACE_CHECK(is_symmetric());
  return changed_[0][0];
}

double CostModel::symmetric_changed_diff() const {
  TREEPLACE_CHECK(is_symmetric());
  return num_modes() > 1 ? changed_[0][1] : changed_[0][0];
}

}  // namespace treeplace
