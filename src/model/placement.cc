#include "model/placement.h"

#include <algorithm>
#include <sstream>

namespace treeplace {

void Placement::add(NodeId node, int mode) {
  TREEPLACE_CHECK(node >= 0);
  TREEPLACE_CHECK(mode >= 0);
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  const auto idx = static_cast<std::size_t>(it - nodes_.begin());
  TREEPLACE_CHECK_MSG(it == nodes_.end() || *it != node,
                      "duplicate server at node " << node);
  nodes_.insert(it, node);
  modes_.insert(modes_.begin() + static_cast<std::ptrdiff_t>(idx), mode);
}

void Placement::remove(NodeId node) {
  const std::size_t idx = find(node);
  if (idx == nodes_.size()) return;
  nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(idx));
  modes_.erase(modes_.begin() + static_cast<std::ptrdiff_t>(idx));
}

bool Placement::contains(NodeId node) const { return find(node) < nodes_.size(); }

int Placement::mode(NodeId node) const {
  const std::size_t idx = find(node);
  TREEPLACE_CHECK_MSG(idx < nodes_.size(), "no server at node " << node);
  return modes_[idx];
}

void Placement::set_mode(NodeId node, int mode) {
  const std::size_t idx = find(node);
  TREEPLACE_CHECK_MSG(idx < nodes_.size(), "no server at node " << node);
  TREEPLACE_CHECK(mode >= 0);
  modes_[idx] = mode;
}

std::size_t Placement::find(NodeId node) const {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return nodes_.size();
  return static_cast<std::size_t>(it - nodes_.begin());
}

FlowResult compute_flows(const Topology& topo, const Scenario& scen,
                         const Placement& placement) {
  FlowResult result;
  result.through.assign(topo.num_internal(), 0);
  for (NodeId j : topo.internal_post_order()) {
    RequestCount inflow = scen.client_mass(j);
    for (NodeId c : topo.internal_children(j)) {
      if (!placement.contains(c)) {
        inflow += result.through[topo.internal_index(c)];
      }
    }
    result.through[topo.internal_index(j)] = inflow;
  }
  const NodeId root = topo.root();
  result.unserved = placement.contains(root)
                        ? 0
                        : result.through[topo.internal_index(root)];
  return result;
}

ValidationResult validate(const Topology& topo, const Scenario& scen,
                          const Placement& placement, const ModeSet& modes) {
  auto fail = [](const std::string& reason) {
    return ValidationResult{false, reason};
  };
  for (std::size_t i = 0; i < placement.nodes().size(); ++i) {
    const NodeId node = placement.nodes()[i];
    const int mode = placement.modes()[i];
    if (!topo.valid_id(node) || !topo.is_internal(node)) {
      std::ostringstream os;
      os << "server on non-internal node " << node;
      return fail(os.str());
    }
    if (mode < 0 || mode >= modes.count()) {
      std::ostringstream os;
      os << "server at node " << node << " has out-of-range mode " << mode;
      return fail(os.str());
    }
  }
  const FlowResult flows = compute_flows(topo, scen, placement);
  if (flows.unserved > 0) {
    std::ostringstream os;
    os << flows.unserved << " requests escape past the root unserved";
    return fail(os.str());
  }
  for (std::size_t i = 0; i < placement.nodes().size(); ++i) {
    const NodeId node = placement.nodes()[i];
    const int mode = placement.modes()[i];
    const RequestCount load = flows.load(topo, node);
    if (load > modes.capacity(mode)) {
      std::ostringstream os;
      os << "server at node " << node << " (mode " << mode << ", capacity "
         << modes.capacity(mode) << ") overloaded with " << load
         << " requests";
      return fail(os.str());
    }
  }
  return ValidationResult{};
}

double total_power(const Placement& placement, const ModeSet& modes) {
  double p = 0.0;
  for (int mode : placement.modes()) {
    TREEPLACE_CHECK(mode >= 0 && mode < modes.count());
    p += modes.power(mode);
  }
  return p;
}

CostBreakdown evaluate_cost(const Topology& /*topo*/, const Scenario& scen,
                            const Placement& placement,
                            const CostModel& costs) {
  CostBreakdown b;
  b.servers = static_cast<int>(placement.size());
  double cost = static_cast<double>(b.servers);  // operating cost 1 each
  for (std::size_t i = 0; i < placement.nodes().size(); ++i) {
    const NodeId node = placement.nodes()[i];
    const int mode = placement.modes()[i];
    if (scen.pre_existing(node)) {
      ++b.reused;
      const int orig = scen.original_mode(node);
      TREEPLACE_CHECK_MSG(orig >= 0 && orig < costs.num_modes(),
                          "pre-existing node " << node
                                               << " has invalid original mode "
                                               << orig);
      if (orig != mode) ++b.mode_changes;
      cost += costs.changed(orig, mode);
    } else {
      ++b.created;
      cost += costs.create(mode);
    }
  }
  for (NodeId e : scen.pre_existing_nodes()) {
    if (!placement.contains(e)) {
      ++b.deleted;
      cost += costs.del(scen.original_mode(e));
    }
  }
  b.cost = cost;
  return b;
}

void minimize_modes(const Topology& topo, const Scenario& scen,
                    Placement& placement, const ModeSet& modes) {
  const FlowResult flows = compute_flows(topo, scen, placement);
  for (NodeId node : placement.nodes()) {
    const int m = modes.mode_for_load(flows.load(topo, node));
    TREEPLACE_CHECK_MSG(m >= 0, "server at node "
                                    << node << " overloaded even at W_M");
    placement.set_mode(node, m);
  }
}

std::vector<NodeId> assign_clients(const Topology& topo,
                                   const Placement& placement) {
  std::vector<NodeId> serving;
  serving.reserve(topo.client_ids().size());
  for (NodeId client : topo.client_ids()) {
    NodeId server = kNoNode;
    for (NodeId cur = topo.parent(client); cur != kNoNode;
         cur = topo.parent(cur)) {
      if (placement.contains(cur)) {
        server = cur;
        break;
      }
    }
    serving.push_back(server);
  }
  return serving;
}

}  // namespace treeplace
