#include "serve/connection.h"

#include <unistd.h>

#include <utility>

#include "support/check.h"

namespace treeplace::serve {

Connection::Connection(int fd, std::uint64_t uid, std::size_t max_line_bytes)
    : namespace_id(uid), fd_(fd), uid_(uid), in_(max_line_bytes) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::pump() {
  while (std::optional<std::string_view> line = in_.next_line()) {
    if (std::optional<ServeRequest> request = parser_.feed(*line)) {
      ready_.push_back(std::move(*request));
    }
  }
}

void Connection::input_done() {
  if (peer_eof_) return;
  peer_eof_ = true;
  // A final line without a terminating newline still counts, as it does
  // for getline() at EOF in stream mode.
  if (std::optional<std::string_view> rest = in_.take_rest()) {
    if (!rest->empty()) {
      if (std::optional<ServeRequest> request = parser_.feed(*rest)) {
        ready_.push_back(std::move(*request));
      }
    }
  }
  if (std::optional<ServeRequest> request = parser_.finish()) {
    ready_.push_back(std::move(*request));
  }
}

std::size_t Connection::allocate_seq(double now_seconds) {
  submit_times_.push_back(now_seconds);
  return next_seq_++;
}

void Connection::complete(std::size_t seq, RenderedResult result) {
  TREEPLACE_CHECK_MSG(seq >= next_emit_ && seq < next_seq_,
                      "completion for unknown sequence " << seq);
  completed_.emplace(seq, std::move(result));
}

std::optional<Connection::Done> Connection::next_completed() {
  const auto it = completed_.find(next_emit_);
  if (it == completed_.end()) return std::nullopt;
  Done done{std::move(it->second), submit_times_.front()};
  completed_.erase(it);
  submit_times_.pop_front();
  ++next_emit_;
  return done;
}

}  // namespace treeplace::serve
