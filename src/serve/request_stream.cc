#include "serve/request_stream.h"

#include <sstream>

#include "support/check.h"

namespace treeplace::serve {

namespace {

constexpr const char* kScenarioHeader = "treeplace-scenario v1";

/// Rejects trailing garbage after a fully parsed delta line.
void expect_line_end(std::istringstream& ls, const std::string& line) {
  ls.clear();
  std::string rest;
  ls >> rest;
  TREEPLACE_CHECK_MSG(rest.empty(),
                      "trailing garbage in delta line: '" << line << "'");
}

/// Parses one delta line ("R 3 5", "E 2 1", "X 2", "Z").
ScenarioDelta parse_delta_line(const std::string& line) {
  std::istringstream ls(line);
  char tag = 0;
  ls >> tag;
  TREEPLACE_CHECK_MSG(!ls.fail(), "malformed delta line: '" << line << "'");
  ScenarioDelta delta;
  switch (tag) {
    case 'R': {
      delta.op = ScenarioDelta::Op::kSetRequests;
      ls >> delta.node >> delta.requests;
      TREEPLACE_CHECK_MSG(!ls.fail(),
                          "malformed R delta: '" << line << "'");
      break;
    }
    case 'E': {
      delta.op = ScenarioDelta::Op::kSetPreExisting;
      ls >> delta.node;
      TREEPLACE_CHECK_MSG(!ls.fail(),
                          "malformed E delta: '" << line << "'");
      if (!(ls >> delta.mode)) {
        // The mode is optional, but only when actually absent — an
        // unparsable token is an error, not a default.
        TREEPLACE_CHECK_MSG(ls.eof(), "malformed E delta: '" << line << "'");
        delta.mode = 0;
      }
      break;
    }
    case 'X': {
      delta.op = ScenarioDelta::Op::kClearPreExisting;
      ls >> delta.node;
      TREEPLACE_CHECK_MSG(!ls.fail(),
                          "malformed X delta: '" << line << "'");
      break;
    }
    case 'Z': {
      delta.op = ScenarioDelta::Op::kClearAllPre;
      break;
    }
    default:
      TREEPLACE_CHECK_MSG(false, "unknown delta tag '" << tag << "' in '"
                                                       << line << "'");
  }
  expect_line_end(ls, line);
  return delta;
}

}  // namespace

const char* RequestStreamReader::scenario_header() { return kScenarioHeader; }

bool is_hello_line(std::string_view line) {
  constexpr std::string_view kHello = "treeplace-hello";
  if (line.rfind(kHello, 0) != 0) return false;
  // Token-exact: "treeplace-helloX" is an unknown record, not a hello.
  return line.size() == kHello.size() || line[kHello.size()] == ' ' ||
         line[kHello.size()] == '\t';
}

HelloInfo parse_hello_line(std::string_view line) {
  std::istringstream hs{std::string(line)};
  std::string kind;
  HelloInfo hello;
  hs >> kind >> hello.version;
  TREEPLACE_CHECK_MSG(kind == "treeplace-hello" && hello.version == "v1",
                      "unsupported hello record: '" << line << "'");
  std::string token;
  while (hs >> token) {
    if (token.rfind("name=", 0) == 0) {
      TREEPLACE_CHECK_MSG(hello.name.empty(),
                          "duplicate name= in hello: '" << line << "'");
      hello.name = token.substr(5);
      TREEPLACE_CHECK_MSG(!hello.name.empty(),
                          "empty name= in hello: '" << line << "'");
    } else {
      hello.features.push_back(token);  // unknown features are fine
    }
  }
  return hello;
}

std::string_view hello_reply() { return "# hello: treeplace v1\n"; }

std::optional<ServeRequest> RequestStreamReader::next() {
  const std::optional<std::string> header = reader_.next_header();
  if (!header) return std::nullopt;

  if (is_hello_line(*header)) {
    TREEPLACE_CHECK_MSG(requests_ == 0 && reader_.trees_read() == 0 &&
                            !hello_seen_,
                        "hello must be the first record of the stream");
    hello_seen_ = true;
    ServeRequest request;  // id stays 0: hello consumes no ordinal
    request.hello = parse_hello_line(*header);
    return request;
  }

  ServeRequest request;
  request.id = requests_ + 1;

  // Token-exact matching: "treeplace-scenario v12 k" is an unknown record,
  // not v1 with a mangled key.
  std::istringstream hs(*header);
  std::string kind;
  std::string version;
  hs >> kind >> version;

  if (*header == TreeStreamReader::tree_header()) {
    // A tree record both registers its topology (under the ordinal key of
    // this tree within the stream) and requests a solve of its base
    // scenario.
    request.tree = reader_.read_tree_body();
    request.topology_key = std::to_string(reader_.trees_read());
  } else if (kind == "treeplace-scenario" && version == "v1") {
    hs >> request.topology_key;
    TREEPLACE_CHECK_MSG(!hs.fail() && !request.topology_key.empty(),
                        "scenario record without a topology key: '"
                            << *header << "'");
    std::string line;
    while (reader_.next_body_line(line)) {
      request.deltas.push_back(parse_delta_line(line));
    }
  } else {
    TREEPLACE_CHECK_MSG(false, "unknown record header: '" << *header << "'");
  }

  ++requests_;
  return request;
}

}  // namespace treeplace::serve
