#include "serve/topology_cache.h"

#include <utility>

#include "serve/router.h"
#include "support/check.h"

namespace treeplace::serve {

std::uint64_t CacheKey::hash() const {
  // Mix the namespace through splitmix64 so consecutive connection uids
  // spread over the ring, then fold in the key bytes' FNV-1a hash.
  return mix_hash64(namespace_id ^ stable_hash64(topology_key));
}

TopologyCache::TopologyCache(std::size_t capacity,
                             SolveSession::Options session_options)
    : capacity_(capacity), session_options_(session_options) {
  TREEPLACE_CHECK_MSG(capacity >= 1, "TopologyCache capacity must be >= 1");
  stats_.capacity = capacity;
}

std::shared_ptr<SolveSession> TopologyCache::put(
    const CacheKey& key, std::shared_ptr<const Topology> topology,
    Scenario base) {
  TREEPLACE_CHECK_MSG(topology != nullptr, "caching a null topology");
  TREEPLACE_CHECK_MSG(base.topology_ptr() == topology,
                      "base scenario belongs to a different topology");
  auto session = std::make_shared<SolveSession>(topology, session_options_);
  std::scoped_lock lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value =
        CachedTopology{std::move(topology), std::move(base), session};
    touch(it->second);
    return session;
  }
  if (entries_.size() >= capacity_) {
    // Evict the least recently used entry (the recency list's tail).
    const CacheKey& victim = recency_.back();
    entries_.erase(victim);
    recency_.pop_back();
    ++stats_.evictions;
  }
  recency_.push_front(key);
  entries_.emplace(
      key, Entry{CachedTopology{std::move(topology), std::move(base), session},
                 recency_.begin()});
  return session;
}

std::optional<CachedTopology> TopologyCache::get(const CacheKey& key) {
  std::scoped_lock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  touch(it->second);
  return it->second.value;  // copy: the caller's scenario fork
}

bool TopologyCache::contains(const CacheKey& key) const {
  std::scoped_lock lock(mutex_);
  return entries_.count(key) > 0;
}

std::size_t TopologyCache::size() const {
  std::scoped_lock lock(mutex_);
  return entries_.size();
}

TopologyCacheStats TopologyCache::stats() const {
  std::scoped_lock lock(mutex_);
  TopologyCacheStats out = stats_;
  out.size = entries_.size();
  for (const auto& [key, entry] : entries_) {
    const SolveSession::Stats s = entry.value.session->stats();
    out.session_bytes += s.bytes_resident;
    out.session_snapshots_dropped += s.snapshots_dropped;
    out.session_tables_dropped += s.tables_dropped;
    out.session_cells_skipped += s.cells_skipped;
    out.session_subtrees_sealed += s.subtrees_sealed;
    out.session_sealed_cells += s.sealed_cells_injected;
  }
  return out;
}

void TopologyCache::touch(Entry& entry) {
  recency_.splice(recency_.begin(), recency_, entry.recency);
  entry.recency = recency_.begin();
}

}  // namespace treeplace::serve
