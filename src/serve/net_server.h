// Sharded async TCP serving tier: warm per-connection sessions that
// survive shard kills and restarts.
//
// NetServer runs a router thread in front of K in-process shards.  Each
// shard is a self-contained serving loop — its own event loop (epoll,
// with a portable poll() backend behind the Poller abstraction — select
// TREEPLACE_POLLER=poll), its own TopologyCache of warm SolveSessions and
// its own SolveDispatcher pool — so shards share no solver state and no
// locks on the solve path.  The router accepts non-blocking TCP
// connections, pre-reads just enough bytes to see the first record line,
// and routes the connection by consistent hashing (serve/router.h): a
// `treeplace-hello v1 name=<id>` handshake pins the client to the shard
// owning stable_hash64(name) — same name, same shard, same warm session
// across reconnects — while anonymous connections spread by uid.  The
// socket plus its pre-read bytes are then handed off to the shard, which
// serves it exactly as the single-loop server of PR 7 did: records are
// framed incrementally (serve/wire.h), bind a TopologyCache entry + warm
// SolveSession under a CacheKey namespaced by the connection, solve on
// the shard's dispatcher, and return per-connection-ordered result lines
// byte-identical to a StreamServer run of the same records (modulo
// queue_s=/solve_s= timings) — for any shard count.
//
// Persistence (`persist_dir`): a named client's sessions are written as
// versioned snapshots (core/dp_snapshot.h via SolveSession::save) when
// the owning shard drains — at shutdown or on kill_shard() — and restored
// when the name reconnects and re-publishes its trees, so a shard kill or
// a full server restart resumes *warm*: the first post-restore delta
// solve performs bit-identical work to the never-restarted session
// (bench/shard_restart gates this).  A corrupt, truncated or mismatched
// snapshot is rejected whole (CheckError) and the session starts cold —
// never wrong.
//
// kill_shard()/kill_next_shard() are async-signal-safe (atomic store plus
// a wake-pipe write; the CLI wires SIGUSR1 to kill_next_shard): the shard
// stops reading, finishes in-flight solves, flushes results, saves named
// sessions, and exits; the router's hash ring walks past dead shards so
// later connections (including the killed clients' reconnects) land on
// the survivors.
//
// Backpressure and drain semantics within a shard are unchanged from the
// single-loop server: bounded dispatcher queue and per-connection output
// caps mask socket reads (TCP flow control pushes back on the client),
// completions cross worker→loop through a mutex-protected queue plus the
// shard's wake pipe, and graceful drain flushes every in-flight result.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/connection.h"
#include "serve/stream_server.h"
#include "serve/wire.h"

namespace treeplace::serve {

// ---------------------------------------------------------------------------
// Poller

/// Minimal readiness-notification abstraction: epoll on Linux, poll()
/// everywhere (and for tests of the fallback).  Level-triggered semantics
/// on both backends.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< error or peer hangup (still drain reads first)
  };

  virtual ~Poller() = default;

  virtual void add(int fd, bool read, bool write) = 0;
  virtual void update(int fd, bool read, bool write) = 0;
  virtual void remove(int fd) = 0;

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events.
  virtual void wait(std::vector<Event>& events, int timeout_ms) = 0;

  virtual const char* name() const = 0;

  /// epoll by default; TREEPLACE_POLLER=poll selects the fallback.
  static std::unique_ptr<Poller> create();
  static std::unique_ptr<Poller> create(const std::string& backend);
};

// ---------------------------------------------------------------------------
// NetServer

struct NetServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (tests/bench read port())

  /// In-process shards behind the router; each owns a full serving loop
  /// (event loop + TopologyCache + dispatcher pool).  1 = the router still
  /// runs, fronting a single shard, with output byte-identical to any
  /// other shard count for the same per-connection record streams.
  std::size_t shards = 1;
  /// When set, named sessions (hello name=) are snapshotted here at shard
  /// drain and restored on re-publish; empty disables persistence.
  std::string persist_dir;

  std::size_t max_conns = 4096;       ///< beyond this, accept-and-close
  double idle_timeout_seconds = 300;  ///< 0 = never reap idle connections
  /// > 0: enable TCP keepalive probes on accepted sockets (SO_KEEPALIVE
  /// with TCP_KEEPIDLE = this many seconds), so half-dead peers — NAT
  /// timeouts, silently vanished clients holding warm sessions — are
  /// detected and reaped by the kernel instead of pinning a connection
  /// slot until the idle timeout.  0 = off (kernel defaults apply only if
  /// something else enabled SO_KEEPALIVE).
  int keepalive_seconds = 0;
  double drain_timeout_seconds = 30;  ///< force-close laggards on shutdown
  std::size_t max_output_bytes = 1 << 20;  ///< per-conn pending-out cap
  std::size_t read_chunk = 64 * 1024;      ///< bytes per read() call
  std::size_t max_line_bytes = LineBuffer::kDefaultMaxLineBytes;

  /// Solver, cache and result-format knobs, shared with stream mode.
  /// Note cache_capacity bounds *resident topologies per shard*: serving
  /// K concurrent tree-publishing clients without eviction errors needs
  /// cache_capacity >= K on every shard their keys hash to.
  StreamServerConfig stream;
};

struct NetServerSummary {
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;      ///< refused at max_conns or while draining
  std::uint64_t reaped_idle = 0;  ///< closed by the idle timeout
  std::uint64_t protocol_errors = 0;  ///< connections failed on bad input
  std::uint64_t peak_connections = 0;

  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t errors = 0;
  std::uint64_t over_budget = 0;

  std::uint64_t backpressure_stalls = 0;  ///< reads paused: dispatcher full
  std::uint64_t output_stalls = 0;        ///< reads paused: slow consumer
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  std::uint64_t hellos = 0;            ///< handshakes served
  std::uint64_t sessions_saved = 0;    ///< snapshots written at drain
  std::uint64_t sessions_restored = 0; ///< snapshots resumed warm
  std::uint64_t shards_killed = 0;     ///< shards drained by kill_shard()

  double wall_seconds = 0.0;
  double scenarios_per_second = 0.0;
  double p50_latency_seconds = 0.0;  ///< submit-to-emit, per result
  double p99_latency_seconds = 0.0;

  bool drain_timed_out = false;  ///< shutdown force-closed laggards

  DispatcherStats dispatcher;
  TopologyCacheStats cache;
};

/// Arms TCP keepalive probes on `fd`: SO_KEEPALIVE on, first probe after
/// `idle_seconds` of silence (TCP_KEEPIDLE), then probes every
/// max(1, idle_seconds / 3) seconds (TCP_KEEPINTVL) with 3 strikes
/// (TCP_KEEPCNT) before the kernel declares the peer dead.  Returns false
/// (without throwing) if any setsockopt fails — keepalive is best-effort
/// hardening, not correctness.  Exposed for tests; NetServer applies it
/// to every accepted socket when NetServerConfig::keepalive_seconds > 0.
bool arm_tcp_keepalive(int fd, int idle_seconds);

class NetServer {
 public:
  explicit NetServer(NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens; returns the bound port (resolves port 0).  Must
  /// be called before run(); separate so callers can publish the port
  /// before entering the loop.
  std::uint16_t listen_and_bind();
  std::uint16_t port() const { return port_; }
  std::size_t shards() const { return shards_.size(); }

  /// Runs the router plus one serving thread per shard until shutdown(),
  /// then drains gracefully and writes the `#`-prefixed summary block to
  /// `summary_out` (aggregated across shards; per-shard `# shard i:`
  /// lines follow when shards > 1).
  NetServerSummary run(std::ostream& summary_out);

  /// Requests graceful shutdown of the whole server.  Async-signal-safe
  /// (atomic store plus a write() on the wake pipe); callable from any
  /// thread or from a signal handler.
  void shutdown();

  /// Drains one shard — finish in-flight solves, flush, save named
  /// sessions, exit its thread — while the router and the other shards
  /// keep serving (the ring routes around it).  Async-signal-safe; out of
  /// range or already-killed shards are a no-op.
  void kill_shard(std::size_t shard);
  /// kill_shard() on the next living shard, round-robin — the SIGUSR1
  /// hook.  A no-op once every shard is dead.
  void kill_next_shard();

 private:
  struct Completion {
    std::uint64_t conn_uid = 0;
    std::size_t seq = 0;
    RenderedResult result;
  };

  /// An accepted socket leaving the router for its shard: the fd, the
  /// server-unique uid, and every byte the router pre-read while sniffing
  /// the first record line (replayed into the shard's LineBuffer so no
  /// byte is lost).
  struct Handoff {
    int fd = -1;
    std::uint64_t uid = 0;
    std::string initial;
    bool eof = false;  ///< peer already half-closed during pre-read
  };

  /// Router→shard and worker→shard-loop channels, one per shard.  The
  /// wake pipe is the shard loop's only cross-thread contact; `kill` and
  /// `drain` are the async-signal-safe stop requests (kill saves named
  /// sessions and counts as a kill; drain is the shutdown path).
  struct ShardState {
    int wake_read_fd = -1;
    int wake_write_fd = -1;
    std::atomic<bool> kill{false};
    std::atomic<bool> drain{false};
    /// Cleared the moment the shard starts draining, so the router stops
    /// routing new connections to it.
    std::atomic<bool> alive{true};
    std::mutex mutex;  ///< guards completions + handoffs
    std::deque<Completion> completions;
    std::deque<Handoff> handoffs;
  };

  class Loop;    // per-shard serving loop (net_server.cc)
  class Router;  // accept + pre-read + handoff loop (net_server.cc)
  struct ShardReport;

  void wake_shard(std::size_t shard);

  NetServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;   ///< router wake pipe (shutdown channel)
  int wake_write_fd_ = -1;
  std::atomic<bool> shutdown_requested_{false};

  std::vector<std::unique_ptr<ShardState>> shards_;
  std::atomic<std::size_t> kill_cursor_{0};
  /// Connections owned by shards (router enforces max_conns against it).
  std::atomic<std::size_t> shard_conns_{0};

  friend class Loop;
  friend class Router;
};

}  // namespace treeplace::serve
