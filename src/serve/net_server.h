// Async TCP serving front-end: thousands of warm per-connection sessions.
//
// NetServer promotes the single-stream StreamServer to a real network
// server: a single-threaded event loop (epoll, with a portable poll()
// backend behind the Poller abstraction — select TREEPLACE_POLLER=poll)
// accepts non-blocking TCP connections, each speaking the existing
// line-record protocol.  Per connection, bytes are framed incrementally
// (serve/wire.h), records bind a TopologyCache entry + warm SolveSession
// (cache keys namespaced by connection uid, so every connection sees the
// same ordinal keys a fresh stream would), solves run on the shared
// SolveDispatcher pool, and results come back per-connection-ordered and
// byte-identical to what StreamServer would emit for that connection's
// record sequence (modulo queue_s=/solve_s= timings).
//
// Backpressure: the dispatcher queue stays bounded.  When
// try_reserve_slot() reports the queue full, the connection's remaining
// parsed records wait
// and its socket is dropped from the read set — TCP flow control pushes
// back on the client instead of the server buffering unboundedly.  The
// same read-masking applies when a connection's outbound buffer exceeds
// the per-connection cap (a client must drain results to keep publishing).
//
// Completions cross back from worker threads through a mutex-protected
// queue plus a wake pipe (the loop's only cross-thread contact); the
// wake pipe doubles as the async-signal-safe shutdown channel, so a
// SIGTERM handler may call shutdown() directly.  Graceful drain: stop
// accepting, stop reading, submit already-parsed records, flush every
// in-flight result to its socket, then close.
//
// Idle connections are reaped from an activity-ordered list (uniform
// timeout, so the list front is always the closest deadline).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/connection.h"
#include "serve/stream_server.h"
#include "serve/wire.h"

namespace treeplace::serve {

// ---------------------------------------------------------------------------
// Poller

/// Minimal readiness-notification abstraction: epoll on Linux, poll()
/// everywhere (and for tests of the fallback).  Level-triggered semantics
/// on both backends.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< error or peer hangup (still drain reads first)
  };

  virtual ~Poller() = default;

  virtual void add(int fd, bool read, bool write) = 0;
  virtual void update(int fd, bool read, bool write) = 0;
  virtual void remove(int fd) = 0;

  /// Blocks up to timeout_ms (-1 = forever) and appends ready events.
  virtual void wait(std::vector<Event>& events, int timeout_ms) = 0;

  virtual const char* name() const = 0;

  /// epoll by default; TREEPLACE_POLLER=poll selects the fallback.
  static std::unique_ptr<Poller> create();
  static std::unique_ptr<Poller> create(const std::string& backend);
};

// ---------------------------------------------------------------------------
// NetServer

struct NetServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (tests/bench read port())

  std::size_t max_conns = 4096;       ///< beyond this, accept-and-close
  double idle_timeout_seconds = 300;  ///< 0 = never reap idle connections
  double drain_timeout_seconds = 30;  ///< force-close laggards on shutdown
  std::size_t max_output_bytes = 1 << 20;  ///< per-conn pending-out cap
  std::size_t read_chunk = 64 * 1024;      ///< bytes per read() call
  std::size_t max_line_bytes = LineBuffer::kDefaultMaxLineBytes;

  /// Solver, cache and result-format knobs, shared with stream mode.
  /// Note cache_capacity bounds *resident topologies across connections*:
  /// serving K concurrent tree-publishing clients without eviction errors
  /// needs cache_capacity >= K.
  StreamServerConfig stream;
};

struct NetServerSummary {
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;      ///< connections refused at max_conns
  std::uint64_t reaped_idle = 0;  ///< closed by the idle timeout
  std::uint64_t protocol_errors = 0;  ///< connections failed on bad input
  std::uint64_t peak_connections = 0;

  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t errors = 0;
  std::uint64_t over_budget = 0;

  std::uint64_t backpressure_stalls = 0;  ///< reads paused: dispatcher full
  std::uint64_t output_stalls = 0;        ///< reads paused: slow consumer
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  double wall_seconds = 0.0;
  double scenarios_per_second = 0.0;
  double p50_latency_seconds = 0.0;  ///< submit-to-emit, per result
  double p99_latency_seconds = 0.0;

  bool drain_timed_out = false;  ///< shutdown force-closed laggards

  DispatcherStats dispatcher;
  TopologyCacheStats cache;
};

class NetServer {
 public:
  explicit NetServer(NetServerConfig config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens; returns the bound port (resolves port 0).  Must
  /// be called before run(); separate so callers can publish the port
  /// before entering the loop.
  std::uint16_t listen_and_bind();
  std::uint16_t port() const { return port_; }

  /// Runs the event loop until shutdown(), then drains gracefully and
  /// writes the `#`-prefixed summary block to `summary_out`.
  NetServerSummary run(std::ostream& summary_out);

  /// Requests graceful shutdown.  Async-signal-safe (atomic store plus a
  /// write() on the wake pipe); callable from any thread or from a signal
  /// handler.
  void shutdown();

 private:
  struct Completion {
    std::uint64_t conn_uid = 0;
    std::size_t seq = 0;
    RenderedResult result;
  };

  class Loop;  // run() implementation detail (net_server.cc)

  NetServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> shutdown_requested_{false};

  // Worker-to-loop completion channel.  Declared before any object whose
  // destructor joins workers (the dispatcher lives inside run()).
  std::mutex completions_mutex_;
  std::deque<Completion> completions_;

  friend class Loop;
};

}  // namespace treeplace::serve
