// The serving loop's request stream: tree records + scenario deltas.
//
// A serve stream is a concatenation of two record kinds, split by
// TreeStreamReader (any "treeplace-" header line is a record boundary):
//
//   treeplace-tree v1            the format of tree/io.h.  Registers the
//   I 0 -1 0 -1                  tree's topology in the serving cache under
//   C 1 0 5                      its ordinal key ("1" for the first tree in
//   ...                          the stream, "2" for the second, ...) and
//                                requests a solve of its base scenario.
//
//   treeplace-scenario v1 <key>  a scenario-delta request against the
//   R <client-id> <requests>     cached topology <key>: fork its base
//   E <node-id> [<orig-mode>]    scenario, apply the delta lines in order,
//   X <node-id>                  solve the result.  R sets one client's
//   Z                            request volume, E marks a pre-existing
//                                server (default original mode 0), X clears
//                                one, Z clears the whole pre-existing set.
//
// A third, optional record opens the stream — the version/feature
// handshake:
//
//   treeplace-hello v1 [name=<token>] [feature ...]
//
// A single header line with no body, valid only as the very first record.
// The server replies with the `# hello: treeplace v1` comment line before
// any result.  `name=` gives the client a stable identity: the TCP
// front-end namespaces its topology keys by the name's hash instead of
// the connection uid, which is what makes its warm sessions routable
// (shard affinity) and persistent (saved at drain, restored when the name
// reconnects and re-publishes its trees).  Remaining tokens are feature
// flags, accepted and ignored if unknown.
//
// Blank lines and `#` comments are skipped anywhere.  The reader only
// parses; resolving keys against the cache and building instances is the
// stream server's job (serve/stream_server.h), so malformed references
// surface as per-request error records rather than parser throws.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "tree/io.h"
#include "tree/scenario_delta.h"
#include "tree/tree.h"

namespace treeplace::serve {

/// One edit applied to a forked base scenario, in record order.  The type
/// now lives with the Scenario it edits (tree/scenario_delta.h) because
/// the core solvers consume delta spans too (Solver::solve_incremental);
/// re-exported here under its historical name for stream code.
using treeplace::ScenarioDelta;

/// The parsed `treeplace-hello v1 ...` handshake record.
struct HelloInfo {
  std::string version;                 ///< the "v1" token
  std::string name;                    ///< from name=<token>; empty = anon
  std::vector<std::string> features;   ///< remaining tokens, order kept
};

/// One request from the stream: a solve (full tree, or deltas against a
/// previously registered topology) or — only as the first record — the
/// hello handshake.  Hello requests carry id 0 and do not consume a
/// request ordinal, so solve ids match a stream without the handshake.
struct ServeRequest {
  std::size_t id = 0;        ///< 1-based request ordinal in the stream
  std::string topology_key;  ///< ordinal key ("1", "2", ...) or reference
  std::optional<Tree> tree;  ///< set for tree records
  std::vector<ScenarioDelta> deltas;  ///< set for scenario records
  std::optional<HelloInfo> hello;     ///< set for the handshake record
};

/// True when `line` is a hello record header (first token matches).
bool is_hello_line(std::string_view line);

/// Parses a hello header line; throws CheckError on a bad version or a
/// malformed name token.  Callers enforce the first-record placement.
HelloInfo parse_hello_line(std::string_view line);

/// The comment line every server writes in response to a hello record,
/// identical in stream and net mode (it is a `#` line, so it never
/// perturbs result parsing or bit-identity comparisons).
std::string_view hello_reply();

/// Streaming reader over a serve request stream.  Throws CheckError on
/// malformed records (bad headers, unparsable delta lines).
class RequestStreamReader {
 public:
  explicit RequestStreamReader(std::istream& is) : reader_(is) {}

  /// The next request, or nullopt at end of stream.
  std::optional<ServeRequest> next();

  std::size_t requests_read() const { return requests_; }
  std::size_t trees_read() const { return reader_.trees_read(); }

  /// The scenario record header prefix ("treeplace-scenario v1").
  static const char* scenario_header();

 private:
  TreeStreamReader reader_;
  std::size_t requests_ = 0;
  bool hello_seen_ = false;
};

}  // namespace treeplace::serve
