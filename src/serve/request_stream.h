// The serving loop's request stream: tree records + scenario deltas.
//
// A serve stream is a concatenation of two record kinds, split by
// TreeStreamReader (any "treeplace-" header line is a record boundary):
//
//   treeplace-tree v1            the format of tree/io.h.  Registers the
//   I 0 -1 0 -1                  tree's topology in the serving cache under
//   C 1 0 5                      its ordinal key ("1" for the first tree in
//   ...                          the stream, "2" for the second, ...) and
//                                requests a solve of its base scenario.
//
//   treeplace-scenario v1 <key>  a scenario-delta request against the
//   R <client-id> <requests>     cached topology <key>: fork its base
//   E <node-id> [<orig-mode>]    scenario, apply the delta lines in order,
//   X <node-id>                  solve the result.  R sets one client's
//   Z                            request volume, E marks a pre-existing
//                                server (default original mode 0), X clears
//                                one, Z clears the whole pre-existing set.
//
// Blank lines and `#` comments are skipped anywhere.  The reader only
// parses; resolving keys against the cache and building instances is the
// stream server's job (serve/stream_server.h), so malformed references
// surface as per-request error records rather than parser throws.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "tree/io.h"
#include "tree/scenario_delta.h"
#include "tree/tree.h"

namespace treeplace::serve {

/// One edit applied to a forked base scenario, in record order.  The type
/// now lives with the Scenario it edits (tree/scenario_delta.h) because
/// the core solvers consume delta spans too (Solver::solve_incremental);
/// re-exported here under its historical name for stream code.
using treeplace::ScenarioDelta;

/// One solve request: either a full tree (which also registers its
/// topology under `topology_key`) or a list of deltas against a previously
/// registered topology.
struct ServeRequest {
  std::size_t id = 0;        ///< 1-based request ordinal in the stream
  std::string topology_key;  ///< ordinal key ("1", "2", ...) or reference
  std::optional<Tree> tree;  ///< set for tree records
  std::vector<ScenarioDelta> deltas;  ///< set for scenario records
};

/// Streaming reader over a serve request stream.  Throws CheckError on
/// malformed records (bad headers, unparsable delta lines).
class RequestStreamReader {
 public:
  explicit RequestStreamReader(std::istream& is) : reader_(is) {}

  /// The next request, or nullopt at end of stream.
  std::optional<ServeRequest> next();

  std::size_t requests_read() const { return requests_; }
  std::size_t trees_read() const { return reader_.trees_read(); }

  /// The scenario record header prefix ("treeplace-scenario v1").
  static const char* scenario_header();

 private:
  TreeStreamReader reader_;
  std::size_t requests_ = 0;
};

}  // namespace treeplace::serve
