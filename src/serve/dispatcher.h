// Bounded-queue solve dispatcher: the serving loop's execution engine.
//
// A SolveDispatcher owns one thread pool (support/thread_pool.h) and one or
// more registry-created solver instances, and turns Instances into
// future<ServeResult>s.  submit() enforces a bounded work queue: when
// `queue_capacity` solves are already queued or running, the submitting
// thread blocks until a slot frees up, so an arbitrarily long request
// stream is served with bounded memory no matter how far the reader runs
// ahead of the solvers.
//
// Solvers are configured once at construction (including the
// Solver::Options::threads knob for solver-internal parallelism) and then
// shared read-only across the pool — the race-freedom contract of
// solver/solver.h.  Per-solver latency statistics (queue wait, solve wall
// time, work counters) are aggregated under the same lock that implements
// the bounded queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "solver/instance.h"
#include "solver/session.h"
#include "solver/solution.h"
#include "solver/solver.h"
#include "support/thread_pool.h"
#include "tree/scenario_delta.h"

namespace treeplace::serve {

struct DispatcherConfig {
  /// Registry names of the solvers to instantiate; submit() selects by
  /// index.  The serving CLI uses one; experiment 2 runs its optimizer and
  /// baseline chains through indices 0 and 1.
  std::vector<std::string> algos{"update-dp"};
  std::size_t threads = 0;         ///< 0 = ThreadPool::default_thread_count()
  std::size_t queue_capacity = 0;  ///< bound on in-flight solves; 0 = 4x threads
  int solver_threads = 1;          ///< Solver::Options::threads for every solver
};

/// The outcome of one dispatched solve.
struct ServeResult {
  bool ok = false;     ///< the solve ran and returned
  std::string error;   ///< capability rejection or solver throw when !ok
  Solution solution;
  /// The solve went through a SolveSession with an incremental-capable
  /// solver (it may still have recomputed everything on a cache miss).
  bool warm = false;
  double queue_seconds = 0.0;  ///< submit() to solve start
  double solve_seconds = 0.0;  ///< solve wall time on the worker
};

struct SolverLatencyStats {
  std::string algo;
  std::uint64_t solves = 0;      ///< completed, including infeasible
  std::uint64_t warm = 0;        ///< of which: session-backed warm solves
  std::uint64_t errors = 0;      ///< rejections + solver throws
  std::uint64_t infeasible = 0;
  double total_queue_seconds = 0.0;
  double total_solve_seconds = 0.0;
  double max_solve_seconds = 0.0;
  std::uint64_t total_work = 0;  ///< summed SolveStats::work counters
};

struct DispatcherStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::size_t max_in_flight = 0;
  std::vector<SolverLatencyStats> per_solver;
};

class SolveDispatcher {
 public:
  explicit SolveDispatcher(DispatcherConfig config);

  /// Waits for every in-flight solve (the pool drains before teardown).
  ~SolveDispatcher() = default;

  SolveDispatcher(const SolveDispatcher&) = delete;
  SolveDispatcher& operator=(const SolveDispatcher&) = delete;

  /// Dispatches `instance` to solver `solver_index`.  Blocks while
  /// queue_capacity() solves are in flight.  A capability rejection (the
  /// solver does not accept the instance) or a solver throw resolves the
  /// future with ok = false instead of propagating.
  ///
  /// When `session` is set and the solver supports incremental solves, the
  /// worker runs Solver::solve(SolveRequest) under the session's solve
  /// mutex (solves sharing one session serialize; results stay
  /// bit-identical to cold solves either way).  `deltas` is the warm-start
  /// hint forwarded to the solver.
  std::future<ServeResult> submit(std::size_t solver_index, Instance instance,
                                  std::shared_ptr<SolveSession> session =
                                      nullptr,
                                  std::vector<ScenarioDelta> deltas = {});
  std::future<ServeResult> submit(Instance instance) {
    return submit(0, std::move(instance));
  }

  /// Completion callback for submit_reserved; runs on a pool worker thread
  /// (or inline on the submitting thread for capability rejections).
  using CompletionFn = std::function<void(ServeResult)>;

  /// Non-blocking admission for event-loop callers, split in two so that a
  /// full queue consumes nothing: try_reserve_slot() returns false when
  /// queue_capacity() solves are already in flight (the caller applies
  /// backpressure, still owning its request, and retries after a
  /// completion frees a slot); on true the caller holds a slot and must
  /// follow up with submit_reserved().  `done` is invoked exactly once
  /// with the result — after the slot has been released, so a retry from
  /// inside `done` cannot starve.  Capability rejections release the slot
  /// and invoke `done` inline.
  bool try_reserve_slot();
  void submit_reserved(std::size_t solver_index, Instance instance,
                       std::shared_ptr<SolveSession> session,
                       std::vector<ScenarioDelta> deltas, CompletionFn done);

  /// Undoes a try_reserve_slot() whose request turned out not to need the
  /// dispatcher (e.g. it resolved to an inline error record); the
  /// reservation leaves no trace in the stats.
  void release_reserved_slot();

  const Solver& solver(std::size_t solver_index = 0) const {
    return *solvers_[solver_index];
  }
  std::size_t num_solvers() const { return solvers_.size(); }
  std::size_t threads() const { return pool_.size(); }
  std::size_t queue_capacity() const { return queue_capacity_; }

  /// Snapshot of the aggregated per-solver latency stats.
  DispatcherStats stats() const;

 private:
  ServeResult run_solve(std::size_t solver_index, const Instance& instance,
                        SolveSession* session,
                        const std::vector<ScenarioDelta>& deltas,
                        double queue_seconds);

  std::vector<std::unique_ptr<Solver>> solvers_;
  std::size_t queue_capacity_ = 0;
  // Everything the pooled tasks touch is declared before pool_, so the
  // pool's destructor (which joins the workers) runs first.
  mutable std::mutex mutex_;
  std::condition_variable slot_freed_;
  std::size_t in_flight_ = 0;
  DispatcherStats stats_;
  ThreadPool pool_;
};

}  // namespace treeplace::serve
