// Consistent-hash routing of topology namespaces onto serving shards.
//
// The sharded net server (serve/net_server.h) runs K independent shard
// event loops, each owning its own TopologyCache + dispatcher; the router
// thread accepts connections and hands each one to the shard that owns its
// cache namespace, so a topology's warm SolveSession always lands on the
// same shard.  Affinity comes from a classic consistent-hash ring: every
// shard contributes `vnodes` points (hashes of (shard, vnode)), a key is
// owned by the first point clockwise from its hash, and lookups walk past
// dead shards — so killing a shard moves only its arc, not the whole
// keyspace, and a restarted shard reclaims exactly the arc it lost (which
// is what lets persisted sessions restore onto the right shard).
//
// All hashes are process- and machine-stable (FNV-1a / splitmix64, never
// std::hash) because they name persistence files and must agree across
// restarts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace treeplace::serve {

/// 64-bit FNV-1a over bytes: stable across runs, processes and machines
/// (std::hash offers no such guarantee).  Used for ring keys, typed cache
/// keys and persistence file names.
std::uint64_t stable_hash64(std::string_view bytes);

/// splitmix64 finalizer: decorrelates structured integers (shard indices,
/// connection uids) before they meet the ring.
std::uint64_t mix_hash64(std::uint64_t x);

class HashRing {
 public:
  HashRing() = default;
  /// `shards` >= 1 ring members, each contributing `vnodes` points.
  explicit HashRing(std::size_t shards, std::size_t vnodes = 64);

  std::size_t shards() const { return shards_; }

  /// The shard owning `key_hash`, ignoring liveness.
  std::size_t owner(std::uint64_t key_hash) const;

  /// The first alive shard at or after `key_hash` on the ring; falls back
  /// to owner() when `alive` reports every shard down (the caller is about
  /// to fail the connection anyway).
  template <typename AliveFn>
  std::size_t lookup(std::uint64_t key_hash, AliveFn&& alive) const {
    const std::size_t start = first_point(key_hash);
    for (std::size_t step = 0; step < points_.size(); ++step) {
      const std::size_t shard =
          points_[(start + step) % points_.size()].second;
      if (alive(shard)) return shard;
    }
    return owner(key_hash);
  }

 private:
  /// Index of the first ring point at or after `key_hash` (wrapping).
  std::size_t first_point(std::uint64_t key_hash) const;

  std::size_t shards_ = 0;
  /// (point, shard), sorted by point.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace treeplace::serve
