// The batch-serving loop: request stream in, ordered result records out.
//
// StreamServer ties the serving pieces together: a RequestStreamReader
// parses mixed tree / scenario-delta records, a TopologyCache keeps the hot
// topologies resident, and a SolveDispatcher fans the solves out across the
// thread pool behind a bounded work queue.  One `result ...` line is
// emitted per request, *in request order* (a bounded reorder window of
// pending futures, sized by the dispatcher's queue capacity, never lets
// the reader outrun the solvers by more than the queue bound).
//
// Determinism guarantee: each request is solved by the same deterministic
// solver an offline `treeplace solve` run would use, so the emitted
// placements are bit-identical to a serial pass over the same stream for
// any thread count — concurrency only reorders *execution*, never output
// or results (asserted by tests/serve/stream_server_test.cc and
// bench/serve_throughput).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "model/cost.h"
#include "model/modes.h"
#include "serve/dispatcher.h"
#include "serve/topology_cache.h"

namespace treeplace::serve {

struct StreamServerConfig {
  /// algos[0] serves every request.
  DispatcherConfig dispatcher;
  std::size_t cache_capacity = 16;
  /// Per-session warm-start byte budget (SolveSession::Options::max_bytes,
  /// 0 = unbounded): bounding each resident topology's cached DP state
  /// lets the cache keep many more topologies warm.
  std::size_t session_max_bytes = 0;
  /// Frozen-subtree contraction for resident sessions
  /// (SolveSession::Options::contract): localized delta days solve over a
  /// tree the size of the dirty region.  Mutually exclusive with a
  /// session byte budget — sessions ignore it while session_max_bytes > 0.
  bool session_contract = false;

  /// Instance parameters applied to every request of the stream.
  ModeSet modes = ModeSet::single(10);
  CostModel costs = CostModel::simple(0.1, 0.01);
  std::optional<double> cost_budget;
  /// Single-mode problem class: project pre-existing original modes to 0
  /// (Instance::single_mode semantics).
  bool project_original_modes = true;

  /// Append the placement ("node:mode,...") to each result record.
  bool print_placements = true;
};

struct StreamServerSummary {
  // Fixed 64-bit counters (not size_t): a simulated day at 10^5-10^6
  // users streams billions of delta records through one summary, which
  // would wrap 32-bit size_t on small targets.
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t errors = 0;      ///< bad topology key, rejection, solver throw
  std::uint64_t over_budget = 0;  ///< solved but cost_budget missed
  /// The input stream ended mid-record or was malformed.  In-flight
  /// results are still emitted and the summary block still printed; the
  /// CLI turns this into a nonzero exit.
  bool stream_error = false;
  std::string stream_error_message;
  double wall_seconds = 0.0;
  double scenarios_per_second = 0.0;
  DispatcherStats dispatcher;
  TopologyCacheStats cache;
};

class StreamServer {
 public:
  explicit StreamServer(StreamServerConfig config);

  /// Serves every record of `in`, writing one result line per request to
  /// `out` in request order followed by a `#`-prefixed summary block.
  /// A malformed stream (unparsable record, input ending mid-record) stops
  /// reading but still flushes every in-flight result and the summary —
  /// the failure is reported via StreamServerSummary::stream_error.  Bad
  /// topology references and per-solve failures become error records.
  StreamServerSummary serve(std::istream& in, std::ostream& out);

 private:
  StreamServerConfig config_;
};

}  // namespace treeplace::serve
