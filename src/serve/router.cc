#include "serve/router.h"

#include <algorithm>

#include "support/check.h"

namespace treeplace::serve {

std::uint64_t stable_hash64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix_hash64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

HashRing::HashRing(std::size_t shards, std::size_t vnodes) : shards_(shards) {
  TREEPLACE_CHECK_MSG(shards >= 1, "HashRing needs at least one shard");
  TREEPLACE_CHECK_MSG(vnodes >= 1, "HashRing needs at least one vnode");
  points_.reserve(shards * vnodes);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      const std::uint64_t point =
          mix_hash64((static_cast<std::uint64_t>(s) << 32) | v);
      points_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::size_t HashRing::first_point(std::uint64_t key_hash) const {
  TREEPLACE_CHECK_MSG(!points_.empty(), "lookup on an empty HashRing");
  const auto it = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(key_hash, std::uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  return it == points_.end() ? 0
                             : static_cast<std::size_t>(it - points_.begin());
}

std::size_t HashRing::owner(std::uint64_t key_hash) const {
  return points_[first_point(key_hash)].second;
}

}  // namespace treeplace::serve
