#include "serve/stream_server.h"

#include <deque>
#include <istream>
#include <ostream>
#include <string>
#include <utility>

#include "serve/request_stream.h"
#include "serve/wire.h"
#include "support/check.h"
#include "support/timer.h"

namespace treeplace::serve {

namespace {

struct Pending {
  std::size_t id = 0;
  std::string key;
  std::future<ServeResult> result;
};

/// An already-resolved future (error records discovered at build time slot
/// into the same ordered emission path as dispatched solves).
std::future<ServeResult> ready_result(ServeResult result) {
  std::promise<ServeResult> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

}  // namespace

StreamServer::StreamServer(StreamServerConfig config)
    : config_(std::move(config)) {
  TREEPLACE_CHECK_MSG(config_.dispatcher.algos.size() == 1,
                      "StreamServer serves every request with one solver");
}

StreamServerSummary StreamServer::serve(std::istream& in, std::ostream& out) {
  SolveDispatcher dispatcher(config_.dispatcher);
  TopologyCache cache(config_.cache_capacity,
                      SolveSession::Options{config_.session_max_bytes,
                                            config_.session_contract});
  RequestStreamReader reader(in);
  StreamServerSummary summary;
  Stopwatch wall;

  // Ordered emission with a bounded reorder window: the oldest pending
  // request is emitted (blocking on its future) whenever the window is
  // full, so reader, queue and emitter all stay within the queue bound.
  std::deque<Pending> pending;
  const std::size_t window = dispatcher.queue_capacity();

  const ResultFormat format{config_.print_placements,
                            config_.cost_budget.has_value()};
  const auto emit = [&](Pending& p) {
    const ServeResult result = p.result.get();
    const RenderedResult rendered = render_result(p.id, p.key, result, format);
    switch (rendered.status) {
      case ResultStatus::kError:
        ++summary.errors;
        break;
      case ResultStatus::kInfeasible:
        ++summary.infeasible;
        break;
      case ResultStatus::kOk:
        ++summary.ok;
        if (rendered.budget_missed) ++summary.over_budget;
        break;
    }
    out << rendered.line;
  };

  // A malformed stream stops the reader but never the emitter: everything
  // already dispatched is flushed below, then the summary block reports
  // the failure (the CLI turns it into a nonzero exit).
  try {
    for (std::optional<ServeRequest> request = reader.next(); request;
         request = reader.next()) {
      if (request->hello) {
        // The handshake is always the stream's first record (the reader
        // enforces it), so the reply precedes every result line.
        out << hello_reply();
        continue;  // consumes no request ordinal, no dispatcher slot
      }
      Pending p;
      p.id = request->id;
      p.key = request->topology_key;
      // Single-stream serving lives in cache namespace 0; the TCP
      // front-end namespaces by connection (serve/connection.h).
      const CacheKey cache_key{0, p.key};

      // Sessions ride with their cache entry: a tree record's base solve
      // fills the session's DP tables cold, subsequent delta requests on
      // the same topology re-solve warm, and eviction drops the session
      // with the topology (in-flight solves keep it alive via the
      // shared_ptr).
      std::optional<Instance> instance;
      std::shared_ptr<SolveSession> session;
      if (request->tree) {
        auto topology = request->tree->topology_ptr();
        Scenario base = std::move(request->tree->scenario());
        session = cache.put(cache_key, topology, base);
        instance.emplace(std::move(topology), std::move(base), config_.modes,
                         config_.costs, config_.cost_budget);
      } else {
        std::optional<CachedTopology> entry = cache.get(cache_key);
        if (!entry) {
          ServeResult miss;
          miss.error = "unknown topology '" + p.key +
                       "' (not in the stream, or evicted from the cache)";
          p.result = ready_result(std::move(miss));
        } else {
          try {
            // The cache handed out a private fork; apply the deltas on top.
            Scenario scen = std::move(entry->base);
            for (const ScenarioDelta& delta : request->deltas) {
              apply_delta(scen, delta);
            }
            session = std::move(entry->session);
            instance.emplace(std::move(entry->topology), std::move(scen),
                             config_.modes, config_.costs,
                             config_.cost_budget);
          } catch (const CheckError& e) {
            ServeResult bad;
            bad.error = e.what();
            p.result = ready_result(std::move(bad));
          }
        }
      }

      if (instance) {
        if (config_.project_original_modes) {
          project_to_single_mode(instance->scenario);
        }
        p.result = dispatcher.submit(0, std::move(*instance),
                                     std::move(session),
                                     std::move(request->deltas));
      }

      pending.push_back(std::move(p));
      ++summary.requests;
      while (pending.size() > window) {
        emit(pending.front());
        pending.pop_front();
      }
    }
  } catch (const CheckError& e) {
    summary.stream_error = true;
    summary.stream_error_message = e.what();
  }
  for (Pending& p : pending) emit(p);

  summary.wall_seconds = wall.seconds();
  summary.scenarios_per_second =
      summary.wall_seconds > 0.0
          ? static_cast<double>(summary.requests) / summary.wall_seconds
          : 0.0;
  summary.dispatcher = dispatcher.stats();
  summary.cache = cache.stats();

  const SolverLatencyStats& solver = summary.dispatcher.per_solver[0];
  const double solves = static_cast<double>(
      solver.solves > 0 ? solver.solves : 1);
  out << "# serve: " << summary.requests << " requests in "
      << summary.wall_seconds << " s (" << summary.scenarios_per_second
      << " scenarios/s, " << dispatcher.threads() << " threads, queue "
      << window << ")\n"
      << "# serve: ok=" << summary.ok << " infeasible=" << summary.infeasible
      << " errors=" << summary.errors
      << " over_budget=" << summary.over_budget << "\n"
      << "# cache: capacity=" << summary.cache.capacity
      << " size=" << summary.cache.size << " hits=" << summary.cache.hits
      << " misses=" << summary.cache.misses
      << " evictions=" << summary.cache.evictions << "\n"
      << "# solver " << solver.algo << ": solves=" << solver.solves
      << " warm=" << solver.warm
      << " session_bytes=" << summary.cache.session_bytes
      << " session_budget="
      << (config_.session_max_bytes != 0
              ? std::to_string(config_.session_max_bytes)
              : std::string("unbounded"))
      << " dropped_snapshots=" << summary.cache.session_snapshots_dropped
      << " dropped_tables=" << summary.cache.session_tables_dropped
      << " cells_skipped=" << summary.cache.session_cells_skipped
      << " subtrees_sealed=" << summary.cache.session_subtrees_sealed
      << " sealed_cells=" << summary.cache.session_sealed_cells
      << " errors=" << solver.errors
      << " mean_queue_s=" << solver.total_queue_seconds / solves
      << " mean_solve_s=" << solver.total_solve_seconds / solves
      << " max_solve_s=" << solver.max_solve_seconds
      << " work=" << solver.total_work << "\n";
  if (summary.stream_error) {
    out << "# serve: stream error: " << summary.stream_error_message << "\n";
  }
  return summary;
}

}  // namespace treeplace::serve
