#include "serve/dispatcher.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "solver/registry.h"
#include "support/timer.h"

namespace treeplace::serve {

namespace {

std::size_t resolve_threads(const DispatcherConfig& config) {
  return config.threads ? config.threads : ThreadPool::default_thread_count();
}

}  // namespace

SolveDispatcher::SolveDispatcher(DispatcherConfig config)
    : pool_(resolve_threads(config)) {
  TREEPLACE_CHECK_MSG(!config.algos.empty(),
                      "SolveDispatcher needs at least one solver");
  queue_capacity_ =
      config.queue_capacity ? config.queue_capacity : 4 * pool_.size();
  solvers_.reserve(config.algos.size());
  stats_.per_solver.reserve(config.algos.size());
  for (const std::string& algo : config.algos) {
    auto solver = SolverRegistry::instance().create(algo);
    solver->set_options(Solver::Options{config.solver_threads});
    stats_.per_solver.push_back(SolverLatencyStats{.algo = algo});
    solvers_.push_back(std::move(solver));
  }
}

std::future<ServeResult> SolveDispatcher::submit(
    std::size_t solver_index, Instance instance,
    std::shared_ptr<SolveSession> session, std::vector<ScenarioDelta> deltas) {
  TREEPLACE_CHECK_MSG(solver_index < solvers_.size(),
                      "solver index " << solver_index << " out of range");
  const Solver& solver = *solvers_[solver_index];
  if (!solver.info().accepts(instance.num_internal(),
                             instance.modes.count())) {
    // Capability rejection: resolve immediately, never occupy a slot.
    ServeResult result;
    result.error = "solver '" + solver.name() +
                   "' does not accept this instance (" +
                   std::to_string(instance.num_internal()) +
                   " internal nodes, " +
                   std::to_string(instance.modes.count()) + " modes)";
    std::promise<ServeResult> ready;
    ready.set_value(std::move(result));
    std::scoped_lock lock(mutex_);
    ++stats_.submitted;
    ++stats_.completed;
    ++stats_.per_solver[solver_index].errors;
    return ready.get_future();
  }

  {
    std::unique_lock lock(mutex_);
    slot_freed_.wait(lock, [this] { return in_flight_ < queue_capacity_; });
    ++in_flight_;
    ++stats_.submitted;
    stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
  }
  Stopwatch queued;
  return pool_.submit([this, solver_index, instance = std::move(instance),
                       session = std::move(session),
                       deltas = std::move(deltas), queued] {
    return run_solve(solver_index, instance, session.get(), deltas,
                     queued.seconds());
  });
}

bool SolveDispatcher::try_reserve_slot() {
  std::scoped_lock lock(mutex_);
  if (in_flight_ >= queue_capacity_) return false;
  ++in_flight_;
  ++stats_.submitted;
  stats_.max_in_flight = std::max(stats_.max_in_flight, in_flight_);
  return true;
}

void SolveDispatcher::release_reserved_slot() {
  std::scoped_lock lock(mutex_);
  --stats_.submitted;
  --in_flight_;
  slot_freed_.notify_one();
}

void SolveDispatcher::submit_reserved(std::size_t solver_index,
                                      Instance instance,
                                      std::shared_ptr<SolveSession> session,
                                      std::vector<ScenarioDelta> deltas,
                                      CompletionFn done) {
  TREEPLACE_CHECK_MSG(solver_index < solvers_.size(),
                      "solver index " << solver_index << " out of range");
  const Solver& solver = *solvers_[solver_index];
  if (!solver.info().accepts(instance.num_internal(),
                             instance.modes.count())) {
    ServeResult result;
    result.error = "solver '" + solver.name() +
                   "' does not accept this instance (" +
                   std::to_string(instance.num_internal()) +
                   " internal nodes, " +
                   std::to_string(instance.modes.count()) + " modes)";
    {
      // Release the reserved slot first, so a retry from inside `done`
      // can reserve again.
      std::scoped_lock lock(mutex_);
      ++stats_.completed;
      ++stats_.per_solver[solver_index].errors;
      --in_flight_;
      slot_freed_.notify_one();
    }
    done(std::move(result));
    return;
  }

  Stopwatch queued;
  // run_solve releases the queue slot before returning, so by the time
  // `done` fires the caller may immediately reserve again.
  pool_.submit([this, solver_index, instance = std::move(instance),
                session = std::move(session), deltas = std::move(deltas),
                queued, done = std::move(done)]() mutable {
    done(run_solve(solver_index, instance, session.get(), deltas,
                   queued.seconds()));
  });
}

ServeResult SolveDispatcher::run_solve(
    std::size_t solver_index, const Instance& instance, SolveSession* session,
    const std::vector<ScenarioDelta>& deltas, double queue_seconds) {
  ServeResult result;
  result.queue_seconds = queue_seconds;
  const Solver& solver = *solvers_[solver_index];
  Stopwatch watch;
  try {
    if (session != nullptr && solver.supports_incremental()) {
      // Warm solves over one session serialize; sessions are per topology,
      // so only same-topology requests contend.
      std::scoped_lock session_lock(session->solve_mutex());
      result.solution = solver.solve(SolveRequest{instance, deltas, session});
      result.warm = true;
    } else {
      result.solution = solver.solve(instance);
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  result.solve_seconds = watch.seconds();

  std::scoped_lock lock(mutex_);
  SolverLatencyStats& stats = stats_.per_solver[solver_index];
  if (result.ok) {
    ++stats.solves;
    if (result.warm) ++stats.warm;
    if (!result.solution.feasible) ++stats.infeasible;
    stats.total_work += result.solution.stats.work;
  } else {
    ++stats.errors;
  }
  stats.total_queue_seconds += result.queue_seconds;
  stats.total_solve_seconds += result.solve_seconds;
  stats.max_solve_seconds =
      std::max(stats.max_solve_seconds, result.solve_seconds);
  ++stats_.completed;
  --in_flight_;
  slot_freed_.notify_one();
  return result;
}

DispatcherStats SolveDispatcher::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

}  // namespace treeplace::serve
