// Zero-copy wire framing for the network serving front-end.
//
// The TCP server (serve/net_server.h) speaks the exact line-record protocol
// of the stream server — `treeplace-*` records in, `result ...` lines out —
// but over thousands of non-blocking sockets, so parsing must be
// *incremental*: bytes arrive in arbitrary fragments and no reader thread
// can block on an istream.  This header owns the three framing pieces:
//
//   * LineBuffer — an append-only byte window sockets read() straight into
//     (writable()/commit()); next_line() yields complete lines as
//     string_views over the buffer, no copy, trailing CR stripped (CRLF
//     clients are accepted everywhere), with an oversized-line guard so a
//     hostile peer cannot balloon memory with an unterminated line.
//   * RecordParser — the incremental twin of serve/request_stream.h's
//     RequestStreamReader: fed one line at a time it assembles the same
//     ServeRequests with the same ordinal topology keys and the same
//     CheckErrors on malformed input.  A record is completed by the next
//     record header or by end-of-input (finish()), exactly as in stream
//     mode; number parsing runs on std::from_chars so the per-line hot
//     path performs no stream or string allocation.
//   * OutputBuffer — pending result bytes per connection, consumed as the
//     socket accepts writes.
//
// Rendering also lives here: render_result() produces the byte-identical
// `result ...` line the StreamServer emits (both servers call it), which is
// what makes `bench/connection_churn`'s bit-identity gate possible.  The
// only per-run bytes are the queue_s=/solve_s= timing fields;
// strip_timings() removes them for comparisons.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "serve/dispatcher.h"
#include "serve/request_stream.h"

namespace treeplace::serve {

// ---------------------------------------------------------------------------
// LineBuffer

/// Incremental line framing over bytes read from a socket.  The buffer
/// compacts itself: consumed bytes are dropped the next time write space is
/// requested, so steady-state serving reuses one allocation per connection.
class LineBuffer {
 public:
  static constexpr std::size_t kDefaultMaxLineBytes = 1 << 20;

  explicit LineBuffer(std::size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// A span of at least `min_bytes` to read() into; invalidates views
  /// returned by next_line().  Call commit(n) with the bytes actually read.
  std::span<char> writable(std::size_t min_bytes);
  void commit(std::size_t n) { end_ += n; }

  /// The next complete line ('\n'-terminated; terminator and any trailing
  /// '\r' stripped), or nullopt when no full line is buffered.  The view
  /// points into the buffer and stays valid until the next writable() call.
  /// Throws CheckError when a line exceeds the max line length.
  std::optional<std::string_view> next_line();

  /// Consumes and returns the trailing unterminated bytes, if any — the
  /// final "line" of a peer that half-closed without a trailing newline
  /// (parity with stream mode, where getline returns it at EOF).
  std::optional<std::string_view> take_rest();

  /// Unconsumed bytes currently buffered (complete and partial lines).
  std::size_t buffered_bytes() const { return end_ - begin_; }
  /// True when a partial (unterminated) line is pending — end-of-stream in
  /// this state means the peer was cut off mid-record.
  bool mid_line() const { return end_ > begin_; }

 private:
  std::string data_;
  std::size_t begin_ = 0;  ///< first unconsumed byte
  std::size_t end_ = 0;    ///< one past the last committed byte
  std::size_t scan_ = 0;   ///< newline search resumes here
  std::size_t max_line_bytes_;
};

// ---------------------------------------------------------------------------
// OutputBuffer

/// Pending outbound bytes of one connection, drained by non-blocking
/// write()s.  size() is the backpressure signal: past the per-connection
/// cap the server stops reading the socket until the client catches up.
class OutputBuffer {
 public:
  void append(std::string_view bytes);
  std::span<const char> pending() const {
    return {data_.data() + begin_, data_.size() - begin_};
  }
  void consume(std::size_t n);
  std::size_t size() const { return data_.size() - begin_; }
  bool empty() const { return size() == 0; }

 private:
  std::string data_;
  std::size_t begin_ = 0;
};

// ---------------------------------------------------------------------------
// RecordParser

/// Incremental record assembly: feed complete lines, collect ServeRequests.
/// Semantics mirror RequestStreamReader line for line — ordinal tree keys,
/// optional E-delta modes, token-exact header matching, CheckError on
/// malformed input (a per-connection protocol error on the wire).
class RecordParser {
 public:
  /// Feeds one framed line (no terminator).  Returns the record this line
  /// *completed* — i.e. when `line` is the header starting the next record.
  /// Blank and comment lines are skipped anywhere, as in stream mode.
  std::optional<ServeRequest> feed(std::string_view line);

  /// End of input: completes the in-progress record, if any.  The wire
  /// contract matches the stream reader's: a client that half-closes its
  /// write side terminates its final record.
  std::optional<ServeRequest> finish();

  /// True while a record is being assembled (EOF here is mid-record only
  /// if the line itself was also truncated; line-aligned EOF ends the
  /// record, exactly as in stream mode).
  bool in_record() const { return state_ != State::kIdle; }

  std::size_t requests_read() const { return requests_; }
  std::size_t trees_read() const { return trees_; }

 private:
  enum class State { kIdle, kTree, kScenario };

  ServeRequest complete();

  State state_ = State::kIdle;
  TreeBuilder builder_;
  NodeId next_node_id_ = 0;
  ServeRequest current_;
  std::size_t requests_ = 0;
  std::size_t trees_ = 0;
  bool hello_seen_ = false;
};

// ---------------------------------------------------------------------------
// Result rendering (shared by StreamServer and NetServer)

struct ResultFormat {
  bool print_placements = true;
  bool has_budget = false;
};

enum class ResultStatus { kOk, kInfeasible, kError };

struct RenderedResult {
  std::string line;  ///< one full "result ...\n" record
  ResultStatus status = ResultStatus::kOk;
  bool budget_missed = false;
  bool warm = false;
  double solve_seconds = 0.0;
};

/// Renders one result record byte-identically to the stream server's
/// historical format (it now calls this too).
RenderedResult render_result(std::size_t id, const std::string& topo_key,
                             const ServeResult& result,
                             const ResultFormat& format);

/// Strips the per-run timing fields (queue_s=, solve_s=) from a block of
/// result lines, for bit-identity comparisons across serve modes.
std::string strip_timings(const std::string& results);

// ---------------------------------------------------------------------------
// Latency histogram

/// Fixed-footprint log-bucketed latency histogram (1us .. ~5000s, ~25%
/// resolution) for the serving loop's p50/p99 summary lines.
class LatencyHistogram {
 public:
  void record(double seconds);
  /// Adds every sample of `other` (shard summaries aggregate into one
  /// server-wide histogram; buckets are identical by construction).
  void merge(const LatencyHistogram& other);
  /// The upper bound of the bucket holding the p-th percentile sample
  /// (p in [0, 1]); 0 when empty.
  double percentile(double p) const;
  std::uint64_t count() const { return count_; }

 private:
  static constexpr std::size_t kBuckets = 100;
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

}  // namespace treeplace::serve
