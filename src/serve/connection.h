// Per-connection serving state for the TCP front-end.
//
// A Connection owns everything one client socket accumulates between
// events: the inbound LineBuffer the socket reads into, the incremental
// RecordParser assembling `treeplace-*` records, the queue of parsed
// requests waiting for a dispatcher slot, the per-connection ordering
// bookkeeping (sequence numbers plus an out-of-order completion buffer),
// and the OutputBuffer of rendered result lines the socket drains.
//
// Ordering contract: requests are assigned consecutive sequence numbers at
// submit time; completions arrive from worker threads in any order and are
// parked in `complete()` until every earlier sequence has been emitted, so
// the bytes written to the socket are in request order — exactly the
// stream server's guarantee, per connection.
//
// The class is plain single-threaded state: only the event loop touches
// it.  Worker threads never see a Connection — they hand completions to
// the loop through the server's completion queue, keyed by the connection
// uid (so a completion for a connection that died in the meantime is
// simply dropped).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "serve/request_stream.h"
#include "serve/wire.h"

namespace treeplace::serve {

struct ConnectionStats {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t requests = 0;  ///< records submitted
  std::uint64_t results = 0;   ///< result lines emitted
  std::uint64_t backpressure_stalls = 0;  ///< reads paused: dispatcher full
};

class Connection {
 public:
  /// Takes ownership of `fd` (closed on destruction).  `uid` is the
  /// server-unique id used to namespace topology-cache keys and to route
  /// completions back from worker threads.
  Connection(int fd, std::uint64_t uid, std::size_t max_line_bytes);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  std::uint64_t uid() const { return uid_; }

  /// The topology-cache namespace this connection's ordinal keys live in:
  /// the uid by default (every connection sees a fresh key space), or the
  /// stable hash of the client's hello name — the identity that makes a
  /// session's warm state survive reconnects, shard kills and restarts.
  std::uint64_t namespace_id = 0;
  /// The namespace came from a hello name (persistable at drain).
  bool named = false;

  // --- inbound: socket read target + incremental parsing ------------------

  std::span<char> writable(std::size_t min_bytes) {
    return in_.writable(min_bytes);
  }
  void commit(std::size_t n) {
    in_.commit(n);
    stats_.bytes_in += n;
  }

  /// Frames every complete buffered line through the record parser;
  /// completed records are appended to ready_requests().  Throws
  /// CheckError on malformed input (a fatal per-connection protocol
  /// error; the caller renders it and closes the connection).
  void pump();

  /// The peer half-closed its write side: parse the trailing unterminated
  /// line, if any, and complete the in-progress record — end-of-input
  /// terminates a record exactly as in stream mode.
  void input_done();

  bool peer_eof() const { return peer_eof_; }
  std::size_t buffered_input() const { return in_.buffered_bytes(); }

  /// Parsed records waiting for a dispatcher slot.  While non-empty the
  /// server masks EPOLLIN on this socket: backpressure propagates to the
  /// peer instead of growing this queue.
  std::deque<ServeRequest>& ready_requests() { return ready_; }

  // --- ordering: sequence allocation and in-order completion --------------

  /// Assigns the next sequence number to a submitted request, recording
  /// `now_seconds` for the submit-to-emit latency histogram.
  std::size_t allocate_seq(double now_seconds);

  /// Parks an out-of-order completion until its turn.
  void complete(std::size_t seq, RenderedResult result);

  struct Done {
    RenderedResult result;
    double submit_seconds = 0.0;  ///< allocate_seq() timestamp
  };

  /// Pops the next in-request-order completed result, or nullopt while
  /// the head sequence is still in flight.
  std::optional<Done> next_completed();

  /// Sequences allocated but not yet emitted (drain barrier).
  std::size_t in_flight() const { return next_seq_ - next_emit_; }

  // --- outbound ------------------------------------------------------------

  OutputBuffer& out() { return out_; }

  // --- event-loop bookkeeping ----------------------------------------------

  ConnectionStats& stats() { return stats_; }
  const ConnectionStats& stats() const { return stats_; }

  /// Current poller registration (the loop diffs desired vs. these and
  /// issues one update() per transition).
  bool poll_read = true;
  bool poll_write = false;
  /// In the loop's stalled list (dispatcher queue was full).
  bool stalled = false;
  /// Set on a fatal protocol error; the connection stops reading, lets
  /// in-flight results finish, appends the error note, then closes.
  bool failed = false;
  std::string fail_reason;
  bool fail_noted = false;
  /// Idle-reaper hooks: connections sit in the server's activity-ordered
  /// list; uniform timeouts make the front the oldest.
  std::list<std::uint64_t>::iterator idle_pos;
  double last_activity_seconds = 0.0;

 private:
  int fd_;
  std::uint64_t uid_;
  LineBuffer in_;
  OutputBuffer out_;
  RecordParser parser_;
  std::deque<ServeRequest> ready_;
  bool peer_eof_ = false;

  std::size_t next_seq_ = 0;
  std::size_t next_emit_ = 0;
  std::deque<double> submit_times_;  ///< front() is next_emit_'s timestamp
  std::map<std::size_t, RenderedResult> completed_;

  ConnectionStats stats_;
};

}  // namespace treeplace::serve
