#include "serve/wire.h"

#include <charconv>
#include <cmath>
#include <cstring>
#include <sstream>

#include "support/check.h"
#include "tree/io.h"

namespace treeplace::serve {

// ---------------------------------------------------------------------------
// LineBuffer

std::span<char> LineBuffer::writable(std::size_t min_bytes) {
  // Compact first: consumed bytes are dead, and moving the live tail keeps
  // the buffer from creeping even on long-lived connections.
  if (begin_ > 0) {
    const std::size_t live = end_ - begin_;
    if (live > 0) std::memmove(data_.data(), data_.data() + begin_, live);
    end_ = live;
    scan_ -= begin_;
    begin_ = 0;
  }
  if (data_.size() - end_ < min_bytes) {
    data_.resize(std::max(end_ + min_bytes, data_.size() * 2));
  }
  return {data_.data() + end_, data_.size() - end_};
}

std::optional<std::string_view> LineBuffer::next_line() {
  const char* nl = static_cast<const char*>(
      std::memchr(data_.data() + scan_, '\n', end_ - scan_));
  if (nl == nullptr) {
    scan_ = end_;
    TREEPLACE_CHECK_MSG(end_ - begin_ <= max_line_bytes_,
                        "oversized line: " << (end_ - begin_)
                                           << " bytes without a newline "
                                              "(limit "
                                           << max_line_bytes_ << ")");
    return std::nullopt;
  }
  const std::size_t pos = static_cast<std::size_t>(nl - data_.data());
  std::size_t len = pos - begin_;
  TREEPLACE_CHECK_MSG(len <= max_line_bytes_,
                      "oversized line: " << len << " bytes (limit "
                                         << max_line_bytes_ << ")");
  if (len > 0 && data_[begin_ + len - 1] == '\r') --len;  // CRLF peers
  const std::string_view line(data_.data() + begin_, len);
  begin_ = pos + 1;
  scan_ = begin_;
  return line;
}

std::optional<std::string_view> LineBuffer::take_rest() {
  if (end_ == begin_) return std::nullopt;
  std::size_t len = end_ - begin_;
  if (data_[begin_ + len - 1] == '\r') --len;
  const std::string_view line(data_.data() + begin_, len);
  begin_ = end_;
  scan_ = end_;
  return line;
}

// ---------------------------------------------------------------------------
// OutputBuffer

void OutputBuffer::append(std::string_view bytes) {
  // Reclaim the consumed prefix before growing, once it dominates.
  if (begin_ > 4096 && begin_ > data_.size() - begin_) {
    data_.erase(0, begin_);
    begin_ = 0;
  }
  data_.append(bytes);
}

void OutputBuffer::consume(std::size_t n) {
  begin_ += n;
  if (begin_ == data_.size()) {
    data_.clear();
    begin_ = 0;
  }
}

// ---------------------------------------------------------------------------
// RecordParser

namespace {

/// Cursor-based tokenizer matching istringstream extraction: skip blanks,
/// parse signed/unsigned integers in place, no allocation.
struct Cursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
  }
  bool at_end() {
    skip_ws();
    return p == end;
  }

  template <typename T>
  bool parse_int(T& out) {
    skip_ws();
    const char* start = p;
    if (start < end && *start == '+') ++start;  // istreams accept a leading +
    const auto [next, ec] = std::from_chars(start, end, out);
    if (ec != std::errc{}) return false;
    p = next;
    return true;
  }
};

/// Parses one delta line with the exact acceptance rules of
/// request_stream.cc's parse_delta_line (tag = first non-blank char, ints
/// follow, no trailing garbage).
ScenarioDelta parse_delta(std::string_view line) {
  Cursor c{line.data(), line.data() + line.size()};
  c.skip_ws();
  TREEPLACE_CHECK_MSG(c.p < c.end, "malformed delta line: '" << line << "'");
  const char tag = *c.p++;
  ScenarioDelta delta;
  switch (tag) {
    case 'R':
      delta.op = ScenarioDelta::Op::kSetRequests;
      TREEPLACE_CHECK_MSG(
          c.parse_int(delta.node) && c.parse_int(delta.requests),
          "malformed R delta: '" << line << "'");
      break;
    case 'E':
      delta.op = ScenarioDelta::Op::kSetPreExisting;
      TREEPLACE_CHECK_MSG(c.parse_int(delta.node),
                          "malformed E delta: '" << line << "'");
      if (!c.at_end()) {
        TREEPLACE_CHECK_MSG(c.parse_int(delta.mode),
                            "malformed E delta: '" << line << "'");
      }
      break;
    case 'X':
      delta.op = ScenarioDelta::Op::kClearPreExisting;
      TREEPLACE_CHECK_MSG(c.parse_int(delta.node),
                          "malformed X delta: '" << line << "'");
      break;
    case 'Z':
      delta.op = ScenarioDelta::Op::kClearAllPre;
      break;
    default:
      TREEPLACE_CHECK_MSG(false, "unknown delta tag '" << tag << "' in '"
                                                       << line << "'");
  }
  TREEPLACE_CHECK_MSG(c.at_end(),
                      "trailing garbage in delta line: '" << line << "'");
  return delta;
}

/// Parses one tree node line with io.cc's parse_node_line semantics
/// (consecutive ids enforced; trailing tokens tolerated, as there).
void parse_node(TreeBuilder& builder, std::string_view line,
                NodeId expected_id) {
  Cursor c{line.data(), line.data() + line.size()};
  c.skip_ws();
  TREEPLACE_CHECK_MSG(c.p < c.end, "malformed tree line: '" << line << "'");
  const char tag = *c.p++;
  NodeId id = kNoNode;
  NodeId parent = kNoNode;
  TREEPLACE_CHECK_MSG(c.parse_int(id) && c.parse_int(parent),
                      "malformed tree line: '" << line << "'");
  TREEPLACE_CHECK_MSG(id == expected_id,
                      "node ids must be consecutive; expected "
                          << expected_id << ", got " << id);
  if (tag == 'I') {
    int pre = 0;
    int orig_mode = -1;
    TREEPLACE_CHECK_MSG(c.parse_int(pre) && c.parse_int(orig_mode),
                        "malformed internal line: '" << line << "'");
    const NodeId got =
        (parent == kNoNode) ? builder.add_root() : builder.add_internal(parent);
    TREEPLACE_CHECK(got == id);
    if (pre != 0) builder.set_pre_existing(id, orig_mode < 0 ? 0 : orig_mode);
  } else if (tag == 'C') {
    RequestCount requests = 0;
    TREEPLACE_CHECK_MSG(c.parse_int(requests),
                        "malformed client line: '" << line << "'");
    const NodeId got = builder.add_client(parent, requests);
    TREEPLACE_CHECK(got == id);
  } else {
    TREEPLACE_CHECK_MSG(false, "unknown node tag '" << tag << "'");
  }
}

bool is_record_header(std::string_view line) {
  return line.rfind("treeplace-", 0) == 0;
}

std::string_view next_token(std::string_view& rest) {
  std::size_t i = 0;
  while (i < rest.size() && (rest[i] == ' ' || rest[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < rest.size() && rest[j] != ' ' && rest[j] != '\t') ++j;
  const std::string_view token = rest.substr(i, j - i);
  rest = rest.substr(j);
  return token;
}

}  // namespace

ServeRequest RecordParser::complete() {
  if (state_ == State::kTree) {
    current_.tree = std::move(builder_).build();  // may throw: count after
    builder_ = TreeBuilder{};
    ++trees_;
    current_.topology_key = std::to_string(trees_);
  }
  state_ = State::kIdle;
  current_.id = ++requests_;
  ServeRequest done = std::move(current_);
  current_ = ServeRequest{};
  return done;
}

std::optional<ServeRequest> RecordParser::feed(std::string_view line) {
  if (line.empty() || line[0] == '#') return std::nullopt;

  if (is_hello_line(line)) {
    // The handshake is a single header line with no body, valid only as
    // the very first record — which also means there is never an
    // in-progress record to complete, so it can be returned immediately
    // (a client waiting on the hello reply must not deadlock until its
    // next record arrives).
    TREEPLACE_CHECK_MSG(
        state_ == State::kIdle && requests_ == 0 && trees_ == 0 &&
            !hello_seen_,
        "hello must be the first record of the stream");
    hello_seen_ = true;
    ServeRequest request;  // id stays 0: hello consumes no ordinal
    request.hello = parse_hello_line(line);
    return request;
  }

  if (is_record_header(line)) {
    std::optional<ServeRequest> completed;
    if (state_ != State::kIdle) completed = complete();

    if (line == TreeStreamReader::tree_header()) {
      state_ = State::kTree;
      next_node_id_ = 0;
    } else {
      // Token-exact matching, as in RequestStreamReader: "v12" is an
      // unknown record, not v1 with a mangled key.
      std::string_view rest = line;
      const std::string_view kind = next_token(rest);
      const std::string_view version = next_token(rest);
      TREEPLACE_CHECK_MSG(kind == "treeplace-scenario" && version == "v1",
                          "unknown record header: '" << line << "'");
      const std::string_view key = next_token(rest);
      TREEPLACE_CHECK_MSG(!key.empty(),
                          "scenario record without a topology key: '"
                              << line << "'");
      state_ = State::kScenario;
      current_.topology_key.assign(key);
    }
    return completed;
  }

  switch (state_) {
    case State::kIdle:
      TREEPLACE_CHECK_MSG(false, "bad record header: '" << line << "'");
      break;
    case State::kTree:
      parse_node(builder_, line, next_node_id_);
      ++next_node_id_;
      break;
    case State::kScenario:
      current_.deltas.push_back(parse_delta(line));
      break;
  }
  return std::nullopt;
}

std::optional<ServeRequest> RecordParser::finish() {
  if (state_ == State::kIdle) return std::nullopt;
  return complete();
}

// ---------------------------------------------------------------------------
// Result rendering

RenderedResult render_result(std::size_t id, const std::string& topo_key,
                             const ServeResult& result,
                             const ResultFormat& format) {
  RenderedResult out;
  out.warm = result.warm;
  out.solve_seconds = result.solve_seconds;
  std::ostringstream os;
  os << "result id=" << id << " topo=" << topo_key;
  if (!result.ok) {
    out.status = ResultStatus::kError;
    os << " status=error error=\"" << result.error << "\"\n";
    out.line = os.str();
    return out;
  }
  const Solution& s = result.solution;
  if (!s.feasible) {
    out.status = ResultStatus::kInfeasible;
    os << " status=infeasible queue_s=" << result.queue_seconds
       << " solve_s=" << result.solve_seconds << "\n";
    out.line = os.str();
    return out;
  }
  out.status = ResultStatus::kOk;
  os << " status=ok cost=" << s.breakdown.cost << " power=" << s.power
     << " servers=" << s.breakdown.servers << " reused=" << s.breakdown.reused
     << " created=" << s.breakdown.created
     << " deleted=" << s.breakdown.deleted
     << " frontier=" << s.frontier.size();
  if (format.has_budget) {
    os << " budget=" << (s.budget_met ? "met" : "miss");
    out.budget_missed = !s.budget_met;
  }
  os << " queue_s=" << result.queue_seconds
     << " solve_s=" << result.solve_seconds << " work=" << s.stats.work;
  if (format.print_placements) {
    os << " placement=";
    if (s.placement.empty()) {
      os << '-';
    } else {
      for (std::size_t i = 0; i < s.placement.nodes().size(); ++i) {
        if (i > 0) os << ',';
        os << s.placement.nodes()[i] << ':' << s.placement.modes()[i];
      }
    }
  }
  os << "\n";
  out.line = os.str();
  return out;
}

std::string strip_timings(const std::string& results) {
  std::istringstream is(results);
  std::string out;
  std::string line;
  while (std::getline(is, line)) {
    std::string_view rest = line;
    bool first = true;
    while (!rest.empty()) {
      const std::string_view token = next_token(rest);
      if (token.empty()) break;
      if (token.rfind("queue_s=", 0) == 0 || token.rfind("solve_s=", 0) == 0) {
        continue;
      }
      if (!first) out += ' ';
      out.append(token);
      first = false;
    }
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// LatencyHistogram

namespace {
constexpr double kLatencyBase = 1e-6;  ///< bucket 0 upper bound: 1.25us
constexpr double kLatencyRatio = 1.25;
}  // namespace

void LatencyHistogram::record(double seconds) {
  std::size_t idx = 0;
  if (seconds > kLatencyBase) {
    idx = static_cast<std::size_t>(
        std::log(seconds / kLatencyBase) / std::log(kLatencyRatio));
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  ++buckets_[idx];
  ++count_;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      return kLatencyBase * std::pow(kLatencyRatio, static_cast<double>(i + 1));
    }
  }
  return kLatencyBase * std::pow(kLatencyRatio, static_cast<double>(kBuckets));
}

}  // namespace treeplace::serve
