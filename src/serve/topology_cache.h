// LRU cache of resident topologies for the batch-serving loop.
//
// The serving stream interleaves full tree records (which define a topology
// plus its base scenario) with lightweight scenario-delta records that
// reference an earlier topology by key.  Keeping the hot topologies
// resident turns the per-request work into an O(N) scenario fork plus the
// solve itself — no re-parsing, no structure rebuilding.  Eviction is
// safe at any time: topologies are handed out as shared_ptr, so in-flight
// solves keep an evicted structure alive until they finish.
//
// Thread-safe: the serving loop's reader thread registers topologies while
// pool workers may still hold references from earlier requests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "solver/session.h"
#include "tree/scenario.h"
#include "tree/topology.h"

namespace treeplace::serve {

/// Typed cache key: a topology key (the stream's ordinal "1", "2", ...)
/// scoped by a namespace.  The single-stream server uses namespace 0; the
/// TCP front-end namespaces by connection (uid, or the stable hash of the
/// client's hello name), which is what lets every connection see the same
/// ordinal keys a fresh stream would.  The same key identifies the entry
/// in the shard router's hash ring and in on-disk snapshot file names, so
/// a named session migrates shards or restarts under one identity.
struct CacheKey {
  std::uint64_t namespace_id = 0;
  std::string topology_key;

  bool operator==(const CacheKey&) const = default;

  /// Stable (process-independent) hash: FNV-1a over the key bytes mixed
  /// with the namespace, shared by the cache map and the shard ring.
  std::uint64_t hash() const;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    return static_cast<std::size_t>(key.hash());
  }
};

/// A resident topology with the base scenario its defining tree record
/// carried, plus the warm-start SolveSession bound to this topology's
/// lifetime in the cache.  Scenario-delta requests fork the base (a cheap
/// flat-array copy), apply their edits on top, and solve through the
/// session so unchanged subtree tables are reused.  Eviction drops the
/// cache's reference; in-flight solves keep the session alive via their
/// own shared_ptr until they finish.
struct CachedTopology {
  std::shared_ptr<const Topology> topology;
  Scenario base;
  std::shared_ptr<SolveSession> session;
};

struct TopologyCacheStats {
  std::size_t capacity = 0;
  std::size_t size = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Aggregated over the *resident* sessions (warm-start byte budget,
  /// SolveSession::Options::max_bytes): bytes held after the last warm
  /// solve, and how much state the budget has shed so far.
  std::uint64_t session_bytes = 0;
  std::uint64_t session_snapshots_dropped = 0;
  std::uint64_t session_tables_dropped = 0;
  /// Output cells spliced by lazy root-path joins across resident
  /// sessions (see core/merge_kernel.h) — warm-solve work avoided.
  std::uint64_t session_cells_skipped = 0;
  /// Frozen-subtree contraction across resident sessions (see
  /// solver/contracted.h): subtrees sealed into injected leaves, and the
  /// root-table cells those leaves spliced into contracted merge plans.
  std::uint64_t session_subtrees_sealed = 0;
  std::uint64_t session_sealed_cells = 0;
};

class TopologyCache {
 public:
  /// A cache holding at most `capacity` topologies (>= 1).  Every session
  /// created by put() inherits `session_options` — in particular the
  /// per-session byte budget that lets one cache hold many more warm
  /// topologies than unbounded sessions would.
  explicit TopologyCache(std::size_t capacity,
                         SolveSession::Options session_options = {});

  /// Inserts (or replaces) the entry under `key` and marks it most
  /// recently used, evicting the least recently used entry when full.
  /// A fresh SolveSession is created for the entry (replacing any prior
  /// one — a re-registered topology starts cold); the returned pointer is
  /// the entry's session, for callers that solve the defining tree record
  /// itself through it.
  std::shared_ptr<SolveSession> put(const CacheKey& key,
                                    std::shared_ptr<const Topology> topology,
                                    Scenario base);

  /// The entry under `key` (marked most recently used), or nullopt.  The
  /// returned copy IS the request's scenario fork: the caller owns it and
  /// may mutate it freely.
  std::optional<CachedTopology> get(const CacheKey& key);

  bool contains(const CacheKey& key) const;
  std::size_t size() const;
  TopologyCacheStats stats() const;

  /// Visits every resident entry under the cache mutex (recency order is
  /// untouched).  The shard drain path uses this to snapshot named
  /// sessions to disk; keep `fn` cheap or call at quiescent points only.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::scoped_lock lock(mutex_);
    for (const auto& [key, entry] : entries_) fn(key, entry.value);
  }

 private:
  // Keys in recency order, most recent first; the map points into the list.
  struct Entry {
    CachedTopology value;
    std::list<CacheKey>::iterator recency;
  };

  void touch(Entry& entry);  // requires mutex_ held

  const std::size_t capacity_;
  const SolveSession::Options session_options_;
  mutable std::mutex mutex_;
  std::list<CacheKey> recency_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_;
  TopologyCacheStats stats_;
};

}  // namespace treeplace::serve
