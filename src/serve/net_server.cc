#include "serve/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ostream>
#include <utility>

#include "support/check.h"
#include "support/env.h"
#include "support/timer.h"

namespace treeplace::serve {

// ---------------------------------------------------------------------------
// Poller backends

namespace {

class PollPoller final : public Poller {
 public:
  void add(int fd, bool read, bool write) override {
    TREEPLACE_CHECK(!index_.count(fd));
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, mask(read, write), 0});
  }

  void update(int fd, bool read, bool write) override {
    fds_[index_.at(fd)].events = mask(read, write);
  }

  void remove(int fd) override {
    const std::size_t i = index_.at(fd);
    index_.erase(fd);
    if (i + 1 != fds_.size()) {
      fds_[i] = fds_.back();
      index_[fds_[i].fd] = i;
    }
    fds_.pop_back();
  }

  void wait(std::vector<Event>& events, int timeout_ms) override {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      events.push_back(Event{p.fd, (p.revents & POLLIN) != 0,
                             (p.revents & POLLOUT) != 0,
                             (p.revents & (POLLERR | POLLHUP | POLLNVAL)) !=
                                 0});
    }
  }

  const char* name() const override { return "poll"; }

 private:
  static short mask(bool read, bool write) {
    return static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    TREEPLACE_CHECK_MSG(epfd_ >= 0,
                        "epoll_create1: " << std::strerror(errno));
  }
  ~EpollPoller() override { ::close(epfd_); }

  void add(int fd, bool read, bool write) override { ctl(EPOLL_CTL_ADD, fd, read, write); }
  void update(int fd, bool read, bool write) override { ctl(EPOLL_CTL_MOD, fd, read, write); }

  void remove(int fd) override {
    epoll_event ev{};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(std::vector<Event>& events, int timeout_ms) override {
    epoll_event buf[256];
    const int n = ::epoll_wait(epfd_, buf, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      events.push_back(Event{buf[i].data.fd, (buf[i].events & EPOLLIN) != 0,
                             (buf[i].events & EPOLLOUT) != 0,
                             (buf[i].events & (EPOLLERR | EPOLLHUP)) != 0});
    }
  }

  const char* name() const override { return "epoll"; }

 private:
  void ctl(int op, int fd, bool read, bool write) {
    epoll_event ev{};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    TREEPLACE_CHECK_MSG(::epoll_ctl(epfd_, op, fd, &ev) == 0,
                        "epoll_ctl(" << op << ", " << fd
                                     << "): " << std::strerror(errno));
  }

  int epfd_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> Poller::create(const std::string& backend) {
#ifdef __linux__
  if (backend != "poll") return std::make_unique<EpollPoller>();
#else
  (void)backend;
#endif
  return std::make_unique<PollPoller>();
}

std::unique_ptr<Poller> Poller::create() {
  return create(env_string("TREEPLACE_POLLER", "epoll"));
}

// ---------------------------------------------------------------------------
// NetServer setup

namespace {

in_addr_t parse_host(const std::string& host) {
  if (host.empty() || host == "*" || host == "0.0.0.0") return INADDR_ANY;
  if (host == "localhost") return htonl(INADDR_LOOPBACK);
  in_addr addr{};
  TREEPLACE_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr) == 1,
                      "cannot parse listen host '" << host
                                                   << "' (IPv4 dotted quad)");
  return addr.s_addr;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  TREEPLACE_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

NetServer::NetServer(NetServerConfig config) : config_(std::move(config)) {
  TREEPLACE_CHECK_MSG(config_.stream.dispatcher.algos.size() == 1,
                      "NetServer serves every request with one solver");
  int fds[2];
  TREEPLACE_CHECK_MSG(::pipe(fds) == 0,
                      "pipe: " << std::strerror(errno));
  wake_read_fd_ = fds[0];
  wake_write_fd_ = fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
}

NetServer::~NetServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
}

std::uint16_t NetServer::listen_and_bind() {
  TREEPLACE_CHECK_MSG(listen_fd_ < 0, "listen_and_bind() called twice");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TREEPLACE_CHECK_MSG(fd >= 0, "socket: " << std::strerror(errno));
  set_nonblocking(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parse_host(config_.host);
  addr.sin_port = htons(config_.port);
  TREEPLACE_CHECK_MSG(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind " << config_.host << ":" << config_.port << ": "
              << std::strerror(errno));
  TREEPLACE_CHECK_MSG(::listen(fd, 1024) == 0,
                      "listen: " << std::strerror(errno));

  socklen_t len = sizeof(addr);
  TREEPLACE_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  return port_;
}

void NetServer::shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

// ---------------------------------------------------------------------------
// The event loop

class NetServer::Loop {
 public:
  explicit Loop(NetServer& server)
      : server_(server),
        config_(server.config_),
        dispatcher_(config_.stream.dispatcher),
        cache_(config_.stream.cache_capacity,
               SolveSession::Options{config_.stream.session_max_bytes}),
        poller_(Poller::create()) {
    format_.print_placements = config_.stream.print_placements;
    format_.has_budget = config_.stream.cost_budget.has_value();
  }

  NetServerSummary run(std::ostream& summary_out);

 private:
  double now() const { return wall_.seconds(); }

  void push_completion(Completion completion);
  void drain_wake_pipe();
  void drain_completions();
  void retry_stalled();
  void accept_ready();
  void handle_readable(Connection* conn);
  void handle_writable(Connection* conn);
  void process_requests(Connection* conn);
  void flush_completed(Connection* conn);
  bool try_write(Connection* conn);  ///< false: connection was closed
  void update_interest(Connection* conn);
  void maybe_close(Connection* conn);
  void close_connection(Connection* conn);
  void fail_connection(Connection* conn, std::string reason);
  void touch_activity(Connection* conn);
  void reap_idle();
  void begin_drain();
  int poll_timeout_ms() const;
  void print_summary(std::ostream& out) const;

  NetServer& server_;
  const NetServerConfig& config_;
  SolveDispatcher dispatcher_;
  TopologyCache cache_;
  std::unique_ptr<Poller> poller_;
  ResultFormat format_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<int, Connection*> by_fd_;
  std::list<std::uint64_t> idle_order_;  ///< activity order, oldest first
  std::vector<std::uint64_t> stalled_;   ///< await a freed dispatcher slot
  std::uint64_t next_uid_ = 1;

  bool draining_ = false;
  double drain_start_ = 0.0;

  Stopwatch wall_;
  LatencyHistogram latency_;
  NetServerSummary summary_;
};

void NetServer::Loop::push_completion(Completion completion) {
  {
    std::scoped_lock lock(server_.completions_mutex_);
    server_.completions_.push_back(std::move(completion));
  }
  const char byte = 'c';
  [[maybe_unused]] const ssize_t n =
      ::write(server_.wake_write_fd_, &byte, 1);
}

void NetServer::Loop::drain_wake_pipe() {
  char buf[256];
  while (::read(server_.wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

void NetServer::Loop::drain_completions() {
  std::deque<Completion> batch;
  {
    std::scoped_lock lock(server_.completions_mutex_);
    batch.swap(server_.completions_);
  }
  for (Completion& c : batch) {
    const auto it = conns_.find(c.conn_uid);
    if (it == conns_.end()) continue;  // connection died mid-solve
    Connection* conn = it->second.get();
    conn->complete(c.seq, std::move(c.result));
    flush_completed(conn);
  }
}

void NetServer::Loop::retry_stalled() {
  if (stalled_.empty()) return;
  std::vector<std::uint64_t> retry;
  retry.swap(stalled_);
  for (const std::uint64_t uid : retry) {
    const auto it = conns_.find(uid);
    if (it == conns_.end()) continue;
    Connection* conn = it->second.get();
    conn->stalled = false;
    process_requests(conn);
    flush_completed(conn);
  }
}

void NetServer::Loop::accept_ready() {
  while (true) {
    const int fd = ::accept(server_.listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient (ECONNABORTED, EMFILE): retry later
    }
    if (draining_ || conns_.size() >= config_.max_conns) {
      ::close(fd);
      ++summary_.dropped;
      continue;
    }
    set_nonblocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const std::uint64_t uid = next_uid_++;
    auto conn = std::make_unique<Connection>(fd, uid, config_.max_line_bytes);
    conn->last_activity_seconds = now();
    idle_order_.push_back(uid);
    conn->idle_pos = std::prev(idle_order_.end());
    conn->poll_read = true;
    conn->poll_write = false;
    poller_->add(fd, true, false);
    by_fd_[fd] = conn.get();
    conns_[uid] = std::move(conn);
    ++summary_.accepted;
    summary_.peak_connections =
        std::max<std::uint64_t>(summary_.peak_connections, conns_.size());
  }
}

void NetServer::Loop::handle_readable(Connection* conn) {
  bool eof = false;
  while (true) {
    const std::span<char> buf = conn->writable(config_.read_chunk);
    const ssize_t n =
        ::read(conn->fd(), buf.data(), std::min(buf.size(), config_.read_chunk));
    if (n > 0) {
      conn->commit(static_cast<std::size_t>(n));
      summary_.bytes_in += static_cast<std::uint64_t>(n);
      touch_activity(conn);
      // One chunk per event: level-triggered readiness refires if more is
      // buffered, keeping service fair across thousands of sockets.
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // ECONNRESET and friends: treat as end of input
    break;
  }

  if (!conn->failed) {
    try {
      conn->pump();
      if (eof) conn->input_done();
    } catch (const CheckError& e) {
      fail_connection(conn, e.what());
    }
  } else if (eof) {
    conn->input_done();
  }
  process_requests(conn);
  flush_completed(conn);  // writes, re-arms interest, may close
}

void NetServer::Loop::handle_writable(Connection* conn) {
  if (!try_write(conn)) return;
  touch_activity(conn);
  // Output drained below the cap: resume submitting parsed records.
  process_requests(conn);
  flush_completed(conn);
}

void NetServer::Loop::process_requests(Connection* conn) {
  if (conn->failed) {
    conn->ready_requests().clear();
    return;
  }
  while (!conn->ready_requests().empty()) {
    if (conn->out().size() > config_.max_output_bytes) {
      if (conn->poll_read) ++summary_.output_stalls;
      break;  // slow consumer: resume when the socket drains
    }
    ServeRequest& request = conn->ready_requests().front();
    const std::string client_key = request.topology_key;
    const std::string cache_key =
        std::to_string(conn->uid()) + "#" + client_key;

    // Reserve the dispatcher slot before touching the request, so a full
    // queue leaves it intact for the retry (unknown-key and bad-delta
    // requests briefly hold a slot too; they release it inline below).
    if (!dispatcher_.try_reserve_slot()) {
      if (!conn->stalled) {
        conn->stalled = true;
        stalled_.push_back(conn->uid());
        ++summary_.backpressure_stalls;
        ++conn->stats().backpressure_stalls;
      }
      break;  // socket read interest drops until a slot frees up
    }

    // Mirrors StreamServer: tree records (re)register the topology and
    // solve through the fresh session; delta records fork the cached base.
    std::optional<Instance> instance;
    std::shared_ptr<SolveSession> session;
    std::optional<ServeResult> inline_error;
    if (request.tree) {
      auto topology = request.tree->topology_ptr();
      Scenario base = std::move(request.tree->scenario());
      session = cache_.put(cache_key, topology, base);
      instance.emplace(std::move(topology), std::move(base),
                       config_.stream.modes, config_.stream.costs,
                       config_.stream.cost_budget);
    } else {
      std::optional<CachedTopology> entry = cache_.get(cache_key);
      if (!entry) {
        ServeResult miss;
        miss.error = "unknown topology '" + client_key +
                     "' (not in the stream, or evicted from the cache)";
        inline_error = std::move(miss);
      } else {
        try {
          Scenario scen = std::move(entry->base);
          for (const ScenarioDelta& delta : request.deltas) {
            apply_delta(scen, delta);
          }
          session = std::move(entry->session);
          instance.emplace(std::move(entry->topology), std::move(scen),
                           config_.stream.modes, config_.stream.costs,
                           config_.stream.cost_budget);
        } catch (const CheckError& e) {
          ServeResult bad;
          bad.error = e.what();
          inline_error = std::move(bad);
        }
      }
    }

    const std::size_t seq = conn->allocate_seq(now());
    if (inline_error) {
      dispatcher_.release_reserved_slot();
      conn->complete(seq,
                     render_result(request.id, client_key, *inline_error,
                                   format_));
    } else {
      if (config_.stream.project_original_modes) {
        project_to_single_mode(instance->scenario);
      }
      const std::uint64_t uid = conn->uid();
      const std::size_t id = request.id;
      dispatcher_.submit_reserved(
          0, std::move(*instance), std::move(session),
          std::move(request.deltas),
          [this, uid, seq, id, client_key](ServeResult result) {
            push_completion(Completion{
                uid, seq,
                render_result(id, client_key, result, format_)});
          });
    }
    ++summary_.requests;
    ++conn->stats().requests;
    conn->ready_requests().pop_front();
  }
}

void NetServer::Loop::flush_completed(Connection* conn) {
  while (std::optional<Connection::Done> done = conn->next_completed()) {
    latency_.record(now() - done->submit_seconds);
    switch (done->result.status) {
      case ResultStatus::kOk:
        ++summary_.ok;
        if (done->result.budget_missed) ++summary_.over_budget;
        break;
      case ResultStatus::kInfeasible:
        ++summary_.infeasible;
        break;
      case ResultStatus::kError:
        ++summary_.errors;
        break;
    }
    conn->out().append(done->result.line);
    ++conn->stats().results;
  }
  if (conn->failed && !conn->fail_noted && conn->in_flight() == 0) {
    conn->fail_noted = true;
    ++summary_.protocol_errors;
    conn->out().append("# protocol error: " + conn->fail_reason + "\n");
  }
  if (!try_write(conn)) return;
  update_interest(conn);
  maybe_close(conn);
}

bool NetServer::Loop::try_write(Connection* conn) {
  while (!conn->out().empty()) {
    const std::span<const char> pending = conn->out().pending();
    const ssize_t n =
        ::send(conn->fd(), pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->out().consume(static_cast<std::size_t>(n));
      conn->stats().bytes_out += static_cast<std::uint64_t>(n);
      summary_.bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    close_connection(conn);  // EPIPE/ECONNRESET: peer is gone
    return false;
  }
  return true;
}

void NetServer::Loop::update_interest(Connection* conn) {
  const bool want_read = !conn->peer_eof() && !conn->failed && !draining_ &&
                         conn->ready_requests().empty() &&
                         conn->out().size() <= config_.max_output_bytes;
  const bool want_write = !conn->out().empty();
  if (want_read != conn->poll_read || want_write != conn->poll_write) {
    conn->poll_read = want_read;
    conn->poll_write = want_write;
    poller_->update(conn->fd(), want_read, want_write);
  }
}

void NetServer::Loop::maybe_close(Connection* conn) {
  const bool no_more_input = conn->peer_eof() || conn->failed || draining_;
  if (no_more_input && conn->ready_requests().empty() &&
      conn->in_flight() == 0 && conn->out().empty()) {
    close_connection(conn);
  }
}

void NetServer::Loop::close_connection(Connection* conn) {
  poller_->remove(conn->fd());
  by_fd_.erase(conn->fd());
  idle_order_.erase(conn->idle_pos);
  conns_.erase(conn->uid());  // destroys conn, closes the fd
}

void NetServer::Loop::fail_connection(Connection* conn, std::string reason) {
  conn->failed = true;
  conn->fail_reason = std::move(reason);
  conn->ready_requests().clear();
}

void NetServer::Loop::touch_activity(Connection* conn) {
  conn->last_activity_seconds = now();
  idle_order_.splice(idle_order_.end(), idle_order_, conn->idle_pos);
}

void NetServer::Loop::reap_idle() {
  if (config_.idle_timeout_seconds <= 0 || draining_) return;
  const double deadline = now() - config_.idle_timeout_seconds;
  while (!idle_order_.empty()) {
    Connection* conn = conns_.at(idle_order_.front()).get();
    if (conn->last_activity_seconds > deadline) break;
    if (conn->in_flight() > 0 || !conn->ready_requests().empty()) {
      touch_activity(conn);  // solver-busy, not client-idle
      continue;
    }
    ++summary_.reaped_idle;
    close_connection(conn);
  }
}

void NetServer::Loop::begin_drain() {
  if (draining_) return;
  draining_ = true;
  drain_start_ = now();
  if (server_.listen_fd_ >= 0) {
    poller_->remove(server_.listen_fd_);
    ::close(server_.listen_fd_);
    server_.listen_fd_ = -1;
  }
  // Sweep every connection: drop read interest, close the already-idle.
  std::vector<std::uint64_t> uids;
  uids.reserve(conns_.size());
  for (const auto& [uid, conn] : conns_) uids.push_back(uid);
  for (const std::uint64_t uid : uids) {
    const auto it = conns_.find(uid);
    if (it == conns_.end()) continue;
    flush_completed(it->second.get());
  }
}

int NetServer::Loop::poll_timeout_ms() const {
  if (draining_) return 100;  // heartbeat for the drain deadline
  if (config_.idle_timeout_seconds > 0 && !idle_order_.empty()) {
    const Connection* conn = conns_.at(idle_order_.front()).get();
    const double until = conn->last_activity_seconds +
                         config_.idle_timeout_seconds - now();
    return std::clamp(static_cast<int>(until * 1e3) + 1, 10, 60'000);
  }
  return -1;
}

NetServerSummary NetServer::Loop::run(std::ostream& summary_out) {
  TREEPLACE_CHECK_MSG(server_.listen_fd_ >= 0,
                      "call listen_and_bind() before run()");
  poller_->add(server_.listen_fd_, true, false);
  poller_->add(server_.wake_read_fd_, true, false);

  std::vector<Poller::Event> events;
  while (true) {
    drain_completions();
    retry_stalled();
    reap_idle();

    if (server_.shutdown_requested_.load(std::memory_order_acquire)) {
      begin_drain();
    }
    if (draining_) {
      if (conns_.empty()) break;
      if (now() - drain_start_ > config_.drain_timeout_seconds) {
        summary_.drain_timed_out = true;
        break;
      }
    }

    events.clear();
    poller_->wait(events, poll_timeout_ms());
    for (const Poller::Event& ev : events) {
      if (ev.fd == server_.wake_read_fd_) {
        drain_wake_pipe();
        continue;
      }
      if (ev.fd == server_.listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = by_fd_.find(ev.fd);
      if (it == by_fd_.end()) continue;  // closed earlier in this batch
      Connection* conn = it->second;
      if (ev.readable || ev.hangup) {
        handle_readable(conn);
        // handle_readable may have closed it; re-check before writing.
        const auto again = by_fd_.find(ev.fd);
        if (again == by_fd_.end() || again->second != conn) continue;
      }
      if (ev.writable) handle_writable(conn);
    }
  }

  // Force-close whatever the drain deadline left behind.
  while (!conns_.empty()) close_connection(conns_.begin()->second.get());

  summary_.wall_seconds = wall_.seconds();
  summary_.scenarios_per_second =
      summary_.wall_seconds > 0.0
          ? static_cast<double>(summary_.requests) / summary_.wall_seconds
          : 0.0;
  summary_.p50_latency_seconds = latency_.percentile(0.50);
  summary_.p99_latency_seconds = latency_.percentile(0.99);
  summary_.dispatcher = dispatcher_.stats();
  summary_.cache = cache_.stats();
  print_summary(summary_out);
  return summary_;
}

void NetServer::Loop::print_summary(std::ostream& out) const {
  const SolverLatencyStats& solver = summary_.dispatcher.per_solver[0];
  const double solves =
      static_cast<double>(solver.solves > 0 ? solver.solves : 1);
  out << "# serve: " << summary_.requests << " requests in "
      << summary_.wall_seconds << " s (" << summary_.scenarios_per_second
      << " scenarios/s, " << dispatcher_.threads() << " threads, queue "
      << dispatcher_.queue_capacity() << ")\n"
      << "# serve: ok=" << summary_.ok << " infeasible=" << summary_.infeasible
      << " errors=" << summary_.errors
      << " over_budget=" << summary_.over_budget << "\n"
      << "# net: poller=" << poller_->name()
      << " accepted=" << summary_.accepted << " dropped=" << summary_.dropped
      << " reaped_idle=" << summary_.reaped_idle
      << " protocol_errors=" << summary_.protocol_errors
      << " peak_conns=" << summary_.peak_connections
      << " drain_timed_out=" << (summary_.drain_timed_out ? 1 : 0) << "\n"
      << "# net: backpressure_stalls=" << summary_.backpressure_stalls
      << " output_stalls=" << summary_.output_stalls
      << " bytes_in=" << summary_.bytes_in
      << " bytes_out=" << summary_.bytes_out
      << " p50_s=" << summary_.p50_latency_seconds
      << " p99_s=" << summary_.p99_latency_seconds << "\n"
      << "# cache: capacity=" << summary_.cache.capacity
      << " size=" << summary_.cache.size << " hits=" << summary_.cache.hits
      << " misses=" << summary_.cache.misses
      << " evictions=" << summary_.cache.evictions << "\n"
      << "# solver " << solver.algo << ": solves=" << solver.solves
      << " warm=" << solver.warm
      << " session_bytes=" << summary_.cache.session_bytes
      << " session_budget="
      << (config_.stream.session_max_bytes != 0
              ? std::to_string(config_.stream.session_max_bytes)
              : std::string("unbounded"))
      << " dropped_snapshots=" << summary_.cache.session_snapshots_dropped
      << " dropped_tables=" << summary_.cache.session_tables_dropped
      << " cells_skipped=" << summary_.cache.session_cells_skipped
      << " errors=" << solver.errors
      << " mean_queue_s=" << solver.total_queue_seconds / solves
      << " mean_solve_s=" << solver.total_solve_seconds / solves
      << " max_solve_s=" << solver.max_solve_seconds
      << " work=" << solver.total_work << "\n";
}

NetServerSummary NetServer::run(std::ostream& summary_out) {
  Loop loop(*this);
  return loop.run(summary_out);
}

}  // namespace treeplace::serve
