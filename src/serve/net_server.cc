#include "serve/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <ostream>
#include <thread>
#include <unordered_set>
#include <utility>

#include "serve/router.h"
#include "support/binio.h"
#include "support/check.h"
#include "support/env.h"
#include "support/timer.h"

namespace treeplace::serve {

// ---------------------------------------------------------------------------
// Poller backends

namespace {

class PollPoller final : public Poller {
 public:
  void add(int fd, bool read, bool write) override {
    TREEPLACE_CHECK(!index_.count(fd));
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, mask(read, write), 0});
  }

  void update(int fd, bool read, bool write) override {
    fds_[index_.at(fd)].events = mask(read, write);
  }

  void remove(int fd) override {
    const std::size_t i = index_.at(fd);
    index_.erase(fd);
    if (i + 1 != fds_.size()) {
      fds_[i] = fds_.back();
      index_[fds_[i].fd] = i;
    }
    fds_.pop_back();
  }

  void wait(std::vector<Event>& events, int timeout_ms) override {
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      events.push_back(Event{p.fd, (p.revents & POLLIN) != 0,
                             (p.revents & POLLOUT) != 0,
                             (p.revents & (POLLERR | POLLHUP | POLLNVAL)) !=
                                 0});
    }
  }

  const char* name() const override { return "poll"; }

 private:
  static short mask(bool read, bool write) {
    return static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    TREEPLACE_CHECK_MSG(epfd_ >= 0,
                        "epoll_create1: " << std::strerror(errno));
  }
  ~EpollPoller() override { ::close(epfd_); }

  void add(int fd, bool read, bool write) override { ctl(EPOLL_CTL_ADD, fd, read, write); }
  void update(int fd, bool read, bool write) override { ctl(EPOLL_CTL_MOD, fd, read, write); }

  void remove(int fd) override {
    epoll_event ev{};
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(std::vector<Event>& events, int timeout_ms) override {
    epoll_event buf[256];
    const int n = ::epoll_wait(epfd_, buf, 256, timeout_ms);
    for (int i = 0; i < n; ++i) {
      events.push_back(Event{buf[i].data.fd, (buf[i].events & EPOLLIN) != 0,
                             (buf[i].events & EPOLLOUT) != 0,
                             (buf[i].events & (EPOLLERR | EPOLLHUP)) != 0});
    }
  }

  const char* name() const override { return "epoll"; }

 private:
  void ctl(int op, int fd, bool read, bool write) {
    epoll_event ev{};
    ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    TREEPLACE_CHECK_MSG(::epoll_ctl(epfd_, op, fd, &ev) == 0,
                        "epoll_ctl(" << op << ", " << fd
                                     << "): " << std::strerror(errno));
  }

  int epfd_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<Poller> Poller::create(const std::string& backend) {
#ifdef __linux__
  if (backend != "poll") return std::make_unique<EpollPoller>();
#else
  (void)backend;
#endif
  return std::make_unique<PollPoller>();
}

std::unique_ptr<Poller> Poller::create() {
  return create(env_string("TREEPLACE_POLLER", "epoll"));
}

// ---------------------------------------------------------------------------
// NetServer setup

namespace {

in_addr_t parse_host(const std::string& host) {
  if (host.empty() || host == "*" || host == "0.0.0.0") return INADDR_ANY;
  if (host == "localhost") return htonl(INADDR_LOOPBACK);
  in_addr addr{};
  TREEPLACE_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr) == 1,
                      "cannot parse listen host '" << host
                                                   << "' (IPv4 dotted quad)");
  return addr.s_addr;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  TREEPLACE_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

bool arm_tcp_keepalive(int fd, int idle_seconds) {
  if (idle_seconds <= 0) return false;
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one)) != 0) {
    return false;
  }
  const int interval = std::max(1, idle_seconds / 3);
  constexpr int kProbes = 3;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle_seconds,
                      sizeof(idle_seconds)) == 0 &&
         ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &interval,
                      sizeof(interval)) == 0 &&
         ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &kProbes,
                      sizeof(kProbes)) == 0;
}

namespace {

void make_wake_pipe(int* read_fd, int* write_fd) {
  int fds[2];
  TREEPLACE_CHECK_MSG(::pipe(fds) == 0, "pipe: " << std::strerror(errno));
  *read_fd = fds[0];
  *write_fd = fds[1];
  set_nonblocking(*read_fd);
  set_nonblocking(*write_fd);
}

/// On-disk name of one namespaced session's snapshot.  The namespace id is
/// process-stable (hello-name hash), so a restarted server resolves the
/// same client to the same file.
std::string snapshot_path(const std::string& dir, const CacheKey& key) {
  std::string name = "t" + std::to_string(key.namespace_id) + "_";
  for (const char c : key.topology_key) {
    name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return dir + "/" + name + ".tpsnap";
}

}  // namespace

NetServer::NetServer(NetServerConfig config) : config_(std::move(config)) {
  TREEPLACE_CHECK_MSG(config_.stream.dispatcher.algos.size() == 1,
                      "NetServer serves every request with one solver");
  if (config_.shards == 0) config_.shards = 1;
  if (!config_.persist_dir.empty()) {
    ::mkdir(config_.persist_dir.c_str(), 0755);  // EEXIST is fine
  }
  make_wake_pipe(&wake_read_fd_, &wake_write_fd_);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<ShardState>();
    make_wake_pipe(&shard->wake_read_fd, &shard->wake_write_fd);
    shards_.push_back(std::move(shard));
  }
}

NetServer::~NetServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_read_fd_);
  ::close(wake_write_fd_);
  for (const auto& shard : shards_) {
    ::close(shard->wake_read_fd);
    ::close(shard->wake_write_fd);
  }
}

std::uint16_t NetServer::listen_and_bind() {
  TREEPLACE_CHECK_MSG(listen_fd_ < 0, "listen_and_bind() called twice");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TREEPLACE_CHECK_MSG(fd >= 0, "socket: " << std::strerror(errno));
  set_nonblocking(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parse_host(config_.host);
  addr.sin_port = htons(config_.port);
  TREEPLACE_CHECK_MSG(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind " << config_.host << ":" << config_.port << ": "
              << std::strerror(errno));
  TREEPLACE_CHECK_MSG(::listen(fd, 1024) == 0,
                      "listen: " << std::strerror(errno));

  socklen_t len = sizeof(addr);
  TREEPLACE_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  return port_;
}

void NetServer::shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void NetServer::wake_shard(std::size_t shard) {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n =
      ::write(shards_[shard]->wake_write_fd, &byte, 1);
}

void NetServer::kill_shard(std::size_t shard) {
  // Async-signal-safe: atomics and write() only, no locks or streams.
  if (shard >= shards_.size()) return;
  shards_[shard]->kill.store(true, std::memory_order_release);
  const char byte = 'k';
  [[maybe_unused]] const ssize_t n =
      ::write(shards_[shard]->wake_write_fd, &byte, 1);
}

void NetServer::kill_next_shard() {
  for (std::size_t attempt = 0; attempt < shards_.size(); ++attempt) {
    const std::size_t shard =
        kill_cursor_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    if (shards_[shard]->alive.load(std::memory_order_acquire)) {
      kill_shard(shard);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-shard aggregation record

struct NetServer::ShardReport {
  NetServerSummary summary;
  LatencyHistogram latency;
  std::string poller_name;
  std::size_t threads = 0;
  std::size_t queue_capacity = 0;
};

// ---------------------------------------------------------------------------
// The per-shard serving loop

class NetServer::Loop {
 public:
  Loop(NetServer& server, std::size_t shard_index)
      : server_(server),
        config_(server.config_),
        shard_(*server.shards_[shard_index]),
        dispatcher_(config_.stream.dispatcher),
        cache_(config_.stream.cache_capacity,
               SolveSession::Options{config_.stream.session_max_bytes,
                                     config_.stream.session_contract}),
        poller_(Poller::create()) {
    format_.print_placements = config_.stream.print_placements;
    format_.has_budget = config_.stream.cost_budget.has_value();
  }

  ShardReport run();

 private:
  double now() const { return wall_.seconds(); }

  void push_completion(Completion completion);
  void drain_wake_pipe();
  void drain_completions();
  void adopt_handoffs();
  void retry_stalled();
  void handle_readable(Connection* conn);
  void handle_writable(Connection* conn);
  void process_requests(Connection* conn);
  void flush_completed(Connection* conn);
  bool try_write(Connection* conn);  ///< false: connection was closed
  void update_interest(Connection* conn);
  void maybe_close(Connection* conn);
  void close_connection(Connection* conn);
  void fail_connection(Connection* conn, std::string reason);
  void touch_activity(Connection* conn);
  void reap_idle();
  void begin_drain();
  void maybe_restore(const CacheKey& key, SolveSession& session);
  void save_sessions();
  int poll_timeout_ms() const;

  NetServer& server_;
  const NetServerConfig& config_;
  ShardState& shard_;
  SolveDispatcher dispatcher_;
  TopologyCache cache_;
  std::unique_ptr<Poller> poller_;
  ResultFormat format_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::unordered_map<int, Connection*> by_fd_;
  std::list<std::uint64_t> idle_order_;  ///< activity order, oldest first
  std::vector<std::uint64_t> stalled_;   ///< await a freed dispatcher slot
  /// Namespaces bound by a hello name= on this shard — the set whose
  /// sessions are worth persisting at drain (anonymous uid namespaces can
  /// never be re-claimed, so saving them would only litter the directory).
  std::unordered_set<std::uint64_t> named_namespaces_;

  bool draining_ = false;
  double drain_start_ = 0.0;

  Stopwatch wall_;
  LatencyHistogram latency_;
  NetServerSummary summary_;
};

void NetServer::Loop::push_completion(Completion completion) {
  {
    std::scoped_lock lock(shard_.mutex);
    shard_.completions.push_back(std::move(completion));
  }
  const char byte = 'c';
  [[maybe_unused]] const ssize_t n = ::write(shard_.wake_write_fd, &byte, 1);
}

void NetServer::Loop::drain_wake_pipe() {
  char buf[256];
  while (::read(shard_.wake_read_fd, buf, sizeof(buf)) > 0) {
  }
}

void NetServer::Loop::drain_completions() {
  std::deque<Completion> batch;
  {
    std::scoped_lock lock(shard_.mutex);
    batch.swap(shard_.completions);
  }
  for (Completion& c : batch) {
    const auto it = conns_.find(c.conn_uid);
    if (it == conns_.end()) continue;  // connection died mid-solve
    Connection* conn = it->second.get();
    conn->complete(c.seq, std::move(c.result));
    flush_completed(conn);
  }
}

void NetServer::Loop::adopt_handoffs() {
  std::deque<Handoff> batch;
  {
    std::scoped_lock lock(shard_.mutex);
    batch.swap(shard_.handoffs);
  }
  for (Handoff& h : batch) {
    if (draining_) {
      // Router raced our alive=false flip; refuse like a draining accept.
      ::close(h.fd);
      server_.shard_conns_.fetch_sub(1, std::memory_order_relaxed);
      ++summary_.dropped;
      continue;
    }
    auto owned =
        std::make_unique<Connection>(h.fd, h.uid, config_.max_line_bytes);
    Connection* conn = owned.get();
    conn->last_activity_seconds = now();
    idle_order_.push_back(h.uid);
    conn->idle_pos = std::prev(idle_order_.end());
    conn->poll_read = true;
    conn->poll_write = false;
    poller_->add(h.fd, true, false);
    by_fd_[h.fd] = conn;
    conns_[h.uid] = std::move(owned);
    ++summary_.accepted;
    summary_.peak_connections =
        std::max<std::uint64_t>(summary_.peak_connections, conns_.size());

    // Replay the router's pre-read bytes into the connection's line buffer
    // so the byte stream the parser sees is exactly what the peer sent.
    if (!h.initial.empty()) {
      const std::span<char> buf = conn->writable(h.initial.size());
      std::memcpy(buf.data(), h.initial.data(), h.initial.size());
      conn->commit(h.initial.size());
      summary_.bytes_in += h.initial.size();
    }
    try {
      conn->pump();
      if (h.eof) conn->input_done();
    } catch (const CheckError& e) {
      fail_connection(conn, e.what());
    }
    process_requests(conn);
    flush_completed(conn);  // writes, re-arms interest, may close
  }
}

void NetServer::Loop::retry_stalled() {
  if (stalled_.empty()) return;
  std::vector<std::uint64_t> retry;
  retry.swap(stalled_);
  for (const std::uint64_t uid : retry) {
    const auto it = conns_.find(uid);
    if (it == conns_.end()) continue;
    Connection* conn = it->second.get();
    conn->stalled = false;
    process_requests(conn);
    flush_completed(conn);
  }
}

void NetServer::Loop::handle_readable(Connection* conn) {
  bool eof = false;
  while (true) {
    const std::span<char> buf = conn->writable(config_.read_chunk);
    const ssize_t n =
        ::read(conn->fd(), buf.data(), std::min(buf.size(), config_.read_chunk));
    if (n > 0) {
      conn->commit(static_cast<std::size_t>(n));
      summary_.bytes_in += static_cast<std::uint64_t>(n);
      touch_activity(conn);
      // One chunk per event: level-triggered readiness refires if more is
      // buffered, keeping service fair across thousands of sockets.
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // ECONNRESET and friends: treat as end of input
    break;
  }

  if (!conn->failed) {
    try {
      conn->pump();
      if (eof) conn->input_done();
    } catch (const CheckError& e) {
      fail_connection(conn, e.what());
    }
  } else if (eof) {
    conn->input_done();
  }
  process_requests(conn);
  flush_completed(conn);  // writes, re-arms interest, may close
}

void NetServer::Loop::handle_writable(Connection* conn) {
  if (!try_write(conn)) return;
  touch_activity(conn);
  // Output drained below the cap: resume submitting parsed records.
  process_requests(conn);
  flush_completed(conn);
}

void NetServer::Loop::process_requests(Connection* conn) {
  if (conn->failed) {
    conn->ready_requests().clear();
    return;
  }
  while (!conn->ready_requests().empty()) {
    if (conn->out().size() > config_.max_output_bytes) {
      if (conn->poll_read) ++summary_.output_stalls;
      break;  // slow consumer: resume when the socket drains
    }
    ServeRequest& request = conn->ready_requests().front();

    // The handshake consumes no ordinal and no dispatcher slot; replying
    // inline keeps the `# hello:` line ahead of every result, exactly as
    // in stream mode.  A name binds the connection's cache namespace to
    // the name's stable hash — the identity the router hashed onto the
    // ring, and the one persistence files are keyed by.
    if (request.hello) {
      ++summary_.hellos;
      if (!request.hello->name.empty()) {
        conn->namespace_id = stable_hash64(request.hello->name);
        conn->named = true;
        named_namespaces_.insert(conn->namespace_id);
      }
      conn->out().append(hello_reply());
      conn->ready_requests().pop_front();
      continue;
    }

    const std::string client_key = request.topology_key;
    const CacheKey cache_key{conn->namespace_id, client_key};

    // Reserve the dispatcher slot before touching the request, so a full
    // queue leaves it intact for the retry (unknown-key and bad-delta
    // requests briefly hold a slot too; they release it inline below).
    if (!dispatcher_.try_reserve_slot()) {
      if (!conn->stalled) {
        conn->stalled = true;
        stalled_.push_back(conn->uid());
        ++summary_.backpressure_stalls;
        ++conn->stats().backpressure_stalls;
      }
      break;  // socket read interest drops until a slot frees up
    }

    // Mirrors StreamServer: tree records (re)register the topology and
    // solve through the fresh session; delta records fork the cached base.
    std::optional<Instance> instance;
    std::shared_ptr<SolveSession> session;
    std::optional<ServeResult> inline_error;
    if (request.tree) {
      auto topology = request.tree->topology_ptr();
      Scenario base = std::move(request.tree->scenario());
      session = cache_.put(cache_key, topology, base);
      if (!config_.persist_dir.empty() && conn->named) {
        maybe_restore(cache_key, *session);
      }
      instance.emplace(std::move(topology), std::move(base),
                       config_.stream.modes, config_.stream.costs,
                       config_.stream.cost_budget);
    } else {
      std::optional<CachedTopology> entry = cache_.get(cache_key);
      if (!entry) {
        ServeResult miss;
        miss.error = "unknown topology '" + client_key +
                     "' (not in the stream, or evicted from the cache)";
        inline_error = std::move(miss);
      } else {
        try {
          Scenario scen = std::move(entry->base);
          for (const ScenarioDelta& delta : request.deltas) {
            apply_delta(scen, delta);
          }
          session = std::move(entry->session);
          instance.emplace(std::move(entry->topology), std::move(scen),
                           config_.stream.modes, config_.stream.costs,
                           config_.stream.cost_budget);
        } catch (const CheckError& e) {
          ServeResult bad;
          bad.error = e.what();
          inline_error = std::move(bad);
        }
      }
    }

    const std::size_t seq = conn->allocate_seq(now());
    if (inline_error) {
      dispatcher_.release_reserved_slot();
      conn->complete(seq,
                     render_result(request.id, client_key, *inline_error,
                                   format_));
    } else {
      if (config_.stream.project_original_modes) {
        project_to_single_mode(instance->scenario);
      }
      const std::uint64_t uid = conn->uid();
      const std::size_t id = request.id;
      dispatcher_.submit_reserved(
          0, std::move(*instance), std::move(session),
          std::move(request.deltas),
          [this, uid, seq, id, client_key](ServeResult result) {
            push_completion(Completion{
                uid, seq,
                render_result(id, client_key, result, format_)});
          });
    }
    ++summary_.requests;
    ++conn->stats().requests;
    conn->ready_requests().pop_front();
  }
}

void NetServer::Loop::flush_completed(Connection* conn) {
  while (std::optional<Connection::Done> done = conn->next_completed()) {
    latency_.record(now() - done->submit_seconds);
    switch (done->result.status) {
      case ResultStatus::kOk:
        ++summary_.ok;
        if (done->result.budget_missed) ++summary_.over_budget;
        break;
      case ResultStatus::kInfeasible:
        ++summary_.infeasible;
        break;
      case ResultStatus::kError:
        ++summary_.errors;
        break;
    }
    conn->out().append(done->result.line);
    ++conn->stats().results;
  }
  if (conn->failed && !conn->fail_noted && conn->in_flight() == 0) {
    conn->fail_noted = true;
    ++summary_.protocol_errors;
    conn->out().append("# protocol error: " + conn->fail_reason + "\n");
  }
  if (!try_write(conn)) return;
  update_interest(conn);
  maybe_close(conn);
}

bool NetServer::Loop::try_write(Connection* conn) {
  while (!conn->out().empty()) {
    const std::span<const char> pending = conn->out().pending();
    const ssize_t n =
        ::send(conn->fd(), pending.data(), pending.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->out().consume(static_cast<std::size_t>(n));
      conn->stats().bytes_out += static_cast<std::uint64_t>(n);
      summary_.bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    close_connection(conn);  // EPIPE/ECONNRESET: peer is gone
    return false;
  }
  return true;
}

void NetServer::Loop::update_interest(Connection* conn) {
  const bool want_read = !conn->peer_eof() && !conn->failed && !draining_ &&
                         conn->ready_requests().empty() &&
                         conn->out().size() <= config_.max_output_bytes;
  const bool want_write = !conn->out().empty();
  if (want_read != conn->poll_read || want_write != conn->poll_write) {
    conn->poll_read = want_read;
    conn->poll_write = want_write;
    poller_->update(conn->fd(), want_read, want_write);
  }
}

void NetServer::Loop::maybe_close(Connection* conn) {
  const bool no_more_input = conn->peer_eof() || conn->failed || draining_;
  if (no_more_input && conn->ready_requests().empty() &&
      conn->in_flight() == 0 && conn->out().empty()) {
    close_connection(conn);
  }
}

void NetServer::Loop::close_connection(Connection* conn) {
  poller_->remove(conn->fd());
  by_fd_.erase(conn->fd());
  idle_order_.erase(conn->idle_pos);
  conns_.erase(conn->uid());  // destroys conn, closes the fd
  server_.shard_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void NetServer::Loop::fail_connection(Connection* conn, std::string reason) {
  conn->failed = true;
  conn->fail_reason = std::move(reason);
  conn->ready_requests().clear();
}

void NetServer::Loop::touch_activity(Connection* conn) {
  conn->last_activity_seconds = now();
  idle_order_.splice(idle_order_.end(), idle_order_, conn->idle_pos);
}

void NetServer::Loop::reap_idle() {
  if (config_.idle_timeout_seconds <= 0 || draining_) return;
  const double deadline = now() - config_.idle_timeout_seconds;
  while (!idle_order_.empty()) {
    Connection* conn = conns_.at(idle_order_.front()).get();
    if (conn->last_activity_seconds > deadline) break;
    if (conn->in_flight() > 0 || !conn->ready_requests().empty()) {
      touch_activity(conn);  // solver-busy, not client-idle
      continue;
    }
    ++summary_.reaped_idle;
    close_connection(conn);
  }
}

void NetServer::Loop::begin_drain() {
  if (draining_) return;
  draining_ = true;
  drain_start_ = now();
  // Flip alive first: the router consults it before every handoff, so the
  // racy window where a new connection lands on a draining shard is just
  // the enqueue already in flight (adopt_handoffs refuses those).
  shard_.alive.store(false, std::memory_order_release);
  if (shard_.kill.load(std::memory_order_acquire)) {
    summary_.shards_killed = 1;
  }
  // Sweep every connection: drop read interest, close the already-idle.
  std::vector<std::uint64_t> uids;
  uids.reserve(conns_.size());
  for (const auto& [uid, conn] : conns_) uids.push_back(uid);
  for (const std::uint64_t uid : uids) {
    const auto it = conns_.find(uid);
    if (it == conns_.end()) continue;
    flush_completed(it->second.get());
  }
}

void NetServer::Loop::maybe_restore(const CacheKey& key,
                                    SolveSession& session) {
  const std::string path = snapshot_path(config_.persist_dir, key);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return;  // nothing persisted under this identity: cold start
  const std::streamoff size = in.tellg();
  if (size <= 0) return;
  in.seekg(0);
  try {
    binio::Reader reader(in, static_cast<std::uint64_t>(size));
    session.restore(reader);
    ++summary_.sessions_restored;
  } catch (const CheckError&) {
    // Truncated, corrupt, wrong-version or wrong-topology snapshot: the
    // restore is all-or-nothing, so the session is untouched and the next
    // solve simply runs cold.  Never serve from a half-read snapshot.
  }
}

void NetServer::Loop::save_sessions() {
  if (config_.persist_dir.empty()) return;
  cache_.for_each([&](const CacheKey& key, const CachedTopology& entry) {
    if (!named_namespaces_.count(key.namespace_id)) return;
    if (entry.session == nullptr) return;
    const std::string path = snapshot_path(config_.persist_dir, key);
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    binio::Writer writer(out);
    entry.session->save(writer);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return;
    }
    out.close();
    // Atomic replace: a crash mid-write leaves the previous snapshot (or
    // none), never a torn file.
    if (std::rename(tmp.c_str(), path.c_str()) == 0) {
      ++summary_.sessions_saved;
    }
  });
}

int NetServer::Loop::poll_timeout_ms() const {
  if (draining_) return 100;  // heartbeat for the drain deadline
  if (config_.idle_timeout_seconds > 0 && !idle_order_.empty()) {
    const Connection* conn = conns_.at(idle_order_.front()).get();
    const double until = conn->last_activity_seconds +
                         config_.idle_timeout_seconds - now();
    return std::clamp(static_cast<int>(until * 1e3) + 1, 10, 60'000);
  }
  return -1;
}

NetServer::ShardReport NetServer::Loop::run() {
  poller_->add(shard_.wake_read_fd, true, false);

  std::vector<Poller::Event> events;
  while (true) {
    drain_completions();
    adopt_handoffs();
    retry_stalled();
    reap_idle();

    if (shard_.drain.load(std::memory_order_acquire) ||
        shard_.kill.load(std::memory_order_acquire)) {
      begin_drain();
    }
    if (draining_) {
      if (conns_.empty()) break;
      if (now() - drain_start_ > config_.drain_timeout_seconds) {
        summary_.drain_timed_out = true;
        break;
      }
    }

    events.clear();
    poller_->wait(events, poll_timeout_ms());
    for (const Poller::Event& ev : events) {
      if (ev.fd == shard_.wake_read_fd) {
        drain_wake_pipe();
        continue;
      }
      const auto it = by_fd_.find(ev.fd);
      if (it == by_fd_.end()) continue;  // closed earlier in this batch
      Connection* conn = it->second;
      if (ev.readable || ev.hangup) {
        handle_readable(conn);
        // handle_readable may have closed it; re-check before writing.
        const auto again = by_fd_.find(ev.fd);
        if (again == by_fd_.end() || again->second != conn) continue;
      }
      if (ev.writable) handle_writable(conn);
    }
  }

  // A handoff enqueued between our last adopt and the alive=false flip
  // would otherwise leak its socket; refuse it like a draining accept.
  adopt_handoffs();
  // Force-close whatever the drain deadline left behind.
  while (!conns_.empty()) close_connection(conns_.begin()->second.get());

  // With every in-flight solve completed (closing waits on them) the warm
  // sessions are quiescent: snapshot the named ones for the next owner.
  save_sessions();

  summary_.wall_seconds = wall_.seconds();
  summary_.p50_latency_seconds = latency_.percentile(0.50);
  summary_.p99_latency_seconds = latency_.percentile(0.99);
  summary_.dispatcher = dispatcher_.stats();
  summary_.cache = cache_.stats();

  ShardReport report;
  report.summary = summary_;
  report.latency = latency_;
  report.poller_name = poller_->name();
  report.threads = dispatcher_.threads();
  report.queue_capacity = dispatcher_.queue_capacity();
  return report;
}

// ---------------------------------------------------------------------------
// The router: accept, pre-read the first record line, hand off by ring

class NetServer::Router {
 public:
  explicit Router(NetServer& server)
      : server_(server),
        config_(server.config_),
        poller_(Poller::create()),
        ring_(server.shards_.size()) {}

  void run();

  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t peak() const { return peak_; }
  const char* poller_name() const { return poller_->name(); }
  double wall_seconds() const { return wall_.seconds(); }

 private:
  /// One accepted socket whose first record line is still being sniffed.
  struct PreRead {
    std::uint64_t uid = 0;
    std::string buf;
    std::size_t scan = 0;  ///< line scanning resumes here
    double accepted_at = 0.0;
  };

  /// Stop sniffing and route by uid once a client has buffered this much
  /// without producing a decisive line (or after kPreReadDeadline): the
  /// shard still binds its namespace when the hello eventually parses,
  /// only the reconnect-affinity shortcut is lost.
  static constexpr std::size_t kMaxPreReadBytes = 64 * 1024;
  static constexpr double kPreReadDeadline = 1.0;

  void drain_wake_pipe();
  void accept_ready();
  void handle_pre_read(int fd);
  /// The ring hash of the first decisive (non-blank, non-comment) line
  /// scanned so far, or nullopt while none is complete.
  std::optional<std::uint64_t> decide(PreRead& p) const;
  void route(int fd, std::optional<std::uint64_t> hash, bool eof);
  void flush_overdue();

  NetServer& server_;
  const NetServerConfig& config_;
  std::unique_ptr<Poller> poller_;
  HashRing ring_;
  std::unordered_map<int, PreRead> pre_reads_;
  std::uint64_t next_uid_ = 1;
  std::uint64_t accepted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t peak_ = 0;
  Stopwatch wall_;
};

void NetServer::Router::drain_wake_pipe() {
  char buf[256];
  while (::read(server_.wake_read_fd_, buf, sizeof(buf)) > 0) {
  }
}

void NetServer::Router::accept_ready() {
  while (true) {
    const int fd = ::accept(server_.listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or transient (ECONNABORTED, EMFILE): retry later
    }
    const std::size_t live =
        server_.shard_conns_.load(std::memory_order_relaxed) +
        pre_reads_.size();
    if (live >= config_.max_conns) {
      ::close(fd);
      ++dropped_;
      continue;
    }
    set_nonblocking(fd);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.keepalive_seconds > 0) {
      arm_tcp_keepalive(fd, config_.keepalive_seconds);
    }

    const std::uint64_t uid = next_uid_++;
    pre_reads_[fd] = PreRead{uid, {}, 0, wall_.seconds()};
    poller_->add(fd, true, false);
    ++accepted_;
    peak_ = std::max<std::uint64_t>(peak_, live + 1);
  }
}

std::optional<std::uint64_t> NetServer::Router::decide(PreRead& p) const {
  while (true) {
    const std::size_t nl = p.buf.find('\n', p.scan);
    if (nl == std::string::npos) return std::nullopt;
    std::string_view line(p.buf.data() + p.scan, nl - p.scan);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    p.scan = nl + 1;
    if (line.empty() || line.front() == '#') continue;  // skip, as parsers do
    if (is_hello_line(line)) {
      try {
        const HelloInfo hello = parse_hello_line(line);
        if (!hello.name.empty()) return stable_hash64(hello.name);
      } catch (const CheckError&) {
        // Malformed hello: route by uid and let the shard's parser render
        // the protocol error on the connection itself.
      }
    }
    // Anonymous (or non-hello) first record: spread by connection uid.
    return mix_hash64(p.uid);
  }
}

void NetServer::Router::route(int fd, std::optional<std::uint64_t> hash,
                              bool eof) {
  const auto it = pre_reads_.find(fd);
  if (it == pre_reads_.end()) return;
  PreRead& p = it->second;
  poller_->remove(fd);

  bool any_alive = false;
  for (const auto& shard : server_.shards_) {
    if (shard->alive.load(std::memory_order_acquire)) {
      any_alive = true;
      break;
    }
  }
  if (!any_alive) {
    ::close(fd);
    ++dropped_;
    pre_reads_.erase(it);
    return;
  }

  const std::size_t shard = ring_.lookup(
      hash ? *hash : mix_hash64(p.uid), [&](std::size_t s) {
        return server_.shards_[s]->alive.load(std::memory_order_acquire);
      });
  server_.shard_conns_.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lock(server_.shards_[shard]->mutex);
    server_.shards_[shard]->handoffs.push_back(
        Handoff{fd, p.uid, std::move(p.buf), eof});
  }
  server_.wake_shard(shard);
  pre_reads_.erase(it);
}

void NetServer::Router::handle_pre_read(int fd) {
  const auto it = pre_reads_.find(fd);
  if (it == pre_reads_.end()) return;
  PreRead& p = it->second;
  bool eof = false;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      p.buf.append(buf, static_cast<std::size_t>(n));
      break;  // one chunk per event, matching the shard loops
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // reset during pre-read: hand the carcass to a shard
    break;
  }
  const std::optional<std::uint64_t> hash = decide(p);
  if (hash || eof || p.buf.size() > kMaxPreReadBytes) {
    route(fd, hash, eof);
  }
}

void NetServer::Router::flush_overdue() {
  if (pre_reads_.empty()) return;
  const double now = wall_.seconds();
  std::vector<int> overdue;
  for (const auto& [fd, p] : pre_reads_) {
    if (now - p.accepted_at > kPreReadDeadline) overdue.push_back(fd);
  }
  for (const int fd : overdue) route(fd, std::nullopt, false);
}

void NetServer::Router::run() {
  poller_->add(server_.listen_fd_, true, false);
  poller_->add(server_.wake_read_fd_, true, false);

  std::vector<Poller::Event> events;
  while (!server_.shutdown_requested_.load(std::memory_order_acquire)) {
    events.clear();
    poller_->wait(events, pre_reads_.empty() ? -1 : 100);
    for (const Poller::Event& ev : events) {
      if (ev.fd == server_.wake_read_fd_) {
        drain_wake_pipe();
        continue;
      }
      if (ev.fd == server_.listen_fd_) {
        accept_ready();
        continue;
      }
      handle_pre_read(ev.fd);
    }
    flush_overdue();
  }

  // Shutdown: stop accepting, refuse the handful of connections still in
  // pre-read (they have been sent nothing yet), then drain every shard.
  poller_->remove(server_.listen_fd_);
  ::close(server_.listen_fd_);
  server_.listen_fd_ = -1;
  for (const auto& [fd, p] : pre_reads_) {
    poller_->remove(fd);
    ::close(fd);
    ++dropped_;
  }
  pre_reads_.clear();
  for (std::size_t i = 0; i < server_.shards_.size(); ++i) {
    server_.shards_[i]->drain.store(true, std::memory_order_release);
    server_.wake_shard(i);
  }
}

// ---------------------------------------------------------------------------
// Orchestration: run the router and the shard threads, aggregate, print

NetServerSummary NetServer::run(std::ostream& summary_out) {
  TREEPLACE_CHECK_MSG(listen_fd_ >= 0, "call listen_and_bind() before run()");

  std::vector<ShardReport> reports(shards_.size());
  std::vector<std::thread> threads;
  threads.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    threads.emplace_back([this, i, &reports] {
      Loop loop(*this, i);
      reports[i] = loop.run();
    });
  }

  Router router(*this);
  router.run();  // returns once shutdown() has been requested
  for (std::thread& t : threads) t.join();

  // A handoff enqueued after its shard's final sweep never found an owner;
  // close it now so nothing leaks past run().
  for (const auto& shard : shards_) {
    std::scoped_lock lock(shard->mutex);
    for (const Handoff& h : shard->handoffs) ::close(h.fd);
  }

  // Aggregate: shard-owned counters sum, router-owned counters come from
  // the router, latencies merge into one histogram.
  NetServerSummary total;
  LatencyHistogram latency;
  total.accepted = router.accepted();
  total.dropped = router.dropped();
  total.peak_connections = router.peak();
  for (const ShardReport& r : reports) {
    const NetServerSummary& s = r.summary;
    total.dropped += s.dropped;
    total.reaped_idle += s.reaped_idle;
    total.protocol_errors += s.protocol_errors;
    total.requests += s.requests;
    total.ok += s.ok;
    total.infeasible += s.infeasible;
    total.errors += s.errors;
    total.over_budget += s.over_budget;
    total.backpressure_stalls += s.backpressure_stalls;
    total.output_stalls += s.output_stalls;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
    total.hellos += s.hellos;
    total.sessions_saved += s.sessions_saved;
    total.sessions_restored += s.sessions_restored;
    total.shards_killed += s.shards_killed;
    total.drain_timed_out = total.drain_timed_out || s.drain_timed_out;
    latency.merge(r.latency);

    total.dispatcher.submitted += s.dispatcher.submitted;
    total.dispatcher.completed += s.dispatcher.completed;
    total.dispatcher.max_in_flight += s.dispatcher.max_in_flight;
    if (total.dispatcher.per_solver.empty()) {
      total.dispatcher.per_solver = s.dispatcher.per_solver;
    } else {
      SolverLatencyStats& agg = total.dispatcher.per_solver[0];
      const SolverLatencyStats& one = s.dispatcher.per_solver[0];
      agg.solves += one.solves;
      agg.warm += one.warm;
      agg.errors += one.errors;
      agg.infeasible += one.infeasible;
      agg.total_queue_seconds += one.total_queue_seconds;
      agg.total_solve_seconds += one.total_solve_seconds;
      agg.max_solve_seconds =
          std::max(agg.max_solve_seconds, one.max_solve_seconds);
      agg.total_work += one.total_work;
    }

    total.cache.capacity += s.cache.capacity;
    total.cache.size += s.cache.size;
    total.cache.hits += s.cache.hits;
    total.cache.misses += s.cache.misses;
    total.cache.evictions += s.cache.evictions;
    total.cache.session_bytes += s.cache.session_bytes;
    total.cache.session_snapshots_dropped += s.cache.session_snapshots_dropped;
    total.cache.session_tables_dropped += s.cache.session_tables_dropped;
    total.cache.session_cells_skipped += s.cache.session_cells_skipped;
    total.cache.session_subtrees_sealed += s.cache.session_subtrees_sealed;
    total.cache.session_sealed_cells += s.cache.session_sealed_cells;
  }
  total.wall_seconds = router.wall_seconds();
  total.scenarios_per_second =
      total.wall_seconds > 0.0
          ? static_cast<double>(total.requests) / total.wall_seconds
          : 0.0;
  total.p50_latency_seconds = latency.percentile(0.50);
  total.p99_latency_seconds = latency.percentile(0.99);

  // The summary block: identical to the pre-sharding format (so existing
  // tooling keeps parsing it), with `# shard`/`# persist` lines appended
  // only when sharding or persistence is actually in play.
  const SolverLatencyStats& solver = total.dispatcher.per_solver[0];
  const double solves =
      static_cast<double>(solver.solves > 0 ? solver.solves : 1);
  summary_out
      << "# serve: " << total.requests << " requests in "
      << total.wall_seconds << " s (" << total.scenarios_per_second
      << " scenarios/s, " << reports[0].threads << " threads, queue "
      << reports[0].queue_capacity << ")\n"
      << "# serve: ok=" << total.ok << " infeasible=" << total.infeasible
      << " errors=" << total.errors << " over_budget=" << total.over_budget
      << "\n"
      << "# net: poller=" << reports[0].poller_name
      << " accepted=" << total.accepted << " dropped=" << total.dropped
      << " reaped_idle=" << total.reaped_idle
      << " protocol_errors=" << total.protocol_errors
      << " peak_conns=" << total.peak_connections
      << " drain_timed_out=" << (total.drain_timed_out ? 1 : 0) << "\n"
      << "# net: backpressure_stalls=" << total.backpressure_stalls
      << " output_stalls=" << total.output_stalls
      << " bytes_in=" << total.bytes_in << " bytes_out=" << total.bytes_out
      << " p50_s=" << total.p50_latency_seconds
      << " p99_s=" << total.p99_latency_seconds << "\n"
      << "# cache: capacity=" << total.cache.capacity
      << " size=" << total.cache.size << " hits=" << total.cache.hits
      << " misses=" << total.cache.misses
      << " evictions=" << total.cache.evictions << "\n"
      << "# solver " << solver.algo << ": solves=" << solver.solves
      << " warm=" << solver.warm
      << " session_bytes=" << total.cache.session_bytes
      << " session_budget="
      << (config_.stream.session_max_bytes != 0
              ? std::to_string(config_.stream.session_max_bytes)
              : std::string("unbounded"))
      << " dropped_snapshots=" << total.cache.session_snapshots_dropped
      << " dropped_tables=" << total.cache.session_tables_dropped
      << " cells_skipped=" << total.cache.session_cells_skipped
      << " subtrees_sealed=" << total.cache.session_subtrees_sealed
      << " sealed_cells=" << total.cache.session_sealed_cells
      << " errors=" << solver.errors
      << " mean_queue_s=" << solver.total_queue_seconds / solves
      << " mean_solve_s=" << solver.total_solve_seconds / solves
      << " max_solve_s=" << solver.max_solve_seconds
      << " work=" << solver.total_work << "\n";
  if (reports.size() > 1) {
    for (std::size_t i = 0; i < reports.size(); ++i) {
      const NetServerSummary& s = reports[i].summary;
      summary_out << "# shard " << i << ": accepted=" << s.accepted
                  << " requests=" << s.requests << " ok=" << s.ok
                  << " hellos=" << s.hellos
                  << " sessions_saved=" << s.sessions_saved
                  << " sessions_restored=" << s.sessions_restored
                  << " killed=" << s.shards_killed << "\n";
    }
  }
  if (!config_.persist_dir.empty()) {
    summary_out << "# persist: dir=" << config_.persist_dir
                << " saved=" << total.sessions_saved
                << " restored=" << total.sessions_restored << "\n";
  }
  return total;
}

}  // namespace treeplace::serve
