// Endian-stable binary record I/O for on-disk snapshots.
//
// The snapshot format (core/dp_snapshot.h) must round-trip bit-identically
// across machines, so every scalar is written little-endian byte-by-byte —
// never memcpy'd in host order — and both ends keep a running CRC32 over
// the payload so truncated or corrupted files are rejected as a whole
// (Reader::verify_crc) instead of half-restored.  All read-side failures
// (short reads, length-prefix overflow, CRC mismatch) throw CheckError,
// which restore paths catch to fall back to a cold start.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <string_view>

#include "support/check.h"

namespace treeplace::binio {

/// CRC32 (the zlib/IEEE polynomial) of `data`, continuing from `crc`.
std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size);

/// Little-endian scalar writer with a running CRC over everything written
/// since construction (or the last write_crc()).
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void u8(std::uint8_t v) { put(&v, 1); }
  void u32(std::uint32_t v) { scalar(v, 4); }
  void u64(std::uint64_t v) { scalar(v, 8); }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i32(std::int32_t v) { scalar(static_cast<std::uint32_t>(v), 4); }
  void i64(std::int64_t v) { scalar(static_cast<std::uint64_t>(v), 8); }

  /// Length-prefixed (u32) byte string.
  void str(std::string_view s);

  /// Raw bytes, CRC'd but not length-prefixed (for magic headers).
  void raw(const void* data, std::size_t size) { put(data, size); }

  std::uint32_t crc() const { return crc_; }
  std::uint64_t bytes_written() const { return bytes_; }

  /// Appends the running CRC as a u32 trailer and resets it.  The trailer
  /// itself is excluded from the CRC, mirroring Reader::verify_crc().
  void write_crc();

 private:
  void put(const void* data, std::size_t size);
  void scalar(std::uint64_t v, int bytes);

  std::ostream& out_;
  std::uint32_t crc_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Little-endian scalar reader; throws CheckError on truncation.  Keeps
/// the same running CRC as the Writer so verify_crc() can check the
/// trailer.  `limit_bytes` caps the total bytes the reader will consume —
/// pass the file size so a corrupted length prefix is rejected as
/// truncation *before* anything tries to allocate for it
/// (remaining_bytes() is the allocation bound container reads check).
class Reader {
 public:
  explicit Reader(std::istream& in,
                  std::uint64_t limit_bytes = UINT64_MAX)
      : in_(in), limit_(limit_bytes) {}

  std::uint8_t u8();
  std::uint32_t u32() { return static_cast<std::uint32_t>(scalar(4)); }
  std::uint64_t u64() { return scalar(8); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Length-prefixed byte string; `max_size` guards against hostile
  /// length prefixes allocating unbounded memory.
  std::string str(std::size_t max_size = 1 << 20);

  /// Raw bytes into `out`, CRC'd; throws on short read.
  void raw(void* out, std::size_t size) { get(out, size); }

  std::uint32_t crc() const { return crc_; }
  std::uint64_t bytes_read() const { return bytes_; }
  /// Bytes left under the construction-time limit; UINT64_MAX-ish when no
  /// limit was given.  Deserializers bound container sizes by this before
  /// allocating.
  std::uint64_t remaining_bytes() const { return limit_ - bytes_; }

  /// Reads the u32 CRC trailer and checks it against the running CRC of
  /// everything read so far; throws CheckError on mismatch, then resets
  /// the running CRC.
  void verify_crc();

 private:
  void get(void* out, std::size_t size);
  std::uint64_t scalar(int bytes);

  std::istream& in_;
  std::uint64_t limit_;
  std::uint32_t crc_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace treeplace::binio
