// Streaming statistics and integer histograms for the experiment reports.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "support/check.h"

namespace treeplace {

/// Welford streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  /// Merge another accumulator (parallel reduction).
  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const std::uint64_t n = n_ + other.n_;
    const double delta = other.mean_ - mean_;
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = n;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sparse integer histogram (value -> count).  Used for the Fig. 5/7 right
/// panels: occurrences of (reused-in-DP − reused-in-GR) per step.
class IntHistogram {
 public:
  void add(std::int64_t value, std::uint64_t count = 1) {
    bins_[value] += count;
    total_ += count;
  }

  void merge(const IntHistogram& other) {
    for (const auto& [v, c] : other.bins_) add(v, c);
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::int64_t value) const {
    auto it = bins_.find(value);
    return it == bins_.end() ? 0 : it->second;
  }
  bool empty() const { return bins_.empty(); }
  std::int64_t min_value() const {
    TREEPLACE_CHECK(!bins_.empty());
    return bins_.begin()->first;
  }
  std::int64_t max_value() const {
    TREEPLACE_CHECK(!bins_.empty());
    return bins_.rbegin()->first;
  }

  /// Ordered (value, count) pairs.
  const std::map<std::int64_t, std::uint64_t>& bins() const { return bins_; }

  double mean() const {
    if (total_ == 0) return 0.0;
    double s = 0;
    for (const auto& [v, c] : bins_)
      s += static_cast<double>(v) * static_cast<double>(c);
    return s / static_cast<double>(total_);
  }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// Quantile over a copy of the data (exact, nearest-rank).  q in [0,1].
double quantile(std::vector<double> values, double q);

}  // namespace treeplace
