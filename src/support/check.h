// Lightweight runtime-check macros used across the library.
//
// TREEPLACE_CHECK is always on (it guards API misuse and algorithm
// invariants whose violation would silently corrupt results).
// TREEPLACE_DCHECK compiles out in NDEBUG builds and is reserved for
// inner-loop invariants that are too hot to keep in release binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace treeplace {

/// Exception thrown by TREEPLACE_CHECK failures.  Using an exception rather
/// than abort() keeps library misuse testable and recoverable by callers.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "TREEPLACE_CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace treeplace

#define TREEPLACE_CHECK(cond)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::treeplace::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define TREEPLACE_CHECK_MSG(cond, msg)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream os_;                                              \
      os_ << msg;                                                          \
      ::treeplace::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                        os_.str());                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define TREEPLACE_DCHECK(cond) \
  do {                         \
  } while (0)
#else
#define TREEPLACE_DCHECK(cond) TREEPLACE_CHECK(cond)
#endif
