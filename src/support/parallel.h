// Deterministic parallel-map helpers built on ThreadPool.
//
// parallel_map(n, fn) evaluates fn(i) for i in [0, n) across the pool and
// returns results in index order, so callers observe exactly the same output
// as a sequential loop — a property the simulation reproducibility tests
// assert directly.
#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "support/thread_pool.h"

namespace treeplace {

/// Evaluate fn(i) for each i in [0, n) on `pool`, collecting results in
/// index order.  R must be default-constructible is NOT required: results
/// are materialized through futures.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn, std::size_t>> {
  using R = std::invoke_result_t<Fn, std::size_t>;
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { return fn(i); }));
  }
  std::vector<R> results;
  results.reserve(n);
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

/// Run fn(i) for side effects across the pool; rethrows the first exception.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace treeplace
