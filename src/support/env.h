// Environment-driven configuration for bench binaries.
//
// Bench defaults are scaled down so that `for b in build/bench/*; do $b; done`
// completes in minutes; TREEPLACE_SCALE=paper switches every bench to the
// published experiment sizes, and individual knobs (trees, threads, sweep
// steps) can be overridden one by one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace treeplace {

/// Read an environment variable; empty optional semantics via defaults.
std::string env_string(const char* name, const std::string& fallback);
std::size_t env_size_t(const char* name, std::size_t fallback);
std::int64_t env_int64(const char* name, std::int64_t fallback);
double env_double(const char* name, double fallback);

/// Global scale selector for benches.
enum class BenchScale {
  kQuick,  ///< default: minutes on a laptop, same shapes as the paper
  kPaper,  ///< published experiment sizes (CPU-hours without many cores)
};

/// TREEPLACE_SCALE=quick|paper (default quick).
BenchScale bench_scale();

/// Pick `quick` or `paper` value according to bench_scale().
template <typename T>
T scaled(T quick, T paper) {
  return bench_scale() == BenchScale::kPaper ? paper : quick;
}

}  // namespace treeplace
