#include "support/table.h"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "support/check.h"

namespace treeplace {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  TREEPLACE_CHECK(!columns_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  TREEPLACE_CHECK_MSG(cells.size() == columns_.size(),
                      "row has " << cells.size() << " cells, table has "
                                 << columns_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::render(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  if (!title_.empty()) os << title_ << '\n';
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& r : rendered) print_row(r);
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << (c ? "," : "") << columns_[c];
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << render(row[c]);
    os << '\n';
  }
}

void Table::save_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  TREEPLACE_CHECK_MSG(out.good(), "cannot open " << path);
  write_csv(out);
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          // Remaining control characters must be \u-escaped per RFC 8259.
          os << "\\u00" << std::hex << std::setw(2) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(ch)) << std::dec
             << std::setfill(' ');
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void write_json_cell(std::ostream& os, const Table::Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) {
    write_json_string(os, *s);
  } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    os << *i;
  } else {
    const double d = std::get<double>(cell);
    // JSON has no inf/nan literals; fall back to null.  Format through a
    // local stream so the caller's precision state is left untouched.
    if (std::isfinite(d)) {
      std::ostringstream num;
      num << std::setprecision(17) << d;
      os << num.str();
    } else {
      os << "null";
    }
  }
}

}  // namespace

void Table::write_json(std::ostream& os) const {
  os << "{\n  \"title\": ";
  write_json_string(os, title_);
  os << ",\n  \"columns\": [";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ", ";
    write_json_string(os, columns_[c]);
  }
  os << "],\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r ? ",\n    " : "\n    ") << '[';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) os << ", ";
      write_json_cell(os, rows_[r][c]);
    }
    os << ']';
  }
  os << "\n  ]\n}\n";
}

void Table::save_json(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  TREEPLACE_CHECK_MSG(out.good(), "cannot open " << path);
  write_json(out);
}

}  // namespace treeplace
