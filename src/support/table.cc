#include "support/table.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "support/check.h"

namespace treeplace {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  TREEPLACE_CHECK(!columns_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  TREEPLACE_CHECK_MSG(cells.size() == columns_.size(),
                      "row has " << cells.size() << " cells, table has "
                                 << columns_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::render(const Cell& cell) {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(4) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  if (!title_.empty()) os << title_ << '\n';
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    widths[c] = columns_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  print_row(columns_);
  std::string rule;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) rule += "  ";
    rule += std::string(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& r : rendered) print_row(r);
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << (c ? "," : "") << columns_[c];
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << render(row[c]);
    os << '\n';
  }
}

void Table::save_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  TREEPLACE_CHECK_MSG(out.good(), "cannot open " << path);
  write_csv(out);
}

}  // namespace treeplace
