#include "support/thread_pool.h"

#include <algorithm>

#include "support/env.h"

namespace treeplace {

ThreadPool::ThreadPool(std::size_t num_threads) {
  TREEPLACE_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::size_t ThreadPool::default_thread_count() {
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return env_size_t("TREEPLACE_THREADS", hw);
}

}  // namespace treeplace
