// Column-aligned tables for bench/figure output, with optional CSV export.
//
// Every bench binary prints the series behind one paper figure as a table;
// keeping emission in one place guarantees a uniform, parse-friendly format
// in bench_output.txt.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace treeplace {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> columns);

  /// Title printed above the table (e.g. "Figure 4: ...").
  void set_title(std::string title) { title_ = std::move(title); }

  void add_row(std::vector<Cell> cells);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return columns_.size(); }

  /// Human-readable aligned rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV rendering (no quoting needed for our content).
  void write_csv(std::ostream& os) const;

  /// Convenience: write CSV to `path`, creating parent dirs if needed.
  void save_csv(const std::string& path) const;

  /// Machine-readable JSON: {"title", "columns", "rows"} with typed cells
  /// (strings stay strings, numbers stay numbers), so downstream tooling
  /// can track perf trajectories without re-parsing aligned text.
  void write_json(std::ostream& os) const;

  /// Convenience: write JSON to `path`, creating parent dirs if needed.
  void save_json(const std::string& path) const;

 private:
  static std::string render(const Cell& cell);

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace treeplace
