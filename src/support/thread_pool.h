// Fixed-size thread pool used by the simulation harness.
//
// The paper's experiments run hundreds of independent trees; we parallelize
// across trees (embarrassingly parallel, deterministic per-tree seeds).
// A simple mutex/condvar work queue is entirely sufficient: tasks are
// long-lived (milliseconds to seconds), so queue contention is negligible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/check.h"

namespace treeplace {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      TREEPLACE_CHECK_MSG(!stopping_, "submit() after ThreadPool shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Default worker count: hardware concurrency, overridable by the
  /// TREEPLACE_THREADS environment variable (see support/env.h).
  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace treeplace
