#include "support/env.h"

#include <cstdlib>
#include <stdexcept>

namespace treeplace {

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::string(v) : fallback;
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return static_cast<std::size_t>(std::stoull(v));
  } catch (const std::exception&) {
    return fallback;
  }
}

std::int64_t env_int64(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    return fallback;
  }
}

BenchScale bench_scale() {
  const std::string s = env_string("TREEPLACE_SCALE", "quick");
  return s == "paper" ? BenchScale::kPaper : BenchScale::kQuick;
}

}  // namespace treeplace
