#include "support/stats.h"

#include <algorithm>

namespace treeplace {

double quantile(std::vector<double> values, double q) {
  TREEPLACE_CHECK(!values.empty());
  TREEPLACE_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace treeplace
