// Deterministic pseudo-random generation for reproducible simulations.
//
// The simulation harness runs hundreds of trees in parallel; every tree gets
// an independent, deterministic stream derived from (base seed, stream id)
// so that results are bit-identical regardless of thread count or execution
// order.  We use SplitMix64 for seed derivation and xoshiro256** as the
// workhorse generator (public-domain algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "support/check.h"

namespace treeplace {

/// SplitMix64 step: used to expand a 64-bit seed into generator state and to
/// hash (seed, stream) pairs into independent sub-seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive an independent seed for a named sub-stream.  Mixing the stream id
/// through SplitMix64 twice keeps nearby ids statistically uncorrelated.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t s = base ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi], inclusive.  Uses Lemire's unbiased
  /// multiply-shift rejection method.
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    TREEPLACE_DCHECK(lo <= hi);
    const std::uint64_t range = hi - lo;
    if (range == std::numeric_limits<std::uint64_t>::max()) return (*this)();
    const std::uint64_t n = range + 1;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi], inclusive, as int.
  constexpr int uniform_int(int lo, int hi) {
    TREEPLACE_DCHECK(lo <= hi);
    return lo + static_cast<int>(uniform(0, static_cast<std::uint64_t>(hi) -
                                                static_cast<std::uint64_t>(lo)));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  constexpr bool bernoulli(double p) { return uniform_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Named stream ids used throughout the simulators, so that adding a new
/// consumer of randomness never perturbs existing streams.
enum class RngStream : std::uint64_t {
  kTreeShape = 1,
  kClients = 2,
  kRequests = 3,
  kPreExisting = 4,
  kWorkloadUpdate = 5,
  kModes = 6,
  kMisc = 7,
};

/// Generator for a (base seed, tree index, stream) triple.
inline Xoshiro256 make_rng(std::uint64_t base_seed, std::uint64_t tree_index,
                           RngStream stream) {
  const std::uint64_t s1 = derive_seed(base_seed, tree_index);
  return Xoshiro256(derive_seed(s1, static_cast<std::uint64_t>(stream)));
}

}  // namespace treeplace
