#include "support/binio.h"

#include <array>

namespace treeplace::binio {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                           std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Writer::put(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  TREEPLACE_CHECK_MSG(out_.good(), "snapshot write failed after "
                                       << bytes_ << " bytes");
  crc_ = crc32_update(crc_, data, size);
  bytes_ += size;
}

void Writer::scalar(std::uint64_t v, int bytes) {
  unsigned char buf[8];
  for (int i = 0; i < bytes; ++i) {
    buf[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  put(buf, static_cast<std::size_t>(bytes));
}

void Writer::str(std::string_view s) {
  TREEPLACE_CHECK_MSG(s.size() <= UINT32_MAX, "string too long to snapshot");
  u32(static_cast<std::uint32_t>(s.size()));
  if (!s.empty()) put(s.data(), s.size());
}

void Writer::write_crc() {
  const std::uint32_t trailer = crc_;
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<unsigned char>(trailer >> (8 * i));
  }
  out_.write(reinterpret_cast<const char*>(buf), 4);
  TREEPLACE_CHECK_MSG(out_.good(), "snapshot write failed (crc trailer)");
  bytes_ += 4;
  crc_ = 0;
}

void Reader::get(void* out, std::size_t size) {
  TREEPLACE_CHECK_MSG(size <= remaining_bytes(),
                      "snapshot truncated at byte " << bytes_);
  in_.read(static_cast<char*>(out), static_cast<std::streamsize>(size));
  TREEPLACE_CHECK_MSG(static_cast<std::size_t>(in_.gcount()) == size,
                      "snapshot truncated at byte " << bytes_);
  crc_ = crc32_update(crc_, out, size);
  bytes_ += size;
}

std::uint8_t Reader::u8() {
  std::uint8_t v = 0;
  get(&v, 1);
  return v;
}

std::uint64_t Reader::scalar(int bytes) {
  unsigned char buf[8];
  get(buf, static_cast<std::size_t>(bytes));
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return v;
}

std::string Reader::str(std::size_t max_size) {
  const std::uint32_t size = u32();
  TREEPLACE_CHECK_MSG(size <= max_size,
                      "snapshot string length " << size << " exceeds limit");
  std::string s(size, '\0');
  if (size > 0) get(s.data(), size);
  return s;
}

void Reader::verify_crc() {
  const std::uint32_t expected = crc_;
  TREEPLACE_CHECK_MSG(remaining_bytes() >= 4,
                      "snapshot truncated (crc trailer)");
  unsigned char buf[4];
  in_.read(reinterpret_cast<char*>(buf), 4);
  TREEPLACE_CHECK_MSG(in_.gcount() == 4, "snapshot truncated (crc trailer)");
  bytes_ += 4;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  }
  TREEPLACE_CHECK_MSG(stored == expected,
                      "snapshot CRC mismatch (file corrupted)");
  crc_ = 0;
}

}  // namespace treeplace::binio
