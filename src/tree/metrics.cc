#include "tree/metrics.h"

#include <algorithm>
#include <vector>

namespace treeplace {

TreeMetrics compute_metrics(const Tree& tree) {
  TreeMetrics m;
  m.num_internal = tree.num_internal();
  m.num_clients = tree.num_clients();
  m.num_pre_existing = tree.num_pre_existing();
  m.total_requests = tree.total_requests();

  for (NodeId c : tree.client_ids()) {
    m.max_client_requests = std::max(m.max_client_requests, tree.requests(c));
  }

  std::size_t fanout_nodes = 0;
  std::size_t fanout_sum = 0;
  m.min_fanout = tree.num_internal();
  for (NodeId id : tree.internal_ids()) {
    const std::size_t f = tree.internal_children(id).size();
    if (f > 0) {
      ++fanout_nodes;
      fanout_sum += f;
      m.min_fanout = std::min(m.min_fanout, f);
      m.max_fanout = std::max(m.max_fanout, f);
    }
  }
  if (fanout_nodes == 0) {
    m.min_fanout = 0;
  } else {
    m.mean_fanout =
        static_cast<double>(fanout_sum) / static_cast<double>(fanout_nodes);
  }

  // Depth via BFS over internal nodes.
  std::vector<std::size_t> depth(tree.num_nodes(), 0);
  if (!tree.empty()) {
    depth[static_cast<std::size_t>(tree.root())] = 1;
    m.depth = 1;
    // internal_post_order is children-first; iterate in reverse for
    // parents-first.
    const auto& order = tree.internal_post_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId id = *it;
      const std::size_t d = depth[static_cast<std::size_t>(id)];
      for (NodeId c : tree.internal_children(id)) {
        depth[static_cast<std::size_t>(c)] = d + 1;
        m.depth = std::max(m.depth, d + 1);
      }
    }
  }
  return m;
}

}  // namespace treeplace
