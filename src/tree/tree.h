// Distribution-tree topology: the fixed network of the paper (Section 2.1).
//
// Nodes are partitioned into *internal* nodes (the set N, candidate replica
// locations) and *clients* (the set C, always leaves, each issuing `r_i`
// requests per time unit).  The topology is immutable after construction;
// per-node attributes that the experiments mutate — client request volumes,
// the pre-existing-server set E and original server modes — are mutable.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/check.h"

namespace treeplace {

/// Dense node identifier, stable for the lifetime of a Tree.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Number of requests per time unit (integral, as in the paper).  64 bits:
/// the NP-completeness gadget (core/np_reduction.h) scales its instances by
/// 2K = 2nS² and needs request volumes far beyond 32 bits.
using RequestCount = std::uint64_t;

enum class NodeKind : std::uint8_t { kInternal, kClient };

class TreeBuilder;

class Tree {
 public:
  /// Trees are produced by TreeBuilder::build().
  Tree() = default;

  NodeId root() const { return root_; }
  std::size_t num_nodes() const { return kind_.size(); }
  std::size_t num_internal() const { return internal_ids_.size(); }
  std::size_t num_clients() const { return num_nodes() - num_internal(); }
  bool empty() const { return kind_.empty(); }

  bool valid_id(NodeId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < num_nodes();
  }
  NodeKind kind(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    return kind_[static_cast<std::size_t>(id)];
  }
  bool is_internal(NodeId id) const { return kind(id) == NodeKind::kInternal; }
  bool is_client(NodeId id) const { return kind(id) == NodeKind::kClient; }

  NodeId parent(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    return parent_[static_cast<std::size_t>(id)];
  }

  /// All children of `id` (internal nodes and clients, in insertion order).
  std::span<const NodeId> children(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    return children_[static_cast<std::size_t>(id)];
  }

  /// Internal-node children only.
  std::span<const NodeId> internal_children(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    return internal_children_[static_cast<std::size_t>(id)];
  }

  // --- Client requests -----------------------------------------------------

  /// Requests issued by client `id`.
  RequestCount requests(NodeId id) const {
    TREEPLACE_CHECK_MSG(is_client(id), "requests() on non-client " << id);
    return requests_[static_cast<std::size_t>(id)];
  }

  void set_requests(NodeId id, RequestCount r) {
    TREEPLACE_CHECK_MSG(is_client(id), "set_requests() on non-client " << id);
    requests_[static_cast<std::size_t>(id)] = r;
  }

  /// Sum of the requests of the *client* children of internal node `id`
  /// (the `client(j)` quantity of paper Algorithm 2).
  RequestCount client_mass(NodeId id) const;

  /// Total requests issued by all clients.
  RequestCount total_requests() const;

  /// Ids of all clients, in id order.
  const std::vector<NodeId>& client_ids() const { return client_ids_; }

  // --- Pre-existing servers (the set E) ------------------------------------

  bool pre_existing(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    return pre_existing_[static_cast<std::size_t>(id)];
  }

  /// Original operating mode (0-based) of a pre-existing server; only
  /// meaningful when pre_existing(id).  Single-mode problems use mode 0.
  int original_mode(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    return original_mode_[static_cast<std::size_t>(id)];
  }

  /// Mark internal node `id` as holding a pre-existing replica operated at
  /// `original_mode`.
  void set_pre_existing(NodeId id, int original_mode = 0);
  void clear_pre_existing(NodeId id);
  void clear_all_pre_existing();

  /// |E| — maintained incrementally.
  std::size_t num_pre_existing() const { return num_pre_existing_; }

  /// Ids of pre-existing servers, in id order.
  std::vector<NodeId> pre_existing_nodes() const;

  // --- Traversal helpers ----------------------------------------------------

  /// Internal nodes in post order (every node appears after all of its
  /// internal descendants).  Cached at construction.
  const std::vector<NodeId>& internal_post_order() const { return post_order_; }

  /// Ids of internal nodes, in id order.
  const std::vector<NodeId>& internal_ids() const { return internal_ids_; }

  /// Dense index of an internal node in [0, num_internal()).  Algorithms use
  /// this to address per-internal-node tables.
  std::size_t internal_index(NodeId id) const {
    TREEPLACE_CHECK_MSG(is_internal(id), "internal_index() on client " << id);
    return static_cast<std::size_t>(internal_index_[static_cast<std::size_t>(id)]);
  }

  /// True iff `ancestor` lies on the path from `id` to the root (inclusive
  /// of `id` itself).
  bool is_ancestor_or_self(NodeId ancestor, NodeId id) const;

 private:
  friend class TreeBuilder;

  NodeId root_ = kNoNode;
  std::vector<NodeKind> kind_;
  std::vector<NodeId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::vector<NodeId>> internal_children_;
  std::vector<RequestCount> requests_;
  std::vector<bool> pre_existing_;
  std::vector<int> original_mode_;
  std::vector<NodeId> internal_ids_;
  std::vector<NodeId> client_ids_;
  std::vector<std::int32_t> internal_index_;
  std::vector<NodeId> post_order_;
  std::size_t num_pre_existing_ = 0;
};

/// Incremental tree construction with validation at build() time.
///
///   TreeBuilder b;
///   NodeId r = b.add_root();
///   NodeId a = b.add_internal(r);
///   b.add_client(a, /*requests=*/5);
///   Tree t = std::move(b).build();
class TreeBuilder {
 public:
  /// Adds the root (must be called exactly once, first).
  NodeId add_root();

  /// Adds an internal node under `parent` (which must be internal).
  NodeId add_internal(NodeId parent);

  /// Adds a client leaf under `parent` with `requests` requests.
  NodeId add_client(NodeId parent, RequestCount requests);

  /// Marks an already-added internal node as pre-existing.
  void set_pre_existing(NodeId id, int original_mode = 0);

  std::size_t num_nodes() const { return tree_.kind_.size(); }

  /// Validates (single root, clients are leaves, acyclic by construction)
  /// and finalizes derived structures.  The builder is consumed.
  Tree build() &&;

 private:
  NodeId add_node(NodeId parent, NodeKind kind, RequestCount requests);

  Tree tree_;
  bool built_ = false;
};

}  // namespace treeplace
