// Distribution tree = shared immutable Topology + per-scenario Scenario.
//
// A Tree bundles one `shared_ptr<const Topology>` (the fixed network of
// paper Section 2.1: parent/children/post-order/internal indexing, CSR
// flattened — see tree/topology.h) with one Scenario overlay (the mutable
// per-scenario state: client request volumes, the pre-existing set E and
// original server modes — see tree/scenario.h).  The full pre-split Tree
// API is preserved as forwarders, so generators, IO, metrics and tests are
// unaffected, while copying a Tree is now zero-copy on the structure side:
// the topology is shared, only the flat Scenario arrays are duplicated.
//
// Layered callers (the solver registry, experiments, the batch CLI) should
// prefer the explicit split: take the topology and scenario apart with
// topology_ptr()/scenario() and fork scenarios instead of copying trees.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "support/check.h"
#include "tree/scenario.h"
#include "tree/topology.h"

namespace treeplace {

class TreeBuilder;

class Tree {
 public:
  /// Trees are produced by TreeBuilder::build(); a default-constructed Tree
  /// is empty.
  Tree() = default;

  /// Re-bundles an existing topology with a (typically forked) scenario.
  Tree(std::shared_ptr<const Topology> topology, Scenario scenario)
      : scenario_(std::move(scenario)) {
    TREEPLACE_CHECK_MSG(scenario_.topology_ptr() == topology,
                        "scenario belongs to a different topology");
  }

  // --- The split -----------------------------------------------------------

  /// The shared immutable structure; null for an empty Tree.
  const std::shared_ptr<const Topology>& topology_ptr() const {
    return scenario_.topology_ptr();
  }
  const Topology& topology() const { return scenario_.topology(); }

  /// The per-scenario overlay.  Copy the const view to fork an independent
  /// scenario over the same topology.
  const Scenario& scenario() const { return scenario_; }
  Scenario& scenario() { return scenario_; }

  // --- Structure (forwarded to the Topology) -------------------------------

  NodeId root() const { return empty() ? kNoNode : topology().root(); }
  std::size_t num_nodes() const {
    return empty() ? 0 : topology().num_nodes();
  }
  std::size_t num_internal() const {
    return empty() ? 0 : topology().num_internal();
  }
  std::size_t num_clients() const { return num_nodes() - num_internal(); }
  bool empty() const { return !scenario_.attached() || topology().empty(); }

  bool valid_id(NodeId id) const {
    return !empty() && topology().valid_id(id);
  }
  NodeKind kind(NodeId id) const { return topology().kind(id); }
  bool is_internal(NodeId id) const { return topology().is_internal(id); }
  bool is_client(NodeId id) const { return topology().is_client(id); }
  NodeId parent(NodeId id) const { return topology().parent(id); }

  /// All children of `id` (internal nodes and clients, in insertion order).
  std::span<const NodeId> children(NodeId id) const {
    return topology().children(id);
  }
  /// Internal-node children only.
  std::span<const NodeId> internal_children(NodeId id) const {
    return topology().internal_children(id);
  }

  /// Ids of all clients, in id order.
  const std::vector<NodeId>& client_ids() const {
    return topology().client_ids();
  }
  /// Ids of internal nodes, in id order.
  const std::vector<NodeId>& internal_ids() const {
    return topology().internal_ids();
  }
  /// Internal nodes in post order (children before parents).
  const std::vector<NodeId>& internal_post_order() const {
    return topology().internal_post_order();
  }
  /// Dense index of an internal node in [0, num_internal()).
  std::size_t internal_index(NodeId id) const {
    return topology().internal_index(id);
  }
  /// True iff `ancestor` lies on the path from `id` to the root.
  bool is_ancestor_or_self(NodeId ancestor, NodeId id) const {
    return topology().is_ancestor_or_self(ancestor, id);
  }

  // --- Scenario state (forwarded to the Scenario) --------------------------

  RequestCount requests(NodeId id) const { return scenario_.requests(id); }
  void set_requests(NodeId id, RequestCount r) {
    scenario_.set_requests(id, r);
  }
  /// Client mass of internal node `id`; O(1), maintained incrementally.
  RequestCount client_mass(NodeId id) const {
    return scenario_.client_mass(id);
  }
  /// Total requests of all clients; O(1), maintained incrementally.
  RequestCount total_requests() const { return scenario_.total_requests(); }

  bool pre_existing(NodeId id) const { return scenario_.pre_existing(id); }
  int original_mode(NodeId id) const { return scenario_.original_mode(id); }
  void set_pre_existing(NodeId id, int original_mode = 0) {
    scenario_.set_pre_existing(id, original_mode);
  }
  void clear_pre_existing(NodeId id) { scenario_.clear_pre_existing(id); }
  void clear_all_pre_existing() { scenario_.clear_all_pre_existing(); }
  std::size_t num_pre_existing() const { return scenario_.num_pre_existing(); }
  std::vector<NodeId> pre_existing_nodes() const {
    return scenario_.pre_existing_nodes();
  }

 private:
  friend class TreeBuilder;

  Scenario scenario_;
};

/// Incremental tree construction with validation at build() time.
///
///   TreeBuilder b;
///   NodeId r = b.add_root();
///   NodeId a = b.add_internal(r);
///   b.add_client(a, /*requests=*/5);
///   Tree t = std::move(b).build();
class TreeBuilder {
 public:
  /// Adds the root (must be called exactly once, first).
  NodeId add_root();

  /// Adds an internal node under `parent` (which must be internal).
  NodeId add_internal(NodeId parent);

  /// Adds a client leaf under `parent` with `requests` requests.
  NodeId add_client(NodeId parent, RequestCount requests);

  /// Marks an already-added internal node as pre-existing.
  void set_pre_existing(NodeId id, int original_mode = 0);

  std::size_t num_nodes() const { return kind_.size(); }

  /// Validates (single root, clients are leaves, acyclic by construction,
  /// connected) and finalizes the immutable Topology plus the initial
  /// Scenario.  The builder is consumed.
  Tree build() &&;

 private:
  NodeId add_node(NodeId parent, NodeKind kind, RequestCount requests);

  bool valid_internal(NodeId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < kind_.size() &&
           kind_[static_cast<std::size_t>(id)] == NodeKind::kInternal;
  }

  NodeId root_ = kNoNode;
  std::vector<NodeKind> kind_;
  std::vector<NodeId> parent_;
  std::vector<RequestCount> requests_;
  std::vector<std::uint8_t> pre_existing_;
  std::vector<int> original_mode_;
  bool built_ = false;
};

}  // namespace treeplace
