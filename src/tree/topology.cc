#include "tree/topology.h"

namespace treeplace {

bool Topology::is_ancestor_or_self(NodeId ancestor, NodeId id) const {
  TREEPLACE_DCHECK(valid_id(ancestor) && valid_id(id));
  for (NodeId cur = id; cur != kNoNode; cur = parent(cur)) {
    if (cur == ancestor) return true;
  }
  return false;
}

void Topology::finalize() {
  const std::size_t n = kind_.size();

  // CSR children, counting pass then fill pass.  Node ids grow in insertion
  // order, so filling by ascending id reproduces insertion order per parent.
  child_off_.assign(n + 1, 0);
  internal_child_off_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId p = parent_[i];
    if (p == kNoNode) continue;
    ++child_off_[static_cast<std::size_t>(p) + 1];
    if (kind_[i] == NodeKind::kInternal) {
      ++internal_child_off_[static_cast<std::size_t>(p) + 1];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    child_off_[i + 1] += child_off_[i];
    internal_child_off_[i + 1] += internal_child_off_[i];
  }
  child_flat_.resize(n == 0 ? 0 : child_off_[n]);
  internal_child_flat_.resize(n == 0 ? 0 : internal_child_off_[n]);
  std::vector<std::uint32_t> next = child_off_;
  std::vector<std::uint32_t> next_internal = internal_child_off_;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId p = parent_[i];
    if (p == kNoNode) continue;
    child_flat_[next[static_cast<std::size_t>(p)]++] =
        static_cast<NodeId>(i);
    if (kind_[i] == NodeKind::kInternal) {
      internal_child_flat_[next_internal[static_cast<std::size_t>(p)]++] =
          static_cast<NodeId>(i);
    }
  }

  internal_index_.assign(n, -1);
  internal_ids_.clear();
  client_ids_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(i);
    if (kind_[i] == NodeKind::kInternal) {
      internal_index_[i] = static_cast<std::int32_t>(internal_ids_.size());
      internal_ids_.push_back(id);
    } else {
      client_ids_.push_back(id);
    }
  }

  // Iterative post-order over internal nodes (children before parents).
  post_order_.clear();
  post_order_.reserve(internal_ids_.size());
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(root_, 0);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto kids = internal_children(node);
    if (next_child < kids.size()) {
      const NodeId child = kids[next_child++];
      stack.emplace_back(child, 0);
    } else {
      post_order_.push_back(node);
      stack.pop_back();
    }
  }
  TREEPLACE_CHECK_MSG(post_order_.size() == internal_ids_.size(),
                      "tree is not connected");

  // Structural fingerprint: FNV-1a over (kind, parent) in id order.  Node
  // ids are assigned in insertion order, so two trees hash equal iff they
  // were built from the same node sequence — the identity snapshots key on.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    mix(static_cast<std::uint64_t>(kind_[i]));
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(parent_[i])));
  }
  structural_hash_ = h;
}

}  // namespace treeplace
