// Mutable per-scenario state layered over a shared immutable Topology.
//
// The paper's experiments solve thousands of scenarios — varying client
// request volumes, pre-existing sets E and original server modes — over the
// same fixed topologies.  A Scenario is the cheap value type that carries
// exactly that state: copying one forks an independent scenario in O(N)
// flat-array copies (no per-node allocations, no topology duplication), and
// two threads may solve over distinct Scenarios of one shared Topology
// without synchronization (`std::vector<std::uint8_t>` rather than
// `std::vector<bool>` keeps the pre-existing flags free of shared-word
// aliasing between forked copies).
//
// Derived quantities the solver hot loops read per node — the client mass
// of every internal node and the total request volume — are maintained
// incrementally by set_requests()/set_pre_existing() instead of being
// recomputed from scratch on every call.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/check.h"
#include "tree/topology.h"

namespace treeplace {

class Scenario {
 public:
  /// An empty scenario, not attached to any topology.  Usable only as a
  /// placeholder (e.g. a default-constructed Tree or Instance).
  Scenario() = default;

  /// A blank scenario over `topology`: all client request volumes zero, no
  /// pre-existing servers.
  explicit Scenario(std::shared_ptr<const Topology> topology);

  const std::shared_ptr<const Topology>& topology_ptr() const { return topo_; }
  const Topology& topology() const {
    TREEPLACE_DCHECK(topo_ != nullptr);
    return *topo_;
  }
  bool attached() const { return topo_ != nullptr; }

  // --- Client requests -----------------------------------------------------

  /// Requests issued by client `id`.
  RequestCount requests(NodeId id) const {
    TREEPLACE_CHECK_MSG(topology().is_client(id),
                        "requests() on non-client " << id);
    return requests_[static_cast<std::size_t>(id)];
  }

  /// Updates one client's volume, maintaining client-mass and total
  /// aggregates incrementally.
  void set_requests(NodeId id, RequestCount r);

  /// Sum of the requests of the *client* children of internal node `id`
  /// (the `client(j)` quantity of paper Algorithm 2).  O(1): precomputed at
  /// construction, maintained by set_requests().
  RequestCount client_mass(NodeId id) const {
    return client_mass_[topology().internal_index(id)];
  }

  /// Total requests issued by all clients.  O(1), maintained incrementally.
  RequestCount total_requests() const { return total_requests_; }

  // --- Pre-existing servers (the set E) ------------------------------------

  bool pre_existing(NodeId id) const {
    TREEPLACE_DCHECK(topology().valid_id(id));
    return pre_existing_[static_cast<std::size_t>(id)] != 0;
  }

  /// Original operating mode (0-based) of a pre-existing server; only
  /// meaningful when pre_existing(id).  Single-mode problems use mode 0.
  int original_mode(NodeId id) const {
    TREEPLACE_DCHECK(topology().valid_id(id));
    return original_mode_[static_cast<std::size_t>(id)];
  }

  /// Marks internal node `id` as holding a pre-existing replica operated at
  /// `original_mode`.
  void set_pre_existing(NodeId id, int original_mode = 0);
  void clear_pre_existing(NodeId id);
  void clear_all_pre_existing();

  /// |E| — maintained incrementally.
  std::size_t num_pre_existing() const { return num_pre_existing_; }

  /// Ids of pre-existing servers, in id order.
  std::vector<NodeId> pre_existing_nodes() const;

  // --- Audit helpers (warm-start support) ----------------------------------

  /// Internal nodes whose solver-visible inputs differ between this
  /// scenario and `other`: client mass, pre-existing flag or original mode.
  /// Both scenarios must share one topology.  This is exactly the set a
  /// delta-aware warm start must treat as touched (dirtying each node's
  /// root path); returned in id order.
  std::vector<NodeId> touched_internal_nodes(const Scenario& other) const;

  /// True iff the incrementally maintained aggregates (per-node client
  /// mass, total requests, |E|) match a from-scratch recompute.  O(N);
  /// meant for tests and debug assertions, not hot paths.
  bool aggregates_consistent() const;

 private:
  friend class TreeBuilder;

  /// Recomputes client_mass_/total_requests_ from requests_ (used once at
  /// construction; afterwards both are maintained incrementally).
  void rebuild_aggregates();

  std::shared_ptr<const Topology> topo_;
  std::vector<RequestCount> requests_;        // per node; only clients used
  std::vector<std::uint8_t> pre_existing_;    // per node; 0/1
  std::vector<int> original_mode_;            // per node; -1 when not in E
  std::vector<RequestCount> client_mass_;     // per internal index
  RequestCount total_requests_ = 0;
  std::size_t num_pre_existing_ = 0;
};

}  // namespace treeplace
