#include "tree/tree.h"

#include <memory>
#include <utility>

namespace treeplace {

NodeId TreeBuilder::add_root() {
  TREEPLACE_CHECK_MSG(kind_.empty(), "add_root() on non-empty builder");
  return add_node(kNoNode, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::add_internal(NodeId parent) {
  TREEPLACE_CHECK_MSG(!kind_.empty(), "add_internal() before add_root()");
  TREEPLACE_CHECK_MSG(valid_internal(parent),
                      "parent " << parent << " is not an internal node");
  return add_node(parent, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::add_client(NodeId parent, RequestCount requests) {
  TREEPLACE_CHECK_MSG(!kind_.empty(), "add_client() before add_root()");
  TREEPLACE_CHECK_MSG(valid_internal(parent),
                      "parent " << parent << " is not an internal node");
  return add_node(parent, NodeKind::kClient, requests);
}

void TreeBuilder::set_pre_existing(NodeId id, int original_mode) {
  TREEPLACE_CHECK_MSG(valid_internal(id),
                      "pre-existing flag on non-internal node " << id);
  TREEPLACE_CHECK(original_mode >= 0);
  const auto i = static_cast<std::size_t>(id);
  pre_existing_[i] = 1;
  original_mode_[i] = original_mode;
}

NodeId TreeBuilder::add_node(NodeId parent, NodeKind kind,
                             RequestCount requests) {
  TREEPLACE_CHECK_MSG(!built_, "builder already consumed");
  const auto id = static_cast<NodeId>(kind_.size());
  kind_.push_back(kind);
  parent_.push_back(parent);
  requests_.push_back(requests);
  pre_existing_.push_back(0);
  original_mode_.push_back(-1);
  if (parent == kNoNode) root_ = id;
  return id;
}

Tree TreeBuilder::build() && {
  TREEPLACE_CHECK_MSG(!built_, "builder already consumed");
  TREEPLACE_CHECK_MSG(!kind_.empty(), "build() on empty builder");
  built_ = true;

  auto topology = std::make_shared<Topology>();
  topology->root_ = root_;
  topology->kind_ = std::move(kind_);
  topology->parent_ = std::move(parent_);
  topology->finalize();

  // Install the staged arrays directly (the public Scenario(topology)
  // constructor would zero-fill arrays we immediately overwrite).
  Scenario scenario;
  scenario.topo_ = std::shared_ptr<const Topology>(std::move(topology));
  scenario.requests_ = std::move(requests_);
  scenario.pre_existing_ = std::move(pre_existing_);
  scenario.original_mode_ = std::move(original_mode_);
  scenario.num_pre_existing_ = 0;
  for (const std::uint8_t pre : scenario.pre_existing_) {
    if (pre != 0) ++scenario.num_pre_existing_;
  }
  scenario.rebuild_aggregates();

  Tree tree;
  tree.scenario_ = std::move(scenario);
  return tree;
}

}  // namespace treeplace
