#include "tree/tree.h"

#include <algorithm>

namespace treeplace {

RequestCount Tree::client_mass(NodeId id) const {
  TREEPLACE_DCHECK(is_internal(id));
  RequestCount sum = 0;
  for (NodeId c : children(id)) {
    if (is_client(c)) sum += requests_[static_cast<std::size_t>(c)];
  }
  return sum;
}

RequestCount Tree::total_requests() const {
  RequestCount sum = 0;
  for (NodeId c : client_ids_) sum += requests_[static_cast<std::size_t>(c)];
  return sum;
}

void Tree::set_pre_existing(NodeId id, int original_mode) {
  TREEPLACE_CHECK_MSG(is_internal(id),
                      "pre-existing flag on non-internal node " << id);
  TREEPLACE_CHECK(original_mode >= 0);
  const auto i = static_cast<std::size_t>(id);
  if (!pre_existing_[i]) ++num_pre_existing_;
  pre_existing_[i] = true;
  original_mode_[i] = original_mode;
}

void Tree::clear_pre_existing(NodeId id) {
  TREEPLACE_CHECK_MSG(is_internal(id),
                      "pre-existing flag on non-internal node " << id);
  const auto i = static_cast<std::size_t>(id);
  if (pre_existing_[i]) --num_pre_existing_;
  pre_existing_[i] = false;
  original_mode_[i] = -1;
}

void Tree::clear_all_pre_existing() {
  std::fill(pre_existing_.begin(), pre_existing_.end(), false);
  std::fill(original_mode_.begin(), original_mode_.end(), -1);
  num_pre_existing_ = 0;
}

std::vector<NodeId> Tree::pre_existing_nodes() const {
  std::vector<NodeId> out;
  out.reserve(num_pre_existing_);
  for (NodeId id : internal_ids_) {
    if (pre_existing_[static_cast<std::size_t>(id)]) out.push_back(id);
  }
  return out;
}

bool Tree::is_ancestor_or_self(NodeId ancestor, NodeId id) const {
  TREEPLACE_DCHECK(valid_id(ancestor) && valid_id(id));
  for (NodeId cur = id; cur != kNoNode; cur = parent(cur)) {
    if (cur == ancestor) return true;
  }
  return false;
}

NodeId TreeBuilder::add_root() {
  TREEPLACE_CHECK_MSG(tree_.kind_.empty(), "add_root() on non-empty builder");
  return add_node(kNoNode, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::add_internal(NodeId parent) {
  TREEPLACE_CHECK_MSG(!tree_.kind_.empty(), "add_internal() before add_root()");
  TREEPLACE_CHECK_MSG(tree_.valid_id(parent) && tree_.is_internal(parent),
                      "parent " << parent << " is not an internal node");
  return add_node(parent, NodeKind::kInternal, 0);
}

NodeId TreeBuilder::add_client(NodeId parent, RequestCount requests) {
  TREEPLACE_CHECK_MSG(!tree_.kind_.empty(), "add_client() before add_root()");
  TREEPLACE_CHECK_MSG(tree_.valid_id(parent) && tree_.is_internal(parent),
                      "parent " << parent << " is not an internal node");
  return add_node(parent, NodeKind::kClient, requests);
}

void TreeBuilder::set_pre_existing(NodeId id, int original_mode) {
  tree_.set_pre_existing(id, original_mode);
}

NodeId TreeBuilder::add_node(NodeId parent, NodeKind kind,
                             RequestCount requests) {
  TREEPLACE_CHECK_MSG(!built_, "builder already consumed");
  const auto id = static_cast<NodeId>(tree_.kind_.size());
  tree_.kind_.push_back(kind);
  tree_.parent_.push_back(parent);
  tree_.children_.emplace_back();
  tree_.internal_children_.emplace_back();
  tree_.requests_.push_back(requests);
  tree_.pre_existing_.push_back(false);
  tree_.original_mode_.push_back(-1);
  if (parent == kNoNode) {
    tree_.root_ = id;
  } else {
    tree_.children_[static_cast<std::size_t>(parent)].push_back(id);
    if (kind == NodeKind::kInternal) {
      tree_.internal_children_[static_cast<std::size_t>(parent)].push_back(id);
    }
  }
  return id;
}

Tree TreeBuilder::build() && {
  TREEPLACE_CHECK_MSG(!built_, "builder already consumed");
  TREEPLACE_CHECK_MSG(!tree_.kind_.empty(), "build() on empty builder");
  built_ = true;

  const std::size_t n = tree_.kind_.size();
  tree_.internal_index_.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree_.kind_[i] == NodeKind::kInternal) {
      tree_.internal_index_[i] =
          static_cast<std::int32_t>(tree_.internal_ids_.size());
      tree_.internal_ids_.push_back(id);
    } else {
      tree_.client_ids_.push_back(id);
    }
  }

  // Iterative post-order over internal nodes (children before parents).
  tree_.post_order_.clear();
  tree_.post_order_.reserve(tree_.internal_ids_.size());
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(tree_.root_, 0);
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    const auto& kids = tree_.internal_children_[static_cast<std::size_t>(node)];
    if (next_child < kids.size()) {
      const NodeId child = kids[next_child++];
      stack.emplace_back(child, 0);
    } else {
      tree_.post_order_.push_back(node);
      stack.pop_back();
    }
  }
  TREEPLACE_CHECK_MSG(tree_.post_order_.size() == tree_.internal_ids_.size(),
                      "tree is not connected");
  return std::move(tree_);
}

}  // namespace treeplace
