// One scenario edit, as a value: the delta vocabulary of the serving
// stream and of every delta-aware (warm-start) solve.
//
// ScenarioDelta started life inside the serve layer's request parser, but
// the core solvers now consume delta spans too (Solver::solve_incremental),
// so the type lives with the Scenario it edits; serve/request_stream.h
// re-exports it under its old name for stream code.  A delta names the
// *operation*, not its effect: apply_delta() is the one place the four
// operations are interpreted, shared by the stream server, the experiment
// drivers and the tests, so everyone agrees on semantics (and on which
// CheckErrors a malformed delta raises).
#pragma once

#include "tree/scenario.h"
#include "tree/topology.h"

namespace treeplace {

/// One edit applied to a forked base scenario, in record order.
struct ScenarioDelta {
  enum class Op {
    kSetRequests,       ///< R <client-id> <requests>
    kSetPreExisting,    ///< E <node-id> [<orig-mode>]
    kClearPreExisting,  ///< X <node-id>
    kClearAllPre,       ///< Z
  };

  Op op = Op::kSetRequests;
  NodeId node = kNoNode;
  RequestCount requests = 0;
  int mode = 0;

  /// Convenience constructors for the common edits.
  static ScenarioDelta set_requests(NodeId client, RequestCount requests) {
    return ScenarioDelta{Op::kSetRequests, client, requests, 0};
  }
  static ScenarioDelta set_pre_existing(NodeId node, int mode = 0) {
    return ScenarioDelta{Op::kSetPreExisting, node, 0, mode};
  }
  static ScenarioDelta clear_pre_existing(NodeId node) {
    return ScenarioDelta{Op::kClearPreExisting, node, 0, 0};
  }
  static ScenarioDelta clear_all_pre() {
    return ScenarioDelta{Op::kClearAllPre, kNoNode, 0, 0};
  }
};

/// Applies one delta to `scen`.  Throws CheckError on invalid node ids
/// (wrong kind, out of range) — the same errors the underlying Scenario
/// setters raise.
inline void apply_delta(Scenario& scen, const ScenarioDelta& delta) {
  switch (delta.op) {
    case ScenarioDelta::Op::kSetRequests:
      scen.set_requests(delta.node, delta.requests);
      break;
    case ScenarioDelta::Op::kSetPreExisting:
      scen.set_pre_existing(delta.node, delta.mode);
      break;
    case ScenarioDelta::Op::kClearPreExisting:
      scen.clear_pre_existing(delta.node);
      break;
    case ScenarioDelta::Op::kClearAllPre:
      scen.clear_all_pre_existing();
      break;
  }
}

}  // namespace treeplace
