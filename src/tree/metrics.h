// Structural metrics of a distribution tree, reported by benches and used by
// the generator tests to validate the paper's tree-shape parameters.
#pragma once

#include "tree/tree.h"

namespace treeplace {

struct TreeMetrics {
  std::size_t num_internal = 0;
  std::size_t num_clients = 0;
  std::size_t num_pre_existing = 0;
  /// Depth of the internal-node tree (root alone = 1).
  std::size_t depth = 0;
  /// Internal-children fan-out over internal nodes that have at least one.
  std::size_t min_fanout = 0;
  std::size_t max_fanout = 0;
  double mean_fanout = 0.0;
  RequestCount total_requests = 0;
  RequestCount max_client_requests = 0;
};

TreeMetrics compute_metrics(const Tree& tree);

}  // namespace treeplace
