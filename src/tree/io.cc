#include "tree/io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace treeplace {

namespace {

constexpr const char* kHeader = "treeplace-tree v1";

/// Parses one `I ...` / `C ...` node line into `builder`, enforcing
/// consecutive ids.
void parse_node_line(TreeBuilder& builder, const std::string& line,
                     NodeId expected_id) {
  std::istringstream ls(line);
  char tag = 0;
  NodeId id = kNoNode;
  NodeId parent = kNoNode;
  ls >> tag >> id >> parent;
  TREEPLACE_CHECK_MSG(!ls.fail(), "malformed tree line: '" << line << "'");
  TREEPLACE_CHECK_MSG(id == expected_id,
                      "node ids must be consecutive; expected "
                          << expected_id << ", got " << id);
  if (tag == 'I') {
    int pre = 0;
    int orig_mode = -1;
    ls >> pre >> orig_mode;
    TREEPLACE_CHECK_MSG(!ls.fail(), "malformed internal line: '" << line
                                                                 << "'");
    const NodeId got =
        (parent == kNoNode) ? builder.add_root() : builder.add_internal(parent);
    TREEPLACE_CHECK(got == id);
    if (pre != 0) builder.set_pre_existing(id, orig_mode < 0 ? 0 : orig_mode);
  } else if (tag == 'C') {
    RequestCount requests = 0;
    ls >> requests;
    TREEPLACE_CHECK_MSG(!ls.fail(), "malformed client line: '" << line
                                                               << "'");
    const NodeId got = builder.add_client(parent, requests);
    TREEPLACE_CHECK(got == id);
  } else {
    TREEPLACE_CHECK_MSG(false, "unknown node tag '" << tag << "'");
  }
}

}  // namespace

void serialize_tree(const Tree& tree, std::ostream& os) {
  os << kHeader << '\n';
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.is_internal(id)) {
      os << "I " << id << ' ' << tree.parent(id) << ' '
         << (tree.pre_existing(id) ? 1 : 0) << ' ' << tree.original_mode(id)
         << '\n';
    } else {
      os << "C " << id << ' ' << tree.parent(id) << ' ' << tree.requests(id)
         << '\n';
    }
  }
}

std::string serialize_tree(const Tree& tree) {
  std::ostringstream os;
  serialize_tree(tree, os);
  return os.str();
}

Tree parse_tree(std::istream& is) {
  std::string header;
  std::getline(is, header);
  TREEPLACE_CHECK_MSG(header == kHeader,
                      "bad tree header: '" << header << "'");
  TreeBuilder builder;
  std::string line;
  NodeId expected_id = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    parse_node_line(builder, line, expected_id);
    ++expected_id;
  }
  return std::move(builder).build();
}

Tree parse_tree(const std::string& text) {
  std::istringstream is(text);
  return parse_tree(is);
}

bool TreeStreamReader::read_line(std::string& line) {
  if (has_pending_) {
    line = std::move(pending_);
    has_pending_ = false;
    return true;
  }
  return static_cast<bool>(std::getline(is_, line));
}

std::optional<Tree> TreeStreamReader::next() {
  // Skip blank and comment lines up to the next header.
  std::string line;
  for (;;) {
    if (!read_line(line)) return std::nullopt;
    if (line.empty() || line[0] == '#') continue;
    break;
  }
  TREEPLACE_CHECK_MSG(line == kHeader, "bad tree header: '" << line << "'");

  TreeBuilder builder;
  NodeId expected_id = 0;
  while (read_line(line)) {
    if (line == kHeader) {
      // The next tree starts here; hand the header back for the next call.
      pending_ = std::move(line);
      has_pending_ = true;
      break;
    }
    // Interior blank and comment lines are permitted exactly as in
    // parse_tree(); only a new header terminates a tree.
    if (line.empty() || line[0] == '#') continue;
    parse_node_line(builder, line, expected_id);
    ++expected_id;
  }
  Tree tree = std::move(builder).build();  // may throw: count only successes
  ++trees_read_;
  return tree;
}

std::string to_dot(const Tree& tree) {
  std::ostringstream os;
  os << "digraph tree {\n  rankdir=TB;\n";
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.is_internal(id)) {
      os << "  n" << id << " [shape=circle" << ",label=\"" << id << "\"";
      if (tree.pre_existing(id)) {
        os << ",peripheries=2,style=filled,fillcolor=lightblue";
      }
      os << "];\n";
    } else {
      os << "  n" << id << " [shape=box,label=\"" << tree.requests(id)
         << "\"];\n";
    }
  }
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.parent(id) != kNoNode) {
      os << "  n" << tree.parent(id) << " -> n" << id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace treeplace
