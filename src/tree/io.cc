#include "tree/io.h"

#include <map>
#include <ostream>
#include <sstream>

namespace treeplace {

namespace {
constexpr const char* kHeader = "treeplace-tree v1";
}  // namespace

void serialize_tree(const Tree& tree, std::ostream& os) {
  os << kHeader << '\n';
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.is_internal(id)) {
      os << "I " << id << ' ' << tree.parent(id) << ' '
         << (tree.pre_existing(id) ? 1 : 0) << ' ' << tree.original_mode(id)
         << '\n';
    } else {
      os << "C " << id << ' ' << tree.parent(id) << ' ' << tree.requests(id)
         << '\n';
    }
  }
}

std::string serialize_tree(const Tree& tree) {
  std::ostringstream os;
  serialize_tree(tree, os);
  return os.str();
}

Tree parse_tree(std::istream& is) {
  std::string header;
  std::getline(is, header);
  TREEPLACE_CHECK_MSG(header == kHeader,
                      "bad tree header: '" << header << "'");
  TreeBuilder builder;
  std::string line;
  NodeId expected_id = 0;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    NodeId id = kNoNode;
    NodeId parent = kNoNode;
    ls >> tag >> id >> parent;
    TREEPLACE_CHECK_MSG(!ls.fail(), "malformed tree line: '" << line << "'");
    TREEPLACE_CHECK_MSG(id == expected_id,
                        "node ids must be consecutive; expected "
                            << expected_id << ", got " << id);
    ++expected_id;
    if (tag == 'I') {
      int pre = 0;
      int orig_mode = -1;
      ls >> pre >> orig_mode;
      TREEPLACE_CHECK_MSG(!ls.fail(), "malformed internal line: '" << line
                                                                   << "'");
      const NodeId got =
          (parent == kNoNode) ? builder.add_root() : builder.add_internal(parent);
      TREEPLACE_CHECK(got == id);
      if (pre != 0) builder.set_pre_existing(id, orig_mode < 0 ? 0 : orig_mode);
    } else if (tag == 'C') {
      RequestCount requests = 0;
      ls >> requests;
      TREEPLACE_CHECK_MSG(!ls.fail(), "malformed client line: '" << line
                                                                 << "'");
      const NodeId got = builder.add_client(parent, requests);
      TREEPLACE_CHECK(got == id);
    } else {
      TREEPLACE_CHECK_MSG(false, "unknown node tag '" << tag << "'");
    }
  }
  return std::move(builder).build();
}

Tree parse_tree(const std::string& text) {
  std::istringstream is(text);
  return parse_tree(is);
}

std::string to_dot(const Tree& tree) {
  std::ostringstream os;
  os << "digraph tree {\n  rankdir=TB;\n";
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.is_internal(id)) {
      os << "  n" << id << " [shape=circle" << ",label=\"" << id << "\"";
      if (tree.pre_existing(id)) {
        os << ",peripheries=2,style=filled,fillcolor=lightblue";
      }
      os << "];\n";
    } else {
      os << "  n" << id << " [shape=box,label=\"" << tree.requests(id)
         << "\"];\n";
    }
  }
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.parent(id) != kNoNode) {
      os << "  n" << tree.parent(id) << " -> n" << id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace treeplace
