#include "tree/io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace treeplace {

namespace {

constexpr const char* kHeader = "treeplace-tree v1";

/// Guard against unterminated-garbage input (a binary file, a hostile
/// network peer relayed to a file): one line this long is never a valid
/// record line.  Matches serve/wire.h's LineBuffer default.
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// getline() keeps the '\r' of CRLF line endings; strip it so streams
/// written on Windows (or piped through tools that add CRLF) parse
/// identically — in particular, header matching is token-exact.
void sanitize_line(std::string& line) {
  TREEPLACE_CHECK_MSG(line.size() <= kMaxLineBytes,
                      "oversized line: " << line.size() << " bytes (limit "
                                         << kMaxLineBytes << ")");
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// Parses one `I ...` / `C ...` node line into `builder`, enforcing
/// consecutive ids.
void parse_node_line(TreeBuilder& builder, const std::string& line,
                     NodeId expected_id) {
  std::istringstream ls(line);
  char tag = 0;
  NodeId id = kNoNode;
  NodeId parent = kNoNode;
  ls >> tag >> id >> parent;
  TREEPLACE_CHECK_MSG(!ls.fail(), "malformed tree line: '" << line << "'");
  TREEPLACE_CHECK_MSG(id == expected_id,
                      "node ids must be consecutive; expected "
                          << expected_id << ", got " << id);
  if (tag == 'I') {
    int pre = 0;
    int orig_mode = -1;
    ls >> pre >> orig_mode;
    TREEPLACE_CHECK_MSG(!ls.fail(), "malformed internal line: '" << line
                                                                 << "'");
    const NodeId got =
        (parent == kNoNode) ? builder.add_root() : builder.add_internal(parent);
    TREEPLACE_CHECK(got == id);
    if (pre != 0) builder.set_pre_existing(id, orig_mode < 0 ? 0 : orig_mode);
  } else if (tag == 'C') {
    RequestCount requests = 0;
    ls >> requests;
    TREEPLACE_CHECK_MSG(!ls.fail(), "malformed client line: '" << line
                                                               << "'");
    const NodeId got = builder.add_client(parent, requests);
    TREEPLACE_CHECK(got == id);
  } else {
    TREEPLACE_CHECK_MSG(false, "unknown node tag '" << tag << "'");
  }
}

}  // namespace

void serialize_tree(const Tree& tree, std::ostream& os) {
  os << kHeader << '\n';
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.is_internal(id)) {
      os << "I " << id << ' ' << tree.parent(id) << ' '
         << (tree.pre_existing(id) ? 1 : 0) << ' ' << tree.original_mode(id)
         << '\n';
    } else {
      os << "C " << id << ' ' << tree.parent(id) << ' ' << tree.requests(id)
         << '\n';
    }
  }
}

std::string serialize_tree(const Tree& tree) {
  std::ostringstream os;
  serialize_tree(tree, os);
  return os.str();
}

Tree parse_tree(std::istream& is) {
  std::string header;
  std::getline(is, header);
  sanitize_line(header);
  TREEPLACE_CHECK_MSG(header == kHeader,
                      "bad tree header: '" << header << "'");
  TreeBuilder builder;
  std::string line;
  NodeId expected_id = 0;
  while (std::getline(is, line)) {
    sanitize_line(line);
    if (line.empty() || line[0] == '#') continue;
    parse_node_line(builder, line, expected_id);
    ++expected_id;
  }
  return std::move(builder).build();
}

Tree parse_tree(const std::string& text) {
  std::istringstream is(text);
  return parse_tree(is);
}

bool TreeStreamReader::read_line(std::string& line) {
  if (has_pending_) {
    line = std::move(pending_);
    has_pending_ = false;
    return true;
  }
  if (!std::getline(is_, line)) return false;
  sanitize_line(line);
  return true;
}

bool TreeStreamReader::is_record_header(const std::string& line) {
  return line.rfind("treeplace-", 0) == 0;
}

const char* TreeStreamReader::tree_header() { return kHeader; }

std::optional<std::string> TreeStreamReader::next_header() {
  // Skip blank and comment lines up to the next header.
  std::string line;
  for (;;) {
    if (!read_line(line)) return std::nullopt;
    if (line.empty() || line[0] == '#') continue;
    break;
  }
  TREEPLACE_CHECK_MSG(is_record_header(line),
                      "bad record header: '" << line << "'");
  return line;
}

bool TreeStreamReader::next_body_line(std::string& line) {
  while (read_line(line)) {
    if (is_record_header(line)) {
      // The next record starts here; hand the header back for the next
      // next_header()/next() call.
      pending_ = std::move(line);
      has_pending_ = true;
      return false;
    }
    // Interior blank and comment lines are permitted exactly as in
    // parse_tree(); only a new header terminates a record.
    if (line.empty() || line[0] == '#') continue;
    return true;
  }
  return false;
}

Tree TreeStreamReader::read_tree_body() {
  TreeBuilder builder;
  NodeId expected_id = 0;
  std::string line;
  while (next_body_line(line)) {
    parse_node_line(builder, line, expected_id);
    ++expected_id;
  }
  Tree tree = std::move(builder).build();  // may throw: count only successes
  ++trees_read_;
  return tree;
}

std::optional<Tree> TreeStreamReader::next() {
  const std::optional<std::string> header = next_header();
  if (!header) return std::nullopt;
  TREEPLACE_CHECK_MSG(*header == kHeader,
                      "bad tree header: '" << *header << "'");
  return read_tree_body();
}

std::string to_dot(const Tree& tree) {
  std::ostringstream os;
  os << "digraph tree {\n  rankdir=TB;\n";
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.is_internal(id)) {
      os << "  n" << id << " [shape=circle" << ",label=\"" << id << "\"";
      if (tree.pre_existing(id)) {
        os << ",peripheries=2,style=filled,fillcolor=lightblue";
      }
      os << "];\n";
    } else {
      os << "  n" << id << " [shape=box,label=\"" << tree.requests(id)
         << "\"];\n";
    }
  }
  for (std::size_t i = 0; i < tree.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (tree.parent(id) != kNoNode) {
      os << "  n" << tree.parent(id) << " -> n" << id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace treeplace
