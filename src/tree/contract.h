// Frozen-subtree contraction: solve a warm day on a tree the size of the
// delta.
//
// The DPs of the paper compose strictly bottom-up: an internal subtree
// interacts with the rest of the tree only through the DP table at its
// root (Benoit–Rehn–Robert, Section 3 — every parent merge reads child
// *tables*, never child structure).  So on a warm re-solve whose delta
// batch leaves a whole subtree untouched, that subtree can be replaced by
// a single *sealed leaf* — a childless internal node whose cached root
// table is injected verbatim into the merge plan — and the solve runs on
// a contracted tree whose size is O(dirty region + root paths), not N.
//
// A Contraction is the structural half of that bargain.  Given the set of
// *open* internal nodes (the ancestor closure of everything a delta batch
// can touch, see open_closure()), it builds:
//
//   * a contracted Topology: open internals survive 1:1 with their client
//     children and child order intact; every non-open internal child of an
//     open node becomes a childless sealed leaf; everything strictly
//     inside a sealed subtree vanishes;
//   * the id maps (to_contracted / to_original) plus the sealed mask per
//     contracted internal index;
//   * contract(scenario)  — the contracted Scenario: kept clients keep
//     their requests, kept internals (sealed roots included — the engines
//     read a child's pre-existing state to size its leaf table) keep
//     their E/mode state.  Sealed leaves own no clients, so their
//     client_mass is 0 — which is exactly the signature the session layer
//     stamps on a preloaded sealed entry, making even a full signature
//     sweep over the contracted tree leave sealed tables untouched;
//   * map_deltas(span)    — renumber a delta span onto the contracted
//     tree, or nullopt when any edit lands on or under a sealed subtree
//     (the caller must then unseal: decontract and rebuild);
//   * expand(placement)   — pure renumbering back to original ids.
//
// The DP-side half (preloading sealed tables, counter accounting, the
// session lifecycle) lives in core/dp_contract.h and solver/contracted.h.
// Exactness is fuzz-gated by tests/tree/contract_test.cc and
// bench/contraction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "model/placement.h"
#include "tree/scenario_delta.h"
#include "tree/tree.h"

namespace treeplace {

class Contraction {
 public:
  /// Builds the contracted topology for `original` given the open mask
  /// (one byte per *internal index*, ancestor-closed, root open — the
  /// shape open_closure() produces).  Nodes outside the mask freeze.
  Contraction(std::shared_ptr<const Topology> original,
              std::vector<std::uint8_t> open);

  /// The ancestor closure of `touched` (internal node ids): every touched
  /// node and every ancestor up to the root is open, everything else is
  /// frozen.  Returns one byte per internal index.  The root is always
  /// open, even for an empty touched set.
  static std::vector<std::uint8_t> open_closure(
      const Topology& topo, std::span<const NodeId> touched);

  const std::shared_ptr<const Topology>& original() const {
    return original_;
  }
  const std::shared_ptr<const Topology>& contracted() const {
    return contracted_;
  }

  /// Whether original internal index `i` survived as an open node.
  bool open(std::size_t internal_index) const {
    return open_[internal_index] != 0;
  }

  /// Contracted id of an original node; kNoNode for nodes hidden inside a
  /// sealed subtree.  Sealed roots map to their sealed leaf.
  NodeId to_contracted(NodeId original_id) const {
    return to_contracted_[static_cast<std::size_t>(original_id)];
  }
  /// Original id of a contracted node (always valid: every contracted
  /// node has exactly one original twin).
  NodeId to_original(NodeId contracted_id) const {
    return to_original_[static_cast<std::size_t>(contracted_id)];
  }
  /// Per contracted node id, for building a dp::ContractionView.
  std::span<const NodeId> to_original_map() const { return to_original_; }

  /// Per *contracted internal index*: 1 when that node is a sealed leaf.
  std::span<const std::uint8_t> sealed() const { return sealed_; }
  /// Original ids of the sealed subtree roots, in contracted id order.
  const std::vector<NodeId>& sealed_roots() const { return sealed_roots_; }
  std::size_t num_sealed() const { return sealed_roots_.size(); }

  /// Internal nodes hidden by the contraction (frozen but not sealed
  /// roots): the warm work the contracted solve never touches.
  std::size_t hidden_internal() const {
    return original_->num_internal() - contracted_->num_internal();
  }

  /// The contracted scenario equivalent to `orig` outside sealed
  /// subtrees.  `orig` must belong to original().
  Scenario contract(const Scenario& orig) const;

  /// Renumbers a delta span onto the contracted tree.  Returns nullopt
  /// when any edit touches a sealed subtree (its root included — a sealed
  /// root going dirty means the seal must break) or clears all
  /// pre-existing state; the caller then unseals.
  std::optional<std::vector<ScenarioDelta>> map_deltas(
      std::span<const ScenarioDelta> deltas) const;

  /// Maps a placement over the contracted topology back to original node
  /// ids.  A sealed leaf maps to its subtree root; sealed *interiors*
  /// never appear here — they are reconstructed from the cached tables.
  Placement expand(const Placement& contracted) const;

 private:
  std::shared_ptr<const Topology> original_;
  std::shared_ptr<const Topology> contracted_;
  std::vector<std::uint8_t> open_;          ///< per original internal index
  std::vector<NodeId> to_contracted_;       ///< per original node id
  std::vector<NodeId> to_original_;         ///< per contracted node id
  std::vector<std::uint8_t> sealed_;        ///< per contracted internal index
  std::vector<NodeId> sealed_roots_;        ///< original ids
};

}  // namespace treeplace
