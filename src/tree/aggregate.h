// Hierarchical client aggregation: collapse leaf client populations into
// one weighted aggregate client per attachment point.
//
// Every DP engine in this library reads client state through exactly one
// quantity — `Scenario::client_mass(j)`, the summed request volume of the
// *client* children of internal node `j` (the `client(j)` of paper
// Algorithm 2).  Replacing an internal node's client children by a single
// aggregate client carrying their total therefore changes nothing the
// solvers can observe: objective values, placements (over internal nodes,
// which survive 1:1) and work counters are bit-identical.  What it does
// change is the node count the scenario layer pays for — a million users
// on 10^4 distinct attachment points cost 10^4 leaves, so per-request
// scenario forks, delta planning and serve-side session state scale with
// the *network*, not the user population.
//
// An Aggregation is built once per topology (it is purely structural:
// which internal nodes own client children is scenario-independent) and
// then provides the full round-trip:
//
//   * aggregate(scenario)      — the aggregated Scenario (masses + E set);
//   * map_deltas(after, span)  — rewrite a user-level delta span into the
//     equivalent aggregate-level span (one R per touched attachment
//     point, carrying the parent's new total mass);
//   * expand(placement)        — map an aggregated solve's placement back
//     to original node ids (internal ids survive aggregation, so this is
//     a pure renumbering);
//   * to_original()/to_aggregated() — the id maps themselves, for mapping
//     per-node work counters or diagnostics either way.
//
// Exactness is fuzz-gated by tests/tree/aggregate_test.cc (three engines,
// 1 and 4 solver threads) and by the aggregated rows of bench/warm_start
// and bench/day_serve.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "model/placement.h"
#include "tree/scenario_delta.h"
#include "tree/tree.h"

namespace treeplace {

class Aggregation {
 public:
  /// Builds the aggregated topology for `original`: internal structure
  /// copied 1:1 (same parent relation, children in original order), and
  /// each internal node that owns at least one client child gets exactly
  /// one aggregate client in its place.
  explicit Aggregation(std::shared_ptr<const Topology> original);

  const std::shared_ptr<const Topology>& original() const {
    return original_;
  }
  const std::shared_ptr<const Topology>& aggregated() const {
    return aggregated_;
  }

  /// Aggregated id of an original node: internal nodes map to their
  /// aggregated twin, clients to the aggregate client of their parent.
  NodeId to_aggregated(NodeId original_id) const {
    return to_agg_[static_cast<std::size_t>(original_id)];
  }
  /// Original id of an aggregated node: internal nodes map back 1:1;
  /// an aggregate client maps to its parent's *original* internal id
  /// (the attachment point — individual users are no longer separable).
  NodeId to_original(NodeId aggregated_id) const {
    return to_orig_[static_cast<std::size_t>(aggregated_id)];
  }
  /// The aggregate client under original internal node `j`, or kNoNode
  /// when `j` owns no client children.
  NodeId aggregate_client(NodeId original_internal) const {
    return agg_client_[static_cast<std::size_t>(original_internal)];
  }

  /// The aggregated scenario equivalent to `orig`: every aggregate client
  /// carries its attachment point's client mass, the pre-existing set and
  /// original modes copy over.  `orig` must belong to original().
  Scenario aggregate(const Scenario& orig) const;

  /// Rewrites a user-level delta span into the equivalent aggregate-level
  /// span, reading the *post-delta* client masses from `after` (the
  /// original scenario with `deltas` already applied).  Multiple edits
  /// under one attachment point fold into a single R record; E/X/Z pass
  /// through with renumbered ids.  The result upholds the warm-start
  /// contract: it names every aggregate-level edit the span implies.
  std::vector<ScenarioDelta> map_deltas(
      const Scenario& after, std::span<const ScenarioDelta> deltas) const;

  /// Maps a placement over the aggregated topology back to original node
  /// ids.  Placements only ever name internal nodes, which survive 1:1.
  Placement expand(const Placement& aggregated) const;

 private:
  std::shared_ptr<const Topology> original_;
  std::shared_ptr<const Topology> aggregated_;
  std::vector<NodeId> to_agg_;     ///< per original node id
  std::vector<NodeId> to_orig_;    ///< per aggregated node id
  std::vector<NodeId> agg_client_; ///< per original node id; internal only
};

}  // namespace treeplace
