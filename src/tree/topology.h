// Immutable distribution-tree structure: the fixed network of the paper
// (Section 2.1), shared across every scenario solved on it.
//
// Nodes are partitioned into *internal* nodes (the set N, candidate replica
// locations) and *clients* (the set C, always leaves).  A Topology holds
// only what never changes between the paper's experiment scenarios —
// parent/children relations, post order, the dense internal-node indexing —
// and is therefore safe to share across threads via
// `std::shared_ptr<const Topology>`.  All per-scenario state (client request
// volumes, the pre-existing set E, original modes) lives in the Scenario
// overlay (tree/scenario.h).
//
// Children are stored CSR-flattened: one contiguous array addressed by
// per-node offset spans, so traversals touch two cache-friendly arrays
// instead of a vector-of-vectors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/check.h"

namespace treeplace {

/// Dense node identifier, stable for the lifetime of a Topology.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Number of requests per time unit (integral, as in the paper).  64 bits:
/// the NP-completeness gadget (core/np_reduction.h) scales its instances by
/// 2K = 2nS² and needs request volumes far beyond 32 bits.
using RequestCount = std::uint64_t;

enum class NodeKind : std::uint8_t { kInternal, kClient };

class TreeBuilder;

class Topology {
 public:
  /// Topologies are produced by TreeBuilder::build(); a default-constructed
  /// Topology is empty.
  Topology() = default;

  NodeId root() const { return root_; }
  std::size_t num_nodes() const { return kind_.size(); }
  std::size_t num_internal() const { return internal_ids_.size(); }
  std::size_t num_clients() const { return num_nodes() - num_internal(); }
  bool empty() const { return kind_.empty(); }

  bool valid_id(NodeId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < num_nodes();
  }
  NodeKind kind(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    return kind_[static_cast<std::size_t>(id)];
  }
  bool is_internal(NodeId id) const { return kind(id) == NodeKind::kInternal; }
  bool is_client(NodeId id) const { return kind(id) == NodeKind::kClient; }

  NodeId parent(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    return parent_[static_cast<std::size_t>(id)];
  }

  /// All children of `id` (internal nodes and clients, in insertion order).
  std::span<const NodeId> children(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    const auto i = static_cast<std::size_t>(id);
    return std::span<const NodeId>(child_flat_.data() + child_off_[i],
                                   child_off_[i + 1] - child_off_[i]);
  }

  /// Internal-node children only (insertion order).
  std::span<const NodeId> internal_children(NodeId id) const {
    TREEPLACE_DCHECK(valid_id(id));
    const auto i = static_cast<std::size_t>(id);
    return std::span<const NodeId>(
        internal_child_flat_.data() + internal_child_off_[i],
        internal_child_off_[i + 1] - internal_child_off_[i]);
  }

  /// Ids of all clients, in id order.
  const std::vector<NodeId>& client_ids() const { return client_ids_; }

  /// Ids of internal nodes, in id order.
  const std::vector<NodeId>& internal_ids() const { return internal_ids_; }

  /// Internal nodes in post order (every node appears after all of its
  /// internal descendants).  Computed once at construction.
  const std::vector<NodeId>& internal_post_order() const { return post_order_; }

  /// Dense index of an internal node in [0, num_internal()).  Algorithms use
  /// this to address per-internal-node tables.
  std::size_t internal_index(NodeId id) const {
    TREEPLACE_CHECK_MSG(is_internal(id), "internal_index() on client " << id);
    return static_cast<std::size_t>(
        internal_index_[static_cast<std::size_t>(id)]);
  }

  /// True iff `ancestor` lies on the path from `id` to the root (inclusive
  /// of `id` itself).
  bool is_ancestor_or_self(NodeId ancestor, NodeId id) const;

  /// Stable 64-bit hash of the tree structure (node kinds + parent links),
  /// identical across processes and machines for identical trees.  Session
  /// snapshots (core/dp_snapshot.h) store it so a restore against a
  /// different topology is rejected instead of splicing mismatched tables.
  std::uint64_t structural_hash() const { return structural_hash_; }

 private:
  friend class TreeBuilder;

  /// Finalizes every derived structure (CSR spans, id lists, internal
  /// indexing, post order) from kind_/parent_, which the builder fills.
  /// Children end up in insertion order because ids are assigned in
  /// insertion order.  Throws CheckError when the tree is not connected.
  void finalize();

  NodeId root_ = kNoNode;
  std::vector<NodeKind> kind_;
  std::vector<NodeId> parent_;
  // CSR children: children of node i are child_flat_[child_off_[i] ..
  // child_off_[i+1]); same layout for the internal-only view.
  std::vector<std::uint32_t> child_off_;
  std::vector<NodeId> child_flat_;
  std::vector<std::uint32_t> internal_child_off_;
  std::vector<NodeId> internal_child_flat_;
  std::vector<NodeId> internal_ids_;
  std::vector<NodeId> client_ids_;
  std::vector<std::int32_t> internal_index_;
  std::vector<NodeId> post_order_;
  std::uint64_t structural_hash_ = 0;
};

}  // namespace treeplace
