#include "tree/scenario.h"

#include <algorithm>

namespace treeplace {

Scenario::Scenario(std::shared_ptr<const Topology> topology)
    : topo_(std::move(topology)) {
  TREEPLACE_CHECK_MSG(topo_ != nullptr, "Scenario over a null topology");
  const std::size_t n = topo_->num_nodes();
  requests_.assign(n, 0);
  pre_existing_.assign(n, 0);
  original_mode_.assign(n, -1);
  client_mass_.assign(topo_->num_internal(), 0);
}

void Scenario::set_requests(NodeId id, RequestCount r) {
  TREEPLACE_CHECK_MSG(topology().is_client(id),
                      "set_requests() on non-client " << id);
  RequestCount& slot = requests_[static_cast<std::size_t>(id)];
  const RequestCount old = slot;
  slot = r;
  // Clients are leaves, so the parent is always an internal node.
  RequestCount& mass = client_mass_[topo_->internal_index(topo_->parent(id))];
  mass = mass - old + r;
  total_requests_ = total_requests_ - old + r;
}

void Scenario::set_pre_existing(NodeId id, int original_mode) {
  TREEPLACE_CHECK_MSG(topology().is_internal(id),
                      "pre-existing flag on non-internal node " << id);
  TREEPLACE_CHECK(original_mode >= 0);
  const auto i = static_cast<std::size_t>(id);
  if (pre_existing_[i] == 0) ++num_pre_existing_;
  pre_existing_[i] = 1;
  original_mode_[i] = original_mode;
}

void Scenario::clear_pre_existing(NodeId id) {
  TREEPLACE_CHECK_MSG(topology().is_internal(id),
                      "pre-existing flag on non-internal node " << id);
  const auto i = static_cast<std::size_t>(id);
  if (pre_existing_[i] != 0) --num_pre_existing_;
  pre_existing_[i] = 0;
  original_mode_[i] = -1;
}

void Scenario::clear_all_pre_existing() {
  std::fill(pre_existing_.begin(), pre_existing_.end(), std::uint8_t{0});
  std::fill(original_mode_.begin(), original_mode_.end(), -1);
  num_pre_existing_ = 0;
}

std::vector<NodeId> Scenario::pre_existing_nodes() const {
  std::vector<NodeId> out;
  out.reserve(num_pre_existing_);
  for (NodeId id : topology().internal_ids()) {
    if (pre_existing_[static_cast<std::size_t>(id)] != 0) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Scenario::touched_internal_nodes(
    const Scenario& other) const {
  TREEPLACE_CHECK_MSG(topology_ptr() == other.topology_ptr(),
                      "touched_internal_nodes() across different topologies");
  std::vector<NodeId> out;
  for (NodeId id : topology().internal_ids()) {
    const auto i = static_cast<std::size_t>(id);
    const std::size_t dense = topo_->internal_index(id);
    if (client_mass_[dense] != other.client_mass_[dense] ||
        pre_existing_[i] != other.pre_existing_[i] ||
        original_mode_[i] != other.original_mode_[i]) {
      out.push_back(id);
    }
  }
  return out;
}

bool Scenario::aggregates_consistent() const {
  if (!attached()) return true;
  std::vector<RequestCount> mass(topo_->num_internal(), 0);
  RequestCount total = 0;
  for (NodeId c : topo_->client_ids()) {
    const RequestCount r = requests_[static_cast<std::size_t>(c)];
    mass[topo_->internal_index(topo_->parent(c))] += r;
    total += r;
  }
  std::size_t pre = 0;
  for (const std::uint8_t flag : pre_existing_) pre += flag != 0 ? 1 : 0;
  return mass == client_mass_ && total == total_requests_ &&
         pre == num_pre_existing_;
}

void Scenario::rebuild_aggregates() {
  client_mass_.assign(topo_->num_internal(), 0);
  total_requests_ = 0;
  for (NodeId c : topo_->client_ids()) {
    const RequestCount r = requests_[static_cast<std::size_t>(c)];
    client_mass_[topo_->internal_index(topo_->parent(c))] += r;
    total_requests_ += r;
  }
}

}  // namespace treeplace
