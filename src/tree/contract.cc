#include "tree/contract.h"

#include <deque>
#include <utility>

namespace treeplace {

std::vector<std::uint8_t> Contraction::open_closure(
    const Topology& topo, std::span<const NodeId> touched) {
  std::vector<std::uint8_t> open(topo.num_internal(), 0);
  open[topo.internal_index(topo.root())] = 1;
  for (NodeId node : touched) {
    TREEPLACE_CHECK_MSG(topo.valid_id(node) && topo.is_internal(node),
                        "open_closure: non-internal node " << node);
    // Walk to the root, stopping at the first already-open ancestor (its
    // own path is already open) — total work O(|closure|), not O(k depth).
    while (node != kNoNode && !open[topo.internal_index(node)]) {
      open[topo.internal_index(node)] = 1;
      node = topo.parent(node);
    }
  }
  return open;
}

Contraction::Contraction(std::shared_ptr<const Topology> original,
                         std::vector<std::uint8_t> open)
    : original_(std::move(original)), open_(std::move(open)) {
  TREEPLACE_CHECK_MSG(original_ != nullptr && !original_->empty(),
                      "Contraction over an empty topology");
  const Topology& topo = *original_;
  TREEPLACE_CHECK_MSG(open_.size() == topo.num_internal(),
                      "open mask size " << open_.size() << " != num_internal "
                                        << topo.num_internal());
  TREEPLACE_CHECK_MSG(open_[topo.internal_index(topo.root())] != 0,
                      "Contraction with a frozen root");
#ifndef NDEBUG
  for (NodeId id : topo.internal_ids()) {
    if (open_[topo.internal_index(id)] != 0 && id != topo.root()) {
      TREEPLACE_DCHECK(open_[topo.internal_index(topo.parent(id))] != 0);
    }
  }
#endif
  to_contracted_.assign(topo.num_nodes(), kNoNode);

  // Top-down rebuild mirroring Aggregation: every open node is added
  // before its children, children keep their original order (the merge
  // plans index internal_children positionally, so order is load-bearing).
  // A non-open internal child becomes a childless sealed leaf; its entire
  // subtree — clients included — stays out of the frontier and vanishes.
  TreeBuilder builder;
  std::deque<NodeId> frontier{topo.root()};
  to_contracted_[static_cast<std::size_t>(topo.root())] = builder.add_root();
  std::vector<std::pair<NodeId, NodeId>> pairs;  // (contracted, orig)
  pairs.emplace_back(to_contracted_[static_cast<std::size_t>(topo.root())],
                     topo.root());
  std::vector<std::pair<NodeId, NodeId>> sealed_pairs;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    const NodeId cnode = to_contracted_[static_cast<std::size_t>(node)];
    for (NodeId child : topo.children(node)) {
      if (topo.is_internal(child)) {
        const NodeId cchild = builder.add_internal(cnode);
        to_contracted_[static_cast<std::size_t>(child)] = cchild;
        pairs.emplace_back(cchild, child);
        if (open_[topo.internal_index(child)] != 0) {
          frontier.push_back(child);
        } else {
          sealed_pairs.emplace_back(cchild, child);
        }
      } else {
        // Mass is scenario state: created empty, filled by contract().
        const NodeId cchild = builder.add_client(cnode, /*requests=*/0);
        to_contracted_[static_cast<std::size_t>(child)] = cchild;
        pairs.emplace_back(cchild, child);
      }
    }
  }

  Tree tree = std::move(builder).build();
  contracted_ = tree.topology_ptr();
  to_original_.assign(contracted_->num_nodes(), kNoNode);
  for (const auto& [contracted, orig] : pairs) {
    to_original_[static_cast<std::size_t>(contracted)] = orig;
  }
  sealed_.assign(contracted_->num_internal(), 0);
  sealed_roots_.reserve(sealed_pairs.size());
  for (const auto& [contracted, orig] : sealed_pairs) {
    sealed_[contracted_->internal_index(contracted)] = 1;
    sealed_roots_.push_back(orig);
  }
}

Scenario Contraction::contract(const Scenario& orig) const {
  TREEPLACE_CHECK_MSG(orig.topology_ptr() == original_,
                      "contract() on a scenario of a different topology");
  Scenario out(contracted_);
  for (std::size_t c = 0; c < to_original_.size(); ++c) {
    const NodeId cid = static_cast<NodeId>(c);
    const NodeId oid = to_original_[c];
    if (contracted_->is_internal(cid)) {
      // Sealed roots included: the engines read a *child's* pre-existing
      // state to size and stride its leaf table, so a sealed leaf must
      // look exactly like its original subtree root from the outside.
      if (orig.pre_existing(oid)) {
        out.set_pre_existing(cid, orig.original_mode(oid));
      }
    } else {
      out.set_requests(cid, orig.requests(oid));
    }
  }
  return out;
}

std::optional<std::vector<ScenarioDelta>> Contraction::map_deltas(
    std::span<const ScenarioDelta> deltas) const {
  const Topology& topo = *original_;
  std::vector<ScenarioDelta> out;
  out.reserve(deltas.size());
  for (const ScenarioDelta& d : deltas) {
    switch (d.op) {
      case ScenarioDelta::Op::kSetRequests: {
        TREEPLACE_CHECK_MSG(topo.valid_id(d.node) && topo.is_client(d.node),
                            "map_deltas: R names non-client " << d.node);
        const NodeId c = to_contracted_[static_cast<std::size_t>(d.node)];
        if (c == kNoNode) return std::nullopt;  // client under a sealed root
        out.push_back(ScenarioDelta::set_requests(c, d.requests));
        break;
      }
      case ScenarioDelta::Op::kSetPreExisting:
      case ScenarioDelta::Op::kClearPreExisting: {
        TREEPLACE_CHECK_MSG(topo.valid_id(d.node) && topo.is_internal(d.node),
                            "map_deltas: E/X names non-internal " << d.node);
        const NodeId c = to_contracted_[static_cast<std::size_t>(d.node)];
        // Hidden inside a sealed subtree, or exactly on a sealed root: a
        // frozen table would go stale, so the seal must break first.
        if (c == kNoNode || sealed_[contracted_->internal_index(c)] != 0) {
          return std::nullopt;
        }
        out.push_back(d.op == ScenarioDelta::Op::kSetPreExisting
                          ? ScenarioDelta::set_pre_existing(c, d.mode)
                          : ScenarioDelta::clear_pre_existing(c));
        break;
      }
      case ScenarioDelta::Op::kClearAllPre:
        // Touches every internal node, sealed interiors included.
        return std::nullopt;
    }
  }
  return out;
}

Placement Contraction::expand(const Placement& contracted) const {
  Placement out;
  for (std::size_t i = 0; i < contracted.nodes().size(); ++i) {
    const NodeId node = contracted.nodes()[i];
    TREEPLACE_CHECK_MSG(contracted_->is_internal(node),
                        "expand: placement names client " << node);
    out.add(to_original_[static_cast<std::size_t>(node)],
            contracted.modes()[i]);
  }
  return out;
}

}  // namespace treeplace
