#include "tree/aggregate.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace treeplace {

Aggregation::Aggregation(std::shared_ptr<const Topology> original)
    : original_(std::move(original)) {
  TREEPLACE_CHECK_MSG(original_ != nullptr && !original_->empty(),
                      "Aggregation over an empty topology");
  const Topology& topo = *original_;
  to_agg_.assign(topo.num_nodes(), kNoNode);
  agg_client_.assign(topo.num_nodes(), kNoNode);

  // Top-down rebuild: every internal node is added before its children, so
  // one BFS pass suffices.  Internal children keep their original order;
  // the aggregate client (when the node owns client children) is appended
  // after them — the DPs never read child order for clients, they read
  // client_mass.
  TreeBuilder builder;
  std::deque<NodeId> frontier{topo.root()};
  to_agg_[static_cast<std::size_t>(topo.root())] = builder.add_root();
  std::vector<std::pair<NodeId, NodeId>> agg_internal_of;  // (agg, orig)
  agg_internal_of.emplace_back(to_agg_[static_cast<std::size_t>(topo.root())],
                               topo.root());
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop_front();
    const NodeId agg_node = to_agg_[static_cast<std::size_t>(node)];
    bool has_clients = false;
    for (NodeId child : topo.children(node)) {
      if (topo.is_internal(child)) {
        const NodeId agg_child = builder.add_internal(agg_node);
        to_agg_[static_cast<std::size_t>(child)] = agg_child;
        agg_internal_of.emplace_back(agg_child, child);
        frontier.push_back(child);
      } else {
        has_clients = true;
      }
    }
    if (has_clients) {
      // Mass is scenario state, not structure: the aggregate client is
      // created empty and filled by aggregate(scenario).
      const NodeId agg_client = builder.add_client(agg_node, /*requests=*/0);
      agg_client_[static_cast<std::size_t>(node)] = agg_client;
      for (NodeId child : topo.children(node)) {
        if (!topo.is_internal(child)) {
          to_agg_[static_cast<std::size_t>(child)] = agg_client;
        }
      }
    }
  }

  Tree tree = std::move(builder).build();
  aggregated_ = tree.topology_ptr();
  to_orig_.assign(aggregated_->num_nodes(), kNoNode);
  for (const auto& [agg, orig] : agg_internal_of) {
    to_orig_[static_cast<std::size_t>(agg)] = orig;
  }
  for (std::size_t orig = 0; orig < topo.num_nodes(); ++orig) {
    const NodeId agg = agg_client_[orig];
    if (agg != kNoNode) {
      to_orig_[static_cast<std::size_t>(agg)] = static_cast<NodeId>(orig);
    }
  }
}

Scenario Aggregation::aggregate(const Scenario& orig) const {
  TREEPLACE_CHECK_MSG(orig.topology_ptr() == original_,
                      "aggregate() on a scenario of a different topology");
  Scenario agg(aggregated_);
  for (NodeId node : original_->internal_ids()) {
    const NodeId client = agg_client_[static_cast<std::size_t>(node)];
    if (client != kNoNode) agg.set_requests(client, orig.client_mass(node));
    if (orig.pre_existing(node)) {
      agg.set_pre_existing(to_aggregated(node), orig.original_mode(node));
    }
  }
  return agg;
}

std::vector<ScenarioDelta> Aggregation::map_deltas(
    const Scenario& after, std::span<const ScenarioDelta> deltas) const {
  TREEPLACE_CHECK_MSG(after.topology_ptr() == original_,
                      "map_deltas() against a different topology");
  std::vector<ScenarioDelta> out;
  out.reserve(deltas.size());
  // Burst folding: many users under one attachment point collapse into a
  // single R carrying the final mass.  `emitted` keeps the pass O(|span|).
  std::vector<NodeId> emitted;
  for (const ScenarioDelta& d : deltas) {
    switch (d.op) {
      case ScenarioDelta::Op::kSetRequests: {
        TREEPLACE_CHECK_MSG(
            original_->valid_id(d.node) && original_->is_client(d.node),
            "map_deltas: R names non-client " << d.node);
        const NodeId parent = original_->parent(d.node);
        if (std::find(emitted.begin(), emitted.end(), parent) !=
            emitted.end()) {
          break;
        }
        emitted.push_back(parent);
        out.push_back(ScenarioDelta::set_requests(
            agg_client_[static_cast<std::size_t>(parent)],
            after.client_mass(parent)));
        break;
      }
      case ScenarioDelta::Op::kSetPreExisting:
        out.push_back(
            ScenarioDelta::set_pre_existing(to_aggregated(d.node), d.mode));
        break;
      case ScenarioDelta::Op::kClearPreExisting:
        out.push_back(
            ScenarioDelta::clear_pre_existing(to_aggregated(d.node)));
        break;
      case ScenarioDelta::Op::kClearAllPre:
        out.push_back(ScenarioDelta::clear_all_pre());
        break;
    }
  }
  return out;
}

Placement Aggregation::expand(const Placement& aggregated) const {
  Placement out;
  for (std::size_t i = 0; i < aggregated.nodes().size(); ++i) {
    const NodeId node = aggregated.nodes()[i];
    TREEPLACE_CHECK_MSG(aggregated_->is_internal(node),
                        "expand: placement names client " << node);
    out.add(to_orig_[static_cast<std::size_t>(node)], aggregated.modes()[i]);
  }
  return out;
}

}  // namespace treeplace
