// Plain-text serialization and Graphviz export for distribution trees.
//
// Text format (one node per line, parents before children):
//   treeplace-tree v1
//   I <id> <parent|-1> <pre:0|1> <orig_mode|-1>
//   C <id> <parent> <requests>
// Ids in the file must match insertion order (0..n-1), which is what
// serialize() emits; parse() validates this.
//
// Several trees may be concatenated in one stream (`cat a.txt b.txt`): each
// `treeplace-tree v1` header starts a new tree and terminates the previous
// one (blank and comment lines are skipped anywhere, exactly as in
// parse()).  TreeStreamReader yields trees one at a time — the
// batch-serving path of `treeplace solve`.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "tree/tree.h"

namespace treeplace {

/// Writes `tree` in the v1 text format.
void serialize_tree(const Tree& tree, std::ostream& os);
std::string serialize_tree(const Tree& tree);

/// Parses exactly one tree occupying the whole stream; throws CheckError on
/// malformed input.
Tree parse_tree(std::istream& is);
Tree parse_tree(const std::string& text);

/// Streaming reader over a concatenation of v1 trees.  Works on
/// non-seekable streams (pipes, stdin): a header line that terminates one
/// tree is buffered and re-consumed as the start of the next.
class TreeStreamReader {
 public:
  explicit TreeStreamReader(std::istream& is) : is_(is) {}

  /// The next tree, or nullopt at end of stream.  Throws CheckError on
  /// malformed input.
  std::optional<Tree> next();

  /// Number of trees successfully returned so far.
  std::size_t trees_read() const { return trees_read_; }

 private:
  bool read_line(std::string& line);

  std::istream& is_;
  std::string pending_;      // a header line consumed past a tree boundary
  bool has_pending_ = false;
  std::size_t trees_read_ = 0;
};

/// Graphviz DOT rendering: internal nodes as circles (pre-existing servers
/// doubled), clients as boxes labelled with their request count.
std::string to_dot(const Tree& tree);

}  // namespace treeplace
