// Plain-text serialization and Graphviz export for distribution trees.
//
// Text format (one node per line, parents before children):
//   treeplace-tree v1
//   I <id> <parent|-1> <pre:0|1> <orig_mode|-1>
//   C <id> <parent> <requests>
// Ids in the file must match insertion order (0..n-1), which is what
// serialize() emits; parse() validates this.
#pragma once

#include <iosfwd>
#include <string>

#include "tree/tree.h"

namespace treeplace {

/// Writes `tree` in the v1 text format.
void serialize_tree(const Tree& tree, std::ostream& os);
std::string serialize_tree(const Tree& tree);

/// Parses the v1 text format; throws CheckError on malformed input.
Tree parse_tree(std::istream& is);
Tree parse_tree(const std::string& text);

/// Graphviz DOT rendering: internal nodes as circles (pre-existing servers
/// doubled), clients as boxes labelled with their request count.
std::string to_dot(const Tree& tree);

}  // namespace treeplace
