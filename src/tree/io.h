// Plain-text serialization and Graphviz export for distribution trees.
//
// Text format (one node per line, parents before children):
//   treeplace-tree v1
//   I <id> <parent|-1> <pre:0|1> <orig_mode|-1>
//   C <id> <parent> <requests>
// Ids in the file must match insertion order (0..n-1), which is what
// serialize() emits; parse() validates this.
//
// Several trees may be concatenated in one stream (`cat a.txt b.txt`): each
// `treeplace-tree v1` header starts a new tree and terminates the previous
// one (blank and comment lines are skipped anywhere, exactly as in
// parse()).  TreeStreamReader yields trees one at a time — the
// batch-serving path of `treeplace solve`.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "tree/tree.h"

namespace treeplace {

/// Writes `tree` in the v1 text format.
void serialize_tree(const Tree& tree, std::ostream& os);
std::string serialize_tree(const Tree& tree);

/// Parses exactly one tree occupying the whole stream; throws CheckError on
/// malformed input.
Tree parse_tree(std::istream& is);
Tree parse_tree(const std::string& text);

/// Streaming reader over a concatenation of v1 records.  Works on
/// non-seekable streams (pipes, stdin): a header line that terminates one
/// record is buffered and re-consumed as the start of the next.
///
/// Besides plain tree concatenations (next()), the reader splits *mixed*
/// record streams: any "treeplace-" header line is a record boundary, so
/// layered formats — the serving loop's scenario-delta records
/// (serve/request_stream.h) — iterate records with next_header() /
/// next_body_line() and delegate tree bodies to read_tree_body().
class TreeStreamReader {
 public:
  explicit TreeStreamReader(std::istream& is) : is_(is) {}

  /// The next tree, or nullopt at end of stream.  Throws CheckError on
  /// malformed input (including non-tree record headers).
  std::optional<Tree> next();

  /// True for any record header line ("treeplace-<kind> v<n>[ args]").
  static bool is_record_header(const std::string& line);

  /// The tree record header ("treeplace-tree v1").
  static const char* tree_header();

  /// Consumes and returns the next record header line, skipping blank and
  /// comment lines; nullopt at end of stream.  Throws CheckError when the
  /// next significant line is not a record header.
  std::optional<std::string> next_header();

  /// Reads the next body line of the current record into `line`; false at
  /// the next record header (which stays pending for the following
  /// next_header()/next() call) or end of stream.  Blank and comment lines
  /// are skipped.
  bool next_body_line(std::string& line);

  /// Parses the body of a tree record whose header was just consumed by
  /// next_header().  Throws CheckError on malformed node lines.
  Tree read_tree_body();

  /// Number of trees successfully returned so far.
  std::size_t trees_read() const { return trees_read_; }

 private:
  bool read_line(std::string& line);

  std::istream& is_;
  std::string pending_;      // a header line consumed past a record boundary
  bool has_pending_ = false;
  std::size_t trees_read_ = 0;
};

/// Graphviz DOT rendering: internal nodes as circles (pre-existing servers
/// doubled), clients as boxes labelled with their request count.
std::string to_dot(const Tree& tree);

}  // namespace treeplace
