// Every algorithm of the library, wrapped as a registered Solver strategy.
//
// The wrappers contain no algorithmic logic of their own: they adapt the
// bespoke entry points (GreedyResult, MinCostResult, PowerDPResult, ...) to
// the uniform Instance -> Solution contract and recompute all reported
// accounting through the independent evaluator in model/placement.h, so a
// Solution's breakdown/power always agree with validate()'s view of the
// placement regardless of which strategy produced it.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "core/dp_contract.h"
#include "core/dp_update.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/greedy_power.h"
#include "core/heuristics.h"
#include "core/power_dp.h"
#include "core/power_dp_symmetric.h"
#include "model/placement.h"
#include "solver/contracted.h"
#include "solver/registry.h"
#include "solver/session.h"
#include "support/check.h"
#include "support/timer.h"

namespace treeplace {
namespace {

/// Builds a Solution around a single-mode placement (servers at mode 0):
/// minimizes modes on multi-mode instances, then recomputes cost and power
/// with the independent evaluator.
Solution finish_placement(const Instance& in, bool feasible,
                          Placement placement, SolveStats stats) {
  Solution s;
  s.feasible = feasible;
  s.stats = stats;
  if (!feasible) return s;
  if (in.modes.count() > 1) {
    minimize_modes(in.topo(), in.scen(), placement, in.modes);
  }
  s.placement = std::move(placement);
  s.breakdown = evaluate_cost(in.topo(), in.scen(), s.placement, in.costs);
  s.power = total_power(s.placement, in.modes);
  s.budget_met =
      !in.cost_budget || s.breakdown.cost <= *in.cost_budget + 1e-9;
  return s;
}

/// Builds a Solution from a Pareto frontier: the selected point is the
/// least-power one within the budget, falling back to the unconstrained
/// minimum-power point when nothing fits.
Solution finish_frontier(const Instance& in, bool feasible,
                         std::vector<PowerParetoPoint> frontier,
                         SolveStats stats) {
  Solution s;
  s.feasible = feasible && !frontier.empty();
  s.frontier = std::move(frontier);
  s.stats = stats;
  if (!s.feasible) return s;
  const PowerParetoPoint* pick =
      in.cost_budget ? s.best_within_cost(*in.cost_budget) : s.min_power();
  if (pick == nullptr) {
    s.budget_met = false;
    pick = s.min_power();
  }
  s.placement = pick->placement;
  s.breakdown = pick->breakdown;
  s.power = pick->power;
  return s;
}

// --- Frozen-subtree contraction plumbing -----------------------------------

/// Per-mode pre-existing totals over the *original* scenario: the exact
/// power DP's root scan prices deletions against the whole tree's E, which
/// a contracted scenario under-counts (same range CHECK as the engine's
/// own uncontracted scan).
std::vector<int> power_pre_totals(const Scenario& scen, int m) {
  std::vector<int> totals(static_cast<std::size_t>(m), 0);
  for (NodeId e : scen.pre_existing_nodes()) {
    const int o = scen.original_mode(e);
    TREEPLACE_CHECK_MSG(o >= 0 && o < m,
                        "pre-existing node " << e << " has original mode "
                                             << o << " outside the ModeSet");
    ++totals[static_cast<std::size_t>(o)];
  }
  return totals;
}

/// Re-prices a contracted run's frontier on the original instance.  These
/// are the exact per-point evaluator calls the uncontracted engine makes
/// in build_frontier, so the reported doubles land bit-identical.
void reprice_frontier(const Instance& in, PowerDPResult& r) {
  for (PowerParetoPoint& point : r.frontier) {
    point.breakdown = evaluate_cost(in.topo(), in.scen(), point.placement,
                                    in.costs);
    point.cost = point.breakdown.cost;
    point.power = total_power(point.placement, in.modes);
  }
}

/// Runs a power engine over the contracted twin of `in` and restores the
/// original-instance view of the result: frontier re-priced, frozen
/// interiors counted as reused (the twin would have spliced each one).
template <typename EngineFn>
PowerDPResult run_contracted_power(
    const Instance& in, dp::PowerSubtreeCache& full,
    const contracted::Prepared<dp::PowerNodeState>& prep, PowerDPOptions opts,
    const EngineFn& engine) {
  dp::MergePlanCache plans;
  dp::ContractionView view;
  view.to_original = prep.map->to_original_map();
  view.sealed = prep.map->sealed();
  view.planning_internal = in.topo().num_internal();
  view.pre_total_per_mode = power_pre_totals(in.scen(), in.modes.count());
  view.num_pre_existing = in.scen().num_pre_existing();
  view.expand_sealed = [&in, &full, &plans](NodeId root, std::size_t flat,
                                            Placement& placement) {
    reconstruct_power_subtree(in.topo(), full, plans, root, flat, placement);
  };
  opts.cache = prep.cache;
  opts.deltas = prep.deltas;
  opts.contraction = &view;
  PowerDPResult r =
      engine(*prep.map->contracted(), prep.scenario, in.modes, in.costs, opts);
  reprice_frontier(in, r);
  r.stats.nodes_reused += prep.hidden_internal;
  return r;
}

// --- Greedy family ---------------------------------------------------------

class GreedySolver : public Solver {
 public:
  GreedySolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "greedy";
    info.summary =
        "GR of Wu/Lin/Liu [19]: bottom-up flow absorption, optimal replica "
        "count, oblivious to pre-existing servers and power";
    info.objective = Objective::kMinCost;
    return info;
  }
  Solution solve(const Instance& in) const override {
    Stopwatch timer;
    GreedyResult r = solve_greedy_min_count(in.topo(), in.scen(), in.capacity());
    return finish_placement(in, r.feasible, std::move(r.placement),
                            {timer.seconds(), 0});
  }
};

class GreedyPreferPreSolver : public Solver {
 public:
  GreedyPreferPreSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "greedy-pre";
    info.summary =
        "GR with reuse-aware tie-breaking: absorbs pre-existing children on "
        "flow ties, keeping GR's count optimality (Section 6 heuristic)";
    info.objective = Objective::kMinCost;
    info.supports_pre_existing = true;
    return info;
  }
  Solution solve(const Instance& in) const override {
    Stopwatch timer;
    GreedyResult r = solve_greedy_prefer_pre(in.topo(), in.scen(), in.capacity());
    return finish_placement(in, r.feasible, std::move(r.placement),
                            {timer.seconds(), 0});
  }
};

class GreedyReuseSolver : public Solver {
 public:
  GreedyReuseSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "greedy-reuse";
    info.summary =
        "greedy-pre refined by reuse local search: hill-climbs created "
        "servers onto idle pre-existing nodes (Section 6 heuristic; "
        "single-mode instances)";
    info.objective = Objective::kMinCost;
    info.supports_pre_existing = true;
    // improve_reuse prices swaps with the Eq. 2 model only; rather than
    // silently degrading to greedy-pre on power instances, decline them.
    info.single_mode_only = true;
    return info;
  }
  Solution solve(const Instance& in) const override {
    TREEPLACE_CHECK_MSG(in.modes.count() == 1 && in.costs.num_modes() == 1,
                        "greedy-reuse requires a single-mode instance "
                        "(improve_reuse prices swaps with Eq. 2); use "
                        "greedy-pre for multi-mode instances");
    Stopwatch timer;
    GreedyResult r = solve_greedy_prefer_pre(in.topo(), in.scen(), in.capacity());
    SolveStats stats;
    if (r.feasible) {
      const LocalSearchStats ls = improve_reuse(
          in.topo(), in.scen(), in.capacity(), in.costs, r.placement);
      stats.work = ls.evaluated;
    }
    stats.seconds = timer.seconds();
    return finish_placement(in, r.feasible, std::move(r.placement), stats);
  }
};

// --- Optimal update DP (Section 3) -----------------------------------------

class UpdateDpSolver : public Solver {
 public:
  UpdateDpSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "update-dp";
    info.summary =
        "MinCost-WithPre DP (Theorem 1): optimal replica-set update with "
        "pre-existing servers; exact for single-mode instances";
    info.objective = Objective::kMinCost;
    info.exact = true;
    info.supports_pre_existing = true;
    return info;
  }
  Solution solve(const Instance& in) const override {
    return solve_with_cache(in, {}, nullptr);
  }

  SolverCaps caps() const override { return SolverCaps::kIncremental; }

  Solution solve(const SolveRequest& request) const override {
    if (request.session == nullptr) return solve(request.instance);
    request.session->check_topology(request.instance.topology);
    return solve_with_cache(request.instance, request.deltas,
                            request.session);
  }

 private:
  Solution solve_with_cache(const Instance& in,
                            std::span<const ScenarioDelta> deltas,
                            SolveSession* session) const {
    Stopwatch timer;
    MinCostConfig config{in.capacity(), in.costs.create(0), in.costs.del(0)};
    // The DP plans against the single-mode Eq. 2 model and only reads the
    // pre-existing flags; on multi-mode instances, collapse the original
    // modes to 0 for its internal accounting (finish_placement re-prices
    // the returned placement against the real instance).
    bool multi_mode_pre = false;
    for (NodeId id : in.scen().pre_existing_nodes()) {
      if (in.scen().original_mode(id) != 0) multi_mode_pre = true;
    }
    std::optional<Scenario> collapsed;
    if (multi_mode_pre) {
      // Forking the scenario is cheap (flat arrays, shared topology).
      collapsed.emplace(in.scen());
      for (NodeId id : collapsed->pre_existing_nodes()) {
        collapsed->set_pre_existing(id, 0);
      }
    }
    const Scenario& scen = multi_mode_pre ? *collapsed : in.scen();
    MinCostResult r;
    if (session != nullptr) {
      dp::MinCostSubtreeCache& full = session->min_cost_cache(name());
      config.cache = &full;
      config.deltas = deltas;
      // Contraction tracks the scenario the DP actually sees — the
      // collapsed fork on multi-mode instances — so sealed signatures
      // grade against the same normalized modes the engine commits.
      contracted::Prepared<dp::MinCostNodeState> prep = contracted::prepare(
          *session, full, session->min_cost_contraction(name()), scen,
          {static_cast<std::uint64_t>(config.capacity)}, deltas);
      if (prep.active) {
        dp::MergePlanCache plans;
        dp::ContractionView view;
        view.to_original = prep.map->to_original_map();
        view.sealed = prep.map->sealed();
        view.planning_internal = in.topo().num_internal();
        view.num_pre_existing = scen.num_pre_existing();
        view.expand_sealed = [&in, &full, &plans](NodeId root,
                                                  std::size_t flat,
                                                  Placement& placement) {
          reconstruct_min_cost_subtree(in.topo(), full, plans, root, flat,
                                       placement);
        };
        config.cache = prep.cache;
        config.deltas = prep.deltas;
        config.contraction = &view;
        r = solve_min_cost_with_pre(*prep.map->contracted(), prep.scenario,
                                    config);
        // The frozen interiors the twin would have spliced and counted.
        r.nodes_reused += prep.hidden_internal;
      } else {
        r = solve_min_cost_with_pre(in.topo(), scen, config);
      }
      session->record_warm(r.nodes_recomputed, r.nodes_reused, r.merge_steps,
                           r.signatures_checked, r.cells_skipped);
    } else {
      r = solve_min_cost_with_pre(in.topo(), scen, config);
    }
    return finish_placement(in, r.feasible, std::move(r.placement),
                            {timer.seconds(), r.merge_iterations});
  }
};

// --- Power DPs (Section 4) -------------------------------------------------

class PowerExactSolver : public Solver {
 public:
  PowerExactSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "power-exact";
    info.summary =
        "exact MinPower-BoundedCost DP (Theorem 3): full cost-power Pareto "
        "frontier under the general Eq. 4 cost model";
    info.objective = Objective::kMinPower;
    info.exact = true;
    info.needs_modes = true;
    info.supports_pre_existing = true;
    return info;
  }
  Solution solve(const Instance& in) const override {
    PowerDPResult r = run_dp(in, dp_options());
    return finish(in, std::move(r));
  }

  SolverCaps caps() const override { return SolverCaps::kIncremental; }

  Solution solve(const SolveRequest& request) const override {
    const Instance& in = request.instance;
    if (request.session == nullptr) return solve(in);
    SolveSession& session = *request.session;
    session.check_topology(in.topology);
    PowerDPOptions opts = dp_options();
    dp::PowerSubtreeCache& full = session.power_cache(name());
    contracted::Prepared<dp::PowerNodeState> prep = contracted::prepare(
        session, full, session.power_contraction(name()), in.scen(),
        dp::capacity_params(in.modes), request.deltas);
    PowerDPResult r;
    if (prep.active) {
      r = run_contracted_power(
          in, full, prep, opts,
          [](const Topology& topo, const Scenario& scen, const ModeSet& modes,
             const CostModel& costs, const PowerDPOptions& o) {
            return solve_power_exact(topo, scen, modes, costs, o);
          });
    } else {
      opts.cache = &full;
      opts.deltas = request.deltas;
      r = run_dp(in, opts);
    }
    session.record_warm(r.stats.nodes_recomputed, r.stats.nodes_reused,
                        r.stats.merge_steps, r.stats.signatures_checked,
                        r.stats.cells_skipped);
    return finish(in, std::move(r));
  }

 private:
  PowerDPOptions dp_options() const {
    PowerDPOptions opts;
    opts.threads = static_cast<std::size_t>(options().threads);
    opts.pool = worker_pool();
    return opts;
  }

  static PowerDPResult run_dp(const Instance& in, const PowerDPOptions& opts) {
    return solve_power_exact(in.topo(), in.scen(), in.modes, in.costs, opts);
  }

  static Solution finish(const Instance& in, PowerDPResult r) {
    return finish_frontier(in, r.feasible, std::move(r.frontier),
                           {r.stats.solve_seconds, r.stats.merge_pairs});
  }
};

class PowerSymmetricSolver : public Solver {
 public:
  PowerSymmetricSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "power-sym";
    info.summary =
        "reduced-state MinPower-BoundedCost DP for symmetric cost models "
        "(the paper's experimental setting); identical frontier, much "
        "faster";
    info.objective = Objective::kMinPower;
    info.exact = true;
    info.needs_modes = true;
    info.supports_pre_existing = true;
    return info;
  }
  Solution solve(const Instance& in) const override {
    PowerDPResult r = run_dp(in, dp_options());
    return finish(in, std::move(r));
  }

  SolverCaps caps() const override { return SolverCaps::kIncremental; }

  Solution solve(const SolveRequest& request) const override {
    const Instance& in = request.instance;
    if (request.session == nullptr) return solve(in);
    SolveSession& session = *request.session;
    session.check_topology(in.topology);
    PowerDPOptions opts = dp_options();
    dp::PowerSubtreeCache& full = session.power_cache(name());
    contracted::Prepared<dp::PowerNodeState> prep = contracted::prepare(
        session, full, session.power_contraction(name()), in.scen(),
        dp::capacity_params(in.modes), request.deltas);
    PowerDPResult r;
    if (prep.active) {
      TREEPLACE_CHECK_MSG(in.costs.is_symmetric(),
                          "power-sym requires a symmetric cost model; use "
                          "power-exact for general Eq. 4 costs");
      r = run_contracted_power(
          in, full, prep, opts,
          [](const Topology& topo, const Scenario& scen, const ModeSet& modes,
             const CostModel& costs, const PowerDPOptions& o) {
            return solve_power_symmetric(topo, scen, modes, costs, o);
          });
    } else {
      opts.cache = &full;
      opts.deltas = request.deltas;
      r = run_dp(in, opts);
    }
    session.record_warm(r.stats.nodes_recomputed, r.stats.nodes_reused,
                        r.stats.merge_steps, r.stats.signatures_checked,
                        r.stats.cells_skipped);
    return finish(in, std::move(r));
  }

 private:
  PowerDPOptions dp_options() const {
    PowerDPOptions opts;
    opts.threads = static_cast<std::size_t>(options().threads);
    opts.pool = worker_pool();
    return opts;
  }

  PowerDPResult run_dp(const Instance& in, const PowerDPOptions& opts) const {
    TREEPLACE_CHECK_MSG(in.costs.is_symmetric(),
                        "power-sym requires a symmetric cost model; use "
                        "power-exact for general Eq. 4 costs");
    return solve_power_symmetric(in.topo(), in.scen(), in.modes, in.costs,
                                 opts);
  }

  static Solution finish(const Instance& in, PowerDPResult r) {
    return finish_frontier(in, r.feasible, std::move(r.frontier),
                           {r.stats.solve_seconds, r.stats.merge_pairs});
  }
};

// --- Power heuristics ------------------------------------------------------

class PowerGreedySolver : public Solver {
 public:
  PowerGreedySolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "power-greedy";
    info.summary =
        "the paper's power-adapted GR (Section 5.2): capacity sweep over "
        "[W_1, W_M], candidates priced with Eq. 4 and mode-minimized";
    info.objective = Objective::kMinPower;
    info.needs_modes = true;
    info.supports_pre_existing = true;
    return info;
  }
  Solution solve(const Instance& in) const override {
    Stopwatch timer;
    const GreedyPowerResult gr =
        solve_greedy_power(in.topo(), in.scen(), in.modes, in.costs);
    // Prune the sweep's candidates to their Pareto frontier; any bounded-
    // cost query answered from the frontier matches the answer over the
    // full candidate list.
    std::vector<PowerParetoPoint> points;
    for (const GreedyPowerCandidate& c : gr.candidates) {
      if (!c.feasible) continue;
      points.push_back(PowerParetoPoint{c.cost, c.power, c.placement,
                                        c.breakdown});
    }
    std::sort(points.begin(), points.end(),
              [](const PowerParetoPoint& a, const PowerParetoPoint& b) {
                return a.cost != b.cost ? a.cost < b.cost : a.power < b.power;
              });
    std::vector<PowerParetoPoint> frontier;
    for (PowerParetoPoint& p : points) {
      if (!frontier.empty() && p.power >= frontier.back().power - 1e-12) {
        continue;
      }
      frontier.push_back(std::move(p));
    }
    const bool feasible = !frontier.empty();
    return finish_frontier(in, feasible, std::move(frontier),
                           {timer.seconds(), gr.candidates.size()});
  }
};

class PowerLocalSearchSolver : public Solver {
 public:
  PowerLocalSearchSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "power-ls";
    info.summary =
        "greedy seed refined by bounded-cost power local search: add/remove/"
        "move + mode re-minimization, first improvement (Section 6 "
        "heuristic)";
    info.objective = Objective::kMinPower;
    info.needs_modes = true;
    info.supports_pre_existing = true;
    return info;
  }
  Solution solve(const Instance& in) const override {
    Stopwatch timer;
    GreedyResult seed =
        solve_greedy_min_count(in.topo(), in.scen(), in.capacity());
    if (!seed.feasible) {
      Solution s;
      s.stats.seconds = timer.seconds();
      return s;
    }
    Placement placement = std::move(seed.placement);
    minimize_modes(in.topo(), in.scen(), placement, in.modes);
    const double bound =
        in.cost_budget.value_or(std::numeric_limits<double>::infinity());
    SolveStats stats;
    // The seed may already exceed a tight budget; local search requires an
    // in-budget start, so we then report the unrefined seed with
    // budget_met = false rather than failing.
    if (evaluate_cost(in.topo(), in.scen(), placement, in.costs).cost <=
        bound + 1e-9) {
      const LocalSearchStats ls = improve_power(
          in.topo(), in.scen(), in.modes, in.costs, bound, placement);
      stats.work = ls.evaluated;
    }
    stats.seconds = timer.seconds();
    Solution s;
    s.feasible = true;
    s.placement = std::move(placement);
    s.breakdown = evaluate_cost(in.topo(), in.scen(), s.placement, in.costs);
    s.power = total_power(s.placement, in.modes);
    s.budget_met = s.breakdown.cost <= bound + 1e-9;
    s.stats = stats;
    return s;
  }
};

// --- Exhaustive oracles ----------------------------------------------------

class ExhaustiveCostSolver : public Solver {
 public:
  ExhaustiveCostSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "exhaustive-cost";
    info.summary =
        "brute-force MinCost oracle: enumerates all server subsets "
        "(ground truth for tests; small single-mode instances only)";
    info.objective = Objective::kMinCost;
    info.exact = true;
    info.supports_pre_existing = true;
    info.single_mode_only = true;
    info.max_internal = kExhaustiveMaxInternal;
    return info;
  }
  Solution solve(const Instance& in) const override {
    TREEPLACE_CHECK_MSG(in.costs.num_modes() == 1,
                        "exhaustive-cost requires a single-mode cost model");
    Stopwatch timer;
    auto oracle =
        exhaustive_min_cost(in.topo(), in.scen(), in.capacity(), in.costs);
    Solution s;
    s.stats.seconds = timer.seconds();
    if (!oracle.has_value()) return s;
    s.feasible = true;
    s.placement = std::move(oracle->placement);
    s.breakdown = oracle->breakdown;
    s.power = total_power(s.placement, in.modes);
    s.budget_met =
        !in.cost_budget || s.breakdown.cost <= *in.cost_budget + 1e-9;
    return s;
  }
};

class ExhaustivePowerSolver : public Solver {
 public:
  ExhaustivePowerSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "exhaustive-power";
    info.summary =
        "brute-force cost-power frontier oracle with witness placements "
        "reconstructed per frontier point (small instances only)";
    info.objective = Objective::kMinPower;
    info.exact = true;
    info.needs_modes = true;
    info.supports_pre_existing = true;
    // Tighter than kExhaustiveMaxInternal: the per-server mode enumeration
    // makes this oracle ~3^N, not 2^N.
    info.max_internal = 14;
    return info;
  }
  Solution solve(const Instance& in) const override {
    Stopwatch timer;
    std::vector<ExhaustiveParetoPoint> points =
        exhaustive_cost_power_frontier_placements(in.topo(), in.scen(),
                                                  in.modes, in.costs);
    std::vector<PowerParetoPoint> frontier;
    frontier.reserve(points.size());
    for (ExhaustiveParetoPoint& p : points) {
      CostBreakdown breakdown =
          evaluate_cost(in.topo(), in.scen(), p.placement, in.costs);
      frontier.push_back(PowerParetoPoint{p.cost, p.power,
                                          std::move(p.placement),
                                          std::move(breakdown)});
    }
    const bool feasible = !frontier.empty();
    return finish_frontier(in, feasible, std::move(frontier),
                           {timer.seconds(), 0});
  }
};

template <typename SolverClass>
void add_to(SolverRegistry& registry) {
  registry.add(SolverClass::make_info(),
               [] { return std::make_unique<SolverClass>(); });
}

}  // namespace

namespace detail {

void register_builtin_solvers(SolverRegistry& registry) {
  add_to<GreedySolver>(registry);
  add_to<GreedyPreferPreSolver>(registry);
  add_to<GreedyReuseSolver>(registry);
  add_to<UpdateDpSolver>(registry);
  add_to<PowerExactSolver>(registry);
  add_to<PowerSymmetricSolver>(registry);
  add_to<PowerGreedySolver>(registry);
  add_to<PowerLocalSearchSolver>(registry);
  add_to<ExhaustiveCostSolver>(registry);
  add_to<ExhaustivePowerSolver>(registry);
}

}  // namespace detail
}  // namespace treeplace
