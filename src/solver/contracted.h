// Session lifecycle of frozen-subtree contraction (tree/contract.h).
//
// The structural half (building the contracted tree, id maps, delta
// renumbering) lives in Contraction; the engine half (sealed-leaf table
// injection, original-id emission) behind dp::ContractionView.  This
// header owns the part in between: when a warm delta solve may run
// contracted at all, and how DP state moves between the session's full
// cache and a ContractionSlot's contracted cache.
//
//   prepare()    — per solve.  Decides reuse / rebuild / bail.  A live
//                  contraction is reused while the batch's edits all land
//                  on open nodes; otherwise it is decontracted (written
//                  back) first.  A fresh contraction is built only when
//                  the full cache is completely warm — every subtree
//                  table valid and the previous touched set known — since
//                  a sealed leaf must stand in for a *trusted* table.
//   preload()    — clones the full cache into the slot's contracted
//                  cache: open nodes verbatim (slot snapshots included,
//                  so O(log k) merge-tree resume survives contraction),
//                  sealed roots as table-only entries stamped with the
//                  signature the contracted scenario grades them at
//                  (client_mass 0 — sealed leaves own no clients), so
//                  even a full sweep over the contracted tree keeps them.
//   decontract() — writes open-node state back into the full cache and
//                  retires the contracted topology.  The full cache ends
//                  bit-identical to an uncontracted twin's: frozen
//                  entries were never touched, open entries are the
//                  written-back live ones, and the last-touched hint maps
//                  back 1:1 (open nodes survive contraction by id map).
//
// Eligibility mirrors the delta fast path in core/dp_cache.h on purpose:
// contraction only fires when the uncontracted twin would have taken the
// fast path (effective set ≤ N/8), and the contracted engines plan with
// planning_n = original N, which keeps every work counter — not just the
// results — bit-identical between the two.  bench/contraction gates this.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/dp_cache.h"
#include "solver/session.h"
#include "tree/contract.h"
#include "tree/scenario_delta.h"
#include "tree/tree.h"

namespace treeplace::contracted {

/// What prepare() hands the solver wrapper for one solve.  When !active,
/// run the engine over the original instance exactly as before.  When
/// active, run it over map->contracted() / scenario with `deltas` and a
/// dp::ContractionView, and add hidden_internal to the result's
/// nodes_reused (the frozen interiors the twin would have counted).
/// `scenario` and `deltas` live here, so keep the Prepared alive across
/// the engine call.
template <typename NodeState>
struct Prepared {
  bool active = false;
  const Contraction* map = nullptr;
  dp::SubtreeCache<NodeState>* cache = nullptr;  ///< the contracted cache
  Scenario scenario;                             ///< contracted scenario
  std::vector<ScenarioDelta> deltas;             ///< renumbered batch
  std::size_t hidden_internal = 0;
};

/// Writes a live contraction's open-node state back into the full cache
/// and deactivates the slot.  No-op when inactive (any leftover map is
/// still dropped).  Requires the session's solve mutex.
template <typename NodeState>
void decontract(dp::SubtreeCache<NodeState>& full,
                ContractionSlot<NodeState>& slot) {
  if (slot.active) {
    const Contraction& map = *slot.map;
    const Topology& topo = *map.original();
    const Topology& ctopo = *map.contracted();
    for (std::size_t ci = 0; ci < ctopo.num_internal(); ++ci) {
      if (map.sealed()[ci] != 0) continue;  // frozen in `full` all along
      const NodeId oid = map.to_original(ctopo.internal_ids()[ci]);
      const std::size_t oi = topo.internal_index(oid);
      slot.cache.ensure_unpacked(ci);
      dp::clone_node_state(slot.cache.state(ci), full.arena(),
                           full.state(oi), /*with_slots=*/true);
      full.restore_entry(oi, slot.cache.signature(ci), slot.cache.valid(ci),
                         slot.cache.resumable(ci), slot.cache.dirty_count(ci));
    }
    std::vector<NodeId> hint;
    hint.reserve(slot.cache.last_touched().size());
    for (NodeId cj : slot.cache.last_touched()) {
      hint.push_back(slot.map->to_original(cj));
    }
    full.set_last_touched(std::move(hint), slot.cache.last_touched_known());
  }
  if (slot.map != nullptr) {
    // Detach before the map — and with it the contracted topology — dies:
    // the empty-params sentinel can never match a real attach, so a later
    // topology reallocated at the same address cannot warm-match stale
    // tables.
    slot.cache.attach(slot.map->contracted().get(), {});
    slot.map.reset();
  }
  slot.active = false;
}

/// Fills the slot's contracted cache from the full cache (see the header
/// comment) and records the sealed-leaf counters on the session.
/// Precondition: slot.map set, full cache completely warm.
template <typename NodeState>
void preload(SolveSession& session, dp::SubtreeCache<NodeState>& full,
             ContractionSlot<NodeState>& slot,
             const std::vector<std::uint64_t>& params) {
  const Contraction& map = *slot.map;
  const Topology& topo = *map.original();
  const Topology& ctopo = *map.contracted();
  slot.cache.attach(map.contracted().get(), params);
  std::uint64_t sealed_count = 0;
  std::uint64_t cells = 0;
  for (std::size_t ci = 0; ci < ctopo.num_internal(); ++ci) {
    const NodeId oid = map.to_original(ctopo.internal_ids()[ci]);
    const std::size_t oi = topo.internal_index(oid);
    full.ensure_unpacked(oi);
    const bool is_sealed = map.sealed()[ci] != 0;
    // Sealed leaves need only the root table (their merge tree is never
    // re-run); open nodes keep their slot snapshots so dirty-slot resume
    // works exactly as it would uncontracted.
    dp::clone_node_state(full.state(oi), slot.cache.arena(),
                         slot.cache.state(ci), /*with_slots=*/!is_sealed);
    if (is_sealed) {
      const dp::NodeSignature sig{0, full.signature(oi).original_mode};
      slot.cache.restore_entry(ci, sig, /*valid=*/true, /*resumable=*/false,
                               full.dirty_count(oi));
      ++sealed_count;
      cells += slot.cache.state(ci).flow.size();
    } else {
      slot.cache.restore_entry(ci, full.signature(oi), /*valid=*/true,
                               full.resumable(oi), full.dirty_count(oi));
    }
  }
  std::vector<NodeId> hint;
  hint.reserve(full.last_touched().size());
  for (NodeId j : full.last_touched()) hint.push_back(map.to_contracted(j));
  slot.cache.set_last_touched(std::move(hint), /*known=*/true);
  slot.active = true;
  session.record_contraction(sealed_count, cells);
}

/// Per-solve entry point; see the header comment for the decision tree.
/// Requires the session's solve mutex (it moves cache state around).
template <typename NodeState>
Prepared<NodeState> prepare(SolveSession& session,
                            dp::SubtreeCache<NodeState>& full,
                            ContractionSlot<NodeState>& slot,
                            const Scenario& scen,
                            const std::vector<std::uint64_t>& params,
                            std::span<const ScenarioDelta> deltas) {
  Prepared<NodeState> prep;
  const SolveSession::Options& opts = session.options();
  const std::shared_ptr<const Topology>& topology = session.topology_ptr();
  const Topology& topo = *topology;
  const std::size_t n = topo.num_internal();

  // Contraction trades bookkeeping for skipped merges; below the size
  // floor, under a byte budget (shedding could evict the tables sealed
  // leaves splice in), or with an unattributable batch it never pays.
  const bool enabled = opts.contract && opts.max_bytes == 0 &&
                       n >= opts.contract_min_internal;
  const std::optional<std::vector<NodeId>> touched =
      enabled ? dp::delta_touched_internal(topo, deltas) : std::nullopt;
  if (!touched.has_value()) {
    decontract(full, slot);
    return prep;
  }

  // Live contraction: reuse while every edit lands on an open node, the
  // contracted cache stayed fully warm (an infeasible early-exit leaves
  // invalid entries — the twin would full-sweep, so must we), the params
  // still match, and the twin would still take the delta fast path.
  if (slot.active) {
    std::optional<std::vector<ScenarioDelta>> mapped =
        slot.map->map_deltas(deltas);
    if (mapped.has_value() && slot.cache.all_valid() &&
        slot.cache.last_touched_known() && slot.cache.params() == params) {
      std::vector<NodeId> effective = *touched;
      effective.reserve(effective.size() + slot.cache.last_touched().size());
      for (NodeId cj : slot.cache.last_touched()) {
        effective.push_back(slot.map->to_original(cj));
      }
      std::sort(effective.begin(), effective.end());
      effective.erase(std::unique(effective.begin(), effective.end()),
                      effective.end());
      if (effective.size() * 8 <= n) {
        prep.active = true;
        prep.map = slot.map.get();
        prep.cache = &slot.cache;
        prep.scenario = slot.map->contract(scen);
        prep.deltas = std::move(*mapped);
        prep.hidden_internal = slot.map->hidden_internal();
        return prep;
      }
    }
    decontract(full, slot);
  }

  // Fresh build: only off a completely warm full cache, and only when the
  // ancestor closure shrinks the tree enough to bother.
  if (full.size() != n || full.params() != params || !full.all_valid() ||
      !full.last_touched_known()) {
    return prep;
  }
  std::vector<NodeId> effective = *touched;
  effective.reserve(effective.size() + full.last_touched().size());
  effective.insert(effective.end(), full.last_touched().begin(),
                   full.last_touched().end());
  std::sort(effective.begin(), effective.end());
  effective.erase(std::unique(effective.begin(), effective.end()),
                  effective.end());
  if (effective.size() * 8 > n) return prep;  // twin would full-sweep

  auto map = std::make_unique<Contraction>(
      topology, Contraction::open_closure(topo, effective));
  if (map->contracted()->num_internal() * opts.contract_min_shrink > n) {
    return prep;  // not enough shrink; the map dies here
  }
  std::optional<std::vector<ScenarioDelta>> mapped = map->map_deltas(deltas);
  // touched ⊆ open by construction, so the batch always renumbers.
  TREEPLACE_CHECK(mapped.has_value());
  slot.map = std::move(map);
  preload(session, full, slot, params);
  prep.active = true;
  prep.map = slot.map.get();
  prep.cache = &slot.cache;
  prep.scenario = slot.map->contract(scen);
  prep.deltas = std::move(*mapped);
  prep.hidden_internal = slot.map->hidden_internal();
  return prep;
}

}  // namespace treeplace::contracted
