// Persistent warm-start state for repeated solves over one topology.
//
// A SolveSession owns the per-subtree DP caches (core/dp_cache.h) that let
// delta-aware solvers reuse the tables of unchanged subtrees between
// solves — the serving loop's scenario deltas touch a few clients per
// request, so a warm re-solve recomputes only the root paths of the
// touched nodes (and, within each touched node, only the O(log k) dirty
// slots of its balanced merge tree) and splices cached tables in for
// everything else.  Sessions are keyed by topology: the serving layer
// keeps one per TopologyCache entry (evicted together), experiment loops
// keep one per chained tree.
//
// Contract:
//   * One session belongs to one topology.  Engines verify this themselves
//     (SubtreeCache::attach wipes on a topology change), so a misused
//     session degrades to cold solves, never to wrong results.
//   * Warm solves sharing a session must be serialized: hold solve_mutex()
//     across each Solver::solve_incremental call (SolveDispatcher does).
//     The stats counters are atomics and may be read concurrently.
//   * Results are bit-identical to cold solves by construction; only the
//     work counters (merge pairs, table cells) shrink.
//   * Options::max_bytes bounds the resident cache footprint: after each
//     warm solve the session drops merge-tree snapshots first (losing
//     O(log k) slot resume but keeping whole-subtree splicing) and whole
//     subtree tables last (losing the splice, paying a recompute) until
//     the budget holds.  0 = unbounded.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/dp_cache.h"
#include "tree/contract.h"
#include "tree/topology.h"

namespace treeplace {

namespace binio {
class Writer;
class Reader;
}  // namespace binio

/// Per-(engine, key) frozen-subtree contraction state (see tree/contract.h
/// and solver/contracted.h): the id mapping — which owns the contracted
/// topology — plus a second SubtreeCache holding the contracted tree's
/// tables.  While `active`, the contracted cache is authoritative for open
/// nodes and the session's full cache for everything frozen; decontract()
/// (solver/contracted.h) writes the open states back and deactivates.
template <typename NodeState>
struct ContractionSlot {
  std::unique_ptr<Contraction> map;
  dp::SubtreeCache<NodeState> cache;
  bool active = false;
};

class SolveSession {
 public:
  struct Options {
    /// Byte budget for all of this session's cached DP state; 0 = no
    /// limit.  Enforced after every warm solve (see enforce_budget()).
    std::size_t max_bytes = 0;
    /// Frozen-subtree contraction (tree/contract.h): warm delta solves
    /// run over a contracted tree in which every maximal untouched
    /// subtree is a sealed leaf carrying its cached root table, so
    /// per-tick work scales with the dirty region instead of N.  Results
    /// are bit-identical to uncontracted warm solves.  Off by default;
    /// ignored while max_bytes > 0 (budget shedding could evict the very
    /// tables a sealed leaf splices in).
    bool contract = false;
    /// Contraction is only built above this original internal-node count
    /// (below it the bookkeeping outweighs the skipped merges).
    std::size_t contract_min_internal = 64;
    /// Required shrink: contract only while contracted-internal-count *
    /// this factor <= original internal count.
    std::size_t contract_min_shrink = 4;
  };

  explicit SolveSession(std::shared_ptr<const Topology> topology);
  SolveSession(std::shared_ptr<const Topology> topology, Options options);

  SolveSession(const SolveSession&) = delete;
  SolveSession& operator=(const SolveSession&) = delete;

  const std::shared_ptr<const Topology>& topology_ptr() const {
    return topology_;
  }
  const Options& options() const { return options_; }

  /// Guards against cross-topology misuse: incremental solvers call this
  /// before touching the caches.  The check matters for memory safety, not
  /// just hygiene — the session pins its own topology alive, so a cache
  /// keyed to a *different* topology's address could outlive it and
  /// collide with a reallocation.
  void check_topology(const std::shared_ptr<const Topology>& topology) const {
    TREEPLACE_CHECK_MSG(topology == topology_,
                        "SolveSession used with an instance of a different "
                        "topology (sessions are per-topology)");
  }

  /// Serializes warm solves: hold across a solve_incremental() call that
  /// was handed this session.
  std::mutex& solve_mutex() { return solve_mutex_; }

  /// The per-engine caches, created on first use.  The key is the solver's
  /// registry name, so "power-exact" and "power-sym" never share tables
  /// (their boxes have different dimensionality).
  dp::PowerSubtreeCache& power_cache(const std::string& key);
  dp::MinCostSubtreeCache& min_cost_cache(const std::string& key);

  /// Per-engine contraction slots (Options::contract), created on first
  /// use and keyed like the caches.  Managed by solver/contracted.h's
  /// prepare()/decontract() under solve_mutex().
  ContractionSlot<dp::PowerNodeState>& power_contraction(
      const std::string& key);
  ContractionSlot<dp::MinCostNodeState>& min_cost_contraction(
      const std::string& key);

  struct Stats {
    std::uint64_t warm_solves = 0;  ///< solves that went through a cache
    std::uint64_t cold_solves = 0;  ///< fallback solves (no capability)
    std::uint64_t nodes_recomputed = 0;
    std::uint64_t nodes_reused = 0;
    /// Merge-plan slots built across all warm solves (leaf expansions +
    /// internal joins); the O(log k) redo claim is visible here.
    std::uint64_t merge_steps = 0;
    /// NodeSignatures compared while planning; the delta fast path keeps
    /// this near the touched-set size instead of N per solve.
    std::uint64_t signatures_checked = 0;
    /// Output cells spliced from snapshots by lazy root-path joins instead
    /// of recomputed (see core/merge_kernel.h) across all warm solves.
    std::uint64_t cells_skipped = 0;
    /// Byte-budget accounting (Options::max_bytes).  bytes_resident is
    /// tracked only when a budget is set — unbudgeted sessions skip the
    /// per-solve accounting walk and report 0.
    std::uint64_t bytes_resident = 0;  ///< after the last warm solve
    std::uint64_t snapshots_dropped = 0;
    std::uint64_t tables_dropped = 0;
    /// Frozen-subtree contraction (Options::contract): maximal untouched
    /// subtrees sealed into leaves across all contraction builds, and the
    /// cached root-table cells those sealed leaves injected into the
    /// contracted solves.  Counted once per contraction build, not per
    /// solve — a reused contraction injects nothing new.
    std::uint64_t subtrees_sealed = 0;
    std::uint64_t sealed_cells_injected = 0;
  };
  Stats stats() const;

  /// Called by solvers after a cache-backed solve with the engine's
  /// warm-start accounting; also enforces Options::max_bytes (the caller
  /// already holds solve_mutex(), so cache surgery is safe here).
  void record_warm(std::uint64_t nodes_recomputed, std::uint64_t nodes_reused,
                   std::uint64_t merge_steps, std::uint64_t signatures_checked,
                   std::uint64_t cells_skipped);
  /// Called by the base-class cold fallback.
  void record_cold();
  /// Called by solver/contracted.h's preload() with the sealed-leaf count
  /// and injected-cell total of a freshly built contraction.
  void record_contraction(std::uint64_t sealed, std::uint64_t cells);

  /// Serializes every per-engine cache to `w`: magic + format version +
  /// topology structural hash, each cache's full warm-start state (see
  /// the snapshot format notes in core/dp_cache.h), and a CRC32 trailer.
  /// Takes solve_mutex() internally — call between solves, not from one.
  /// Cache names are written in sorted order, so identical sessions
  /// serialize to identical bytes.
  void save(binio::Writer& w);

  /// Restores the caches saved by save().  All-or-nothing: the record is
  /// parsed into fresh caches and swapped in only after the CRC trailer
  /// verifies; any truncation, corruption, wrong version, or topology
  /// mismatch throws CheckError and leaves the session untouched (the
  /// next solve simply runs cold).  Takes solve_mutex() internally.
  void restore(binio::Reader& r);

  /// Losslessly packs every cached flow table (core/merge_kernel.h
  /// PackedTable: dead-cell runs elided, cells narrowed to the width the
  /// table needs), returning the resident cache bytes after packing.
  /// Unlike enforce_budget()'s shedding this costs no recompute — the
  /// next solve unpacks exactly the nodes it touches.  Takes
  /// solve_mutex() internally — call between solves, not from one.
  std::size_t compact();

  /// Resident bytes of all cached DP state right now (accounting walk;
  /// O(cached nodes)).  Takes solve_mutex() internally.
  std::size_t resident_bytes();

 private:
  /// Sheds cached state until the byte budget holds: merge-tree snapshots
  /// first, whole node states last.  Within each pass victims are ranked
  /// by hotness (times dirtied, ascending) then size (descending), so
  /// frequently-updated subtrees — whose tables earn their keep on every
  /// solve — are shed last.  Requires solve_mutex() held (it mutates the
  /// caches).
  void enforce_budget();

  std::shared_ptr<const Topology> topology_;
  Options options_;
  std::mutex solve_mutex_;
  // Guards the cache maps only; cache contents are protected by
  // solve_mutex_ (held across the whole solve).
  std::mutex caches_mutex_;
  std::unordered_map<std::string, std::unique_ptr<dp::PowerSubtreeCache>>
      power_caches_;
  std::unordered_map<std::string, std::unique_ptr<dp::MinCostSubtreeCache>>
      min_cost_caches_;
  std::unordered_map<std::string,
                     std::unique_ptr<ContractionSlot<dp::PowerNodeState>>>
      power_contractions_;
  std::unordered_map<std::string,
                     std::unique_ptr<ContractionSlot<dp::MinCostNodeState>>>
      min_cost_contractions_;
  std::atomic<std::uint64_t> warm_solves_{0};
  std::atomic<std::uint64_t> cold_solves_{0};
  std::atomic<std::uint64_t> nodes_recomputed_{0};
  std::atomic<std::uint64_t> nodes_reused_{0};
  std::atomic<std::uint64_t> merge_steps_{0};
  std::atomic<std::uint64_t> signatures_checked_{0};
  std::atomic<std::uint64_t> cells_skipped_{0};
  std::atomic<std::uint64_t> bytes_resident_{0};
  std::atomic<std::uint64_t> snapshots_dropped_{0};
  std::atomic<std::uint64_t> tables_dropped_{0};
  std::atomic<std::uint64_t> subtrees_sealed_{0};
  std::atomic<std::uint64_t> sealed_cells_injected_{0};
};

}  // namespace treeplace
