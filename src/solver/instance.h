// The one value type every solver consumes: a complete problem statement.
//
// An Instance bundles the distribution tree (whose pre-existing flags and
// original modes define the set E), the mode set (M = 1 for the classic
// cost-only problems), the reconfiguration cost model and an optional cost
// budget (the bounded-cost query of MinPower-BoundedCost).  Solvers never
// take extra parameters: everything a strategy may need is here, which is
// what lets the registry treat all of them interchangeably.
#pragma once

#include <optional>

#include "model/cost.h"
#include "model/modes.h"
#include "tree/tree.h"

namespace treeplace {

struct Instance {
  Tree tree;
  ModeSet modes = ModeSet::single(10);
  CostModel costs = CostModel::simple(0.1, 0.01);
  /// Bounded-cost query: power solvers return the least-power solution whose
  /// cost fits; cost solvers report budget_met on their optimum.  Unset
  /// means unconstrained.
  std::optional<double> cost_budget;

  /// W = W_M, the capacity single-mode algorithms plan against.
  RequestCount capacity() const { return modes.max_capacity(); }

  /// Classic single-mode instance (MinCost problems): capacity W, Eq. 2
  /// costs.  Modes do not exist in this problem class, so any original
  /// modes recorded on the tree's pre-existing servers are projected to 0
  /// (a pre-existing server is just a pre-existing server).
  static Instance single_mode(Tree tree, RequestCount capacity, double create,
                              double delete_cost) {
    for (NodeId id : tree.pre_existing_nodes()) {
      if (tree.original_mode(id) != 0) tree.set_pre_existing(id, 0);
    }
    return Instance{std::move(tree), ModeSet::single(capacity),
                    CostModel::simple(create, delete_cost), std::nullopt};
  }
};

}  // namespace treeplace
