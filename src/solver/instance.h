// The one value type every solver consumes: a complete problem statement.
//
// An Instance bundles a *shared* immutable topology, the per-scenario
// overlay (client requests, the pre-existing set E and original modes — see
// tree/scenario.h), the mode set (M = 1 for the classic cost-only
// problems), the reconfiguration cost model and an optional cost budget
// (the bounded-cost query of MinPower-BoundedCost).  Solvers never take
// extra parameters: everything a strategy may need is here, which is what
// lets the registry treat all of them interchangeably.
//
// Construction is zero-copy on the structure side: building an Instance
// from a Tree shares the tree's topology via shared_ptr and moves (or
// forks) only the flat Scenario arrays.  Batch workloads — the experiment
// sweeps, the CLI's streaming solve, bench/instance_churn — create one
// topology and stamp out per-solve Instances by forking scenarios.
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "model/cost.h"
#include "model/modes.h"
#include "tree/tree.h"

namespace treeplace {

/// Projects a scenario into the classic single-mode problem class: modes
/// do not exist there, so any original modes recorded on pre-existing
/// servers collapse to 0 (a pre-existing server is just a pre-existing
/// server).  The one definition of this invariant — used by
/// Instance::single_mode, the CLI and the serving loop, which must agree
/// bit for bit.
inline void project_to_single_mode(Scenario& scenario) {
  for (NodeId id : scenario.pre_existing_nodes()) {
    if (scenario.original_mode(id) != 0) scenario.set_pre_existing(id, 0);
  }
}

struct Instance {
  std::shared_ptr<const Topology> topology;
  Scenario scenario;
  ModeSet modes = ModeSet::single(10);
  CostModel costs = CostModel::simple(0.1, 0.01);
  /// Bounded-cost query: power solvers return the least-power solution whose
  /// cost fits; cost solvers report budget_met on their optimum.  Unset
  /// means unconstrained.
  std::optional<double> cost_budget;

  Instance() = default;

  /// Zero-copy bundle: the scenario must belong to `topology`.
  Instance(std::shared_ptr<const Topology> topology_in, Scenario scenario_in,
           ModeSet modes_in, CostModel costs_in,
           std::optional<double> cost_budget_in = std::nullopt)
      : topology(std::move(topology_in)),
        scenario(std::move(scenario_in)),
        modes(std::move(modes_in)),
        costs(std::move(costs_in)),
        cost_budget(cost_budget_in) {
    TREEPLACE_CHECK_MSG(scenario.topology_ptr() == topology,
                        "scenario belongs to a different topology");
  }

  /// From a Tree: shares the tree's topology (no structure copy) and moves
  /// its scenario in.
  Instance(Tree tree, ModeSet modes_in, CostModel costs_in,
           std::optional<double> cost_budget_in = std::nullopt)
      : topology(tree.topology_ptr()),
        scenario(std::move(tree.scenario())),
        modes(std::move(modes_in)),
        costs(std::move(costs_in)),
        cost_budget(cost_budget_in) {}

  const Topology& topo() const {
    TREEPLACE_DCHECK(topology != nullptr);
    return *topology;
  }
  const Scenario& scen() const { return scenario; }

  std::size_t num_internal() const {
    return topology ? topology->num_internal() : 0;
  }

  /// W = W_M, the capacity single-mode algorithms plan against.
  RequestCount capacity() const { return modes.max_capacity(); }

  /// Classic single-mode instance (MinCost problems): capacity W, Eq. 2
  /// costs, original modes projected via project_to_single_mode().
  static Instance single_mode(std::shared_ptr<const Topology> topology,
                              Scenario scenario, RequestCount capacity,
                              double create, double delete_cost) {
    project_to_single_mode(scenario);
    return Instance{std::move(topology), std::move(scenario),
                    ModeSet::single(capacity),
                    CostModel::simple(create, delete_cost), std::nullopt};
  }

  static Instance single_mode(Tree tree, RequestCount capacity, double create,
                              double delete_cost) {
    auto topology = tree.topology_ptr();
    return single_mode(std::move(topology), std::move(tree.scenario()),
                       capacity, create, delete_cost);
  }
};

}  // namespace treeplace
