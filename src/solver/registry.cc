#include "solver/registry.h"

#include <algorithm>
#include <utility>

#include "support/check.h"

namespace treeplace {

namespace detail {
// Defined in builtin_solvers.cc; called exactly once from instance() so the
// built-in strategies are available before any lookup, independent of static
// initialization order across translation units.
void register_builtin_solvers(SolverRegistry& registry);
}  // namespace detail

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    detail::register_builtin_solvers(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::add(SolverInfo info, Factory factory) {
  TREEPLACE_CHECK_MSG(!info.name.empty(), "solver name must not be empty");
  TREEPLACE_CHECK_MSG(factory != nullptr,
                      "solver '" << info.name << "' needs a factory");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), info.name,
      [](const Entry& e, const std::string& name) { return e.info->name < name; });
  TREEPLACE_CHECK_MSG(pos == entries_.end() || (*pos).info->name != info.name,
                      "solver '" << info.name << "' registered twice");
  Entry entry;
  entry.info = std::make_unique<SolverInfo>(std::move(info));
  entry.factory = std::move(factory);
  entries_.insert(pos, std::move(entry));
}

// Requires mutex_ held: the returned pointer is only valid under the lock
// (a concurrent add() may shift entries_).
const SolverRegistry::Entry* SolverRegistry::lookup(
    std::string_view name) const {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const Entry& e, std::string_view n) { return e.info->name < n; });
  if (pos == entries_.end() || (*pos).info->name != name) return nullptr;
  return &*pos;
}

bool SolverRegistry::contains(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lookup(name) != nullptr;
}

const SolverInfo* SolverRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = lookup(name);
  // The heap-allocated SolverInfo outlives any entries_ reshuffle.
  return entry == nullptr ? nullptr : entry->info.get();
}

std::unique_ptr<Solver> SolverRegistry::create(std::string_view name) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const Entry* entry = lookup(name)) factory = entry->factory;
  }
  // catalog() takes the lock again, so the check must run unlocked.
  TREEPLACE_CHECK_MSG(factory != nullptr, "unknown solver '"
                                              << std::string(name)
                                              << "'; available: " << catalog());
  return factory();
}

std::vector<std::string> SolverRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info->name);
  return out;
}

std::vector<SolverInfo> SolverRegistry::infos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SolverInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(*e.info);
  return out;
}

std::size_t SolverRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string SolverRegistry::catalog() const {
  std::string out;
  for (const std::string& name : names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

std::unique_ptr<Solver> make_solver(std::string_view name) {
  return SolverRegistry::instance().create(name);
}

SolverRegistration::SolverRegistration(SolverInfo info,
                                       SolverRegistry::Factory factory) {
  SolverRegistry::instance().add(std::move(info), std::move(factory));
}

}  // namespace treeplace
