#include "solver/session.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/dp_snapshot.h"
#include "solver/contracted.h"
#include "solver/solver.h"
#include "support/binio.h"
#include "support/check.h"

namespace treeplace {

namespace {

/// One sheddable unit of cached DP state, ranked coldest-first (fewest
/// invalidations since the session started) so rarely-updated subtrees pay
/// the recompute and the hot set — whose tables are rebuilt and reused on
/// every solve — survives.  Size breaks ties largest-first to free the
/// most bytes per eviction.  Root-path nodes are dirtied by every delta
/// below them, so they rank hottest and are shed last.
struct Shedding {
  std::uint64_t hotness = 0;  ///< times the node was dirtied (SubtreeCache)
  std::size_t bytes = 0;
  std::size_t node = 0;
  int cache = 0;  ///< index into the per-session cache list

  friend bool operator<(const Shedding& a, const Shedding& b) {
    if (a.hotness != b.hotness) return a.hotness < b.hotness;  // coldest first
    if (a.bytes != b.bytes) return a.bytes > b.bytes;          // largest first
    if (a.cache != b.cache) return a.cache < b.cache;
    return a.node < b.node;
  }
};

template <typename Cache>
std::size_t cache_bytes(Cache& cache) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < cache.size(); ++i) total += cache.state_bytes(i);
  return total;
}

/// Drops a contraction without writing anything back.  Used by restore():
/// the snapshot being swapped in was itself decontracted at save time, so
/// the restored full caches are complete and the slot's tables are stale.
/// The sentinel attach (empty params never match a real attach) keeps the
/// cache from warm-matching a future topology reallocated at the same
/// address once the map — which owns the contracted topology — dies.
template <typename NodeState>
void discard_contraction(ContractionSlot<NodeState>& slot) {
  if (slot.map != nullptr) {
    slot.cache.attach(slot.map->contracted().get(), {});
    slot.map.reset();
  }
  slot.active = false;
}

}  // namespace

SolveSession::SolveSession(std::shared_ptr<const Topology> topology)
    : SolveSession(std::move(topology), Options()) {}

SolveSession::SolveSession(std::shared_ptr<const Topology> topology,
                           Options options)
    : topology_(std::move(topology)), options_(options) {
  TREEPLACE_CHECK_MSG(topology_ != nullptr,
                      "SolveSession over a null topology");
}

dp::PowerSubtreeCache& SolveSession::power_cache(const std::string& key) {
  std::scoped_lock lock(caches_mutex_);
  auto& slot = power_caches_[key];
  if (!slot) slot = std::make_unique<dp::PowerSubtreeCache>();
  return *slot;
}

dp::MinCostSubtreeCache& SolveSession::min_cost_cache(const std::string& key) {
  std::scoped_lock lock(caches_mutex_);
  auto& slot = min_cost_caches_[key];
  if (!slot) slot = std::make_unique<dp::MinCostSubtreeCache>();
  return *slot;
}

ContractionSlot<dp::PowerNodeState>& SolveSession::power_contraction(
    const std::string& key) {
  std::scoped_lock lock(caches_mutex_);
  auto& slot = power_contractions_[key];
  if (!slot) slot = std::make_unique<ContractionSlot<dp::PowerNodeState>>();
  return *slot;
}

ContractionSlot<dp::MinCostNodeState>& SolveSession::min_cost_contraction(
    const std::string& key) {
  std::scoped_lock lock(caches_mutex_);
  auto& slot = min_cost_contractions_[key];
  if (!slot) slot = std::make_unique<ContractionSlot<dp::MinCostNodeState>>();
  return *slot;
}

SolveSession::Stats SolveSession::stats() const {
  Stats stats;
  stats.warm_solves = warm_solves_.load();
  stats.cold_solves = cold_solves_.load();
  stats.nodes_recomputed = nodes_recomputed_.load();
  stats.nodes_reused = nodes_reused_.load();
  stats.merge_steps = merge_steps_.load();
  stats.signatures_checked = signatures_checked_.load();
  stats.cells_skipped = cells_skipped_.load();
  stats.bytes_resident = bytes_resident_.load();
  stats.snapshots_dropped = snapshots_dropped_.load();
  stats.tables_dropped = tables_dropped_.load();
  stats.subtrees_sealed = subtrees_sealed_.load();
  stats.sealed_cells_injected = sealed_cells_injected_.load();
  return stats;
}

void SolveSession::record_warm(std::uint64_t nodes_recomputed,
                               std::uint64_t nodes_reused,
                               std::uint64_t merge_steps,
                               std::uint64_t signatures_checked,
                               std::uint64_t cells_skipped) {
  warm_solves_.fetch_add(1);
  nodes_recomputed_.fetch_add(nodes_recomputed);
  nodes_reused_.fetch_add(nodes_reused);
  merge_steps_.fetch_add(merge_steps);
  signatures_checked_.fetch_add(signatures_checked);
  cells_skipped_.fetch_add(cells_skipped);
  enforce_budget();
}

void SolveSession::record_cold() { cold_solves_.fetch_add(1); }

void SolveSession::record_contraction(std::uint64_t sealed,
                                      std::uint64_t cells) {
  subtrees_sealed_.fetch_add(sealed);
  sealed_cells_injected_.fetch_add(cells);
}

void SolveSession::enforce_budget() {
  // Unbudgeted sessions (the default) skip the accounting walk entirely:
  // a warm solve's cost must stay proportional to its dirty set, not to
  // the cache size.  bytes_resident then reads 0 (untracked).
  if (options_.max_bytes == 0) return;

  // Snapshot the cache pointers under the map lock; their contents are
  // protected by solve_mutex_, which record_warm's caller holds.
  std::vector<dp::PowerSubtreeCache*> power;
  std::vector<dp::MinCostSubtreeCache*> min_cost;
  {
    std::scoped_lock lock(caches_mutex_);
    for (auto& [key, cache] : power_caches_) power.push_back(cache.get());
    for (auto& [key, cache] : min_cost_caches_) {
      min_cost.push_back(cache.get());
    }
  }
  std::size_t total = 0;
  for (auto* cache : power) total += cache_bytes(*cache);
  for (auto* cache : min_cost) total += cache_bytes(*cache);

  const std::size_t budget = options_.max_bytes;
  if (total > budget) {
    // Pass 1: shed merge-tree snapshots, coldest first — the node stays
    // spliceable while clean, only the O(log k) slot resume is lost.
    std::vector<Shedding> snapshots;
    for (std::size_t c = 0; c < power.size(); ++c) {
      for (std::size_t i = 0; i < power[c]->size(); ++i) {
        const std::size_t bytes = power[c]->snapshot_bytes(i);
        if (bytes > 0) {
          snapshots.push_back(
              {power[c]->dirty_count(i), bytes, i, static_cast<int>(c)});
        }
      }
    }
    const int min_cost_base = static_cast<int>(power.size());
    for (std::size_t c = 0; c < min_cost.size(); ++c) {
      for (std::size_t i = 0; i < min_cost[c]->size(); ++i) {
        const std::size_t bytes = min_cost[c]->snapshot_bytes(i);
        if (bytes > 0) {
          snapshots.push_back({min_cost[c]->dirty_count(i), bytes, i,
                               min_cost_base + static_cast<int>(c)});
        }
      }
    }
    std::sort(snapshots.begin(), snapshots.end());
    for (const Shedding& shed : snapshots) {
      if (total <= budget) break;
      if (shed.cache < min_cost_base) {
        power[static_cast<std::size_t>(shed.cache)]->drop_snapshots(shed.node);
      } else {
        min_cost[static_cast<std::size_t>(shed.cache - min_cost_base)]
            ->drop_snapshots(shed.node);
      }
      total -= std::min(total, shed.bytes);
      snapshots_dropped_.fetch_add(1);
    }

    // Pass 2: still over budget — shed whole subtree tables, coldest
    // first.  The next solve recomputes them (bit-identical, just paid
    // again).
    if (total > budget) {
      std::vector<Shedding> tables;
      for (std::size_t c = 0; c < power.size(); ++c) {
        for (std::size_t i = 0; i < power[c]->size(); ++i) {
          const std::size_t bytes = power[c]->state_bytes(i);
          if (bytes > 0) {
            tables.push_back(
                {power[c]->dirty_count(i), bytes, i, static_cast<int>(c)});
          }
        }
      }
      for (std::size_t c = 0; c < min_cost.size(); ++c) {
        for (std::size_t i = 0; i < min_cost[c]->size(); ++i) {
          const std::size_t bytes = min_cost[c]->state_bytes(i);
          if (bytes > 0) {
            tables.push_back({min_cost[c]->dirty_count(i), bytes, i,
                              min_cost_base + static_cast<int>(c)});
          }
        }
      }
      std::sort(tables.begin(), tables.end());
      for (const Shedding& shed : tables) {
        if (total <= budget) break;
        if (shed.cache < min_cost_base) {
          power[static_cast<std::size_t>(shed.cache)]->drop_state(shed.node);
        } else {
          min_cost[static_cast<std::size_t>(shed.cache - min_cost_base)]
              ->drop_state(shed.node);
        }
        total -= std::min(total, shed.bytes);
        tables_dropped_.fetch_add(1);
      }
    }
  }
  bytes_resident_.store(total);
}

std::size_t SolveSession::compact() {
  std::scoped_lock solve_lock(solve_mutex_);
  std::vector<dp::PowerSubtreeCache*> power;
  std::vector<dp::MinCostSubtreeCache*> min_cost;
  std::vector<ContractionSlot<dp::PowerNodeState>*> power_slots;
  std::vector<ContractionSlot<dp::MinCostNodeState>*> min_cost_slots;
  {
    std::scoped_lock lock(caches_mutex_);
    for (auto& [key, cache] : power_caches_) power.push_back(cache.get());
    for (auto& [key, cache] : min_cost_caches_) {
      min_cost.push_back(cache.get());
    }
    for (auto& [key, slot] : power_contractions_) {
      power_slots.push_back(slot.get());
    }
    for (auto& [key, slot] : min_cost_contractions_) {
      min_cost_slots.push_back(slot.get());
    }
  }
  std::size_t total = 0;
  for (auto* cache : power) {
    cache->pack_all();
    total += cache_bytes(*cache);
  }
  for (auto* cache : min_cost) {
    cache->pack_all();
    total += cache_bytes(*cache);
  }
  // Active contractions carry the live open-node tables in their own
  // cache; pack and count those too (decontract unpacks what it copies).
  for (auto* slot : power_slots) {
    if (!slot->active) continue;
    slot->cache.pack_all();
    total += cache_bytes(slot->cache);
  }
  for (auto* slot : min_cost_slots) {
    if (!slot->active) continue;
    slot->cache.pack_all();
    total += cache_bytes(slot->cache);
  }
  return total;
}

std::size_t SolveSession::resident_bytes() {
  std::scoped_lock solve_lock(solve_mutex_);
  std::vector<dp::PowerSubtreeCache*> power;
  std::vector<dp::MinCostSubtreeCache*> min_cost;
  std::vector<ContractionSlot<dp::PowerNodeState>*> power_slots;
  std::vector<ContractionSlot<dp::MinCostNodeState>*> min_cost_slots;
  {
    std::scoped_lock lock(caches_mutex_);
    for (auto& [key, cache] : power_caches_) power.push_back(cache.get());
    for (auto& [key, cache] : min_cost_caches_) {
      min_cost.push_back(cache.get());
    }
    for (auto& [key, slot] : power_contractions_) {
      power_slots.push_back(slot.get());
    }
    for (auto& [key, slot] : min_cost_contractions_) {
      min_cost_slots.push_back(slot.get());
    }
  }
  std::size_t total = 0;
  for (auto* cache : power) total += cache_bytes(*cache);
  for (auto* cache : min_cost) total += cache_bytes(*cache);
  for (auto* slot : power_slots) {
    if (slot->active) total += cache_bytes(slot->cache);
  }
  for (auto* slot : min_cost_slots) {
    if (slot->active) total += cache_bytes(slot->cache);
  }
  return total;
}

void SolveSession::save(binio::Writer& w) {
  std::scoped_lock solve_lock(solve_mutex_);
  // Fold active contractions back into the full caches first: the
  // snapshot format stays contraction-free, a contracted-warm session
  // serializes to the same bytes as its uncontracted twin, and a restored
  // shard simply re-contracts on its first delta batch.
  {
    std::vector<std::pair<ContractionSlot<dp::PowerNodeState>*,
                          dp::PowerSubtreeCache*>>
        power_active;
    std::vector<std::pair<ContractionSlot<dp::MinCostNodeState>*,
                          dp::MinCostSubtreeCache*>>
        min_cost_active;
    {
      std::scoped_lock lock(caches_mutex_);
      for (auto& [key, slot] : power_contractions_) {
        if (slot->active) {
          power_active.emplace_back(slot.get(), power_caches_.at(key).get());
        }
      }
      for (auto& [key, slot] : min_cost_contractions_) {
        if (slot->active) {
          min_cost_active.emplace_back(slot.get(),
                                       min_cost_caches_.at(key).get());
        }
      }
    }
    for (auto& [slot, cache] : power_active) {
      contracted::decontract(*cache, *slot);
    }
    for (auto& [slot, cache] : min_cost_active) {
      contracted::decontract(*cache, *slot);
    }
  }
  // Snapshot the cache pointers under the map lock, then write in sorted
  // name order so identical sessions serialize to identical bytes
  // (unordered_map iteration order is not stable).
  std::vector<std::pair<std::string, dp::PowerSubtreeCache*>> power;
  std::vector<std::pair<std::string, dp::MinCostSubtreeCache*>> min_cost;
  {
    std::scoped_lock lock(caches_mutex_);
    for (auto& [key, cache] : power_caches_) {
      if (cache->size() > 0) power.emplace_back(key, cache.get());
    }
    for (auto& [key, cache] : min_cost_caches_) {
      if (cache->size() > 0) min_cost.emplace_back(key, cache.get());
    }
  }
  std::sort(power.begin(), power.end());
  std::sort(min_cost.begin(), min_cost.end());

  w.raw(dp::kSnapshotMagic, 8);
  w.u32(dp::kSnapshotVersion);
  w.u64(topology_->structural_hash());
  w.u64(topology_->num_internal());
  w.u32(static_cast<std::uint32_t>(power.size()));
  for (auto& [name, cache] : power) {
    w.str(name);
    dp::save_cache(w, *cache);
  }
  w.u32(static_cast<std::uint32_t>(min_cost.size()));
  for (auto& [name, cache] : min_cost) {
    w.str(name);
    dp::save_cache(w, *cache);
  }
  w.write_crc();
}

void SolveSession::restore(binio::Reader& r) {
  std::scoped_lock solve_lock(solve_mutex_);
  char magic[8];
  r.raw(magic, 8);
  TREEPLACE_CHECK_MSG(std::memcmp(magic, dp::kSnapshotMagic, 8) == 0,
                      "not a session snapshot (bad magic)");
  const std::uint32_t version = r.u32();
  TREEPLACE_CHECK_MSG(version == dp::kSnapshotVersion,
                      "unsupported snapshot version " << version);
  const std::uint64_t hash = r.u64();
  TREEPLACE_CHECK_MSG(hash == topology_->structural_hash(),
                      "snapshot was saved for a different topology");
  const std::uint64_t n = r.u64();
  TREEPLACE_CHECK_MSG(n == topology_->num_internal(),
                      "snapshot internal-node count mismatch");

  // Parse into fresh caches; they replace the session's only after the
  // CRC trailer verifies, so a bad file can never half-restore.
  constexpr std::uint32_t kMaxCaches = 1024;
  std::vector<std::pair<std::string, std::unique_ptr<dp::PowerSubtreeCache>>>
      power;
  std::vector<std::pair<std::string, std::unique_ptr<dp::MinCostSubtreeCache>>>
      min_cost;
  const std::uint32_t num_power = r.u32();
  TREEPLACE_CHECK_MSG(num_power <= kMaxCaches, "snapshot cache count bogus");
  for (std::uint32_t c = 0; c < num_power; ++c) {
    std::string name = r.str(256);
    auto cache = std::make_unique<dp::PowerSubtreeCache>();
    dp::load_cache(r, topology_.get(), *cache);
    power.emplace_back(std::move(name), std::move(cache));
  }
  const std::uint32_t num_min_cost = r.u32();
  TREEPLACE_CHECK_MSG(num_min_cost <= kMaxCaches,
                      "snapshot cache count bogus");
  for (std::uint32_t c = 0; c < num_min_cost; ++c) {
    std::string name = r.str(256);
    auto cache = std::make_unique<dp::MinCostSubtreeCache>();
    dp::load_cache(r, topology_.get(), *cache);
    min_cost.emplace_back(std::move(name), std::move(cache));
  }
  r.verify_crc();

  std::scoped_lock lock(caches_mutex_);
  for (auto& [name, cache] : power) {
    power_caches_[name] = std::move(cache);
  }
  for (auto& [name, cache] : min_cost) {
    min_cost_caches_[name] = std::move(cache);
  }
  // The restored full caches are authoritative (save() decontracts before
  // writing); any live contraction's tables are now stale — discard them.
  for (auto& [name, slot] : power_contractions_) discard_contraction(*slot);
  for (auto& [name, slot] : min_cost_contractions_) {
    discard_contraction(*slot);
  }
}

// Base implementations of the unified entry point and its deprecated
// alias; defined here so solver.h stays free of the session's definition.
// They forward to each other through the virtual dispatch so both call
// styles reach whichever one a strategy actually overrides: pre-redesign
// solvers override solve_incremental() (reached via the unified base),
// in-tree solvers override solve(const SolveRequest&) (reached via the
// legacy base).  A strategy advertising kIncremental must override one of
// the two.
Solution Solver::solve(const SolveRequest& request) const {
  if (request.session != nullptr && supports_incremental()) {
    return solve_incremental(request.instance, request.deltas,
                             *request.session);
  }
  if (request.session != nullptr) request.session->record_cold();
  return solve(request.instance);
}

Solution Solver::solve_incremental(const Instance& instance,
                                   std::span<const ScenarioDelta> deltas,
                                   SolveSession& session) const {
  return solve(SolveRequest{instance, deltas, &session});
}

}  // namespace treeplace
