#include "solver/session.h"

#include "solver/solver.h"
#include "support/check.h"

namespace treeplace {

SolveSession::SolveSession(std::shared_ptr<const Topology> topology)
    : topology_(std::move(topology)) {
  TREEPLACE_CHECK_MSG(topology_ != nullptr,
                      "SolveSession over a null topology");
}

dp::PowerSubtreeCache& SolveSession::power_cache(const std::string& key) {
  std::scoped_lock lock(caches_mutex_);
  auto& slot = power_caches_[key];
  if (!slot) slot = std::make_unique<dp::PowerSubtreeCache>();
  return *slot;
}

dp::MinCostSubtreeCache& SolveSession::min_cost_cache(const std::string& key) {
  std::scoped_lock lock(caches_mutex_);
  auto& slot = min_cost_caches_[key];
  if (!slot) slot = std::make_unique<dp::MinCostSubtreeCache>();
  return *slot;
}

SolveSession::Stats SolveSession::stats() const {
  return Stats{warm_solves_.load(), cold_solves_.load(),
               nodes_recomputed_.load(), nodes_reused_.load()};
}

void SolveSession::record_warm(std::uint64_t nodes_recomputed,
                               std::uint64_t nodes_reused) {
  warm_solves_.fetch_add(1);
  nodes_recomputed_.fetch_add(nodes_recomputed);
  nodes_reused_.fetch_add(nodes_reused);
}

void SolveSession::record_cold() { cold_solves_.fetch_add(1); }

// The correct-by-construction fallback for strategies without warm-start
// support: a plain cold solve, recorded as such on the session.  Defined
// here so solver.h stays free of the session's definition.
Solution Solver::solve_incremental(const Instance& instance,
                                   std::span<const ScenarioDelta> /*deltas*/,
                                   SolveSession& session) const {
  session.record_cold();
  return solve(instance);
}

}  // namespace treeplace
