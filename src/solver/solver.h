// The uniform strategy interface all placement algorithms implement.
//
// A Solver is a stateless strategy object: solve() maps an Instance to a
// Solution and may be called concurrently from many threads.  The attached
// SolverInfo describes what the strategy can do — its objective, whether it
// is exact or a heuristic, whether it exploits multiple power modes or the
// pre-existing server set, and any instance-size limit — so generic
// consumers (CLI, experiments, bench/solver_matrix) can select and gate
// strategies without knowing them individually.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "solver/instance.h"
#include "solver/solution.h"
#include "support/thread_pool.h"
#include "tree/scenario_delta.h"

namespace treeplace {

class SolveSession;  // solver/session.h

/// What a solver optimizes.  Min-count solvers (GR) are classified as
/// kMinCost: replica count is the dominant term of the Eq. 2 cost.
enum class Objective {
  kMinCost,   ///< Eq. 2 / Eq. 4 reconfiguration cost
  kMinPower,  ///< Eq. 3 power (bi-criteria with the cost budget)
};

struct SolverInfo {
  std::string name;     ///< registry key, e.g. "update-dp"
  std::string summary;  ///< one-line description for --list-algos
  Objective objective = Objective::kMinCost;
  /// True for provably optimal algorithms (w.r.t. `objective`, on the
  /// instance class stated in `summary`); false for heuristics.
  bool exact = false;
  /// True when the solver exploits multiple power modes (M > 1); every
  /// solver must still accept single-mode instances.
  bool needs_modes = false;
  /// True when the solver can take advantage of pre-existing servers; false
  /// means it merely tolerates them (prices reuse by accident, like GR).
  bool supports_pre_existing = false;
  /// False for oracles that certify optimal values without reconstructing a
  /// placement (Solution::placement stays empty).
  bool provides_placement = true;
  /// True when the algorithm requires a single-mode cost model (M = 1).
  bool single_mode_only = false;
  /// Hard instance-size cap (internal nodes); 0 means unbounded.
  std::size_t max_internal = 0;

  /// Whether this solver accepts an instance of the given size/mode count.
  bool accepts(std::size_t num_internal, int num_modes) const {
    if (max_internal != 0 && num_internal > max_internal) return false;
    if (single_mode_only && num_modes > 1) return false;
    return true;
  }
};

class Solver {
 public:
  /// Tunables that apply across strategies, set on a solver instance before
  /// it is used.  set_options() is NOT thread-safe against concurrent
  /// solve() calls: configure the solver first, then share it freely
  /// (solve() itself stays const and thread-safe).
  struct Options {
    /// Worker threads for solver-internal parallelism — the power DPs shard
    /// their per-child merge loops across this many workers.  1 = serial.
    /// Results are bit-identical for any value (see core/merge_kernel.h);
    /// strategies without internal parallelism ignore the knob.
    int threads = 1;
  };

  explicit Solver(SolverInfo info) : info_(std::move(info)) {}
  virtual ~Solver() = default;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  const SolverInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  const Options& options() const { return options_; }
  void set_options(const Options& options) {
    TREEPLACE_CHECK_MSG(options.threads >= 1,
                        "Solver::Options::threads must be >= 1");
    options_ = options;
    // One long-lived worker team per configured solver, shared by every
    // solve() — serving thousands of requests must not pay per-request
    // thread spawns.  ThreadPool::submit is thread-safe, so concurrent
    // solves may share it freely.
    worker_pool_ =
        options.threads > 1
            ? std::make_shared<ThreadPool>(
                  static_cast<std::size_t>(options.threads))
            : nullptr;
  }

  /// The pool backing options().threads; nullptr when threads == 1.
  ThreadPool* worker_pool() const { return worker_pool_.get(); }

  /// Solves `instance`.  Must be thread-safe (const, no mutable state).
  virtual Solution solve(const Instance& instance) const = 0;

  /// True when solve_incremental() actually reuses SolveSession DP state;
  /// false means the base-class cold-solve fallback runs.  Callers use
  /// this to skip session bookkeeping for oblivious strategies.
  virtual bool supports_incremental() const { return false; }

  /// Delta-aware re-solve against a persistent session (solver/session.h).
  /// `deltas` lists the scenario edits since the session's previous solve.
  /// A non-empty span is a soft contract: it must name *every* edit since
  /// that solve — relative to the previously solved scenario, or to a
  /// common base scenario both solves' spans fork from (the serving
  /// loop's pattern).  Small complete spans let the engines skip the O(N)
  /// per-node signature sweep and check only the touched root paths (see
  /// core/dp_cache.h); callers that cannot promise completeness pass an
  /// empty span, which always selects the full signature diff — so the
  /// no-hint path keeps the old unconditional safety.  Results are
  /// bit-identical to solve() on the same instance either way.  The
  /// caller must serialize calls sharing one session (hold
  /// session.solve_mutex()).  The base implementation is a correct
  /// cold-solve fallback.
  virtual Solution solve_incremental(const Instance& instance,
                                     std::span<const ScenarioDelta> deltas,
                                     SolveSession& session) const;

 private:
  SolverInfo info_;
  Options options_;
  std::shared_ptr<ThreadPool> worker_pool_;
};

}  // namespace treeplace
