// The uniform strategy interface all placement algorithms implement.
//
// A Solver is a stateless strategy object: solve() maps an Instance to a
// Solution and may be called concurrently from many threads.  The attached
// SolverInfo describes what the strategy can do — its objective, whether it
// is exact or a heuristic, whether it exploits multiple power modes or the
// pre-existing server set, and any instance-size limit — so generic
// consumers (CLI, experiments, bench/solver_matrix) can select and gate
// strategies without knowing them individually.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "solver/instance.h"
#include "solver/solution.h"
#include "support/thread_pool.h"
#include "tree/scenario_delta.h"

namespace treeplace {

class SolveSession;  // solver/session.h

/// Capability bits a strategy advertises through Solver::caps().  Replaces
/// the per-capability virtual-probe scatter (supports_incremental() & co):
/// generic consumers test bits, new capabilities add bits instead of
/// virtuals.
enum class SolverCaps : std::uint32_t {
  kNone = 0,
  /// solve() with a session actually reuses SolveSession DP state (a
  /// solver without this bit degrades to a recorded cold solve).
  kIncremental = 1u << 0,
};

inline constexpr SolverCaps operator|(SolverCaps a, SolverCaps b) {
  return static_cast<SolverCaps>(static_cast<std::uint32_t>(a) |
                                 static_cast<std::uint32_t>(b));
}
inline constexpr SolverCaps operator&(SolverCaps a, SolverCaps b) {
  return static_cast<SolverCaps>(static_cast<std::uint32_t>(a) &
                                 static_cast<std::uint32_t>(b));
}
inline constexpr bool any(SolverCaps c) { return c != SolverCaps::kNone; }

/// The unified solve entry point's argument: an instance, optionally
/// paired with a persistent session and the scenario edits since that
/// session's previous solve.  `deltas` without `session` is meaningless
/// and ignored; `session` without `deltas` selects the full signature
/// sweep (always correct).  The delta-span contract is the one documented
/// on the legacy solve_incremental(): a non-empty span must name *every*
/// edit since the session's previous solve.
struct SolveRequest {
  const Instance& instance;
  std::span<const ScenarioDelta> deltas = {};
  SolveSession* session = nullptr;
};

/// What a solver optimizes.  Min-count solvers (GR) are classified as
/// kMinCost: replica count is the dominant term of the Eq. 2 cost.
enum class Objective {
  kMinCost,   ///< Eq. 2 / Eq. 4 reconfiguration cost
  kMinPower,  ///< Eq. 3 power (bi-criteria with the cost budget)
};

struct SolverInfo {
  std::string name;     ///< registry key, e.g. "update-dp"
  std::string summary;  ///< one-line description for --list-algos
  Objective objective = Objective::kMinCost;
  /// True for provably optimal algorithms (w.r.t. `objective`, on the
  /// instance class stated in `summary`); false for heuristics.
  bool exact = false;
  /// True when the solver exploits multiple power modes (M > 1); every
  /// solver must still accept single-mode instances.
  bool needs_modes = false;
  /// True when the solver can take advantage of pre-existing servers; false
  /// means it merely tolerates them (prices reuse by accident, like GR).
  bool supports_pre_existing = false;
  /// False for oracles that certify optimal values without reconstructing a
  /// placement (Solution::placement stays empty).
  bool provides_placement = true;
  /// True when the algorithm requires a single-mode cost model (M = 1).
  bool single_mode_only = false;
  /// Hard instance-size cap (internal nodes); 0 means unbounded.
  std::size_t max_internal = 0;

  /// Whether this solver accepts an instance of the given size/mode count.
  bool accepts(std::size_t num_internal, int num_modes) const {
    if (max_internal != 0 && num_internal > max_internal) return false;
    if (single_mode_only && num_modes > 1) return false;
    return true;
  }
};

class Solver {
 public:
  /// Tunables that apply across strategies, set on a solver instance before
  /// it is used.  set_options() is NOT thread-safe against concurrent
  /// solve() calls: configure the solver first, then share it freely
  /// (solve() itself stays const and thread-safe).
  struct Options {
    /// Worker threads for solver-internal parallelism — the power DPs shard
    /// their per-child merge loops across this many workers.  1 = serial.
    /// Results are bit-identical for any value (see core/merge_kernel.h);
    /// strategies without internal parallelism ignore the knob.
    int threads = 1;
  };

  explicit Solver(SolverInfo info) : info_(std::move(info)) {}
  virtual ~Solver() = default;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  const SolverInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  const Options& options() const { return options_; }
  void set_options(const Options& options) {
    TREEPLACE_CHECK_MSG(options.threads >= 1,
                        "Solver::Options::threads must be >= 1");
    options_ = options;
    // One long-lived worker team per configured solver, shared by every
    // solve() — serving thousands of requests must not pay per-request
    // thread spawns.  ThreadPool::submit is thread-safe, so concurrent
    // solves may share it freely.
    worker_pool_ =
        options.threads > 1
            ? std::make_shared<ThreadPool>(
                  static_cast<std::size_t>(options.threads))
            : nullptr;
  }

  /// The pool backing options().threads; nullptr when threads == 1.
  ThreadPool* worker_pool() const { return worker_pool_.get(); }

  /// Solves `instance`.  Must be thread-safe (const, no mutable state).
  virtual Solution solve(const Instance& instance) const = 0;

  /// The unified entry point: solves request.instance, reusing (and
  /// updating) request.session's DP caches when the strategy advertises
  /// SolverCaps::kIncremental.  Results are bit-identical to
  /// solve(request.instance) either way; only the work shrinks.  With a
  /// session the caller must hold request.session->solve_mutex() across
  /// the call (SolveDispatcher does); without one this is a plain
  /// thread-safe cold solve.  The base implementation routes to the
  /// legacy solve_incremental() so pre-redesign out-of-tree solvers keep
  /// working; in-tree strategies override this directly.
  virtual Solution solve(const SolveRequest& request) const;

  /// Capability bits (see SolverCaps).  The default advertises nothing;
  /// strategies with warm-start support return kIncremental.  A solver
  /// advertising kIncremental must override solve(const SolveRequest&) or
  /// the legacy solve_incremental() — the two base implementations
  /// forward to each other.
  virtual SolverCaps caps() const { return SolverCaps::kNone; }

  /// Deprecated probe, kept as a thin forwarder over caps() so existing
  /// callers and out-of-tree overriders compile unchanged.  New code
  /// tests `any(caps() & SolverCaps::kIncremental)`.
  virtual bool supports_incremental() const {
    return any(caps() & SolverCaps::kIncremental);
  }

  /// Deprecated entry point, kept so out-of-tree incremental solvers (and
  /// their callers) compile unchanged; new code passes a SolveRequest to
  /// solve().  The delta-span contract: a non-empty span must name
  /// *every* edit since the session's previous solve — relative to the
  /// previously solved scenario, or to a common base scenario both
  /// solves' spans fork from (the serving loop's pattern).  Small
  /// complete spans let the engines skip the O(N) per-node signature
  /// sweep (see core/dp_cache.h); an empty span always selects the full
  /// signature diff.  The caller must serialize calls sharing one session
  /// (hold session.solve_mutex()).  The base implementation forwards to
  /// the unified solve().
  virtual Solution solve_incremental(const Instance& instance,
                                     std::span<const ScenarioDelta> deltas,
                                     SolveSession& session) const;

 private:
  SolverInfo info_;
  Options options_;
  std::shared_ptr<ThreadPool> worker_pool_;
};

}  // namespace treeplace
