// String-keyed solver registry: the one place strategies are looked up.
//
// Every algorithm in the library registers itself under a stable name
// ("greedy", "update-dp", "power-sym", ...); the CLI, the experiment
// harnesses and bench/solver_matrix select strategies exclusively through
// this registry, so adding a solver is a one-file change:
//
//   // src/solver/my_solver.cc
//   #include "solver/registry.h"
//   namespace treeplace {
//   namespace {
//   class MySolver : public Solver {
//    public:
//     MySolver() : Solver(make_info()) {}
//     static SolverInfo make_info() {
//       SolverInfo info;
//       info.name = "my-solver";
//       info.summary = "one line for --list-algos";
//       return info;
//     }
//     Solution solve(const Instance& instance) const override { ... }
//   };
//   TREEPLACE_REGISTER_SOLVER(MySolver);
//   }  // namespace
//   }  // namespace treeplace
//
// and one CMake source-list entry.  The treeplace library is an OBJECT
// library, so the registration static initializer is never dropped by the
// linker.  Built-in solvers are additionally registered eagerly the first
// time instance() is called, making lookups independent of static
// initialization order.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "solver/solver.h"

namespace treeplace {

class SolverRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Solver>()>;

  /// The process-wide registry, with all built-in solvers registered.
  static SolverRegistry& instance();

  /// Registers a factory under info.name.  Throws CheckError on an empty
  /// name or a duplicate registration.  Thread-safe.
  void add(SolverInfo info, Factory factory);

  bool contains(std::string_view name) const;

  /// Capability flags for `name`, or nullptr if unknown.  The pointer stays
  /// valid for the registry's lifetime (entries are never removed).
  const SolverInfo* find(std::string_view name) const;

  /// Instantiates the solver registered under `name`.  Throws CheckError
  /// listing the available names when `name` is unknown.
  std::unique_ptr<Solver> create(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

  /// All registered infos, sorted by name.
  std::vector<SolverInfo> infos() const;

  std::size_t size() const;

  /// "a, b, c" — for error messages and usage text.
  std::string catalog() const;

 private:
  SolverRegistry() = default;

  struct Entry {
    std::unique_ptr<SolverInfo> info;  // stable address for find()
    Factory factory;
  };

  const Entry* lookup(std::string_view name) const;

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // sorted by info->name
};

/// Convenience: SolverRegistry::instance().create(name).
std::unique_ptr<Solver> make_solver(std::string_view name);

/// Registers a solver at static-initialization time; prefer the
/// TREEPLACE_REGISTER_SOLVER macro.
struct SolverRegistration {
  SolverRegistration(SolverInfo info, SolverRegistry::Factory factory);
};

/// Registers `SolverClass` (default-constructible, with a static
/// SolverInfo make_info()) under its info().name.
#define TREEPLACE_REGISTER_SOLVER(SolverClass)                        \
  static const ::treeplace::SolverRegistration kRegister##SolverClass{ \
      SolverClass::make_info(),                                       \
      [] { return std::make_unique<SolverClass>(); }}

}  // namespace treeplace
