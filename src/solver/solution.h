// The one result type every solver produces.
//
// A Solution carries the selected placement with its full accounting (cost
// breakdown and total power, both recomputable by the independent evaluator
// in model/placement.h), solve statistics, and — for bi-criteria solvers —
// the complete cost-power Pareto frontier.  Single-objective solvers leave
// the frontier empty; placement-less oracles (see SolverInfo::
// provides_placement) fill only the numeric fields.
#pragma once

#include <cstdint>
#include <vector>

#include "core/power_common.h"
#include "model/cost.h"
#include "model/placement.h"

namespace treeplace {

struct SolveStats {
  double seconds = 0.0;     ///< wall-clock solve time
  std::uint64_t work = 0;   ///< solver-specific work counter (DP cells,
                            ///< merge pairs, local-search evaluations, ...)
};

struct Solution {
  /// True iff the instance admits any valid placement for this solver.
  bool feasible = false;
  /// False iff Instance::cost_budget was set and no solution fits it; the
  /// placement then falls back to the solver's unconstrained pick.
  bool budget_met = true;

  /// The selected placement: the optimum for single-objective solvers, the
  /// least-power point within budget (else minimum power) for bi-criteria
  /// ones.  Empty for solvers with provides_placement == false.
  Placement placement;
  CostBreakdown breakdown;
  double power = 0.0;

  /// Full cost-power trade-off (ascending cost, strictly descending power);
  /// empty for single-objective solvers.
  std::vector<PowerParetoPoint> frontier;

  SolveStats stats;

  /// Minimum-power frontier point whose cost is within `bound` (1e-9
  /// tolerance); nullptr when the frontier is empty or nothing fits.
  const PowerParetoPoint* best_within_cost(double bound) const {
    const PowerParetoPoint* best = nullptr;
    for (const PowerParetoPoint& p : frontier) {
      if (p.cost <= bound + 1e-9) best = &p;  // power decreases along the list
    }
    return best;
  }

  /// Unconstrained minimum-power frontier point; nullptr when empty.
  const PowerParetoPoint* min_power() const {
    return frontier.empty() ? nullptr : &frontier.back();
  }
};

}  // namespace treeplace
