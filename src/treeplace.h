// Umbrella header: the full public API of the treeplace library.
//
// treeplace reproduces "Power-aware replica placement and update strategies
// in tree networks" (Benoit, Renaud-Goud, Robert, 2010): optimal replica
// placement updates with pre-existing servers (Section 3), multi-mode
// power-aware placement (Section 4), the NP-completeness gadget, the greedy
// baseline of Wu/Lin/Liu, heuristics, and the Section 5 experiment suite.
//
// Two API layers:
//
//  * The *solver layer* (solver/) is the recommended entry point: build an
//    Instance (tree + modes + costs + optional budget), pick a strategy by
//    name from the SolverRegistry, and get a uniform Solution back:
//
//      Instance instance = Instance::single_mode(tree, /*W=*/10, 0.1, 0.01);
//      Solution solution = make_solver("update-dp")->solve(instance);
//
//    Every algorithm below is registered ("greedy", "greedy-pre",
//    "greedy-reuse", "update-dp", "power-exact", "power-sym",
//    "power-greedy", "power-ls", "exhaustive-cost", "exhaustive-power");
//    see solver/registry.h for the one-file recipe to add another.
//
//  * The *algorithm layer* (core/) exposes each algorithm's bespoke entry
//    point and result type for callers that need algorithm-specific detail
//    (DP ablation counters, the greedy capacity sweep's candidate list, ...).
#pragma once

#include "core/dp_update.h"            // MinCost-WithPre DP (Theorem 1)
#include "core/exhaustive.h"           // brute-force oracles
#include "core/greedy.h"               // greedy GR baseline [19]
#include "core/greedy_power.h"         // GR capacity sweep (Section 5.2)
#include "core/heuristics.h"           // Section 6 future-work heuristics
#include "core/np_reduction.h"         // Theorem 2 gadget (2-Partition)
#include "core/power_dp.h"             // exact power DP (Theorem 3)
#include "core/power_dp_symmetric.h"   // reduced-state symmetric-cost DP
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "model/cost.h"
#include "model/modes.h"
#include "model/placement.h"
#include "sim/experiment1.h"
#include "sim/experiment2.h"
#include "sim/experiment3.h"
#include "solver/instance.h"
#include "solver/registry.h"
#include "solver/session.h"      // warm-start SolveSession
#include "solver/solution.h"
#include "solver/solver.h"
#include "support/prng.h"
#include "tree/io.h"
#include "tree/metrics.h"
#include "tree/scenario.h"
#include "tree/scenario_delta.h"
#include "tree/topology.h"
#include "tree/tree.h"
