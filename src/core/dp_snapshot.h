// Serialization of per-subtree DP caches: the session-persistence core.
//
// A SubtreeCache round-trips through an endian-stable binary record (see
// the format notes in core/dp_cache.h and the scalar encoding in
// support/binio.h) so a SolveSession can be written to disk on shard
// drain and restored warm after a restart or a topology migration.  The
// serialized record captures everything warm-solve planning reads —
// signatures, validity/resumability flags, hotness counters, the
// last_touched hint, and every table cell including merge-tree slot
// snapshots — so a restored cache is indistinguishable from the saved
// one: the next warm solve recomputes the same nodes, splices the same
// slots, and produces bit-identical results and work counters.
//
// load_cache() throws CheckError on any structural mismatch (wrong node
// count, out-of-range ids, truncation).  Callers restore into a *fresh*
// cache and discard it on failure (SolveSession::restore does), so a bad
// file can never leave a half-restored cache behind.
#pragma once

#include "core/dp_cache.h"
#include "support/binio.h"

namespace treeplace::dp {

/// Magic + version of the enclosing session snapshot file
/// (SolveSession::save): 8 magic bytes, then a u32 format version.
/// Version 2: flow tables are serialized as PackedTable encodings
/// (run-length dead-cell elision + narrow cells) instead of flat u64
/// arrays; version-1 files are rejected (sessions then start cold).
inline constexpr char kSnapshotMagic[9] = "TPSNAP01";
inline constexpr std::uint32_t kSnapshotVersion = 2;

void save_cache(binio::Writer& w, const PowerSubtreeCache& cache);
void save_cache(binio::Writer& w, const MinCostSubtreeCache& cache);

/// Restores a cache saved by save_cache() and binds it to `topo` (the
/// next attach() with the same topology pointer + params returns warm).
void load_cache(binio::Reader& r, const Topology* topo,
                PowerSubtreeCache& cache);
void load_cache(binio::Reader& r, const Topology* topo,
                MinCostSubtreeCache& cache);

}  // namespace treeplace::dp
