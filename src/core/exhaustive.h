// Brute-force oracles for small instances — the ground truth that every
// optimal algorithm in this library is property-tested against.
//
// All enumerators iterate over the 2^|N| subsets of internal nodes (and,
// for power problems, over per-server mode choices), so they are gated to
// small trees.  They share no code with the solvers: flows, validity, cost
// and power all come from the independent evaluator in model/placement.h.
#pragma once

#include <optional>
#include <vector>

#include "model/cost.h"
#include "model/modes.h"
#include "model/placement.h"
#include "tree/tree.h"

namespace treeplace {

/// Hard cap on the tree size the exhaustive solvers accept.
inline constexpr std::size_t kExhaustiveMaxInternal = 20;

/// Minimum replica count under capacity W (closest policy), or nullopt when
/// infeasible.
std::optional<int> exhaustive_min_count(const Topology& topo,
                                        const Scenario& scen,
                                        RequestCount capacity);
inline std::optional<int> exhaustive_min_count(const Tree& tree,
                                               RequestCount capacity) {
  return exhaustive_min_count(tree.topology(), tree.scenario(), capacity);
}

struct ExhaustiveCostSolution {
  Placement placement;
  CostBreakdown breakdown;
};

/// Minimum Eq. 2 cost with pre-existing servers, or nullopt when infeasible.
/// `costs` must be a single-mode model (CostModel::simple).
std::optional<ExhaustiveCostSolution> exhaustive_min_cost(
    const Topology& topo, const Scenario& scen, RequestCount capacity,
    const CostModel& costs);
inline std::optional<ExhaustiveCostSolution> exhaustive_min_cost(
    const Tree& tree, RequestCount capacity, const CostModel& costs) {
  return exhaustive_min_cost(tree.topology(), tree.scenario(), capacity,
                             costs);
}

/// A (cost, power) point attainable by some valid placement.
struct CostPowerPoint {
  double cost = 0.0;
  double power = 0.0;
};

/// The Pareto frontier of attainable (cost, power) pairs: sorted by
/// ascending cost with strictly descending power.  Empty when infeasible.
/// Enumerates subsets and, per server, every mode from the minimal feasible
/// one upward (higher modes can pay off through changed_{o,i} = 0).
std::vector<CostPowerPoint> exhaustive_cost_power_frontier(
    const Topology& topo, const Scenario& scen, const ModeSet& modes,
    const CostModel& costs);
inline std::vector<CostPowerPoint> exhaustive_cost_power_frontier(
    const Tree& tree, const ModeSet& modes, const CostModel& costs) {
  return exhaustive_cost_power_frontier(tree.topology(), tree.scenario(),
                                        modes, costs);
}

/// A frontier point together with a placement that attains it.
struct ExhaustiveParetoPoint {
  double cost = 0.0;
  double power = 0.0;
  Placement placement;
};

/// exhaustive_cost_power_frontier() with a witness placement reconstructed
/// for every frontier point, via a second enumeration pass that matches
/// each point's exact (cost, power) — the frontier values are bit-identical
/// to the value-only oracle's.  Memory stays O(frontier) instead of
/// O(candidates).
std::vector<ExhaustiveParetoPoint> exhaustive_cost_power_frontier_placements(
    const Topology& topo, const Scenario& scen, const ModeSet& modes,
    const CostModel& costs);
inline std::vector<ExhaustiveParetoPoint>
exhaustive_cost_power_frontier_placements(const Tree& tree,
                                          const ModeSet& modes,
                                          const CostModel& costs) {
  return exhaustive_cost_power_frontier_placements(
      tree.topology(), tree.scenario(), modes, costs);
}

/// Minimum total power irrespective of cost (the MinPower objective), or
/// nullopt when infeasible.
std::optional<double> exhaustive_min_power(const Topology& topo,
                                           const Scenario& scen,
                                           const ModeSet& modes);
inline std::optional<double> exhaustive_min_power(const Tree& tree,
                                                  const ModeSet& modes) {
  return exhaustive_min_power(tree.topology(), tree.scenario(), modes);
}

/// Prunes a candidate list to its Pareto frontier (ascending cost, strictly
/// descending power).  Exposed for reuse by the DP result builders and by
/// tests comparing frontiers.
std::vector<CostPowerPoint> pareto_frontier(
    std::vector<CostPowerPoint> candidates);

}  // namespace treeplace
