// Shared machinery for the tree dynamic programs.
//
// Every DP in this library fills, per internal node, a table indexed by a
// small vector of counts ("digits" in a box with per-dimension bounds) whose
// value is the minimal flow leaving the node's subtree (paper Lemma 1 and
// its multi-mode generalization).  Children are combined along a *balanced
// binary merge tree* (a dp::MergePlan): each child becomes a leaf slot
// holding the child's table extended by the child's own placement options,
// internal slots join two earlier slots, and the node's own client mass is
// folded into the root slot last.  The min-flow-per-count-vector semiring
// is associative, so the final table is identical to the paper's
// one-child-at-a-time chain — only the tie-broken witnesses differ — while
// a warm re-solve with one dirty child redoes O(log k) slots instead of
// the chain's whole left-deep suffix.  A per-slot Decision record allows
// O(N) solution reconstruction without the req-vector copies of the
// paper's pseudo-code (the optimization sketched in its Section 3.3).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "support/check.h"
#include "support/parallel.h"
#include "support/thread_pool.h"
#include "tree/tree.h"

namespace treeplace::dp {

/// Sentinel for "no solution with these counts".
inline constexpr RequestCount kInvalidFlow =
    std::numeric_limits<RequestCount>::max();

/// A mixed-radix index space: digit d ranges over [0, bounds[d]].
/// Zero-dimensional boxes have size 1 (the single empty state) so leaf
/// tables need no special casing.
class Box {
 public:
  Box() : size_(1) {}

  explicit Box(std::vector<int> bounds) : bounds_(std::move(bounds)) {
    strides_.resize(bounds_.size());
    size_ = 1;
    for (std::size_t d = bounds_.size(); d-- > 0;) {
      TREEPLACE_DCHECK(bounds_[d] >= 0);
      strides_[d] = size_;
      const bool overflow = __builtin_mul_overflow(
          size_, static_cast<std::size_t>(bounds_[d]) + 1, &size_);
      // CompactEntry/Decision index cells with uint32; larger tables would
      // silently wrap, so reject them with a clear error instead.
      TREEPLACE_CHECK_MSG(!overflow && size_ <= (std::size_t{1} << 32),
                          "DP table exceeds 2^32 cells ("
                              << bounds_.size() << " dims); instance too "
                              << "large for 32-bit cell indices");
    }
  }

  std::size_t size() const { return size_; }
  std::size_t dims() const { return bounds_.size(); }
  const std::vector<int>& bounds() const { return bounds_; }
  std::size_t stride(std::size_t d) const { return strides_[d]; }

  /// Flat index of a digit vector.
  std::size_t flat(const std::vector<int>& digits) const {
    TREEPLACE_DCHECK(digits.size() == bounds_.size());
    std::size_t idx = 0;
    for (std::size_t d = 0; d < digits.size(); ++d) {
      TREEPLACE_DCHECK(digits[d] >= 0 && digits[d] <= bounds_[d]);
      idx += static_cast<std::size_t>(digits[d]) * strides_[d];
    }
    return idx;
  }

  /// Digit vector of a flat index.
  void decode(std::size_t flat_index, std::vector<int>& digits) const {
    digits.resize(bounds_.size());
    for (std::size_t d = 0; d < bounds_.size(); ++d) {
      digits[d] = static_cast<int>(flat_index / strides_[d]);
      flat_index %= strides_[d];
    }
  }

 private:
  std::vector<int> bounds_;
  std::vector<std::size_t> strides_;
  std::size_t size_ = 1;
};

/// One table entry compacted for merge loops: its flat index and flow, plus
/// the entry's digit dot-product against the *destination* box strides so
/// that combining two entries is a single addition.
struct CompactEntry {
  std::uint32_t flat = 0;
  RequestCount flow = kInvalidFlow;
  std::uint64_t dot = 0;
};

/// Collects the valid entries of `flow` (a table over `box`), computing
/// dot-products against `target` (per-dimension: target must have the same
/// dimensionality).
inline std::vector<CompactEntry> compact_valid_entries(
    const Box& box, const std::vector<RequestCount>& flow, const Box& target) {
  TREEPLACE_DCHECK(box.dims() == target.dims());
  std::vector<CompactEntry> out;
  std::vector<int> digits(box.dims(), 0);
  for (std::size_t flat = 0; flat < box.size(); ++flat) {
    if (flow[flat] != kInvalidFlow) {
      std::uint64_t dot = 0;
      for (std::size_t d = 0; d < box.dims(); ++d) {
        dot += static_cast<std::uint64_t>(digits[d]) * target.stride(d);
      }
      out.push_back(CompactEntry{static_cast<std::uint32_t>(flat), flow[flat],
                                 dot});
    }
    // Odometer increment.
    for (std::size_t d = box.dims(); d-- > 0;) {
      if (++digits[d] <= box.bounds()[d]) break;
      digits[d] = 0;
    }
  }
  return out;
}

/// Per-entry provenance recorded while filling a merge-plan slot.  For an
/// internal slot, `left`/`right` are the flat indices in the two operand
/// slots (`mode` unused).  For a leaf slot, `right` is the flat index in
/// the child's final table and `mode` the mode of a replica placed on the
/// child itself (-1 when none; `left` unused).
struct Decision {
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  std::int8_t mode = -1;
};

/// The balanced binary merge tree over one node's k internal children.
///
/// Slots [0, k) are the leaves, one per child in child order; slot k + s is
/// filled by steps()[s], which joins two earlier slots.  Steps are listed
/// in execution order (operands always precede their step), the split is
/// balanced, and every slot covers a contiguous child range — so a single
/// dirty child invalidates exactly its leaf plus the ceil(log2 k) internal
/// slots on its root path, the redo set of a warm re-solve.
class MergePlan {
 public:
  struct Step {
    std::uint32_t left = 0;        ///< slot id of the left operand
    std::uint32_t right = 0;       ///< slot id of the right operand
    std::uint32_t first_leaf = 0;  ///< leaves covered: [first_leaf,
    std::uint32_t last_leaf = 0;   ///<                  last_leaf]
  };

  explicit MergePlan(std::uint32_t num_leaves) : num_leaves_(num_leaves) {
    if (num_leaves_ > 1) {
      steps_.reserve(num_leaves_ - 1);
      build(0, num_leaves_);
    }
  }

  std::uint32_t num_leaves() const { return num_leaves_; }
  const std::vector<Step>& steps() const { return steps_; }
  std::uint32_t num_slots() const {
    return num_leaves_ + static_cast<std::uint32_t>(steps_.size());
  }
  std::uint32_t step_slot(std::size_t s) const {
    return num_leaves_ + static_cast<std::uint32_t>(s);
  }
  /// The slot holding the all-children combination; meaningless when
  /// num_leaves() == 0 (the node's table is just its folded client mass).
  std::uint32_t root_slot() const { return num_slots() - 1; }

 private:
  /// Builds the subtree over leaves [lo, hi), returning its slot id.
  std::uint32_t build(std::uint32_t lo, std::uint32_t hi) {
    if (hi - lo == 1) return lo;
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t left = build(lo, mid);
    const std::uint32_t right = build(mid, hi);
    steps_.push_back(Step{left, right, lo, hi - 1});
    return num_leaves_ + static_cast<std::uint32_t>(steps_.size()) - 1;
  }

  std::uint32_t num_leaves_;
  std::vector<Step> steps_;
};

/// Memoizes MergePlans by child count: one solve asks for the same handful
/// of fan-outs over and over (table building and every reconstruction).
class MergePlanCache {
 public:
  const MergePlan& get(std::size_t num_leaves) {
    auto it = plans_.find(num_leaves);
    if (it == plans_.end()) {
      it = plans_
               .emplace(num_leaves,
                        MergePlan(static_cast<std::uint32_t>(num_leaves)))
               .first;
    }
    return it->second;
  }

 private:
  std::unordered_map<std::size_t, MergePlan> plans_;
};

/// Lazily-created worker pool for solver-internal parallelism: no thread is
/// spawned until the first merge large enough to shard, so small instances
/// pay nothing for a threads > 1 knob.  One LazyPool lives per top-level
/// solve; its workers are reused across every merge of that solve.
class LazyPool {
 public:
  explicit LazyPool(std::size_t threads) : threads_(threads) {}

  /// The pool, or nullptr when threads < 2 (serial solve).
  ThreadPool* get() {
    if (threads_ < 2) return nullptr;
    if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_);
    return pool_.get();
  }

 private:
  std::size_t threads_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Smallest (left x right) pair count worth sharding across threads; below
/// it the per-shard table allocations dominate the merge itself.  Applied
/// per merge-tree slot by the join kernel (core/merge_kernel.h): the small
/// joins near the leaves run serially, the large ones near the root shard.
inline constexpr std::size_t kMinShardPairs = 4096;

}  // namespace treeplace::dp
