// Shared machinery for the tree dynamic programs.
//
// Every DP in this library fills, per internal node, a table indexed by a
// small vector of counts ("digits" in a box with per-dimension bounds) whose
// value is the minimal flow leaving the node's subtree (paper Lemma 1 and
// its multi-mode generalization).  Children are merged one at a time; a
// per-merge Decision record allows O(N) solution reconstruction without the
// req-vector copies of the paper's pseudo-code (the optimization sketched in
// its Section 3.3).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "support/check.h"
#include "support/parallel.h"
#include "support/thread_pool.h"
#include "tree/tree.h"

namespace treeplace::dp {

/// Sentinel for "no solution with these counts".
inline constexpr RequestCount kInvalidFlow =
    std::numeric_limits<RequestCount>::max();

/// A mixed-radix index space: digit d ranges over [0, bounds[d]].
/// Zero-dimensional boxes have size 1 (the single empty state) so leaf
/// tables need no special casing.
class Box {
 public:
  Box() : size_(1) {}

  explicit Box(std::vector<int> bounds) : bounds_(std::move(bounds)) {
    strides_.resize(bounds_.size());
    size_ = 1;
    for (std::size_t d = bounds_.size(); d-- > 0;) {
      TREEPLACE_DCHECK(bounds_[d] >= 0);
      strides_[d] = size_;
      size_ *= static_cast<std::size_t>(bounds_[d]) + 1;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t dims() const { return bounds_.size(); }
  const std::vector<int>& bounds() const { return bounds_; }
  std::size_t stride(std::size_t d) const { return strides_[d]; }

  /// Flat index of a digit vector.
  std::size_t flat(const std::vector<int>& digits) const {
    TREEPLACE_DCHECK(digits.size() == bounds_.size());
    std::size_t idx = 0;
    for (std::size_t d = 0; d < digits.size(); ++d) {
      TREEPLACE_DCHECK(digits[d] >= 0 && digits[d] <= bounds_[d]);
      idx += static_cast<std::size_t>(digits[d]) * strides_[d];
    }
    return idx;
  }

  /// Digit vector of a flat index.
  void decode(std::size_t flat_index, std::vector<int>& digits) const {
    digits.resize(bounds_.size());
    for (std::size_t d = 0; d < bounds_.size(); ++d) {
      digits[d] = static_cast<int>(flat_index / strides_[d]);
      flat_index %= strides_[d];
    }
  }

 private:
  std::vector<int> bounds_;
  std::vector<std::size_t> strides_;
  std::size_t size_ = 1;
};

/// One table entry compacted for merge loops: its flat index and flow, plus
/// the entry's digit dot-product against the *destination* box strides so
/// that combining two entries is a single addition.
struct CompactEntry {
  std::uint32_t flat = 0;
  RequestCount flow = kInvalidFlow;
  std::uint64_t dot = 0;
};

/// Collects the valid entries of `flow` (a table over `box`), computing
/// dot-products against `target` (per-dimension: target must have the same
/// dimensionality).
inline std::vector<CompactEntry> compact_valid_entries(
    const Box& box, const std::vector<RequestCount>& flow, const Box& target) {
  TREEPLACE_DCHECK(box.dims() == target.dims());
  std::vector<CompactEntry> out;
  std::vector<int> digits(box.dims(), 0);
  for (std::size_t flat = 0; flat < box.size(); ++flat) {
    if (flow[flat] != kInvalidFlow) {
      std::uint64_t dot = 0;
      for (std::size_t d = 0; d < box.dims(); ++d) {
        dot += static_cast<std::uint64_t>(digits[d]) * target.stride(d);
      }
      out.push_back(CompactEntry{static_cast<std::uint32_t>(flat), flow[flat],
                                 dot});
    }
    // Odometer increment.
    for (std::size_t d = box.dims(); d-- > 0;) {
      if (++digits[d] <= box.bounds()[d]) break;
      digits[d] = 0;
    }
  }
  return out;
}

/// Per-entry provenance recorded while merging child k into a node:
/// `left` is the flat index in the partial table before the merge, `right`
/// the flat index in the child's final table, `mode` the mode of a replica
/// placed on the child itself (-1 when none).
struct Decision {
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  std::int8_t mode = -1;
};

/// Lazily-created worker pool for solver-internal parallelism: no thread is
/// spawned until the first merge large enough to shard, so small instances
/// pay nothing for a threads > 1 knob.  One LazyPool lives per top-level
/// solve; its workers are reused across every merge of that solve.
class LazyPool {
 public:
  explicit LazyPool(std::size_t threads) : threads_(threads) {}

  /// The pool, or nullptr when threads < 2 (serial solve).
  ThreadPool* get() {
    if (threads_ < 2) return nullptr;
    if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_);
    return pool_.get();
  }

 private:
  std::size_t threads_;
  std::unique_ptr<ThreadPool> pool_;
};

/// Smallest (left x right) pair count worth sharding across threads; below
/// it the per-shard table allocations dominate the merge itself.
inline constexpr std::size_t kMinShardPairs = 4096;

/// Runs one child merge, sharded over the left entry range when profitable.
///
/// `merge_range(lo, hi, flow, dec)` must fill merge candidates for left
/// entries [lo, hi) into the given table exactly as the serial loop would
/// (replacing an entry only on strictly smaller flow) and return the number
/// of (left, right) pairs it visited.  `flow` comes pre-filled with
/// kInvalidFlow.
///
/// Shard tables are reduced back in left-index order, again replacing only
/// on strictly smaller flow.  Because the serial loop keeps the *first*
/// occurrence of each cell's minimal flow, and every shard preserves that
/// rule internally, the ordered reduction reproduces the serial result —
/// flows *and* decisions — bit for bit for any thread count.
template <typename MergeRange>
std::uint64_t sharded_merge(ThreadPool* pool, std::size_t left_size,
                            std::size_t right_size,
                            std::vector<RequestCount>& flow,
                            std::vector<Decision>& dec,
                            const MergeRange& merge_range) {
  if (pool == nullptr || left_size < 2 * pool->size() ||
      left_size * right_size < kMinShardPairs) {
    return merge_range(0, left_size, flow, dec);
  }
  struct Shard {
    std::vector<RequestCount> flow;
    std::vector<Decision> dec;
    std::uint64_t pairs = 0;
  };
  const std::size_t shards = pool->size();
  auto results = parallel_map(*pool, shards, [&](std::size_t s) {
    const std::size_t lo = left_size * s / shards;
    const std::size_t hi = left_size * (s + 1) / shards;
    Shard shard{std::vector<RequestCount>(flow.size(), kInvalidFlow),
                std::vector<Decision>(dec.size()), 0};
    shard.pairs = merge_range(lo, hi, shard.flow, shard.dec);
    return shard;
  });
  std::uint64_t pairs = 0;
  for (const Shard& shard : results) {
    pairs += shard.pairs;
    for (std::size_t t = 0; t < flow.size(); ++t) {
      if (shard.flow[t] < flow[t]) {
        flow[t] = shard.flow[t];
        dec[t] = shard.dec[t];
      }
    }
  }
  return pairs;
}

}  // namespace treeplace::dp
