#include "core/merge_kernel.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <new>
#include <string>

#include "support/check.h"
#include "support/env.h"
#include "support/parallel.h"

#if defined(__x86_64__) || defined(__i386__)
#define TREEPLACE_KERNEL_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define TREEPLACE_KERNEL_NEON 1
#include <arm_neon.h>
#endif

namespace treeplace::dp {

// ---------------------------------------------------------------------------
// TableArena

namespace {

/// Chunks grow geometrically from 256 KiB so small solves stay small while
/// serving-scale sessions settle into a handful of large chunks.
constexpr std::size_t kMinChunkBytes = std::size_t{256} * 1024;
constexpr std::size_t kMaxChunkBytes = std::size_t{64} * 1024 * 1024;

}  // namespace

TableArena::~TableArena() {
  for (Chunk& chunk : chunks_) {
    ::operator delete(chunk.data, std::align_val_t{kAlignment});
  }
}

std::size_t TableArena::size_class(std::size_t bytes) {
  // Round up to a multiple of the alignment, then to a power of two: every
  // block starts 64-byte aligned and frees recycle exactly.
  std::size_t rounded = (bytes + kAlignment - 1) & ~(kAlignment - 1);
  if (rounded < kAlignment) rounded = kAlignment;
  std::size_t cls = kAlignment;
  while (cls < rounded) cls <<= 1;
  return cls;
}

void* TableArena::allocate(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  const std::size_t cls = size_class(bytes);
  const std::size_t bucket =
      static_cast<std::size_t>(std::countr_zero(cls));
  if (free_.size() <= bucket) free_.resize(bucket + 1);
  if (!free_[bucket].empty()) {
    void* p = free_[bucket].back();
    free_[bucket].pop_back();
    used_bytes_ += cls;
    return p;
  }
  if (chunks_.empty() || chunks_.back().size - chunks_.back().used < cls) {
    std::size_t chunk_bytes = chunks_.empty()
                                  ? kMinChunkBytes
                                  : std::min(chunks_.back().size * 2,
                                             kMaxChunkBytes);
    chunk_bytes = std::max(chunk_bytes, cls);
    Chunk chunk;
    chunk.data = static_cast<std::byte*>(
        ::operator new(chunk_bytes, std::align_val_t{kAlignment}));
    chunk.size = chunk_bytes;
    reserved_bytes_ += chunk_bytes;
    chunks_.push_back(chunk);
  }
  Chunk& chunk = chunks_.back();
  void* p = chunk.data + chunk.used;
  chunk.used += cls;
  used_bytes_ += cls;
  return p;
}

void TableArena::deallocate(void* p, std::size_t bytes) noexcept {
  if (p == nullptr || bytes == 0) return;
  const std::size_t cls = size_class(bytes);
  const std::size_t bucket =
      static_cast<std::size_t>(std::countr_zero(cls));
  if (free_.size() <= bucket) free_.resize(bucket + 1);
  free_[bucket].push_back(p);
  used_bytes_ -= cls;
}

void TableArena::reset() noexcept {
  for (auto& bucket : free_) bucket.clear();
  for (Chunk& chunk : chunks_) chunk.used = 0;
  used_bytes_ = 0;
}

// ---------------------------------------------------------------------------
// Kernel configuration

const KernelConfig& kernel_config() {
  static const KernelConfig cfg = [] {
    KernelConfig c;
    const std::string simd = env_string("TREEPLACE_SIMD", "on");
    c.simd = !(simd == "off" || simd == "0" || simd == "no");
    return c;
  }();
  return cfg;
}

// ---------------------------------------------------------------------------
// Compact entries

void compact_entries(const Box& box, std::span<const RequestCount> flow,
                     const Box& target, EntryList& out) {
  TREEPLACE_DCHECK(box.dims() == target.dims());
  out.clear();
  const std::size_t dims = box.dims();
  int stack_digits[64];
  std::vector<int> heap_digits;
  int* digits = stack_digits;
  if (dims > 64) {
    heap_digits.assign(dims, 0);
    digits = heap_digits.data();
  } else {
    std::fill_n(digits, dims, 0);
  }
  std::uint64_t dot = 0;
  const std::size_t size = box.size();
  for (std::size_t flat = 0; flat < size; ++flat) {
    if (flow[flat] != kInvalidFlow) {
      out.flat.push_back(static_cast<std::uint32_t>(flat));
      out.flow.push_back(flow[flat]);
      out.dot.push_back(dot);
    }
    // Odometer increment, maintaining the target-stride dot incrementally.
    for (std::size_t d = dims; d-- > 0;) {
      dot += target.stride(d);
      if (++digits[d] <= box.bounds()[d]) break;
      dot -= static_cast<std::uint64_t>(box.bounds()[d] + 1) * target.stride(d);
      digits[d] = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// Packed tables

namespace {

/// Little-endian fixed-width cell IO; width is 2, 4 or 8.
void append_cell(std::vector<std::uint8_t>& payload, RequestCount v,
                 std::uint8_t width) {
  for (std::uint8_t b = 0; b < width; ++b) {
    payload.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

RequestCount read_cell(const std::uint8_t* p, std::uint8_t width) {
  RequestCount v = 0;
  for (std::uint8_t b = 0; b < width; ++b) {
    v |= static_cast<RequestCount>(p[b]) << (8 * b);
  }
  return v;
}

}  // namespace

PackedTable PackedTable::pack(std::span<const RequestCount> flow) {
  PackedTable out;
  out.cells_ = flow.size();
  RequestCount max_valid = 0;
  std::size_t valid = 0;
  for (const RequestCount f : flow) {
    if (f == kInvalidFlow) continue;
    ++valid;
    max_valid = std::max(max_valid, f);
  }
  out.width_ = max_valid <= 0xFFFFu ? 2 : max_valid <= 0xFFFFFFFFu ? 4 : 8;
  out.payload_.reserve(valid * out.width_);
  std::size_t i = 0;
  while (i < flow.size()) {
    if (flow[i] == kInvalidFlow) {
      ++i;
      continue;
    }
    Run run{static_cast<std::uint32_t>(i), 0};
    while (i < flow.size() && flow[i] != kInvalidFlow) {
      append_cell(out.payload_, flow[i], out.width_);
      ++run.length;
      ++i;
    }
    out.runs_.push_back(run);
  }
  // Fragmented tables accumulate many runs; push_back growth would leave
  // up to 2x slack in exactly the vector heap_bytes() accounts for.
  out.runs_.shrink_to_fit();
  return out;
}

PackedTable PackedTable::from_parts(std::uint64_t cells, std::uint8_t width,
                                    std::vector<Run> runs,
                                    std::vector<std::uint8_t> payload) {
  TREEPLACE_CHECK_MSG(width == 2 || width == 4 || width == 8,
                      "packed table: bad cell width " << int{width});
  std::uint64_t covered = 0;
  std::uint64_t next = 0;
  for (const Run& run : runs) {
    TREEPLACE_CHECK_MSG(run.length > 0 && run.start >= next &&
                            run.start + std::uint64_t{run.length} <= cells,
                        "packed table: malformed run");
    next = run.start + std::uint64_t{run.length};
    covered += run.length;
  }
  TREEPLACE_CHECK_MSG(payload.size() == covered * width,
                      "packed table: payload size mismatch");
  PackedTable out;
  out.cells_ = cells;
  out.width_ = width;
  out.runs_ = std::move(runs);
  out.payload_ = std::move(payload);
  return out;
}

void PackedTable::unpack(std::span<RequestCount> out) const {
  TREEPLACE_DCHECK(out.size() == cells_);
  std::fill(out.begin(), out.end(), kInvalidFlow);
  const std::uint8_t* p = payload_.data();
  for (const Run& run : runs_) {
    for (std::uint32_t k = 0; k < run.length; ++k) {
      out[run.start + k] = read_cell(p, width_);
      p += width_;
    }
  }
}

namespace {

/// Bytes needed for the largest operand flat: decisions index table cells
/// (< 2^32), so 1, 2 or 4 suffice.
std::uint8_t flat_width(std::uint32_t max_value) {
  return max_value <= 0xFFu ? 1 : max_value <= 0xFFFFu ? 2 : 4;
}

void append_flat(std::vector<std::uint8_t>& payload, std::uint32_t v,
                 std::uint8_t width) {
  for (std::uint8_t b = 0; b < width; ++b) {
    payload.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
  }
}

std::uint32_t read_flat(const std::uint8_t* p, std::uint8_t width) {
  std::uint32_t v = 0;
  for (std::uint8_t b = 0; b < width; ++b) {
    v |= static_cast<std::uint32_t>(p[b]) << (8 * b);
  }
  return v;
}

}  // namespace

PackedDecisions PackedDecisions::pack(std::span<const Decision> dec) {
  PackedDecisions out;
  out.cells_ = dec.size();
  std::uint32_t max_left = 0;
  std::uint32_t max_right = 0;
  for (const Decision& d : dec) {
    max_left = std::max(max_left, d.left);
    max_right = std::max(max_right, d.right);
  }
  out.left_width_ = flat_width(max_left);
  out.right_width_ = flat_width(max_right);
  out.payload_.reserve(dec.size() * out.cell_bytes());
  for (const Decision& d : dec) {
    append_flat(out.payload_, d.left, out.left_width_);
    append_flat(out.payload_, d.right, out.right_width_);
    out.payload_.push_back(static_cast<std::uint8_t>(d.mode));
  }
  return out;
}

PackedDecisions PackedDecisions::pack(std::span<const Decision> dec,
                                      std::span<const RequestCount> flow) {
  TREEPLACE_DCHECK(flow.size() == dec.size());
  PackedDecisions out;
  out.cells_ = dec.size();
  out.elided_ = true;
  // Widths from the *valid* maxima only: dead cells hold uninitialized
  // operands (resize_uninit) that must neither widen the encoding nor
  // reach the payload.
  std::uint32_t max_left = 0;
  std::uint32_t max_right = 0;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < dec.size(); ++i) {
    if (flow[i] == kInvalidFlow) continue;
    ++valid;
    max_left = std::max(max_left, dec[i].left);
    max_right = std::max(max_right, dec[i].right);
  }
  out.left_width_ = flat_width(max_left);
  out.right_width_ = flat_width(max_right);
  out.payload_.reserve(valid * out.cell_bytes());
  std::size_t i = 0;
  while (i < dec.size()) {
    if (flow[i] == kInvalidFlow) {
      ++i;
      continue;
    }
    PackedTable::Run run{static_cast<std::uint32_t>(i), 0};
    while (i < dec.size() && flow[i] != kInvalidFlow) {
      append_flat(out.payload_, dec[i].left, out.left_width_);
      append_flat(out.payload_, dec[i].right, out.right_width_);
      out.payload_.push_back(static_cast<std::uint8_t>(dec[i].mode));
      ++run.length;
      ++i;
    }
    out.runs_.push_back(run);
  }
  out.runs_.shrink_to_fit();
  return out;
}

PackedDecisions PackedDecisions::from_parts(
    std::uint64_t cells, std::uint8_t elided, std::uint8_t left_width,
    std::uint8_t right_width, std::vector<PackedTable::Run> runs,
    std::vector<std::uint8_t> payload) {
  const auto ok_width = [](std::uint8_t w) {
    return w == 1 || w == 2 || w == 4;
  };
  TREEPLACE_CHECK_MSG(ok_width(left_width) && ok_width(right_width),
                      "packed decisions: bad flat width");
  TREEPLACE_CHECK_MSG(elided <= 1, "packed decisions: bad elision flag");
  const std::uint64_t cell_bytes =
      left_width + right_width + std::uint64_t{1};
  std::uint64_t covered = cells;
  if (elided != 0) {
    covered = 0;
    std::uint64_t next = 0;
    for (const PackedTable::Run& run : runs) {
      TREEPLACE_CHECK_MSG(run.length > 0 && run.start >= next &&
                              run.start + std::uint64_t{run.length} <= cells,
                          "packed decisions: malformed run");
      next = run.start + std::uint64_t{run.length};
      covered += run.length;
    }
  } else {
    TREEPLACE_CHECK_MSG(runs.empty(), "packed decisions: dense with runs");
  }
  TREEPLACE_CHECK_MSG(payload.size() == covered * cell_bytes,
                      "packed decisions: payload size mismatch");
  PackedDecisions out;
  out.cells_ = cells;
  out.elided_ = elided != 0;
  out.left_width_ = left_width;
  out.right_width_ = right_width;
  out.runs_ = std::move(runs);
  out.payload_ = std::move(payload);
  return out;
}

void PackedDecisions::unpack(std::span<Decision> out) const {
  TREEPLACE_DCHECK(out.size() == cells_);
  const std::uint8_t* p = payload_.data();
  const auto read_one = [&](Decision& d) {
    d.left = read_flat(p, left_width_);
    p += left_width_;
    d.right = read_flat(p, right_width_);
    p += right_width_;
    d.mode = static_cast<std::int8_t>(*p++);
  };
  if (!elided_) {
    for (Decision& d : out) read_one(d);
    return;
  }
  // Elided cells decode to a zeroed Decision; their flow twin is
  // kInvalidFlow, so reconstruction never reads them.
  std::fill(out.begin(), out.end(), Decision{});
  for (const PackedTable::Run& run : runs_) {
    for (std::uint32_t k = 0; k < run.length; ++k) read_one(out[run.start + k]);
  }
}

// ---------------------------------------------------------------------------
// Min-plus run kernels
//
// One contiguous run of the dense path: dst[i] <- src[i] + add when src[i]
// is valid, the sum clears the cap, and it strictly improves dst[i] (the
// first-occurrence tie-break: equal flows never replace).  upd[i] records
// updated lanes so the caller can write decisions; returns whether any
// lane updated.

namespace {

using RunFn = bool (*)(const RequestCount*, RequestCount*, std::uint8_t*,
                       std::size_t, RequestCount, RequestCount);

/// The TREEPLACE_SIMD=off fallback: the original branchy loop, which no
/// compiler vectorizes (early continues carry loop-carried control flow).
bool minplus_run_branchy(const RequestCount* src, RequestCount* dst,
                         std::uint8_t* upd, std::size_t n, RequestCount add,
                         RequestCount cap) {
  bool any = false;
  std::memset(upd, 0, n);
  for (std::size_t i = 0; i < n; ++i) {
    const RequestCount f = src[i];
    if (f == kInvalidFlow) continue;
    const RequestCount sum = f + add;
    if (sum > cap) continue;
    if (sum < dst[i]) {
      dst[i] = sum;
      upd[i] = 1;
      any = true;
    }
  }
  return any;
}

/// Branchless form for auto-vectorization on targets without a manual
/// kernel.  Bit-identical to the branchy loop: same predicate, same
/// strictly-smaller update.
bool minplus_run_portable(const RequestCount* src, RequestCount* dst,
                          std::uint8_t* upd, std::size_t n, RequestCount add,
                          RequestCount cap) {
  unsigned any = 0;
#pragma omp simd reduction(| : any)
  for (std::size_t i = 0; i < n; ++i) {
    const RequestCount f = src[i];
    const RequestCount sum = f + add;
    const unsigned ok = static_cast<unsigned>(f != kInvalidFlow) &
                        static_cast<unsigned>(sum <= cap) &
                        static_cast<unsigned>(sum < dst[i]);
    dst[i] = ok ? sum : dst[i];
    upd[i] = static_cast<std::uint8_t>(ok);
    any |= ok;
  }
  return any != 0;
}

#if defined(TREEPLACE_KERNEL_X86)

/// AVX2: 4 lanes of u64 per step.  kInvalidFlow is all-ones, so validity
/// is one cmpeq; unsigned compares use the sign-bit-flip trick.
__attribute__((target("avx2"))) bool minplus_run_avx2(
    const RequestCount* src, RequestCount* dst, std::uint8_t* upd,
    std::size_t n, RequestCount add, RequestCount cap) {
  const __m256i vadd = _mm256_set1_epi64x(static_cast<long long>(add));
  const __m256i vinv = _mm256_set1_epi64x(-1);
  const __m256i vsign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i vcap_s =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(cap)), vsign);
  __m256i vany = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i sum = _mm256_add_epi64(s, vadd);
    const __m256i invalid = _mm256_cmpeq_epi64(s, vinv);
    const __m256i sum_s = _mm256_xor_si256(sum, vsign);
    const __m256i gt_cap = _mm256_cmpgt_epi64(sum_s, vcap_s);
    const __m256i lt_dst =
        _mm256_cmpgt_epi64(_mm256_xor_si256(d, vsign), sum_s);
    const __m256i ok =
        _mm256_andnot_si256(_mm256_or_si256(invalid, gt_cap), lt_dst);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_blendv_epi8(d, sum, ok));
    vany = _mm256_or_si256(vany, ok);
    const int m = _mm256_movemask_pd(_mm256_castsi256_pd(ok));
    upd[i] = static_cast<std::uint8_t>(m & 1);
    upd[i + 1] = static_cast<std::uint8_t>((m >> 1) & 1);
    upd[i + 2] = static_cast<std::uint8_t>((m >> 2) & 1);
    upd[i + 3] = static_cast<std::uint8_t>((m >> 3) & 1);
  }
  bool any = _mm256_testz_si256(vany, vany) == 0;
  for (; i < n; ++i) {
    const RequestCount f = src[i];
    const RequestCount sum = f + add;
    const unsigned ok = static_cast<unsigned>(f != kInvalidFlow) &
                        static_cast<unsigned>(sum <= cap) &
                        static_cast<unsigned>(sum < dst[i]);
    dst[i] = ok ? sum : dst[i];
    upd[i] = static_cast<std::uint8_t>(ok);
    any |= ok != 0;
  }
  return any;
}

#elif defined(TREEPLACE_KERNEL_NEON)

/// NEON: 2 lanes of u64 per step (aarch64 has native unsigned compares).
bool minplus_run_neon(const RequestCount* src, RequestCount* dst,
                      std::uint8_t* upd, std::size_t n, RequestCount add,
                      RequestCount cap) {
  const uint64x2_t vadd = vdupq_n_u64(add);
  const uint64x2_t vinv = vdupq_n_u64(~std::uint64_t{0});
  const uint64x2_t vcap = vdupq_n_u64(cap);
  uint64x2_t vany = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t s = vld1q_u64(src + i);
    const uint64x2_t d = vld1q_u64(dst + i);
    const uint64x2_t sum = vaddq_u64(s, vadd);
    const uint64x2_t invalid = vceqq_u64(s, vinv);
    const uint64x2_t le_cap = vcleq_u64(sum, vcap);
    const uint64x2_t lt_dst = vcltq_u64(sum, d);
    const uint64x2_t ok = vbicq_u64(vandq_u64(le_cap, lt_dst), invalid);
    vst1q_u64(dst + i, vbslq_u64(ok, sum, d));
    vany = vorrq_u64(vany, ok);
    upd[i] = static_cast<std::uint8_t>(vgetq_lane_u64(ok, 0) & 1);
    upd[i + 1] = static_cast<std::uint8_t>(vgetq_lane_u64(ok, 1) & 1);
  }
  bool any =
      (vgetq_lane_u64(vany, 0) | vgetq_lane_u64(vany, 1)) != 0;
  for (; i < n; ++i) {
    const RequestCount f = src[i];
    const RequestCount sum = f + add;
    const unsigned ok = static_cast<unsigned>(f != kInvalidFlow) &
                        static_cast<unsigned>(sum <= cap) &
                        static_cast<unsigned>(sum < dst[i]);
    dst[i] = ok ? sum : dst[i];
    upd[i] = static_cast<std::uint8_t>(ok);
    any |= ok != 0;
  }
  return any;
}

#endif  // TREEPLACE_KERNEL_*

RunFn pick_run_fn(bool simd) {
  if (!simd) return &minplus_run_branchy;
#if defined(TREEPLACE_KERNEL_X86)
  if (__builtin_cpu_supports("avx2")) return &minplus_run_avx2;
#elif defined(TREEPLACE_KERNEL_NEON)
  return &minplus_run_neon;
#endif
  return &minplus_run_portable;
}

// ---------------------------------------------------------------------------
// Sparse path

/// The scalar sparse loop over compacted operands — the reference the
/// whole layer is defined against.
std::uint64_t sparse_range_scalar(const EntryList& left, std::size_t lo,
                                  std::size_t hi, const EntryList& right,
                                  RequestCount cap, RequestCount* flow,
                                  Decision* dec) {
  const std::size_t nr = right.size();
  const RequestCount* rflow = right.flow.data();
  const std::uint64_t* rdot = right.dot.data();
  const std::uint32_t* rflat = right.flat.data();
  for (std::size_t i = lo; i < hi; ++i) {
    const RequestCount lf = left.flow[i];
    const std::uint64_t ldot = left.dot[i];
    const std::uint32_t lflat = left.flat[i];
    for (std::size_t j = 0; j < nr; ++j) {
      const RequestCount sum = lf + rflow[j];
      if (sum > cap) continue;
      const std::size_t t = static_cast<std::size_t>(ldot + rdot[j]);
      if (sum < flow[t]) {
        flow[t] = sum;
        dec[t] = Decision{lflat, rflat[j], -1};
      }
    }
  }
  return static_cast<std::uint64_t>(hi - lo) * nr;
}

#if defined(TREEPLACE_KERNEL_X86)

/// AVX2 sparse: the full per-pair predicate — feasibility cut AND the
/// strict-improvement test against the destination — runs 4 right entries
/// at a time.  Destination flows are fetched with a 64-bit gather, so a
/// pack where nothing improves (the common case on warm re-solves, where
/// most cells are already optimal) costs no scalar work at all.
///
/// Gathering before writing is sound because target indices within one
/// pack are distinct: compacted `dot` values are strictly increasing (the
/// output box covers each operand box per dimension, so the odometer in
/// compact_entries is strictly monotonic), hence the 4 lanes hit 4
/// different cells and no lane can observe a stale gathered value.
/// Surviving lanes are committed in ascending j, preserving the scalar
/// loop's first-occurrence tie-break — results stay bit-identical.
__attribute__((target("avx2"))) std::uint64_t sparse_range_avx2(
    const EntryList& left, std::size_t lo, std::size_t hi,
    const EntryList& right, RequestCount cap, RequestCount* flow,
    Decision* dec) {
  const std::size_t nr = right.size();
  const RequestCount* rflow = right.flow.data();
  const std::uint64_t* rdot = right.dot.data();
  const std::uint32_t* rflat = right.flat.data();
  const __m256i vsign = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  const __m256i vcap_s =
      _mm256_xor_si256(_mm256_set1_epi64x(static_cast<long long>(cap)), vsign);
  for (std::size_t i = lo; i < hi; ++i) {
    const RequestCount lf = left.flow[i];
    const std::uint64_t ldot = left.dot[i];
    const std::uint32_t lflat = left.flat[i];
    const __m256i vlf = _mm256_set1_epi64x(static_cast<long long>(lf));
    const __m256i vldot = _mm256_set1_epi64x(static_cast<long long>(ldot));
    std::size_t j = 0;
    for (; j + 4 <= nr; j += 4) {
      const __m256i rf =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rflow + j));
      const __m256i sum = _mm256_add_epi64(rf, vlf);
      const __m256i sum_s = _mm256_xor_si256(sum, vsign);
      const __m256i gt_cap = _mm256_cmpgt_epi64(sum_s, vcap_s);
      // Target cells are in-bounds even for cap-failing lanes (dots map
      // into the output box unconditionally), so a plain gather is safe.
      const __m256i rd =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rdot + j));
      const __m256i t = _mm256_add_epi64(rd, vldot);
      const __m256i dst = _mm256_i64gather_epi64(
          reinterpret_cast<const long long*>(flow), t, 8);
      const __m256i improves =
          _mm256_cmpgt_epi64(_mm256_xor_si256(dst, vsign), sum_s);
      const __m256i take = _mm256_andnot_si256(gt_cap, improves);
      int m = _mm256_movemask_pd(_mm256_castsi256_pd(take)) & 0xf;
      while (m != 0) {
        const int b = __builtin_ctz(static_cast<unsigned>(m));
        m &= m - 1;
        const std::size_t jj = j + static_cast<std::size_t>(b);
        const std::size_t tt = static_cast<std::size_t>(ldot + rdot[jj]);
        flow[tt] = lf + rflow[jj];
        dec[tt] = Decision{lflat, rflat[jj], -1};
      }
    }
    for (; j < nr; ++j) {
      const RequestCount sum = lf + rflow[j];
      if (sum > cap) continue;
      const std::size_t t = static_cast<std::size_t>(ldot + rdot[j]);
      if (sum < flow[t]) {
        flow[t] = sum;
        dec[t] = Decision{lflat, rflat[j], -1};
      }
    }
  }
  return static_cast<std::uint64_t>(hi - lo) * nr;
}

#endif  // TREEPLACE_KERNEL_X86

using SparseFn = std::uint64_t (*)(const EntryList&, std::size_t, std::size_t,
                                   const EntryList&, RequestCount,
                                   RequestCount*, Decision*);

SparseFn pick_sparse_fn(bool simd) {
#if defined(TREEPLACE_KERNEL_X86)
  if (simd && __builtin_cpu_supports("avx2")) return &sparse_range_avx2;
#else
  (void)simd;
#endif
  return &sparse_range_scalar;
}

// ---------------------------------------------------------------------------
// Dense path helpers

/// Precomputes, per contiguous row of the right operand (a full run of its
/// last dimension), the dot of the row's leading digits against the output
/// strides.  Output rows are contiguous too (the output's last-dimension
/// stride is 1 and covers the operand's), which is what makes the dense
/// kernel a straight-line sweep.
void compute_row_dots(const Box& rbox, const Box& obox, std::size_t rows,
                      JoinScratch& scratch) {
  scratch.row_dot.resize(rows);
  const std::size_t dims = rbox.dims();
  if (dims <= 1) {  // a single row at offset 0
    std::fill(scratch.row_dot.begin(), scratch.row_dot.end(), 0);
    return;
  }
  scratch.digits.assign(dims, 0);
  std::uint64_t dot = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    scratch.row_dot[r] = dot;
    // Odometer over the leading dims [0, dims - 1), last first.
    for (std::size_t d = dims - 1; d-- > 0;) {
      dot += obox.stride(d);
      if (++scratch.digits[d] <= rbox.bounds()[d]) break;
      dot -= static_cast<std::uint64_t>(rbox.bounds()[d] + 1) * obox.stride(d);
      scratch.digits[d] = 0;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// diff_tables

bool diff_tables(std::span<const RequestCount> old_flow,
                 std::span<const RequestCount> new_flow,
                 std::size_t max_changed, std::vector<std::uint32_t>& out) {
  TREEPLACE_DCHECK(old_flow.size() == new_flow.size());
  out.clear();
  const std::size_t n = old_flow.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (old_flow[i] != new_flow[i]) {
      if (out.size() >= max_changed) return false;
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// The lazy join

namespace {

/// Decodes the changed cells of one operand into a membership mask and
/// their output-box dot offsets.
void index_changed(const Box& box, const Box& obox,
                   std::span<const std::uint32_t> changed,
                   std::vector<std::uint8_t>& set,
                   std::vector<std::uint64_t>& dot_out,
                   std::vector<int>& digits) {
  set.assign(box.size(), 0);
  dot_out.resize(changed.size());
  const std::size_t dims = obox.dims();
  for (std::size_t ci = 0; ci < changed.size(); ++ci) {
    const std::uint32_t f = changed[ci];
    set[f] = 1;
    box.decode(f, digits);
    std::uint64_t dot = 0;
    for (std::size_t d = 0; d < dims; ++d) {
      dot += static_cast<std::uint64_t>(digits[d]) * obox.stride(d);
    }
    dot_out[ci] = dot;
  }
}

/// Attempts the lazy splice.  Returns true on completion (stats filled);
/// false when too many previous winners were invalidated, in which case
/// the wasted sweep work is reported via `stats.pairs` and the caller must
/// run the full join (out tables are reinitialized there).
bool lazy_join(const JoinInputs& in, const LazyJoin& lazy,
               std::span<RequestCount> out_flow, std::span<Decision> out_dec,
               JoinScratch& scratch, JoinStats& stats) {
  const Box& obox = *in.obox;
  const std::size_t osize = obox.size();
  const std::size_t dims = obox.dims();

  index_changed(*in.lbox, obox, lazy.changed_left, scratch.changed_set_left,
                scratch.changed_dot_left, scratch.digits);
  index_changed(*in.rbox, obox, lazy.changed_right, scratch.changed_set_right,
                scratch.changed_dot_right, scratch.digits);

  // Changed sweeps: accumulate the best changed-pair contribution per
  // reachable cell and mark reachability (cap-independent: a pair that
  // stopped clearing the cap still invalidates its old contribution).
  // Sweep A covers changed-left x every current right entry, sweep B every
  // current left entry x changed-right; together every now-valid pair with
  // a changed side.  Valid both-changed pairs are visited twice — min is
  // idempotent and ties break lexicographically, so the double visit is
  // harmless and the result stays the serial first-occurrence winner.
  std::fill(out_flow.begin(), out_flow.end(), kInvalidFlow);
  scratch.reach.assign(osize, 0);
  const auto consider = [&](std::uint32_t lflat, RequestCount lf,
                            std::uint32_t rflat, RequestCount rf,
                            std::size_t t) {
    const RequestCount sum = lf + rf;
    if (sum > in.cap) return;
    if (sum < out_flow[t]) {
      out_flow[t] = sum;
      out_dec[t] = Decision{lflat, rflat, -1};
    } else if (sum == out_flow[t]) {
      const Decision cd = out_dec[t];
      if (lflat < cd.left || (lflat == cd.left && rflat < cd.right)) {
        out_dec[t] = Decision{lflat, rflat, -1};
      }
    }
  };
  stats.pairs +=
      static_cast<std::uint64_t>(lazy.changed_left.size()) *
          scratch.right.size() +
      static_cast<std::uint64_t>(scratch.left.size()) *
          lazy.changed_right.size() +
      static_cast<std::uint64_t>(lazy.changed_left.size()) *
          lazy.changed_right.size();
  for (std::size_t ci = 0; ci < lazy.changed_left.size(); ++ci) {
    const std::uint32_t sflat = lazy.changed_left[ci];
    const RequestCount sval = in.lflow[sflat];
    const std::uint64_t sdot = scratch.changed_dot_left[ci];
    for (std::size_t j = 0; j < scratch.right.size(); ++j) {
      const std::size_t t =
          static_cast<std::size_t>(sdot + scratch.right.dot[j]);
      scratch.reach[t] = 1;
      if (sval == kInvalidFlow) continue;
      consider(sflat, sval, scratch.right.flat[j], scratch.right.flow[j], t);
    }
  }
  for (std::size_t j = 0; j < scratch.left.size(); ++j) {
    const RequestCount lf = scratch.left.flow[j];
    const std::uint64_t ldot = scratch.left.dot[j];
    const std::uint32_t lflat = scratch.left.flat[j];
    for (std::size_t ci = 0; ci < lazy.changed_right.size(); ++ci) {
      const std::size_t t =
          static_cast<std::size_t>(ldot + scratch.changed_dot_right[ci]);
      scratch.reach[t] = 1;
      const RequestCount sval = in.rflow[lazy.changed_right[ci]];
      if (sval == kInvalidFlow) continue;
      consider(lflat, lf, lazy.changed_right[ci], sval, t);
    }
  }
  // Sweep C: both-changed pairs where *both* cells became invalid appear
  // in neither entry list, so sweeps A/B never reach their output cells —
  // but the old winner there may be exactly such a pair, and an unreached
  // cell would splice it stale.  Reach-mark the full changed grid (values
  // for its valid pairs were already accumulated above).
  for (std::size_t ci = 0; ci < lazy.changed_left.size(); ++ci) {
    const std::uint64_t sdot = scratch.changed_dot_left[ci];
    for (std::size_t cj = 0; cj < lazy.changed_right.size(); ++cj) {
      scratch.reach[static_cast<std::size_t>(
          sdot + scratch.changed_dot_right[cj])] = 1;
    }
  }

  // Combine pass: splice unreachable cells from the snapshot; where the
  // previous winner survives, the unchanged contribution *is* the old
  // value, so the new cell is the lexicographically-first of {old winner,
  // best changed} — exactly the serial first-occurrence tie-break.  Cells
  // whose previous winner involved a changed cell on either side must be
  // re-minimized from scratch (rescue); too many of those and lazy loses,
  // so bail.
  scratch.rescue.clear();
  // Each rescue re-scans every left entry, so the cap must be relative to
  // the *right* entry count: |rescue| * |left| stays under 1/8 of the full
  // join's |left| * |right| pairs, or lazy cannot win and we bail.
  const std::size_t rescue_cap = scratch.right.size() / 8 + 16;
  for (std::size_t t = 0; t < osize; ++t) {
    if (scratch.reach[t] == 0) {
      out_flow[t] = lazy.old_flow[t];
      out_dec[t] = lazy.old_dec[t];
      ++stats.cells_skipped;
      continue;
    }
    const RequestCount old = lazy.old_flow[t];
    if (old == kInvalidFlow) continue;  // no unchanged contribution existed
    const Decision od = lazy.old_dec[t];
    if (scratch.changed_set_left[od.left] != 0 ||
        scratch.changed_set_right[od.right] != 0) {
      scratch.rescue.push_back(t);
      if (scratch.rescue.size() > rescue_cap) return false;
      continue;
    }
    const RequestCount cb = out_flow[t];
    if (old < cb) {
      out_flow[t] = old;
      out_dec[t] = od;
    } else if (old == cb) {
      const Decision cd = out_dec[t];
      if (od.left < cd.left || (od.left == cd.left && od.right < cd.right)) {
        out_dec[t] = od;
      }
    }
  }

  // Rescue pass: exact re-minimization of the invalidated cells, visiting
  // left entries in ascending flat order (the serial order; the right
  // index of each decomposition is unique per left entry).
  if (!scratch.rescue.empty()) {
    const Box& lbox = *in.lbox;
    const Box& rbox = *in.rbox;
    const EntryList& left = scratch.left;
    scratch.ldigits.resize(left.size() * dims);
    std::vector<int>& tdig = scratch.digits;
    for (std::size_t i = 0; i < left.size(); ++i) {
      lbox.decode(left.flat[i], tdig);
      std::copy(tdig.begin(), tdig.end(), scratch.ldigits.begin() +
                                              static_cast<std::ptrdiff_t>(
                                                  i * dims));
    }
    for (const std::size_t t : scratch.rescue) {
      obox.decode(t, tdig);
      RequestCount best = kInvalidFlow;
      Decision bd{};
      for (std::size_t i = 0; i < left.size(); ++i) {
        const int* ld = scratch.ldigits.data() + i * dims;
        std::size_t rflat = 0;
        bool feasible = true;
        for (std::size_t d = 0; d < dims; ++d) {
          const int rd = tdig[d] - ld[d];
          if (rd < 0 || rd > rbox.bounds()[d]) {
            feasible = false;
            break;
          }
          rflat += static_cast<std::size_t>(rd) * rbox.stride(d);
        }
        if (!feasible) continue;
        const RequestCount rf = in.rflow[rflat];
        if (rf == kInvalidFlow) continue;
        const RequestCount sum = left.flow[i] + rf;
        if (sum > in.cap) continue;
        if (sum < best) {
          best = sum;
          bd = Decision{left.flat[i], static_cast<std::uint32_t>(rflat), -1};
        }
      }
      out_flow[t] = best;
      out_dec[t] = bd;
    }
    stats.pairs += static_cast<std::uint64_t>(scratch.rescue.size()) *
                   left.size();
  }
  stats.lazy = true;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// join_slots

JoinStats join_slots(const JoinInputs& in, std::span<RequestCount> out_flow,
                     std::span<Decision> out_dec, ThreadPool* pool,
                     JoinScratch& scratch, const LazyJoin* lazy,
                     const KernelConfig& cfg) {
  const Box& lbox = *in.lbox;
  const Box& rbox = *in.rbox;
  const Box& obox = *in.obox;
  const std::size_t osize = obox.size();
  TREEPLACE_DCHECK(out_flow.size() == osize && out_dec.size() == osize);
  JoinStats stats;

  compact_entries(lbox, in.lflow, obox, scratch.left);

  // Path choice: count the right operand's valid cells (cheap linear scan)
  // and sweep it raw when occupancy is high — compaction then buys nothing
  // and the row sweep is branchless and contiguous.  The choice depends
  // only on table contents, never on the pool, so work counters stay
  // deterministic at any thread count.
  std::size_t right_valid = 0;
  for (const RequestCount f : in.rflow) {
    right_valid += static_cast<std::size_t>(f != kInvalidFlow);
  }
  bool dense;
  switch (cfg.path) {
    case KernelConfig::Path::kSparse:
      dense = false;
      break;
    case KernelConfig::Path::kDense:
      dense = true;
      break;
    default:
      dense = rbox.size() > 0 &&
              static_cast<double>(right_valid) >=
                  cfg.dense_occupancy * static_cast<double>(rbox.size());
  }
  if (!dense || lazy != nullptr) {
    compact_entries(rbox, in.rflow, obox, scratch.right);
  }

  // Lazy splice: worth it only when each dirty diff is well below its
  // operand's entry count (otherwise the changed sweeps approach a full
  // rebuild that also pays splice overhead).
  if (lazy != nullptr && cfg.lazy_max_changed > 0) {
    if (lazy->old_flow.size() == osize && lazy->old_dec.size() == osize &&
        static_cast<double>(lazy->changed_left.size()) <=
            cfg.lazy_max_changed * static_cast<double>(scratch.left.size()) &&
        static_cast<double>(lazy->changed_right.size()) <=
            cfg.lazy_max_changed * static_cast<double>(scratch.right.size())) {
      if (lazy_join(in, *lazy, out_flow, out_dec, scratch, stats)) {
        return stats;
      }
      // Fall through to a full rebuild; the sweep work already spent stays
      // counted in stats.pairs, but no cell ends up spliced.
      stats.cells_skipped = 0;
    }
  }

  std::fill(out_flow.begin(), out_flow.end(), kInvalidFlow);
  const std::size_t nl = scratch.left.size();

  // Dense geometry: rows are full runs of the right operand's last
  // dimension; each maps to a contiguous run of the output.
  std::size_t row_len = 1;
  std::size_t rows = 0;
  if (dense) {
    row_len = rbox.dims() == 0
                  ? rbox.size()
                  : static_cast<std::size_t>(rbox.bounds().back()) + 1;
    rows = rbox.size() / row_len;
    compute_row_dots(rbox, obox, rows, scratch);
  }
  const std::uint64_t per_left_work =
      dense ? static_cast<std::uint64_t>(rbox.size())
            : static_cast<std::uint64_t>(scratch.right.size());

  const RunFn run = pick_run_fn(cfg.simd);
  const SparseFn sparse = pick_sparse_fn(cfg.simd);
  const RequestCount* rraw = in.rflow.data();

  const auto range = [&](std::size_t lo, std::size_t hi, RequestCount* flow,
                         Decision* dec, std::size_t shard) -> std::uint64_t {
    if (!dense) {
      return sparse(scratch.left, lo, hi, scratch.right, in.cap, flow, dec);
    }
    std::uint8_t* upd = scratch.shard_upd[shard].data();
    const EntryList& left = scratch.left;
    for (std::size_t i = lo; i < hi; ++i) {
      const RequestCount lf = left.flow[i];
      const std::uint64_t ldot = left.dot[i];
      const std::uint32_t lflat = left.flat[i];
      for (std::size_t r = 0; r < rows; ++r) {
        const std::size_t base = static_cast<std::size_t>(ldot) +
                                 static_cast<std::size_t>(scratch.row_dot[r]);
        if (run(rraw + r * row_len, flow + base, upd, row_len, lf, in.cap)) {
          Decision* dd = dec + base;
          const std::uint32_t rbase = static_cast<std::uint32_t>(r * row_len);
          for (std::size_t j = 0; j < row_len; ++j) {
            if (upd[j] != 0) {
              dd[j] = Decision{lflat, rbase + static_cast<std::uint32_t>(j),
                               -1};
            }
          }
        }
      }
    }
    return static_cast<std::uint64_t>(hi - lo) * rbox.size();
  };

  const bool shard = pool != nullptr && nl >= 2 * pool->size() &&
                     static_cast<std::uint64_t>(nl) * per_left_work >=
                         kMinShardPairs;
  const std::size_t num_shards = shard ? pool->size() : 1;
  if (scratch.shard_upd.size() < num_shards) {
    scratch.shard_upd.resize(num_shards);
  }
  if (dense) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (scratch.shard_upd[s].size() < row_len) {
        scratch.shard_upd[s].resize(row_len);
      }
    }
  }

  if (!shard) {
    stats.pairs += range(0, nl, out_flow.data(), out_dec.data(), 0);
    return stats;
  }

  // Shard over the left entries; per-shard tables are reduced back in
  // left-index order replacing only on strictly smaller flow, which
  // reproduces the serial first-occurrence tie-break bit for bit.
  if (scratch.shard_flow.size() < num_shards) {
    scratch.shard_flow.resize(num_shards);
    scratch.shard_dec.resize(num_shards);
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    scratch.shard_flow[s].assign(osize, kInvalidFlow);
    scratch.shard_dec[s].resize(osize);
  }
  const auto pairs_per_shard =
      parallel_map(*pool, num_shards, [&](std::size_t s) {
        const std::size_t lo = nl * s / num_shards;
        const std::size_t hi = nl * (s + 1) / num_shards;
        return range(lo, hi, scratch.shard_flow[s].data(),
                     scratch.shard_dec[s].data(), s);
      });
  for (std::size_t s = 0; s < num_shards; ++s) {
    stats.pairs += pairs_per_shard[s];
    const std::vector<RequestCount>& sf = scratch.shard_flow[s];
    const std::vector<Decision>& sd = scratch.shard_dec[s];
    for (std::size_t t = 0; t < osize; ++t) {
      if (sf[t] < out_flow[t]) {
        out_flow[t] = sf[t];
        out_dec[t] = sd[t];
      }
    }
  }
  return stats;
}

}  // namespace treeplace::dp
