#include "core/dp_snapshot.h"

#include <utility>
#include <vector>

namespace treeplace::dp {

namespace {

// Sanity caps for read-side length prefixes: DP tables are capped at 2^32
// cells (core/dp_util.h), per-node slot counts at 2k-1 merge slots.  A
// prefix beyond these is corruption, not a big instance.
constexpr std::uint64_t kMaxCells = std::uint64_t{1} << 32;
constexpr std::uint32_t kMaxSlots = 1u << 24;

// Flow tables are serialized as PackedTable encodings (dead-cell runs
// elided, cells at the narrowest width that holds the table's maximum) —
// the on-disk twin of in-memory session compaction.  pack() is
// deterministic, so a packed in-memory state (written verbatim) and an
// unpacked one (packed on the fly) serialize to identical bytes.
void write_packed_table(binio::Writer& w, const PackedTable& p) {
  w.u64(p.cells());
  w.u8(p.width());
  w.u32(static_cast<std::uint32_t>(p.runs().size()));
  for (const PackedTable::Run& run : p.runs()) {
    w.u32(run.start);
    w.u32(run.length);
  }
  w.raw(p.payload().data(), p.payload().size());
}

PackedTable read_packed_table(binio::Reader& r) {
  // Bound every length prefix by both the DP cell cap and the bytes left
  // in the file, so a corrupted prefix fails as truncation before it can
  // allocate; from_parts() then validates the run structure itself.
  const std::uint64_t cells = r.u64();
  TREEPLACE_CHECK_MSG(cells <= kMaxCells, "snapshot flow table too large");
  const std::uint8_t width = r.u8();
  const std::uint32_t num_runs = r.u32();
  TREEPLACE_CHECK_MSG(num_runs <= cells &&
                          num_runs <= r.remaining_bytes() / 8,
                      "snapshot flow table runs bogus");
  std::vector<PackedTable::Run> runs(num_runs);
  std::uint64_t covered = 0;
  for (PackedTable::Run& run : runs) {
    run.start = r.u32();
    run.length = r.u32();
    covered += run.length;
  }
  TREEPLACE_CHECK_MSG(width != 0 && covered <= cells &&
                          covered * width <= r.remaining_bytes(),
                      "snapshot flow table payload bogus");
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(covered * width));
  r.raw(payload.data(), payload.size());
  return PackedTable::from_parts(cells, width, std::move(runs),
                                 std::move(payload));
}

void write_flow_table(binio::Writer& w, const ArenaTable<RequestCount>& t) {
  write_packed_table(w, PackedTable::pack(t.span()));
}

void read_flow_table(binio::Reader& r, TableArena& arena,
                     ArenaTable<RequestCount>& t) {
  const PackedTable p = read_packed_table(r);
  t.resize_uninit(arena, static_cast<std::size_t>(p.cells()));
  p.unpack(t.span());
}

// Decision tables travel in the PackedDecisions narrow encoding (operand
// flats at 1/2/4 bytes instead of padded u32 pairs); like flow tables,
// deterministic pack keeps the bytes identical whether the in-memory
// state was packed or not.
void write_packed_decisions(binio::Writer& w, const PackedDecisions& p) {
  w.u64(p.cells());
  w.u8(p.elided() ? 1 : 0);
  w.u8(p.left_width());
  w.u8(p.right_width());
  w.u32(static_cast<std::uint32_t>(p.runs().size()));
  for (const PackedTable::Run& run : p.runs()) {
    w.u32(run.start);
    w.u32(run.length);
  }
  w.raw(p.payload().data(), p.payload().size());
}

PackedDecisions read_packed_decisions(binio::Reader& r) {
  const std::uint64_t cells = r.u64();
  TREEPLACE_CHECK_MSG(cells <= kMaxCells,
                      "snapshot decision table too large");
  const std::uint8_t elided = r.u8();
  const std::uint8_t left_width = r.u8();
  const std::uint8_t right_width = r.u8();
  const std::uint32_t num_runs = r.u32();
  TREEPLACE_CHECK_MSG(num_runs <= cells &&
                          num_runs <= r.remaining_bytes() / 8,
                      "snapshot decision table runs bogus");
  std::vector<PackedTable::Run> runs(num_runs);
  std::uint64_t covered = 0;
  for (PackedTable::Run& run : runs) {
    run.start = r.u32();
    run.length = r.u32();
    covered += run.length;
  }
  if (elided == 0) covered = cells;
  const std::uint64_t bytes =
      covered * (left_width + right_width + std::uint64_t{1});
  TREEPLACE_CHECK_MSG(covered <= cells && bytes <= r.remaining_bytes(),
                      "snapshot decision table payload bogus");
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(bytes));
  r.raw(payload.data(), payload.size());
  return PackedDecisions::from_parts(cells, elided, left_width, right_width,
                                     std::move(runs), std::move(payload));
}

/// `flow` is the slot's companion flow table when still resident (dead
/// cells elide behind its validity runs), nullptr otherwise — mirroring
/// the condition NodeState::pack() uses, so packed and unpacked states
/// keep serializing identically.
void write_decision_table(binio::Writer& w, const ArenaTable<Decision>& t,
                          const ArenaTable<RequestCount>* flow) {
  if (flow != nullptr && flow->size() == t.size()) {
    write_packed_decisions(w, PackedDecisions::pack(t.span(), flow->span()));
  } else {
    write_packed_decisions(w, PackedDecisions::pack(t.span()));
  }
}

void read_decision_table(binio::Reader& r, TableArena& arena,
                         ArenaTable<Decision>& t) {
  const PackedDecisions p = read_packed_decisions(r);
  t.resize_uninit(arena, static_cast<std::size_t>(p.cells()));
  p.unpack(t.span());
}

/// Writes one state's decision tables, pairing each with its companion
/// slot flow table for dead-cell elision.
template <typename NodeState>
void write_decision_tables(binio::Writer& w, const NodeState& s) {
  w.u32(static_cast<std::uint32_t>(s.slot_decisions.size()));
  if (s.packed) {
    for (const auto& p : s.packed_slot_decisions) write_packed_decisions(w, p);
    return;
  }
  for (std::size_t k = 0; k < s.slot_decisions.size(); ++k) {
    write_decision_table(w, s.slot_decisions[k],
                         k < s.slot_flows.size() ? &s.slot_flows[k] : nullptr);
  }
}

void write_int_vec(binio::Writer& w, const std::vector<int>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const int x : v) w.i32(x);
}

std::vector<int> read_int_vec(binio::Reader& r) {
  const std::uint32_t n = r.u32();
  TREEPLACE_CHECK_MSG(n <= kMaxSlots && n <= r.remaining_bytes() / 4,
                      "snapshot int vector too large");
  std::vector<int> v(n);
  for (std::uint32_t i = 0; i < n; ++i) v[i] = r.i32();
  return v;
}

void write_box(binio::Writer& w, const Box& box) {
  write_int_vec(w, box.bounds());
}

Box read_box(binio::Reader& r) { return Box(read_int_vec(r)); }

template <typename T, typename ReadOne>
void read_table_vec(binio::Reader& r, TableArena& arena,
                    std::vector<ArenaTable<T>>& out, const ReadOne& read_one) {
  const std::uint32_t n = r.u32();
  TREEPLACE_CHECK_MSG(n <= kMaxSlots, "snapshot slot count too large");
  out.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) read_one(r, arena, out[i]);
}

void write_state(binio::Writer& w, const PowerNodeState& s) {
  write_box(w, s.box);
  // A packed state's encodings are written verbatim (its arena tables are
  // empty handles); pack() keeps slot_flows sized, so the counts agree.
  if (s.packed) {
    write_packed_table(w, s.packed_flow);
  } else {
    write_flow_table(w, s.flow);
  }
  write_int_vec(w, s.incl_bounds);
  write_decision_tables(w, s);
  w.u32(static_cast<std::uint32_t>(s.slot_boxes.size()));
  for (const Box& b : s.slot_boxes) write_box(w, b);
  w.u32(static_cast<std::uint32_t>(s.slot_flows.size()));
  if (s.packed) {
    for (const auto& p : s.packed_slot_flows) write_packed_table(w, p);
  } else {
    for (const auto& t : s.slot_flows) write_flow_table(w, t);
  }
}

void read_state(binio::Reader& r, TableArena& arena, PowerNodeState& s) {
  s.box = read_box(r);
  read_flow_table(r, arena, s.flow);
  s.incl_bounds = read_int_vec(r);
  read_table_vec(r, arena, s.slot_decisions, read_decision_table);
  const std::uint32_t boxes = r.u32();
  TREEPLACE_CHECK_MSG(boxes <= kMaxSlots, "snapshot slot count too large");
  s.slot_boxes.resize(boxes);
  for (std::uint32_t i = 0; i < boxes; ++i) s.slot_boxes[i] = read_box(r);
  read_table_vec(r, arena, s.slot_flows, read_flow_table);
}

void write_state(binio::Writer& w, const MinCostNodeState& s) {
  w.i32(s.eb);
  w.i32(s.nb);
  if (s.packed) {
    write_packed_table(w, s.packed_flow);
  } else {
    write_flow_table(w, s.flow);
  }
  write_decision_tables(w, s);
  write_int_vec(w, s.slot_eb);
  write_int_vec(w, s.slot_nb);
  w.u32(static_cast<std::uint32_t>(s.slot_flows.size()));
  if (s.packed) {
    for (const auto& p : s.packed_slot_flows) write_packed_table(w, p);
  } else {
    for (const auto& t : s.slot_flows) write_flow_table(w, t);
  }
}

void read_state(binio::Reader& r, TableArena& arena, MinCostNodeState& s) {
  s.eb = r.i32();
  s.nb = r.i32();
  read_flow_table(r, arena, s.flow);
  read_table_vec(r, arena, s.slot_decisions, read_decision_table);
  s.slot_eb = read_int_vec(r);
  s.slot_nb = read_int_vec(r);
  read_table_vec(r, arena, s.slot_flows, read_flow_table);
}

template <typename NodeState>
void save_cache_impl(binio::Writer& w, const SubtreeCache<NodeState>& cache) {
  w.u32(static_cast<std::uint32_t>(cache.params().size()));
  for (const std::uint64_t p : cache.params()) w.u64(p);
  w.u64(cache.size());
  for (std::size_t i = 0; i < cache.size(); ++i) {
    const NodeSignature& sig = cache.signature(i);
    w.u64(sig.client_mass);
    w.i32(sig.original_mode);
    w.u8(cache.valid(i) ? 1 : 0);
    w.u8(cache.resumable(i) ? 1 : 0);
    w.u64(cache.dirty_count(i));
    write_state(w, cache.state(i));
  }
  w.u8(cache.last_touched_known() ? 1 : 0);
  w.u64(cache.last_touched().size());
  for (const NodeId id : cache.last_touched()) w.i32(id);
}

template <typename NodeState>
void load_cache_impl(binio::Reader& r, const Topology* topo,
                     SubtreeCache<NodeState>& cache) {
  const std::uint32_t num_params = r.u32();
  TREEPLACE_CHECK_MSG(num_params <= kMaxSlots, "snapshot params too large");
  std::vector<std::uint64_t> params(num_params);
  for (std::uint32_t i = 0; i < num_params; ++i) params[i] = r.u64();
  cache.attach(topo, std::move(params));
  const std::uint64_t n = r.u64();
  TREEPLACE_CHECK_MSG(n == cache.size(),
                      "snapshot node count " << n << " != topology's "
                                             << cache.size());
  for (std::size_t i = 0; i < cache.size(); ++i) {
    NodeSignature sig;
    sig.client_mass = r.u64();
    sig.original_mode = r.i32();
    const bool valid = r.u8() != 0;
    const bool resumable = r.u8() != 0;
    const std::uint64_t dirty_count = r.u64();
    read_state(r, cache.arena(), cache.state(i));
    cache.restore_entry(i, sig, valid, resumable, dirty_count);
  }
  const bool known = r.u8() != 0;
  const std::uint64_t touched = r.u64();
  TREEPLACE_CHECK_MSG(touched <= cache.size(),
                      "snapshot touched set larger than the tree");
  std::vector<NodeId> last_touched(static_cast<std::size_t>(touched));
  for (NodeId& id : last_touched) {
    id = r.i32();
    TREEPLACE_CHECK_MSG(topo->valid_id(id) && topo->is_internal(id),
                        "snapshot touched id out of range");
  }
  cache.set_last_touched(std::move(last_touched), known);
}

}  // namespace

void save_cache(binio::Writer& w, const PowerSubtreeCache& cache) {
  save_cache_impl(w, cache);
}
void save_cache(binio::Writer& w, const MinCostSubtreeCache& cache) {
  save_cache_impl(w, cache);
}
void load_cache(binio::Reader& r, const Topology* topo,
                PowerSubtreeCache& cache) {
  load_cache_impl(r, topo, cache);
}
void load_cache(binio::Reader& r, const Topology* topo,
                MinCostSubtreeCache& cache) {
  load_cache_impl(r, topo, cache);
}

}  // namespace treeplace::dp
