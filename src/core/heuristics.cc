#include "core/heuristics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace treeplace {

namespace {

/// True when `candidate` is a valid single-mode placement at capacity W.
bool valid_at_capacity(const Topology& topo, const Scenario& scen,
                       const Placement& candidate, RequestCount capacity) {
  const FlowResult flows = compute_flows(topo, scen, candidate);
  if (flows.unserved > 0) return false;
  for (NodeId node : candidate.nodes()) {
    if (flows.load(topo, node) > capacity) return false;
  }
  return true;
}

}  // namespace

GreedyResult solve_greedy_prefer_pre(const Topology& topo,
                                     const Scenario& scen,
                                     RequestCount capacity) {
  GreedyResult result;
  std::vector<RequestCount> outflow(topo.num_internal(), 0);
  std::vector<char> is_server(topo.num_internal(), 0);

  for (NodeId j : topo.internal_post_order()) {
    RequestCount inflow = scen.client_mass(j);
    std::vector<NodeId> forwarding;
    for (NodeId c : topo.internal_children(j)) {
      const std::size_t ci = topo.internal_index(c);
      inflow += outflow[ci];
      if (outflow[ci] > 0) forwarding.push_back(c);
    }
    while (inflow > capacity) {
      NodeId best = kNoNode;
      RequestCount best_flow = 0;
      for (NodeId c : forwarding) {
        const std::size_t ci = topo.internal_index(c);
        if (is_server[ci]) continue;
        const RequestCount f = outflow[ci];
        if (best == kNoNode || f > best_flow) {
          best = c;
          best_flow = f;
        } else if (f == best_flow) {
          // Tie: prefer a pre-existing child, then the smaller id.
          const bool best_pre = scen.pre_existing(best);
          const bool c_pre = scen.pre_existing(c);
          if ((c_pre && !best_pre) || (c_pre == best_pre && c < best)) {
            best = c;
          }
        }
      }
      if (best == kNoNode) return result;  // local client mass exceeds W
      is_server[topo.internal_index(best)] = 1;
      inflow -= best_flow;
    }
    outflow[topo.internal_index(j)] = inflow;
  }

  const std::size_t root_index = topo.internal_index(topo.root());
  if (outflow[root_index] > 0) is_server[root_index] = 1;

  result.feasible = true;
  for (NodeId j : topo.internal_ids()) {
    if (is_server[topo.internal_index(j)]) result.placement.add(j, 0);
  }
  return result;
}

LocalSearchStats improve_reuse(const Topology& topo, const Scenario& scen,
                               RequestCount capacity, const CostModel& costs,
                               Placement& placement, std::size_t max_moves) {
  TREEPLACE_CHECK(costs.num_modes() == 1);
  LocalSearchStats stats;
  double current_cost = evaluate_cost(topo, scen, placement, costs).cost;

  bool improved = true;
  while (improved && stats.iterations < max_moves) {
    improved = false;
    // Candidate swaps: drop a created server, try every idle pre-existing
    // node in its place.
    const std::vector<NodeId> servers = placement.nodes();
    for (NodeId u : servers) {
      if (scen.pre_existing(u)) continue;  // only created servers move
      for (NodeId v : scen.pre_existing_nodes()) {
        if (placement.contains(v)) continue;
        ++stats.evaluated;
        Placement candidate = placement;
        candidate.remove(u);
        candidate.add(v, 0);
        if (!valid_at_capacity(topo, scen, candidate, capacity)) continue;
        const double cost = evaluate_cost(topo, scen, candidate, costs).cost;
        if (cost < current_cost - 1e-12) {
          placement = std::move(candidate);
          current_cost = cost;
          ++stats.iterations;
          improved = true;
          break;
        }
      }
      if (improved) break;
    }
  }
  return stats;
}

LocalSearchStats improve_power(const Topology& topo, const Scenario& scen,
                               const ModeSet& modes, const CostModel& costs,
                               double cost_bound, Placement& placement,
                               std::size_t max_moves) {
  LocalSearchStats stats;

  const auto score = [&](Placement& candidate) -> double {
    // Returns the candidate's power after mode minimization, or infinity
    // when invalid / over budget.
    const FlowResult flows = compute_flows(topo, scen, candidate);
    if (flows.unserved > 0) return std::numeric_limits<double>::infinity();
    for (NodeId node : candidate.nodes()) {
      const int m = modes.mode_for_load(flows.load(topo, node));
      if (m < 0) return std::numeric_limits<double>::infinity();
      candidate.set_mode(node, m);
    }
    if (evaluate_cost(topo, scen, candidate, costs).cost > cost_bound + 1e-9) {
      return std::numeric_limits<double>::infinity();
    }
    return total_power(candidate, modes);
  };

  double current_power = score(placement);
  TREEPLACE_CHECK_MSG(std::isfinite(current_power),
                      "improve_power requires a valid in-budget start");

  bool improved = true;
  while (improved && stats.iterations < max_moves) {
    improved = false;
    std::vector<Placement> moves;
    const std::vector<NodeId> servers = placement.nodes();
    // Drop moves.
    for (NodeId u : servers) {
      Placement c = placement;
      c.remove(u);
      moves.push_back(std::move(c));
    }
    // Move to parent / internal children.
    for (NodeId u : servers) {
      const NodeId p = topo.parent(u);
      if (p != kNoNode && !placement.contains(p)) {
        Placement c = placement;
        c.remove(u);
        c.add(p, 0);
        moves.push_back(std::move(c));
      }
      for (NodeId child : topo.internal_children(u)) {
        if (placement.contains(child)) continue;
        Placement c = placement;
        c.remove(u);
        c.add(child, 0);
        moves.push_back(std::move(c));
      }
    }
    // Add moves (splitting load can reach lower modes).
    for (NodeId v : topo.internal_ids()) {
      if (placement.contains(v)) continue;
      Placement c = placement;
      c.add(v, 0);
      moves.push_back(std::move(c));
    }
    for (Placement& candidate : moves) {
      ++stats.evaluated;
      const double power = score(candidate);
      if (power < current_power - 1e-12) {
        placement = std::move(candidate);
        current_power = power;
        ++stats.iterations;
        improved = true;
        break;
      }
    }
  }
  return stats;
}

}  // namespace treeplace
