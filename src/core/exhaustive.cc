#include "core/exhaustive.h"

#include <algorithm>
#include <cmath>

namespace treeplace {

namespace {

/// Invokes fn(placement) for every subset of internal nodes (modes all 0).
template <typename Fn>
void for_each_subset(const Tree& tree, Fn&& fn) {
  const auto& internals = tree.internal_ids();
  const std::size_t n = internals.size();
  TREEPLACE_CHECK_MSG(n <= kExhaustiveMaxInternal,
                      "exhaustive solver limited to "
                          << kExhaustiveMaxInternal << " internal nodes, got "
                          << n);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Placement p;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) p.add(internals[i], 0);
    }
    fn(std::move(p));
  }
}

}  // namespace

std::optional<int> exhaustive_min_count(const Tree& tree,
                                        RequestCount capacity) {
  const ModeSet modes = ModeSet::single(capacity);
  std::optional<int> best;
  for_each_subset(tree, [&](Placement p) {
    if (!validate(tree, p, modes).valid) return;
    const int count = static_cast<int>(p.size());
    if (!best || count < *best) best = count;
  });
  return best;
}

std::optional<ExhaustiveCostSolution> exhaustive_min_cost(
    const Tree& tree, RequestCount capacity, const CostModel& costs) {
  TREEPLACE_CHECK(costs.num_modes() == 1);
  const ModeSet modes = ModeSet::single(capacity);
  std::optional<ExhaustiveCostSolution> best;
  for_each_subset(tree, [&](Placement p) {
    if (!validate(tree, p, modes).valid) return;
    CostBreakdown b = evaluate_cost(tree, p, costs);
    if (!best || b.cost < best->breakdown.cost - 1e-12) {
      best = ExhaustiveCostSolution{std::move(p), b};
    }
  });
  return best;
}

std::vector<CostPowerPoint> pareto_frontier(
    std::vector<CostPowerPoint> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const CostPowerPoint& a, const CostPowerPoint& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.power < b.power;
            });
  std::vector<CostPowerPoint> frontier;
  constexpr double kEps = 1e-9;
  for (const CostPowerPoint& c : candidates) {
    if (frontier.empty() || c.power < frontier.back().power - kEps) {
      if (!frontier.empty() &&
          std::fabs(c.cost - frontier.back().cost) <= kEps) {
        frontier.back() = c;  // same cost, strictly better power
      } else {
        frontier.push_back(c);
      }
    }
  }
  return frontier;
}

std::vector<CostPowerPoint> exhaustive_cost_power_frontier(
    const Tree& tree, const ModeSet& modes, const CostModel& costs) {
  TREEPLACE_CHECK(costs.num_modes() == modes.count());
  std::vector<CostPowerPoint> candidates;
  for_each_subset(tree, [&](Placement p) {
    // Feasibility at top mode first (loads are mode-independent).
    const FlowResult flows = compute_flows(tree, p);
    if (flows.unserved > 0) return;
    std::vector<int> min_mode(p.size());
    for (std::size_t i = 0; i < p.nodes().size(); ++i) {
      const int m = modes.mode_for_load(flows.load(tree, p.nodes()[i]));
      if (m < 0) return;  // overloaded even at W_M
      min_mode[i] = m;
    }
    // Enumerate configured modes >= minimal per server (odometer).
    std::vector<int> mode = min_mode;
    for (;;) {
      Placement configured;
      for (std::size_t i = 0; i < p.nodes().size(); ++i) {
        configured.add(p.nodes()[i], mode[i]);
      }
      candidates.push_back(
          CostPowerPoint{evaluate_cost(tree, configured, costs).cost,
                         total_power(configured, modes)});
      std::size_t d = p.size();
      while (d-- > 0) {
        if (++mode[d] < modes.count()) break;
        mode[d] = min_mode[d];
        if (d == 0) return;  // odometer wrapped completely
      }
      if (p.size() == 0) return;  // empty placement: single candidate
    }
  });
  return pareto_frontier(std::move(candidates));
}

std::optional<double> exhaustive_min_power(const Tree& tree,
                                           const ModeSet& modes) {
  // With cost ignored, only minimal modes matter (power grows with mode).
  std::optional<double> best;
  for_each_subset(tree, [&](Placement p) {
    const FlowResult flows = compute_flows(tree, p);
    if (flows.unserved > 0) return;
    double power = 0.0;
    for (NodeId node : p.nodes()) {
      const int m = modes.mode_for_load(flows.load(tree, node));
      if (m < 0) return;
      power += modes.power(m);
    }
    if (!best || power < *best - 1e-12) best = power;
  });
  return best;
}

}  // namespace treeplace
