#include "core/exhaustive.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

namespace treeplace {

namespace {

/// Invokes fn(placement) for every subset of internal nodes (modes all 0).
/// A bool-returning fn stops the enumeration by returning true.
template <typename Fn>
void for_each_subset(const Topology& topo, Fn&& fn) {
  const auto& internals = topo.internal_ids();
  const std::size_t n = internals.size();
  TREEPLACE_CHECK_MSG(n <= kExhaustiveMaxInternal,
                      "exhaustive solver limited to "
                          << kExhaustiveMaxInternal << " internal nodes, got "
                          << n);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    Placement p;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) p.add(internals[i], 0);
    }
    if constexpr (std::is_same_v<std::invoke_result_t<Fn&, Placement>,
                                 bool>) {
      if (fn(std::move(p))) return;
    } else {
      fn(std::move(p));
    }
  }
}

/// Invokes fn(configured) for every valid placement: every subset, every
/// per-server mode assignment from the minimal feasible one upward.  This
/// is the candidate enumeration both frontier oracles share; fn returning
/// true stops the whole enumeration.
template <typename Fn>
void for_each_configured(const Topology& topo, const Scenario& scen,
                         const ModeSet& modes, Fn&& fn) {
  for_each_subset(topo, [&](Placement p) -> bool {
    // Feasibility at top mode first (loads are mode-independent).
    const FlowResult flows = compute_flows(topo, scen, p);
    if (flows.unserved > 0) return false;
    std::vector<int> min_mode(p.size());
    for (std::size_t i = 0; i < p.nodes().size(); ++i) {
      const int m = modes.mode_for_load(flows.load(topo, p.nodes()[i]));
      if (m < 0) return false;  // overloaded even at W_M
      min_mode[i] = m;
    }
    // Enumerate configured modes >= minimal per server (odometer).
    std::vector<int> mode = min_mode;
    for (;;) {
      Placement configured;
      for (std::size_t i = 0; i < p.nodes().size(); ++i) {
        configured.add(p.nodes()[i], mode[i]);
      }
      if (fn(std::move(configured))) return true;  // caller is done
      std::size_t d = p.size();
      while (d-- > 0) {
        if (++mode[d] < modes.count()) break;
        mode[d] = min_mode[d];
        if (d == 0) return false;  // odometer wrapped completely
      }
      if (p.size() == 0) return false;  // empty placement: single candidate
    }
  });
}

}  // namespace

std::optional<int> exhaustive_min_count(const Topology& topo,
                                        const Scenario& scen,
                                        RequestCount capacity) {
  const ModeSet modes = ModeSet::single(capacity);
  std::optional<int> best;
  for_each_subset(topo, [&](Placement p) {
    if (!validate(topo, scen, p, modes).valid) return;
    const int count = static_cast<int>(p.size());
    if (!best || count < *best) best = count;
  });
  return best;
}

std::optional<ExhaustiveCostSolution> exhaustive_min_cost(
    const Topology& topo, const Scenario& scen, RequestCount capacity,
    const CostModel& costs) {
  TREEPLACE_CHECK(costs.num_modes() == 1);
  const ModeSet modes = ModeSet::single(capacity);
  std::optional<ExhaustiveCostSolution> best;
  for_each_subset(topo, [&](Placement p) {
    if (!validate(topo, scen, p, modes).valid) return;
    CostBreakdown b = evaluate_cost(topo, scen, p, costs);
    if (!best || b.cost < best->breakdown.cost - 1e-12) {
      best = ExhaustiveCostSolution{std::move(p), b};
    }
  });
  return best;
}

std::vector<CostPowerPoint> pareto_frontier(
    std::vector<CostPowerPoint> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const CostPowerPoint& a, const CostPowerPoint& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.power < b.power;
            });
  std::vector<CostPowerPoint> frontier;
  constexpr double kEps = 1e-9;
  for (const CostPowerPoint& c : candidates) {
    if (frontier.empty() || c.power < frontier.back().power - kEps) {
      if (!frontier.empty() &&
          std::fabs(c.cost - frontier.back().cost) <= kEps) {
        frontier.back() = c;  // same cost, strictly better power
      } else {
        frontier.push_back(c);
      }
    }
  }
  return frontier;
}

std::vector<CostPowerPoint> exhaustive_cost_power_frontier(
    const Topology& topo, const Scenario& scen, const ModeSet& modes,
    const CostModel& costs) {
  TREEPLACE_CHECK(costs.num_modes() == modes.count());
  std::vector<CostPowerPoint> candidates;
  for_each_configured(topo, scen, modes, [&](Placement configured) {
    candidates.push_back(
        CostPowerPoint{evaluate_cost(topo, scen, configured, costs).cost,
                       total_power(configured, modes)});
    return false;  // enumerate everything
  });
  return pareto_frontier(std::move(candidates));
}

std::vector<ExhaustiveParetoPoint> exhaustive_cost_power_frontier_placements(
    const Topology& topo, const Scenario& scen, const ModeSet& modes,
    const CostModel& costs) {
  // Pass 1: the value-only frontier (identical code path, so the points are
  // bit-identical to exhaustive_cost_power_frontier()).
  const std::vector<CostPowerPoint> points =
      exhaustive_cost_power_frontier(topo, scen, modes, costs);
  std::vector<ExhaustiveParetoPoint> out;
  out.reserve(points.size());
  for (const CostPowerPoint& p : points) {
    out.push_back(ExhaustiveParetoPoint{p.cost, p.power, {}});
  }
  if (out.empty()) return out;

  // Pass 2: re-enumerate until every frontier point has a witness placement
  // matching its exact (cost, power).  Keeps memory at O(frontier) instead
  // of attaching a placement to each of the up-to-3^N candidates.
  std::vector<char> matched(out.size(), 0);
  std::size_t missing = out.size();
  constexpr double kEps = 1e-9;
  for_each_configured(topo, scen, modes, [&](Placement configured) {
    if (missing == 0) return true;  // every point already has a witness
    const double cost = evaluate_cost(topo, scen, configured, costs).cost;
    const double power = total_power(configured, modes);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (matched[i]) continue;
      if (std::fabs(cost - out[i].cost) <= kEps &&
          std::fabs(power - out[i].power) <= kEps) {
        out[i].placement = std::move(configured);
        matched[i] = 1;
        --missing;
        break;
      }
    }
    return missing == 0;
  });
  TREEPLACE_CHECK_MSG(missing == 0,
                      "no witness placement found for " << missing
                                                        << " frontier points");
  return out;
}

std::optional<double> exhaustive_min_power(const Topology& topo,
                                           const Scenario& scen,
                                           const ModeSet& modes) {
  // With cost ignored, only minimal modes matter (power grows with mode).
  std::optional<double> best;
  for_each_subset(topo, [&](Placement p) {
    const FlowResult flows = compute_flows(topo, scen, p);
    if (flows.unserved > 0) return;
    double power = 0.0;
    for (NodeId node : p.nodes()) {
      const int m = modes.mode_for_load(flows.load(topo, node));
      if (m < 0) return;
      power += modes.power(m);
    }
    if (!best || power < *best - 1e-12) best = power;
  });
  return best;
}

}  // namespace treeplace
