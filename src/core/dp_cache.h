// Externally-owned per-subtree DP state: the warm-start substrate.
//
// Every bottom-up DP in this library fills one NodeState per internal node
// (see core/dp_util.h).  Historically those states were locals of one solve
// call; a SubtreeCache moves their ownership out, so they can survive in a
// SolveSession (solver/session.h) and be reused by the next solve over the
// same topology.
//
// Invalidation is *signature-diff based*, not trust-the-caller based: the
// cache records, per internal node, the exact solver-visible inputs its
// table was computed from (client mass, pre-existing flag, original mode —
// a dp::NodeSignature).  A warm solve recomputes a node iff its signature
// changed or any child was recomputed (dirtiness propagates along the root
// path, the subtree-locality argument of the paper's update setting).  A
// caller-supplied ScenarioDelta span is therefore a *hint*, never a
// correctness obligation: deltas that lied, edits applied outside the
// span, or a swapped-out scenario all degrade to recomputation, and warm
// results stay bit-identical to cold ones by construction.
//
// Engine parameters that shape the tables (mode capacities, W) are folded
// into a params signature; any change wipes the cache, so a session never
// mixes tables across incompatible solves.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/dp_util.h"
#include "model/modes.h"
#include "tree/scenario.h"
#include "tree/topology.h"

namespace treeplace::dp {

/// The solver-visible inputs of one internal node, as the DPs read them:
/// the node's client mass and its pre-existing state (original_mode >= 0
/// iff the node is in E).  Engines that ignore original modes (the
/// single-mode MinCost DP) normalize the mode to 0 before storing.
struct NodeSignature {
  RequestCount client_mass = 0;
  std::int32_t original_mode = -1;  ///< -1 = not pre-existing

  friend bool operator==(const NodeSignature&,
                         const NodeSignature&) = default;
};

/// Per-node state of the power DPs (exact and symmetric share the shape):
/// the final table box, the minimal-flow table, one Decision array per
/// merged child, and the bounds the parent's merge sees.  Cached solves
/// additionally snapshot the partial table *before* each child merge
/// (partial_boxes[k]/partial_flows[k] = the state after merging children
/// [0, k)), so a warm re-solve resumes at the first dirty child instead of
/// redoing the whole merge chain.
struct PowerNodeState {
  Box box;
  std::vector<RequestCount> flow;
  std::vector<std::vector<Decision>> decisions;
  std::vector<int> incl_bounds;
  std::vector<Box> partial_boxes;                      ///< cached solves only
  std::vector<std::vector<RequestCount>> partial_flows;
};

/// Decision record of the 2-index (e, n) MinCost DP: the (e', n') retained
/// on the already-merged side plus whether a replica sits on the merged
/// child.
struct MinCostCellDecision {
  std::uint16_t e_prev = 0;
  std::uint16_t n_prev = 0;
  std::uint8_t place = 0;
};

/// Per-node state of the MinCost-WithPre DP.  Tables are flat arrays
/// indexed by e*(nb+1)+n where (eb, nb) bound the reused/new counts
/// strictly below the node.
struct MinCostNodeState {
  int eb = 0;  ///< pre-existing nodes strictly below
  int nb = 0;  ///< non-pre-existing internal nodes strictly below
  std::vector<RequestCount> flow;
  /// decisions[k] covers the table after merging internal child k; its
  /// bounds are partial_eb[k+1] x partial_nb[k+1].
  std::vector<std::vector<MinCostCellDecision>> decisions;
  std::vector<int> partial_eb;  ///< bounds after merging children [0, k)
  std::vector<int> partial_nb;
  /// Cached solves only: the flow table after merging children [0, k),
  /// i.e. before merge k — the warm-resume point (see PowerNodeState).
  std::vector<std::vector<RequestCount>> partial_flows;
};

/// One engine's cached per-subtree tables over one topology.  Owned by a
/// SolveSession; engines receive a pointer and leave their NodeStates
/// behind for the next solve.  Not thread-safe: warm solves over one cache
/// must be serialized (SolveSession::solve_mutex).
template <typename NodeState>
class SubtreeCache {
 public:
  /// Binds the cache to a (topology, engine-params) pair, wiping all state
  /// when either differs from the previous solve.  Returns true when the
  /// surviving entries may be reused (same topology, same params).
  bool attach(const Topology* topo, std::vector<std::uint64_t> params) {
    const std::size_t n = topo->num_internal();
    if (topo == topo_ && params == params_ && states_.size() == n) {
      return true;
    }
    topo_ = topo;
    params_ = std::move(params);
    states_.assign(n, NodeState{});
    sigs_.assign(n, NodeSignature{});
    valid_.assign(n, 0);
    return false;
  }

  /// The cached state slot of dense internal index `i` (engine-owned
  /// layout; meaningful only while valid(i)).
  NodeState& state(std::size_t i) { return states_[i]; }
  const NodeSignature& signature(std::size_t i) const { return sigs_[i]; }
  bool valid(std::size_t i) const { return valid_[i] != 0; }

  void invalidate(std::size_t i) { valid_[i] = 0; }
  void commit(std::size_t i, const NodeSignature& sig) {
    sigs_[i] = sig;
    valid_[i] = 1;
  }

  std::size_t size() const { return states_.size(); }

 private:
  const Topology* topo_ = nullptr;
  std::vector<std::uint64_t> params_;
  std::vector<NodeState> states_;
  std::vector<NodeSignature> sigs_;
  std::vector<std::uint8_t> valid_;
};

using PowerSubtreeCache = SubtreeCache<PowerNodeState>;
using MinCostSubtreeCache = SubtreeCache<MinCostNodeState>;

/// The params signature of the power DPs: the mode capacities (they drive
/// box dimensionality, merge feasibility and mode_for_load).  Costs and
/// powers only price the root scan, recomputed every solve.
inline std::vector<std::uint64_t> capacity_params(const ModeSet& modes) {
  std::vector<std::uint64_t> params;
  params.reserve(static_cast<std::size_t>(modes.count()));
  for (int w = 0; w < modes.count(); ++w) {
    params.push_back(static_cast<std::uint64_t>(modes.capacity(w)));
  }
  return params;
}

/// The recompute schedule of one warm (or cold) solve.
struct DirtyPlan {
  /// Dense internal-index flags: 1 = the node's table must be recomputed
  /// (own inputs changed, or any internal child dirty).
  std::vector<std::uint8_t> dirty;
  /// For dirty nodes: how many leading child merges may resume from the
  /// cached partial tables (the node's base and its first `reuse[i]`
  /// children are unchanged).  Equal to the child count when only the
  /// node's parent-visible inputs (pre-existing flag / original mode)
  /// changed — the table is then reused outright.  0 on cold solves.
  std::vector<std::uint32_t> reuse;
};

/// Plans a warm solve: diffs every node's signature against the cache,
/// propagates dirtiness along root paths, and computes per-node merge
/// prefixes that may resume from cached partials.  Every dirty slot is
/// invalidated in the cache up front so an early infeasible exit can never
/// leave a stale entry marked valid (prefix resumption still works this
/// round: the partials themselves survive invalidation, and validity is
/// re-committed only after a node is fully reprocessed).
template <typename NodeState, typename MakeSignature>
DirtyPlan plan_warm_solve(const Topology& topo, SubtreeCache<NodeState>* cache,
                          std::vector<std::uint64_t> params,
                          const MakeSignature& make_signature) {
  const std::size_t n = topo.num_internal();
  DirtyPlan plan;
  plan.dirty.assign(n, 1);
  plan.reuse.assign(n, 0);
  if (cache == nullptr) return plan;  // one-shot solve: everything dirty
  const bool warm = cache->attach(&topo, std::move(params));
  if (warm) {
    for (NodeId j : topo.internal_post_order()) {
      const std::size_t i = topo.internal_index(j);
      const NodeSignature sig = make_signature(j);
      const bool was_valid = cache->valid(i);
      bool d = !was_valid || !(cache->signature(i) == sig);
      const auto children = topo.internal_children(j);
      std::uint32_t prefix = 0;
      while (prefix < children.size() &&
             plan.dirty[topo.internal_index(children[prefix])] == 0) {
        ++prefix;
      }
      if (prefix < children.size()) d = true;
      plan.dirty[i] = d ? 1 : 0;
      // A resumable prefix requires a previously completed table whose
      // base (client mass) is unchanged; the clean children's merges are
      // then bit-identical and their partials may be spliced in.
      if (d && was_valid &&
          cache->signature(i).client_mass == sig.client_mass) {
        plan.reuse[i] = prefix;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (plan.dirty[i] != 0) cache->invalidate(i);
  }
  return plan;
}

}  // namespace treeplace::dp
