// Externally-owned per-subtree DP state: the warm-start substrate.
//
// Every bottom-up DP in this library fills one NodeState per internal node
// (see core/dp_util.h).  Historically those states were locals of one solve
// call; a SubtreeCache moves their ownership out, so they can survive in a
// SolveSession (solver/session.h) and be reused by the next solve over the
// same topology.
//
// Invalidation is *signature-diff based*: the cache records, per internal
// node, the exact solver-visible inputs its table was computed from (client
// mass, pre-existing flag, original mode — a dp::NodeSignature).  A warm
// solve recomputes a node iff its signature changed or any child was
// recomputed (dirtiness propagates along the root path, the
// subtree-locality argument of the paper's update setting).  Within a
// recomputed node, the balanced merge tree (dp::MergePlan) is resumed
// *per slot*: clean children's leaf slots and every internal slot whose
// child range stayed clean are spliced in from the cached snapshots, so a
// single dirty child costs O(log k) slot rebuilds instead of the whole
// merge chain.
//
// Two planning paths produce the same DirtyPlan:
//   * the full signature sweep compares every internal node's signature
//     against the cache — always correct, O(N) signature builds;
//   * the delta fast path trusts a caller-supplied ScenarioDelta span to
//     name every edit and checks only the touched nodes (union'd with the
//     previous solve's touched set, so serve-style base-fork callers are
//     covered).  It is taken only when the span is attributable, the cache
//     is fully valid, and the touched set is small.
// The fast path makes the span a soft *contract*: it must list every edit
// since the session's previous solve (relative to that scenario or to a
// common base scenario both spans fork from).  Callers that cannot promise
// that pass an empty span, which always selects the full sweep — so
// legacy no-hint callers keep their correctness unconditionally.
//
// Engine parameters that shape the tables (mode capacities, W) are folded
// into a params signature; any change wipes the cache, so a session never
// mixes tables across incompatible solves.
//
// Snapshot format (core/dp_snapshot.h + support/binio.h): a SubtreeCache
// serializes to an endian-stable binary record so a SolveSession can be
// saved to disk and restored warm after a process restart or a shard
// migration.  Layout (all scalars little-endian):
//
//   per cache:  params count + values, node count n, then per node:
//     NodeSignature (client_mass u64, original_mode i32),
//     valid u8, resumable u8, dirty_count u64,
//     the engine NodeState — every field including the merge-tree slot
//     snapshots (Boxes as their bounds vectors, ArenaTables as length +
//     elements, Decisions as left/right/mode);
//   then the last_touched hint (known u8, count, NodeIds).
//
// The enclosing session file adds a magic ("TPSNAP01"), a format version,
// the topology's structural_hash, and a CRC32 trailer; restore rejects any
// mismatch or truncation as a whole (no partial restore).  Because the
// signatures, validity flags, dirty counts and the last_touched hint all
// round-trip, a restored cache plans exactly the warm solve the in-memory
// cache would have — work counters and results are bit-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/dp_util.h"
#include "core/merge_kernel.h"
#include "model/modes.h"
#include "tree/scenario.h"
#include "tree/scenario_delta.h"
#include "tree/topology.h"

namespace treeplace::dp {

/// The solver-visible inputs of one internal node, as the DPs read them:
/// the node's client mass and its pre-existing state (original_mode >= 0
/// iff the node is in E).  Engines that ignore original modes (the
/// single-mode MinCost DP) normalize the mode to 0 before storing.
struct NodeSignature {
  RequestCount client_mass = 0;
  std::int32_t original_mode = -1;  ///< -1 = not pre-existing

  friend bool operator==(const NodeSignature&,
                         const NodeSignature&) = default;
};

namespace detail {

template <typename T>
std::size_t vector_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

template <typename T>
std::size_t arena_tables_bytes(const std::vector<ArenaTable<T>>& v) {
  std::size_t total = vector_bytes(v);
  for (const auto& table : v) total += table.capacity_bytes();
  return total;
}

template <typename T>
void release_arena_tables(std::vector<ArenaTable<T>>& v,
                          TableArena& arena) noexcept {
  for (auto& table : v) table.clear(arena);
  v.clear();
  v.shrink_to_fit();
}

inline std::size_t packed_tables_bytes(const std::vector<PackedTable>& v) {
  std::size_t total = vector_bytes(v);
  for (const PackedTable& t : v) total += t.heap_bytes();
  return total;
}

inline std::size_t packed_decisions_bytes(
    const std::vector<PackedDecisions>& v) {
  std::size_t total = vector_bytes(v);
  for (const PackedDecisions& t : v) total += t.heap_bytes();
  return total;
}

}  // namespace detail

/// Per-node state of the power DPs (exact and symmetric share the shape):
/// the final table (children combined along the merge tree, client mass
/// folded in), the bounds the parent's merge sees, and the per-slot
/// decision records the reconstruction walks.  Cached solves additionally
/// keep every slot's box and flow table — the subtree-resume substrate: a
/// warm re-solve rebuilds only the dirty leaves and the internal slots on
/// their root paths, splicing the snapshots in everywhere else.
struct PowerNodeState {
  Box box;
  ArenaTable<RequestCount> flow;
  std::vector<int> incl_bounds;
  /// One entry per merge-plan slot (leaves first, then steps in execution
  /// order).  Decisions are kept by every solve (reconstruction needs
  /// them); boxes/flows only by cached solves (see drop_snapshots()).
  /// Tables are arena-backed: the owning SubtreeCache's arena (or a
  /// solver-local arena for one-shot solves) holds the storage.
  std::vector<ArenaTable<Decision>> slot_decisions;
  std::vector<Box> slot_boxes;
  std::vector<ArenaTable<RequestCount>> slot_flows;

  /// Lossless compaction: flow tables move into PackedTable encodings,
  /// decision tables into PackedDecisions, and their arena blocks are
  /// returned.  Boxes and bounds stay unpacked (cheap, and the dirtiness
  /// planner reads them).  Engines call SubtreeCache::ensure_unpacked
  /// before reading or rebuilding a node — including reconstruction,
  /// which walks decisions.  Packing commits per node only when the
  /// encoding is actually smaller than the arena blocks it frees — tiny
  /// tables (one-cell leaf slots) stay arena-backed rather than paying
  /// the per-encoding bookkeeping, so compact() never grows a node.
  bool packed = false;
  PackedTable packed_flow;
  std::vector<PackedTable> packed_slot_flows;
  std::vector<PackedDecisions> packed_slot_decisions;

  void pack(TableArena& arena) {
    if (packed) return;
    PackedTable pf = PackedTable::pack(flow.span());
    std::vector<PackedTable> psf(slot_flows.size());
    for (std::size_t k = 0; k < slot_flows.size(); ++k) {
      psf[k] = PackedTable::pack(slot_flows[k].span());
    }
    std::vector<PackedDecisions> psd(slot_decisions.size());
    for (std::size_t k = 0; k < slot_decisions.size(); ++k) {
      // Elide dead cells behind the slot flow's validity runs when the
      // companion table is still resident (it is not after snapshots were
      // shed); dense otherwise.
      if (k < slot_flows.size() &&
          slot_flows[k].size() == slot_decisions[k].size()) {
        psd[k] = PackedDecisions::pack(slot_decisions[k].span(),
                                       slot_flows[k].span());
      } else {
        psd[k] = PackedDecisions::pack(slot_decisions[k].span());
      }
    }
    std::size_t unpacked_bytes = flow.capacity_bytes();
    for (const auto& t : slot_flows) unpacked_bytes += t.capacity_bytes();
    for (const auto& t : slot_decisions) unpacked_bytes += t.capacity_bytes();
    std::size_t packed_bytes = pf.heap_bytes() +
                               detail::vector_bytes(psf) +
                               detail::vector_bytes(psd);
    for (const auto& p : psf) packed_bytes += p.heap_bytes();
    for (const auto& p : psd) packed_bytes += p.heap_bytes();
    if (packed_bytes >= unpacked_bytes) return;
    packed_flow = std::move(pf);
    flow.clear(arena);
    packed_slot_flows = std::move(psf);
    for (auto& t : slot_flows) t.clear(arena);
    packed_slot_decisions = std::move(psd);
    for (auto& t : slot_decisions) t.clear(arena);
    packed = true;
  }

  void unpack(TableArena& arena) {
    if (!packed) return;
    flow.resize_uninit(arena, packed_flow.cells());
    packed_flow.unpack(flow.span());
    packed_flow.clear();
    TREEPLACE_DCHECK(slot_flows.size() == packed_slot_flows.size());
    for (std::size_t k = 0; k < packed_slot_flows.size(); ++k) {
      slot_flows[k].resize_uninit(arena, packed_slot_flows[k].cells());
      packed_slot_flows[k].unpack(slot_flows[k].span());
    }
    packed_slot_flows.clear();
    packed_slot_flows.shrink_to_fit();
    TREEPLACE_DCHECK(slot_decisions.size() == packed_slot_decisions.size());
    for (std::size_t k = 0; k < packed_slot_decisions.size(); ++k) {
      slot_decisions[k].resize_uninit(arena,
                                      packed_slot_decisions[k].cells());
      packed_slot_decisions[k].unpack(slot_decisions[k].span());
    }
    packed_slot_decisions.clear();
    packed_slot_decisions.shrink_to_fit();
    packed = false;
  }

  /// Frees the merge-tree snapshots (slot boxes/flows), keeping the final
  /// table and decisions: the node can still be spliced in whole while
  /// clean, but a dirty re-solve falls back to a full rebuild.
  void drop_snapshots(TableArena& arena) noexcept {
    slot_boxes.clear();
    slot_boxes.shrink_to_fit();
    detail::release_arena_tables(slot_flows, arena);
    packed_slot_flows.clear();
    packed_slot_flows.shrink_to_fit();
  }

  /// Returns every arena block and resets the state to empty.
  void release(TableArena& arena) noexcept {
    drop_snapshots(arena);
    flow.clear(arena);
    packed_flow.clear();
    packed_slot_decisions.clear();
    packed_slot_decisions.shrink_to_fit();
    packed = false;
    detail::release_arena_tables(slot_decisions, arena);
    box = Box();
    incl_bounds.clear();
    incl_bounds.shrink_to_fit();
  }

  std::size_t snapshot_bytes() const {
    std::size_t total = detail::vector_bytes(slot_boxes);
    for (const Box& b : slot_boxes) {
      total += detail::vector_bytes(b.bounds()) + b.dims() * sizeof(size_t);
    }
    return total + detail::arena_tables_bytes(slot_flows) +
           detail::packed_tables_bytes(packed_slot_flows);
  }
  std::size_t total_bytes() const {
    return snapshot_bytes() + flow.capacity_bytes() +
           packed_flow.heap_bytes() + detail::vector_bytes(incl_bounds) +
           detail::arena_tables_bytes(slot_decisions) +
           detail::packed_decisions_bytes(packed_slot_decisions);
  }
};

/// Per-node state of the MinCost-WithPre DP; same slot layout as
/// PowerNodeState with (eb, nb) bound pairs in place of boxes (a slot's
/// table is a flat array over Box({eb, nb}), i.e. indexed e*(nb+1)+n).
/// Decisions use the shared dp::Decision record — for internal slots the
/// two operand flats, for leaf slots `right` = the child's flat and `mode`
/// = 1 when a replica sits on the child itself — so MinCost merges run
/// through the same join kernel as the power DPs.
struct MinCostNodeState {
  int eb = 0;  ///< pre-existing nodes strictly below
  int nb = 0;  ///< non-pre-existing internal nodes strictly below
  ArenaTable<RequestCount> flow;
  std::vector<ArenaTable<Decision>> slot_decisions;
  /// Per-slot (eb, nb) bounds; kept by every solve (reconstruction
  /// re-derives flat indices from them).
  std::vector<int> slot_eb;
  std::vector<int> slot_nb;
  std::vector<ArenaTable<RequestCount>> slot_flows;  ///< cached solves only

  /// Lossless compaction; see PowerNodeState::pack (same smaller-only
  /// commit rule).
  bool packed = false;
  PackedTable packed_flow;
  std::vector<PackedTable> packed_slot_flows;
  std::vector<PackedDecisions> packed_slot_decisions;

  void pack(TableArena& arena) {
    if (packed) return;
    PackedTable pf = PackedTable::pack(flow.span());
    std::vector<PackedTable> psf(slot_flows.size());
    for (std::size_t k = 0; k < slot_flows.size(); ++k) {
      psf[k] = PackedTable::pack(slot_flows[k].span());
    }
    std::vector<PackedDecisions> psd(slot_decisions.size());
    for (std::size_t k = 0; k < slot_decisions.size(); ++k) {
      // Elide dead cells behind the slot flow's validity runs when the
      // companion table is still resident (it is not after snapshots were
      // shed); dense otherwise.
      if (k < slot_flows.size() &&
          slot_flows[k].size() == slot_decisions[k].size()) {
        psd[k] = PackedDecisions::pack(slot_decisions[k].span(),
                                       slot_flows[k].span());
      } else {
        psd[k] = PackedDecisions::pack(slot_decisions[k].span());
      }
    }
    std::size_t unpacked_bytes = flow.capacity_bytes();
    for (const auto& t : slot_flows) unpacked_bytes += t.capacity_bytes();
    for (const auto& t : slot_decisions) unpacked_bytes += t.capacity_bytes();
    std::size_t packed_bytes = pf.heap_bytes() +
                               detail::vector_bytes(psf) +
                               detail::vector_bytes(psd);
    for (const auto& p : psf) packed_bytes += p.heap_bytes();
    for (const auto& p : psd) packed_bytes += p.heap_bytes();
    if (packed_bytes >= unpacked_bytes) return;
    packed_flow = std::move(pf);
    flow.clear(arena);
    packed_slot_flows = std::move(psf);
    for (auto& t : slot_flows) t.clear(arena);
    packed_slot_decisions = std::move(psd);
    for (auto& t : slot_decisions) t.clear(arena);
    packed = true;
  }

  void unpack(TableArena& arena) {
    if (!packed) return;
    flow.resize_uninit(arena, packed_flow.cells());
    packed_flow.unpack(flow.span());
    packed_flow.clear();
    TREEPLACE_DCHECK(slot_flows.size() == packed_slot_flows.size());
    for (std::size_t k = 0; k < packed_slot_flows.size(); ++k) {
      slot_flows[k].resize_uninit(arena, packed_slot_flows[k].cells());
      packed_slot_flows[k].unpack(slot_flows[k].span());
    }
    packed_slot_flows.clear();
    packed_slot_flows.shrink_to_fit();
    TREEPLACE_DCHECK(slot_decisions.size() == packed_slot_decisions.size());
    for (std::size_t k = 0; k < packed_slot_decisions.size(); ++k) {
      slot_decisions[k].resize_uninit(arena,
                                      packed_slot_decisions[k].cells());
      packed_slot_decisions[k].unpack(slot_decisions[k].span());
    }
    packed_slot_decisions.clear();
    packed_slot_decisions.shrink_to_fit();
    packed = false;
  }

  void drop_snapshots(TableArena& arena) noexcept {
    detail::release_arena_tables(slot_flows, arena);
    packed_slot_flows.clear();
    packed_slot_flows.shrink_to_fit();
  }

  void release(TableArena& arena) noexcept {
    drop_snapshots(arena);
    flow.clear(arena);
    packed_flow.clear();
    packed_slot_decisions.clear();
    packed_slot_decisions.shrink_to_fit();
    packed = false;
    detail::release_arena_tables(slot_decisions, arena);
    eb = 0;
    nb = 0;
    slot_eb.clear();
    slot_eb.shrink_to_fit();
    slot_nb.clear();
    slot_nb.shrink_to_fit();
  }

  std::size_t snapshot_bytes() const {
    return detail::arena_tables_bytes(slot_flows) +
           detail::packed_tables_bytes(packed_slot_flows);
  }
  std::size_t total_bytes() const {
    return snapshot_bytes() + flow.capacity_bytes() +
           packed_flow.heap_bytes() + detail::vector_bytes(slot_eb) +
           detail::vector_bytes(slot_nb) +
           detail::arena_tables_bytes(slot_decisions) +
           detail::packed_decisions_bytes(packed_slot_decisions);
  }
};

/// Deep-copies a power node state into `dst` (whose tables live in
/// `dst_arena`) — the transfer primitive of subtree contraction: open
/// nodes clone *with* slots (full per-slot resume on the other side),
/// sealed roots clone *without* (the contracted solve only reads their
/// final table and bounds; reconstruction walks the original cache).
/// `src` must be unpacked.
inline void clone_node_state(const PowerNodeState& src, TableArena& dst_arena,
                             PowerNodeState& dst, bool with_slots) {
  TREEPLACE_DCHECK(!src.packed);
  dst.release(dst_arena);
  dst.box = src.box;
  dst.flow.assign_copy(dst_arena, src.flow.span());
  dst.incl_bounds = src.incl_bounds;
  if (!with_slots) return;
  dst.slot_boxes = src.slot_boxes;
  dst.slot_decisions.resize(src.slot_decisions.size());
  for (std::size_t k = 0; k < src.slot_decisions.size(); ++k) {
    dst.slot_decisions[k].assign_copy(dst_arena, src.slot_decisions[k].span());
  }
  dst.slot_flows.resize(src.slot_flows.size());
  for (std::size_t k = 0; k < src.slot_flows.size(); ++k) {
    dst.slot_flows[k].assign_copy(dst_arena, src.slot_flows[k].span());
  }
}

/// MinCost twin of the power overload; (eb, nb) scalars always copy (the
/// parent's leaf expansion reads a child's bounds even when sealed).
inline void clone_node_state(const MinCostNodeState& src,
                             TableArena& dst_arena, MinCostNodeState& dst,
                             bool with_slots) {
  TREEPLACE_DCHECK(!src.packed);
  dst.release(dst_arena);
  dst.eb = src.eb;
  dst.nb = src.nb;
  dst.flow.assign_copy(dst_arena, src.flow.span());
  if (!with_slots) return;
  dst.slot_eb = src.slot_eb;
  dst.slot_nb = src.slot_nb;
  dst.slot_decisions.resize(src.slot_decisions.size());
  for (std::size_t k = 0; k < src.slot_decisions.size(); ++k) {
    dst.slot_decisions[k].assign_copy(dst_arena, src.slot_decisions[k].span());
  }
  dst.slot_flows.resize(src.slot_flows.size());
  for (std::size_t k = 0; k < src.slot_flows.size(); ++k) {
    dst.slot_flows[k].assign_copy(dst_arena, src.slot_flows[k].span());
  }
}

/// One engine's cached per-subtree tables over one topology.  Owned by a
/// SolveSession; engines receive a pointer and leave their NodeStates
/// behind for the next solve.  Not thread-safe: warm solves over one cache
/// must be serialized (SolveSession::solve_mutex).
template <typename NodeState>
class SubtreeCache {
 public:
  /// Binds the cache to a (topology, engine-params) pair, wiping all state
  /// when either differs from the previous solve.  Returns true when the
  /// surviving entries may be reused (same topology, same params).
  bool attach(const Topology* topo, std::vector<std::uint64_t> params) {
    const std::size_t n = topo->num_internal();
    if (topo == topo_ && params == params_ && states_.size() == n) {
      return true;
    }
    topo_ = topo;
    params_ = std::move(params);
    arena_.reset();  // invalidates every table the old states pointed into
    states_.assign(n, NodeState{});
    sigs_.assign(n, NodeSignature{});
    valid_.assign(n, 0);
    resumable_.assign(n, 0);
    dirty_counts_.assign(n, 0);
    num_valid_ = 0;
    last_touched_.clear();
    last_touched_known_ = false;
    return false;
  }

  /// The cached state slot of dense internal index `i` (engine-owned
  /// layout; meaningful only while valid(i)).
  NodeState& state(std::size_t i) { return states_[i]; }
  const NodeState& state(std::size_t i) const { return states_[i]; }
  const NodeSignature& signature(std::size_t i) const { return sigs_[i]; }
  /// The engine-params signature bound by the last attach() — serialized
  /// by snapshots so a restore re-binds the identical (topology, params)
  /// pair and the next attach() returns warm.
  const std::vector<std::uint64_t>& params() const { return params_; }
  bool valid(std::size_t i) const { return valid_[i] != 0; }
  /// True while the node's merge-tree snapshots survive: a dirty re-solve
  /// may then resume per slot instead of rebuilding from scratch.
  bool resumable(std::size_t i) const { return resumable_[i] != 0; }
  /// True when every node is valid — the precondition of the delta fast
  /// path (an invalid node must be recomputed even if untouched).
  bool all_valid() const { return num_valid_ == states_.size(); }

  void invalidate(std::size_t i) {
    if (valid_[i] != 0) --num_valid_;
    valid_[i] = 0;
    // Hotness signal for budget shedding: every plan-time invalidation
    // counts, so a node on the delta path of every solve (the root, hot
    // subtrees) outscores one that is only re-dirtied when shedding forces
    // a recompute — even while both sit invalid between solves.
    ++dirty_counts_[i];
  }
  void commit(std::size_t i, const NodeSignature& sig) {
    if (valid_[i] == 0) ++num_valid_;
    sigs_[i] = sig;
    valid_[i] = 1;
    resumable_[i] = 1;
  }

  /// Byte-budget hooks (SolveSession::enforce_budget).  Dropping snapshots
  /// keeps the node spliceable while clean; dropping the whole state
  /// forces a recompute on the next solve (still bit-identical, just paid
  /// again).
  void drop_snapshots(std::size_t i) {
    states_[i].drop_snapshots(arena_);
    resumable_[i] = 0;
  }
  void drop_state(std::size_t i) {
    states_[i].release(arena_);
    // Shedding is not a dirtiness event: invalidate without bumping the
    // hotness counter, or the evicted-coldest would look hotter next round.
    if (valid_[i] != 0) --num_valid_;
    valid_[i] = 0;
    resumable_[i] = 0;
  }
  std::size_t snapshot_bytes(std::size_t i) const {
    return states_[i].snapshot_bytes();
  }
  std::size_t state_bytes(std::size_t i) const {
    return states_[i].total_bytes();
  }

  /// Lossless compaction hooks (see NodeState::pack): engines call
  /// ensure_unpacked before reading or rebuilding a node's tables;
  /// SolveSession::compact packs every cached entry between solves.
  void ensure_unpacked(std::size_t i) { states_[i].unpack(arena_); }
  bool packed(std::size_t i) const { return states_[i].packed; }
  void pack_entry(std::size_t i) {
    if (valid_[i] != 0 || resumable_[i] != 0) states_[i].pack(arena_);
  }
  /// Packs every cached entry; returns how many moved to packed form.
  std::size_t pack_all() {
    std::size_t moved = 0;
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i].packed) continue;
      pack_entry(i);
      if (states_[i].packed) ++moved;
    }
    return moved;
  }

  /// The touched-node hint of the previous planned solve (see the delta
  /// fast path in plan_warm_solve).
  bool last_touched_known() const { return last_touched_known_; }
  const std::vector<NodeId>& last_touched() const { return last_touched_; }
  void set_last_touched(std::vector<NodeId> touched, bool known) {
    last_touched_ = std::move(touched);
    last_touched_known_ = known;
  }

  std::size_t size() const { return states_.size(); }

  /// The arena every cached table lives in.  Engines allocate replacement
  /// slot tables from here during warm solves; solve_mutex serializes them.
  TableArena& arena() { return arena_; }

  /// How often node `i` has been invalidated since attach — the hotness
  /// signal of budget shedding (root-path nodes are dirtied every warm
  /// solve, leaf-fringe nodes rarely; shed the cold ones first).
  std::uint64_t dirty_count(std::size_t i) const { return dirty_counts_[i]; }

  /// Snapshot-restore hook: re-establishes node `i`'s planning metadata
  /// exactly as serialized (core/dp_snapshot.h fills state(i) first, then
  /// calls this).  Unlike commit(), it restores the validity/resumability
  /// flags and the hotness counter verbatim — including invalid entries —
  /// so a restored cache plans the same warm solve the saved one would.
  void restore_entry(std::size_t i, const NodeSignature& sig, bool valid,
                     bool resumable, std::uint64_t dirty_count) {
    sigs_[i] = sig;
    if (valid && valid_[i] == 0) ++num_valid_;
    if (!valid && valid_[i] != 0) --num_valid_;
    valid_[i] = valid ? 1 : 0;
    resumable_[i] = resumable ? 1 : 0;
    dirty_counts_[i] = dirty_count;
  }

 private:
  const Topology* topo_ = nullptr;
  std::vector<std::uint64_t> params_;
  TableArena arena_;
  std::vector<NodeState> states_;
  std::vector<NodeSignature> sigs_;
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint8_t> resumable_;
  std::vector<std::uint64_t> dirty_counts_;
  std::size_t num_valid_ = 0;
  std::vector<NodeId> last_touched_;
  bool last_touched_known_ = false;
};

using PowerSubtreeCache = SubtreeCache<PowerNodeState>;
using MinCostSubtreeCache = SubtreeCache<MinCostNodeState>;

/// The params signature of the power DPs: the mode capacities (they drive
/// box dimensionality, merge feasibility and mode_for_load).  Costs and
/// powers only price the root scan, recomputed every solve.
inline std::vector<std::uint64_t> capacity_params(const ModeSet& modes) {
  std::vector<std::uint64_t> params;
  params.reserve(static_cast<std::size_t>(modes.count()));
  for (int w = 0; w < modes.count(); ++w) {
    params.push_back(static_cast<std::uint64_t>(modes.capacity(w)));
  }
  return params;
}

/// The recompute schedule of one warm (or cold) solve.
struct DirtyPlan {
  /// Dense internal-index flags: 1 = the node's table must be recomputed
  /// (own inputs changed, or any internal child dirty).
  std::vector<std::uint8_t> dirty;
  /// For dirty nodes: 1 = the node's merge-tree snapshots from the
  /// previous completed solve are present, so clean children's slots may
  /// be spliced in and only dirty leaves + their root paths (and the base
  /// fold) re-run.  0 = rebuild the whole merge tree.
  std::vector<std::uint8_t> resume;
  /// For dirty nodes with resume: 1 = the node's own client mass changed,
  /// so the base fold must re-run even when every child slot is clean.
  std::vector<std::uint8_t> base_changed;
  /// NodeSignatures actually built and compared: num_internal on the full
  /// sweep, the touched-set size on the delta fast path.
  std::uint64_t signatures_checked = 0;
};

/// Per-slot dirtiness of one node's merge plan: which leaf expansions and
/// internal joins a (re)build must run.  Shared by all three DP engines so
/// the propagation rule cannot diverge between them.
struct SlotDirtiness {
  std::vector<std::uint8_t> dirty;  ///< one flag per merge-plan slot
  bool any = false;                 ///< any slot dirty (k == 0 => false)
};

/// Seeds leaf dirtiness from the children's DirtyPlan flags (a recomputed
/// child may have a different table, so its leaf must be re-expanded) and
/// propagates through the internal steps.  Without `resume`, every slot
/// is dirty — the full rebuild of a cold or non-resumable node.
inline SlotDirtiness plan_slot_dirtiness(const DirtyPlan& plan,
                                         const Topology& topo,
                                         std::span<const NodeId> children,
                                         const MergePlan& mplan,
                                         bool resume) {
  SlotDirtiness slots;
  slots.dirty.assign(mplan.num_slots(), resume ? 0 : 1);
  slots.any = !resume && !children.empty();
  if (!resume) return slots;
  for (std::size_t c = 0; c < children.size(); ++c) {
    if (plan.dirty[topo.internal_index(children[c])] != 0) {
      slots.dirty[c] = 1;
      slots.any = true;
    }
  }
  if (slots.any) {
    for (std::size_t t = 0; t < mplan.steps().size(); ++t) {
      const MergePlan::Step& step = mplan.steps()[t];
      if (slots.dirty[step.left] != 0 || slots.dirty[step.right] != 0) {
        slots.dirty[mplan.step_slot(t)] = 1;
      }
    }
  }
  return slots;
}

/// Internal nodes a delta span can touch: the parent of an edited client,
/// the node of a pre-existing edit.  nullopt when the span contains an
/// edit that cannot be attributed to specific nodes (kClearAllPre, an
/// out-of-range id, or an empty span — empty means "no information", not
/// "no edits", because legacy callers mutate scenarios without deltas).
inline std::optional<std::vector<NodeId>> delta_touched_internal(
    const Topology& topo, std::span<const ScenarioDelta> deltas) {
  if (deltas.empty()) return std::nullopt;
  std::vector<NodeId> touched;
  touched.reserve(deltas.size());
  for (const ScenarioDelta& d : deltas) {
    switch (d.op) {
      case ScenarioDelta::Op::kSetRequests: {
        if (!topo.valid_id(d.node) || !topo.is_client(d.node)) {
          return std::nullopt;
        }
        touched.push_back(topo.parent(d.node));
        break;
      }
      case ScenarioDelta::Op::kSetPreExisting:
      case ScenarioDelta::Op::kClearPreExisting: {
        if (!topo.valid_id(d.node) || !topo.is_internal(d.node)) {
          return std::nullopt;
        }
        touched.push_back(d.node);
        break;
      }
      case ScenarioDelta::Op::kClearAllPre:
        return std::nullopt;
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  return touched;
}

/// Plans a warm solve: determines the recompute set (delta fast path when
/// possible, else the full signature sweep — see the header comment) and
/// invalidates every dirty slot up front, so an early infeasible exit can
/// never leave a stale entry marked valid (slot resumption still works
/// this round: the snapshots survive invalidation, and validity is
/// re-committed only after a node is fully reprocessed).
/// `planning_n` overrides the node count the fast-path size gate compares
/// against (0 = this topology's own).  Contracted solves pass the
/// *original* tree's num_internal: eligibility for contraction already
/// implies the uncontracted twin would take the fast path, and gating
/// against the same N keeps the chosen path — and so signatures_checked —
/// bit-identical between the two.
template <typename NodeState, typename MakeSignature>
DirtyPlan plan_warm_solve(const Topology& topo, SubtreeCache<NodeState>* cache,
                          std::vector<std::uint64_t> params,
                          const MakeSignature& make_signature,
                          std::span<const ScenarioDelta> deltas = {},
                          std::size_t planning_n = 0) {
  const std::size_t n = topo.num_internal();
  DirtyPlan plan;
  plan.dirty.assign(n, 1);
  plan.resume.assign(n, 0);
  plan.base_changed.assign(n, 1);
  if (cache == nullptr) return plan;  // one-shot solve: everything dirty
  const bool warm = cache->attach(&topo, std::move(params));
  std::optional<std::vector<NodeId>> touched =
      delta_touched_internal(topo, deltas);

  // Delta fast path: the span names every possible edit since the previous
  // solve (union'd with the previous span for base-forking callers), the
  // cache has no invalid stragglers, and the touched set is small enough
  // that skipping the O(N) sweep is worth it.
  bool planned = false;
  if (warm && touched && cache->last_touched_known() && cache->all_valid()) {
    std::vector<NodeId> effective = *touched;
    effective.insert(effective.end(), cache->last_touched().begin(),
                     cache->last_touched().end());
    std::sort(effective.begin(), effective.end());
    effective.erase(std::unique(effective.begin(), effective.end()),
                    effective.end());
    if (effective.size() * 8 <= (planning_n != 0 ? planning_n : n)) {
      plan.dirty.assign(n, 0);
      plan.resume.assign(n, 0);
      plan.base_changed.assign(n, 0);
      for (NodeId j : effective) {
        const std::size_t i = topo.internal_index(j);
        const NodeSignature sig = make_signature(j);
        ++plan.signatures_checked;
        if (cache->signature(i) == sig) continue;
        if (cache->signature(i).client_mass != sig.client_mass) {
          plan.base_changed[i] = 1;
        }
        for (NodeId a = j; a != kNoNode; a = topo.parent(a)) {
          const std::size_t ai = topo.internal_index(a);
          if (plan.dirty[ai] != 0) break;  // path above already marked
          plan.dirty[ai] = 1;
          plan.resume[ai] = cache->resumable(ai) ? 1 : 0;
        }
      }
      planned = true;
    }
  }

  if (!planned && warm) {
    for (NodeId j : topo.internal_post_order()) {
      const std::size_t i = topo.internal_index(j);
      const NodeSignature sig = make_signature(j);
      ++plan.signatures_checked;
      const bool was_valid = cache->valid(i);
      bool d = !was_valid || !(cache->signature(i) == sig);
      plan.base_changed[i] =
          (!was_valid || cache->signature(i).client_mass != sig.client_mass)
              ? 1
              : 0;
      for (NodeId c : topo.internal_children(j)) {
        if (plan.dirty[topo.internal_index(c)] != 0) {
          d = true;
          break;
        }
      }
      plan.dirty[i] = d ? 1 : 0;
      plan.resume[i] = (d && was_valid && cache->resumable(i)) ? 1 : 0;
    }
  }

  // Record this span for the next solve's fast path; an unattributable
  // span poisons the hint (the next solve must full-sweep once).
  cache->set_last_touched(touched ? std::move(*touched)
                                  : std::vector<NodeId>{},
                          touched.has_value());

  for (std::size_t i = 0; i < n; ++i) {
    if (plan.dirty[i] != 0) cache->invalidate(i);
  }
  return plan;
}

}  // namespace treeplace::dp
