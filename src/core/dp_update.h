// MinCost-WithPre: optimal replica-set update with pre-existing servers.
//
// Implements the paper's Section 3 dynamic program (Algorithms 1-4,
// Theorem 1).  Per internal node j, a table indexed by (e, n) — exactly e
// reused pre-existing servers and n new servers strictly below j — stores
// the minimal number of requests that must traverse j (Lemma 1: among
// placements with the same counts, one minimizing the traversing requests
// can always be extended to a global optimum).  Children are merged one at
// a time, each merge also considering a replica on the merged child.
//
// Complexity is the paper's O(N·(N-E+1)²·(E+1)²) ≤ O(N^5) worst case, but
// every index is bounded by the actual pre-existing/new node counts of the
// partial subtree, which makes realistic trees orders of magnitude cheaper
// (measured by bench/ablation_bounds).
//
// Deviation from the paper's Algorithm 4 (see DESIGN.md): for every root
// table entry we evaluate both "no server at root" (requires zero residual
// flow) and "server at root" (residual ≤ W), so configurations where
// keeping an idle pre-existing root is cheaper than deleting it are found
// even when delete > 1.
#pragma once

#include <cstdint>

#include "core/dp_cache.h"
#include "core/dp_contract.h"
#include "model/cost.h"
#include "model/placement.h"
#include "tree/tree.h"

namespace treeplace {

struct MinCostConfig {
  RequestCount capacity = 10;  ///< W, per-server request capacity
  double create = 0.1;         ///< extra cost of operating a new server
  double delete_cost = 0.01;   ///< cost of removing a pre-existing server
  /// Optional externally-owned per-subtree tables (see core/dp_cache.h):
  /// reuses tables of internal nodes unchanged since the cache was filled;
  /// results are bit-identical to a cold solve.  Solves sharing one cache
  /// must be serialized by the caller.
  dp::MinCostSubtreeCache* cache = nullptr;
  /// Optional edit span for cached solves (fast-path contract in
  /// core/dp_cache.h): a complete span lets planning skip the O(N)
  /// signature sweep.  Empty = unknown = full sweep.
  std::span<const ScenarioDelta> deltas;
  /// Set when `topo`/`scen` are a contracted tree (core/dp_contract.h):
  /// the placement is emitted under original ids, sealed leaves
  /// reconstruct through view.expand_sealed, and the root scan prices
  /// deletions against the original |E|.  The breakdown is then left for
  /// the caller to evaluate on the original instance.  The view must
  /// outlive the solve call.
  const dp::ContractionView* contraction = nullptr;
};

struct MinCostResult {
  bool feasible = false;
  Placement placement;       ///< all servers at mode 0
  CostBreakdown breakdown;   ///< recomputed by the independent evaluator
  /// Inner-loop iterations actually executed (ablation metric; the paper's
  /// unbounded loops would execute N·(N-E+1)²·(E+1)² of them).
  std::uint64_t merge_iterations = 0;
  /// Merge-plan slots built (leaf expansions + internal joins): 2k-1 per
  /// recomputed node with k internal children on a cold solve, O(log k)
  /// per dirty node on a subtree-resumed warm solve.
  std::uint64_t merge_steps = 0;
  /// Warm-start accounting: subtree tables rebuilt this solve vs. spliced
  /// in from the cache.  A cold solve recomputes every internal node.
  std::uint64_t nodes_recomputed = 0;
  std::uint64_t nodes_reused = 0;
  /// NodeSignatures compared while planning (see PowerSolveStats).
  std::uint64_t signatures_checked = 0;
  /// Output cells spliced from snapshots by lazy root-path joins.
  std::uint64_t cells_skipped = 0;
  /// Arena bytes holding flow/decision tables at the end of the solve.
  std::uint64_t table_bytes = 0;
};

/// Solves MinCost-WithPre over one scenario of a shared topology (the
/// scenario's pre-existing flags define E).  With E empty this degenerates
/// to MinCost-NoPre and returns a minimum replica count solution.
MinCostResult solve_min_cost_with_pre(const Topology& topo,
                                      const Scenario& scen,
                                      const MinCostConfig& config);
inline MinCostResult solve_min_cost_with_pre(const Tree& tree,
                                             const MinCostConfig& config) {
  return solve_min_cost_with_pre(tree.topology(), tree.scenario(), config);
}

/// Cache-only decision walk: emits the placement of the subtree rooted at
/// `j` for the chosen flat index into its cached root table (all servers
/// mode 0).  This is what a ContractionView's expand_sealed binds to for
/// the MinCost cache.
void reconstruct_min_cost_subtree(const Topology& topo,
                                  dp::MinCostSubtreeCache& cache,
                                  dp::MergePlanCache& plans, NodeId j,
                                  std::size_t flat, Placement& placement);

}  // namespace treeplace
