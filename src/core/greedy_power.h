// The paper's power-adapted greedy baseline (Section 5.2).
//
// GR does not know about power.  The paper's adaptation runs it once per
// integer capacity W in [W_1, W_M]; each run yields a placement whose
// servers are then configured at the smallest mode covering their load
// ("to be fair, when a server has 5 requests or less, we operate it under
// the first mode W1").  Each candidate is priced with the full Eq. 4 model
// against the tree's pre-existing set; a bounded-cost query returns the
// minimum-power candidate within budget.
#pragma once

#include <vector>

#include "core/power_common.h"
#include "model/cost.h"
#include "model/modes.h"
#include "tree/tree.h"

namespace treeplace {

struct GreedyPowerCandidate {
  RequestCount capacity = 0;  ///< the W this greedy run used
  bool feasible = false;
  Placement placement;
  double cost = 0.0;
  double power = 0.0;
  CostBreakdown breakdown;
};

struct GreedyPowerResult {
  /// One candidate per swept capacity, ascending.
  std::vector<GreedyPowerCandidate> candidates;

  /// Minimum-power feasible candidate with cost within `bound`; nullptr if
  /// none fits.
  const GreedyPowerCandidate* best_within_cost(double bound) const {
    const GreedyPowerCandidate* best = nullptr;
    for (const GreedyPowerCandidate& c : candidates) {
      if (!c.feasible || c.cost > bound + 1e-9) continue;
      if (best == nullptr || c.power < best->power) best = &c;
    }
    return best;
  }
};

/// Sweeps all integer capacities in [W_1, W_M].
GreedyPowerResult solve_greedy_power(const Topology& topo,
                                     const Scenario& scen,
                                     const ModeSet& modes,
                                     const CostModel& costs);
inline GreedyPowerResult solve_greedy_power(const Tree& tree,
                                            const ModeSet& modes,
                                            const CostModel& costs) {
  return solve_greedy_power(tree.topology(), tree.scenario(), modes, costs);
}

}  // namespace treeplace
