#include "core/dp_update.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/dp_util.h"

namespace treeplace {

namespace {

using dp::kInvalidFlow;

/// Externally ownable per-node state and its per-merge decision record
/// (see core/dp_cache.h).
using CellDecision = dp::MinCostCellDecision;
using NodeState = dp::MinCostNodeState;

struct RootChoice {
  int e = 0;
  int n = 0;
  bool place_root = false;
  double cost = std::numeric_limits<double>::infinity();
  int servers = 0;
};

class MinCostSolver {
 public:
  MinCostSolver(const Topology& topo, const Scenario& scen,
                const MinCostConfig& config)
      : topo_(topo), scen_(scen), config_(config), cache_(config.cache),
        local_states_(config.cache ? 0 : topo.num_internal()) {}

  MinCostResult solve() {
    MinCostResult result;
    const dp::DirtyPlan plan = plan_dirty();
    for (NodeId j : topo_.internal_post_order()) {
      const std::size_t i = topo_.internal_index(j);
      if (plan.dirty[i] == 0) {
        ++result.nodes_reused;
        continue;  // splice the cached subtree table in unchanged
      }
      if (!process_node(j, plan.reuse[i])) {
        result.merge_iterations = merge_iterations_;
        return result;  // infeasible client mass
      }
      if (cache_ != nullptr) cache_->commit(i, signature(j));
      ++result.nodes_recomputed;
    }
    const RootChoice best = scan_root();
    result.merge_iterations = merge_iterations_;
    if (!std::isfinite(best.cost)) return result;
    result.feasible = true;
    if (best.place_root) result.placement.add(topo_.root(), 0);
    reconstruct(topo_.root(), best.e, best.n, result.placement);
    return result;
  }

 private:
  NodeState& node_state(std::size_t i) const {
    return cache_ != nullptr ? cache_->state(i) : local_states_[i];
  }

  /// The DP ignores original modes (single-mode planning): the signature
  /// normalizes a pre-existing node's mode to 0 so mode-only edits never
  /// dirty a subtree.
  dp::NodeSignature signature(NodeId j) const {
    return dp::NodeSignature{scen_.client_mass(j),
                             scen_.pre_existing(j) ? 0 : -1};
  }

  dp::DirtyPlan plan_dirty() {
    // Only W shapes the tables; create/delete costs price the root scan,
    // recomputed every solve.
    return dp::plan_warm_solve(topo_, cache_,
                               {static_cast<std::uint64_t>(config_.capacity)},
                               [this](NodeId j) { return signature(j); });
  }

  std::size_t idx(const NodeState& s, int e, int n) const {
    return static_cast<std::size_t>(e) * static_cast<std::size_t>(s.nb + 1) +
           static_cast<std::size_t>(n);
  }

  /// Builds the table of node j by merging its internal children into the
  /// base table {(0,0) -> client mass}.  Returns false when the client mass
  /// alone exceeds W: those requests traverse every ancestor together, so
  /// the whole instance is infeasible (paper Algorithm 2, exit).
  /// (Re)builds node j's table, resuming after the first `reuse` child
  /// merges from their cached partials (see dp::plan_warm_solve); reuse ==
  /// child count keeps the table as is (only the node's parent-visible
  /// pre-existing flag changed).
  bool process_node(NodeId j, std::uint32_t reuse) {
    NodeState& s = node_state(topo_.internal_index(j));
    const RequestCount base = scen_.client_mass(j);
    if (base > config_.capacity) return false;
    const auto children = topo_.internal_children(j);

    if (reuse == 0) {
      s.eb = 0;
      s.nb = 0;
      s.flow.assign(1, base);
      s.decisions.clear();  // re-processing a cached node starts fresh
      s.partial_eb.assign(1, 0);
      s.partial_nb.assign(1, 0);
      s.partial_flows.clear();
    } else if (reuse < children.size()) {
      // Resume from the snapshot taken before merge `reuse`.
      s.eb = s.partial_eb[reuse];
      s.nb = s.partial_nb[reuse];
      s.flow = s.partial_flows[reuse];
      s.decisions.resize(reuse);
      s.partial_eb.resize(reuse + 1);
      s.partial_nb.resize(reuse + 1);
      s.partial_flows.resize(reuse);
    }
    for (std::size_t k = reuse; k < children.size(); ++k) {
      merge_child(s, children[k]);
      s.partial_eb.push_back(s.eb);
      s.partial_nb.push_back(s.nb);
    }
    return true;
  }

  void merge_child(NodeState& s, NodeId c) {
    const NodeState& cs = node_state(topo_.internal_index(c));
    if (cache_ != nullptr) {
      // Snapshot the pre-merge flow: the warm-resume point (eb/nb come
      // from the partial_eb/partial_nb bounds the DP already records).
      s.partial_flows.push_back(s.flow);
    }
    const bool child_pre = scen_.pre_existing(c);
    const int ceb = cs.eb + (child_pre ? 1 : 0);  // counts including c itself
    const int cnb = cs.nb + (child_pre ? 0 : 1);

    const int new_eb = s.eb + ceb;
    const int new_nb = s.nb + cnb;
    const std::size_t new_size = static_cast<std::size_t>(new_eb + 1) *
                                 static_cast<std::size_t>(new_nb + 1);
    std::vector<RequestCount> merged(new_size, kInvalidFlow);
    std::vector<CellDecision> dec(new_size);
    const auto merged_idx = [new_nb](int e, int n) {
      return static_cast<std::size_t>(e) * static_cast<std::size_t>(new_nb + 1) +
             static_cast<std::size_t>(n);
    };

    for (int ep = 0; ep <= s.eb; ++ep) {
      for (int np = 0; np <= s.nb; ++np) {
        const RequestCount tf = s.flow[idx(s, ep, np)];
        if (tf == kInvalidFlow) continue;
        for (int ec = 0; ec <= cs.eb; ++ec) {
          for (int nc = 0; nc <= cs.nb; ++nc) {
            const RequestCount cf =
                cs.flow[static_cast<std::size_t>(ec) *
                            static_cast<std::size_t>(cs.nb + 1) +
                        static_cast<std::size_t>(nc)];
            if (cf == kInvalidFlow) continue;
            ++merge_iterations_;
            // Option A: no replica on c — its flow joins ours.
            const RequestCount sum = tf + cf;
            if (sum <= config_.capacity) {
              const std::size_t t = merged_idx(ep + ec, np + nc);
              if (sum < merged[t]) {
                merged[t] = sum;
                dec[t] = CellDecision{static_cast<std::uint16_t>(ep),
                                      static_cast<std::uint16_t>(np), 0};
              }
            }
            // Option B: replica on c absorbs cf (cf <= W since the entry is
            // valid); our flow is unchanged.
            const std::size_t t = child_pre ? merged_idx(ep + ec + 1, np + nc)
                                            : merged_idx(ep + ec, np + nc + 1);
            if (tf < merged[t]) {
              merged[t] = tf;
              dec[t] = CellDecision{static_cast<std::uint16_t>(ep),
                                    static_cast<std::uint16_t>(np), 1};
            }
          }
        }
      }
    }

    s.eb = new_eb;
    s.nb = new_nb;
    s.flow = std::move(merged);
    s.decisions.push_back(std::move(dec));
  }

  /// Paper Algorithm 4, extended: for every (e, n) evaluate both root
  /// options and keep the cheapest overall (ties: fewer servers, then more
  /// reuse).
  RootChoice scan_root() const {
    const NodeId root = topo_.root();
    const NodeState& s = node_state(topo_.internal_index(root));
    const bool root_pre = scen_.pre_existing(root);
    const int e_total = static_cast<int>(scen_.num_pre_existing());
    RootChoice best;

    const auto consider = [&](int e, int n, bool place_root, int reused,
                              int created) {
      const int servers = reused + created;
      const double cost = static_cast<double>(servers) +
                          static_cast<double>(created) * config_.create +
                          static_cast<double>(e_total - reused) *
                              config_.delete_cost;
      constexpr double kTieEps = 1e-9;
      const bool better =
          cost < best.cost - kTieEps ||
          (cost <= best.cost + kTieEps &&
           (servers < best.servers ||
            (servers == best.servers && e + (place_root && root_pre) >
                                            best.e + (best.place_root &&
                                                      root_pre))));
      if (better) best = RootChoice{e, n, place_root, cost, servers};
    };

    for (int e = 0; e <= s.eb; ++e) {
      for (int n = 0; n <= s.nb; ++n) {
        const RequestCount f = s.flow[idx(s, e, n)];
        if (f == kInvalidFlow) continue;
        if (f == 0) {
          consider(e, n, /*place_root=*/false, e, n);
        }
        // Root server absorbs the residual flow f (<= W by table validity).
        if (root_pre) {
          consider(e, n, /*place_root=*/true, e + 1, n);
        } else {
          consider(e, n, /*place_root=*/true, e, n + 1);
        }
      }
    }
    return best;
  }

  /// Unwinds the per-merge decisions of node j for target counts (e, n),
  /// adding child replicas to `placement`.
  void reconstruct(NodeId j, int e, int n, Placement& placement) const {
    const NodeState& s = node_state(topo_.internal_index(j));
    const auto children = topo_.internal_children(j);
    int cur_e = e;
    int cur_n = n;
    for (std::size_t k = children.size(); k-- > 0;) {
      const NodeId c = children[k];
      const bool child_pre = scen_.pre_existing(c);
      const int nb_after = s.partial_nb[k + 1];
      const std::size_t flat =
          static_cast<std::size_t>(cur_e) *
              static_cast<std::size_t>(nb_after + 1) +
          static_cast<std::size_t>(cur_n);
      const CellDecision d = s.decisions[k][flat];
      int child_e = cur_e - d.e_prev;
      int child_n = cur_n - d.n_prev;
      if (d.place != 0) {
        placement.add(c, /*mode=*/0);
        (child_pre ? child_e : child_n) -= 1;
      }
      TREEPLACE_DCHECK(child_e >= 0 && child_n >= 0);
      reconstruct(c, child_e, child_n, placement);
      cur_e = d.e_prev;
      cur_n = d.n_prev;
    }
    TREEPLACE_DCHECK(cur_e == 0 && cur_n == 0);
  }

  const Topology& topo_;
  const Scenario& scen_;
  const MinCostConfig& config_;
  /// Session-owned states when warm-starting, else this solve's locals.
  dp::MinCostSubtreeCache* const cache_;
  mutable std::vector<NodeState> local_states_;
  std::uint64_t merge_iterations_ = 0;
};

}  // namespace

MinCostResult solve_min_cost_with_pre(const Topology& topo,
                                      const Scenario& scen,
                                      const MinCostConfig& config) {
  TREEPLACE_CHECK(config.capacity > 0);
  TREEPLACE_CHECK(config.create >= 0.0);
  TREEPLACE_CHECK(config.delete_cost >= 0.0);
  MinCostSolver solver(topo, scen, config);
  MinCostResult result = solver.solve();
  if (result.feasible) {
    result.breakdown = evaluate_cost(
        topo, scen, result.placement,
        CostModel::simple(config.create, config.delete_cost));
  }
  return result;
}

}  // namespace treeplace
