#include "core/dp_update.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/dp_util.h"
#include "core/merge_kernel.h"

namespace treeplace {

namespace {

using dp::ArenaTable;
using dp::Box;
using dp::Decision;
using dp::kInvalidFlow;
using dp::TableArena;

/// Externally ownable per-node state (see core/dp_cache.h).  Slot tables
/// are flat arrays over Box({eb, nb}) — stride(0) = nb+1, stride(1) = 1 —
/// so the shared merge kernel applies unchanged; decisions use the common
/// dp::Decision record (internal slots: operand flats; leaf slots: the
/// child's flat with mode 0 when a replica sits on the child, -1 when not).
using NodeState = dp::MinCostNodeState;

/// Per-slot warm-diff state; see the exact power DP (power_dp.cc).
enum class SlotDiff : std::uint8_t { kClean, kChanged, kUnknown };

struct RootChoice {
  int e = 0;
  int n = 0;
  bool place_root = false;
  double cost = std::numeric_limits<double>::infinity();
  int servers = 0;
};

class MinCostSolver {
 public:
  MinCostSolver(const Topology& topo, const Scenario& scen,
                const MinCostConfig& config)
      : topo_(topo), scen_(scen), config_(config), cache_(config.cache),
        arena_(config.cache ? &config.cache->arena() : &own_arena_),
        local_states_(config.cache ? 0 : topo.num_internal()) {}

  MinCostResult solve() {
    MinCostResult result;
    const dp::DirtyPlan plan = plan_dirty();
    result.signatures_checked = plan.signatures_checked;
    for (NodeId j : topo_.internal_post_order()) {
      const std::size_t i = topo_.internal_index(j);
      if (plan.dirty[i] == 0) {
        ++result.nodes_reused;
        continue;  // splice the cached subtree table in unchanged
      }
      if (!process_node(j, plan)) {
        finish_stats(result);
        return result;  // infeasible client mass
      }
      if (cache_ != nullptr) cache_->commit(i, signature(j));
      ++result.nodes_recomputed;
    }
    const RootChoice best = scan_root();
    finish_stats(result);
    if (!std::isfinite(best.cost)) return result;
    result.feasible = true;
    if (best.place_root) result.placement.add(out_id(topo_.root()), 0);
    const NodeState& s = node_state(topo_.internal_index(topo_.root()));
    reconstruct(topo_.root(), flat_idx(best.e, best.n, s.nb),
                result.placement);
    return result;
  }

 private:
  NodeState& node_state(std::size_t i) const {
    return cache_ != nullptr ? cache_->state(i) : local_states_[i];
  }

  /// The DP ignores original modes (single-mode planning): the signature
  /// normalizes a pre-existing node's mode to 0 so mode-only edits never
  /// dirty a subtree.
  dp::NodeSignature signature(NodeId j) const {
    return dp::NodeSignature{scen_.client_mass(j),
                             scen_.pre_existing(j) ? 0 : -1};
  }

  dp::DirtyPlan plan_dirty() {
    // Only W shapes the tables; create/delete costs price the root scan,
    // recomputed every solve.
    return dp::plan_warm_solve(
        topo_, cache_, {static_cast<std::uint64_t>(config_.capacity)},
        [this](NodeId j) { return signature(j); }, config_.deltas,
        config_.contraction != nullptr
            ? config_.contraction->planning_internal
            : 0);
  }

  void finish_stats(MinCostResult& result) const {
    result.merge_iterations = merge_iterations_;
    result.merge_steps = merge_steps_;
    result.cells_skipped = cells_skipped_;
    result.table_bytes = arena_->used_bytes();
  }

  static std::size_t flat_idx(int e, int n, int nb) {
    return static_cast<std::size_t>(e) * static_cast<std::size_t>(nb + 1) +
           static_cast<std::size_t>(n);
  }

  /// (Re)builds node j's table along the merge plan (dp::MergePlan over
  /// its internal children; the node's own client mass folds into the
  /// root slot last).  Returns false when the client mass alone exceeds
  /// W: those requests traverse every ancestor together, so the whole
  /// instance is infeasible (paper Algorithm 2, exit).  With a resumable
  /// cache entry, clean children's slots are spliced in and only dirty
  /// leaves + their root paths + the base fold re-run, lazily where the
  /// dirty operand's value diff is small (core/merge_kernel.h).
  bool process_node(NodeId j, const dp::DirtyPlan& plan) {
    const std::size_t i = topo_.internal_index(j);
    if (cache_ != nullptr) cache_->ensure_unpacked(i);
    NodeState& s = node_state(i);
    const RequestCount base = scen_.client_mass(j);
    if (base > config_.capacity) return false;
    const auto children = topo_.internal_children(j);
    const std::size_t k = children.size();
    const dp::MergePlan& mplan = plans_.get(k);
    const std::size_t slots = mplan.num_slots();

    const bool resume = plan.resume[i] != 0;
    const dp::SlotDirtiness slot_dirty =
        dp::plan_slot_dirtiness(plan, topo_, children, mplan, resume);
    if (!resume) {
      for (auto& t : s.slot_flows) t.clear(*arena_);
      for (auto& t : s.slot_decisions) t.clear(*arena_);
      s.slot_eb.assign(slots, 0);
      s.slot_nb.assign(slots, 0);
      s.slot_flows.assign(slots, {});
      s.slot_decisions.assign(slots, {});
    }
    slot_diff_.assign(slots, SlotDiff::kClean);
    slot_changed_.resize(slots);
    if (resume) {
      // One rolling changed-cell footprint for the whole rebuild (see
      // dp::RollingDiffBudget).
      std::size_t dirty_cells = 0;
      for (std::size_t t = 0; t < slots; ++t) {
        if (slot_dirty.dirty[t] != 0) dirty_cells += s.slot_flows[t].size();
      }
      diff_budget_.reset(dirty_cells);
    }

    for (std::size_t c = 0; c < k; ++c) {
      if (slot_dirty.dirty[c] != 0) expand_leaf(s, c, children[c], resume);
    }
    for (std::size_t t = 0; t < mplan.steps().size(); ++t) {
      const std::uint32_t out = mplan.step_slot(t);
      if (slot_dirty.dirty[out] != 0) {
        merge_step(s, mplan.steps()[t], out, resume);
      }
    }
    if (!resume || slot_dirty.any || plan.base_changed[i] != 0) {
      fold_base(s, base, mplan);
    }

    if (cache_ == nullptr) {
      // One-shot solve: the slot snapshots are never resumed.  The slot
      // bounds and decisions stay (reconstruction re-derives flat indices
      // from them).
      for (auto& t : s.slot_flows) t.clear(*arena_);
      s.slot_flows.clear();
      s.slot_flows.shrink_to_fit();
    }
    return true;
  }

  /// Installs a rebuilt slot table, diffing it against the previous
  /// snapshot when resuming; see the exact power DP's finish_slot.
  void finish_slot(NodeState& s, std::size_t slot, int eb, int nb,
                   ArenaTable<RequestCount>& flow, ArenaTable<Decision>& dec,
                   bool try_diff) {
    if (try_diff) {
      ArenaTable<RequestCount>& old_flow = s.slot_flows[slot];
      if (old_flow.size() == flow.size() && s.slot_eb[slot] == eb &&
          s.slot_nb[slot] == nb &&
          dp::diff_tables(old_flow.span(), flow.span(),
                          diff_budget_.slot_cap(flow.size()),
                          slot_changed_[slot])) {
        diff_budget_.charge(slot_changed_[slot].size());
        slot_diff_[slot] = slot_changed_[slot].empty() ? SlotDiff::kClean
                                                       : SlotDiff::kChanged;
      } else {
        slot_diff_[slot] = SlotDiff::kUnknown;
      }
    }
    s.slot_flows[slot].clear(*arena_);
    s.slot_flows[slot] = flow.take();
    s.slot_decisions[slot].clear(*arena_);
    s.slot_decisions[slot] = dec.take();
    s.slot_eb[slot] = eb;
    s.slot_nb[slot] = nb;
  }

  /// Fills leaf slot `slot` with child c's table extended by the child's
  /// own placement option: every child state stays open, and a replica on
  /// c (absorbing its flow) bumps the reused or new count.
  void expand_leaf(NodeState& s, std::size_t slot, NodeId c, bool try_diff) {
    if (cache_ != nullptr) cache_->ensure_unpacked(topo_.internal_index(c));
    const NodeState& cs = node_state(topo_.internal_index(c));
    const bool child_pre = scen_.pre_existing(c);
    const int leb = cs.eb + (child_pre ? 1 : 0);
    const int lnb = cs.nb + (child_pre ? 0 : 1);
    const Box cbox({cs.eb, cs.nb});
    const Box box({leb, lnb});
    ArenaTable<RequestCount> flow;
    flow.assign(*arena_, box.size(), kInvalidFlow);
    ArenaTable<Decision> dec;
    dec.resize_uninit(*arena_, box.size());
    ++merge_steps_;
    dp::compact_entries(cbox, cs.flow.span(), box, scratch_.left);
    const dp::EntryList& entries = scratch_.left;
    merge_iterations_ += entries.size();
    // A replica on c zeroes its flow and bumps e (pre-existing child) or n.
    const std::size_t place_stride =
        child_pre ? box.stride(0) : box.stride(1);
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const RequestCount cf = entries.flow[e];
      const std::uint32_t cflat = entries.flat[e];
      // Option A: no replica on c — its flow stays open.
      const std::size_t t = static_cast<std::size_t>(entries.dot[e]);
      if (cf < flow[t]) {
        flow[t] = cf;
        dec[t] = Decision{0, cflat, -1};
      }
      // Option B: replica on c absorbs cf (cf <= W by table validity).
      const std::size_t tp = t + place_stride;
      if (RequestCount{0} < flow[tp]) {
        flow[tp] = 0;
        dec[tp] = Decision{0, cflat, 0};
      }
    }
    finish_slot(s, slot, leb, lnb, flow, dec, try_diff);
  }

  /// Joins two merge-plan slots: counts add, flows add under the W cut.
  /// Runs through the shared kernel (serial — this DP has no pool — and
  /// lazy when resuming with one cleanly-diffed dirty operand).
  void merge_step(NodeState& s, const dp::MergePlan::Step& step,
                  std::uint32_t out, bool resume) {
    const int leb = s.slot_eb[step.left];
    const int lnb = s.slot_nb[step.left];
    const int reb = s.slot_eb[step.right];
    const int rnb = s.slot_nb[step.right];
    const int new_eb = leb + reb;
    const int new_nb = lnb + rnb;
    const Box lbox({leb, lnb});
    const Box rbox({reb, rnb});
    const Box new_box({new_eb, new_nb});
    ArenaTable<RequestCount> merged;
    merged.resize_uninit(*arena_, new_box.size());
    ArenaTable<Decision> dec;
    dec.resize_uninit(*arena_, new_box.size());
    ++merge_steps_;

    const dp::JoinInputs in{&lbox,
                            s.slot_flows[step.left].span(),
                            &rbox,
                            s.slot_flows[step.right].span(),
                            &new_box,
                            config_.capacity};

    dp::LazyJoin lazy;
    const dp::LazyJoin* lazy_ptr = nullptr;
    if (resume) {
      const SlotDiff ld = slot_diff_[step.left];
      const SlotDiff rd = slot_diff_[step.right];
      const ArenaTable<RequestCount>& old_flow = s.slot_flows[out];
      // Both operands may carry small diffs (rolling multi-delta batches);
      // the join sweeps the changed sets from both sides.
      if (old_flow.size() == new_box.size() &&
          s.slot_decisions[out].size() == new_box.size() &&
          s.slot_eb[out] == new_eb && s.slot_nb[out] == new_nb &&
          ld != SlotDiff::kUnknown && rd != SlotDiff::kUnknown) {
        if (ld == SlotDiff::kChanged) {
          lazy.changed_left = slot_changed_[step.left];
        }
        if (rd == SlotDiff::kChanged) {
          lazy.changed_right = slot_changed_[step.right];
        }
        lazy.old_flow = old_flow.span();
        lazy.old_dec = s.slot_decisions[out].span();
        lazy_ptr = &lazy;
      }
    }

    const dp::JoinStats js =
        dp::join_slots(in, {merged.data(), merged.size()},
                       {dec.data(), dec.size()}, /*pool=*/nullptr, scratch_,
                       lazy_ptr);
    merge_iterations_ += js.pairs;
    cells_skipped_ += js.cells_skipped;

    finish_slot(s, out, new_eb, new_nb, merged, dec, resume);
  }

  /// Folds the node's own client mass into the root slot; flat indices
  /// are unchanged.
  void fold_base(NodeState& s, RequestCount base,
                 const dp::MergePlan& mplan) {
    if (mplan.num_leaves() == 0) {
      s.eb = 0;
      s.nb = 0;
      s.flow.assign(*arena_, 1, base);
      return;
    }
    const std::uint32_t root = mplan.root_slot();
    s.eb = s.slot_eb[root];
    s.nb = s.slot_nb[root];
    s.flow.assign_copy(*arena_, s.slot_flows[root].span());
    for (RequestCount& f : s.flow) {
      if (f == kInvalidFlow) continue;
      f += base;
      if (f > config_.capacity) f = kInvalidFlow;
    }
  }

  /// Paper Algorithm 4, extended: for every (e, n) evaluate both root
  /// options and keep the cheapest overall (ties: fewer servers, then more
  /// reuse).
  RootChoice scan_root() const {
    const NodeId root = topo_.root();
    if (cache_ != nullptr) {
      cache_->ensure_unpacked(topo_.internal_index(root));
    }
    const NodeState& s = node_state(topo_.internal_index(root));
    const bool root_pre = scen_.pre_existing(root);
    // Deletions price against the whole tree's E; the contracted scenario
    // cannot see sealed interiors, so the view carries the original total.
    const int e_total = static_cast<int>(
        config_.contraction != nullptr ? config_.contraction->num_pre_existing
                                       : scen_.num_pre_existing());
    RootChoice best;

    const auto consider = [&](int e, int n, bool place_root, int reused,
                              int created) {
      const int servers = reused + created;
      const double cost = static_cast<double>(servers) +
                          static_cast<double>(created) * config_.create +
                          static_cast<double>(e_total - reused) *
                              config_.delete_cost;
      constexpr double kTieEps = 1e-9;
      const bool better =
          cost < best.cost - kTieEps ||
          (cost <= best.cost + kTieEps &&
           (servers < best.servers ||
            (servers == best.servers && e + (place_root && root_pre) >
                                            best.e + (best.place_root &&
                                                      root_pre))));
      if (better) best = RootChoice{e, n, place_root, cost, servers};
    };

    for (int e = 0; e <= s.eb; ++e) {
      for (int n = 0; n <= s.nb; ++n) {
        const RequestCount f = s.flow[flat_idx(e, n, s.nb)];
        if (f == kInvalidFlow) continue;
        if (f == 0) {
          consider(e, n, /*place_root=*/false, e, n);
        }
        // Root server absorbs the residual flow f (<= W by table validity).
        if (root_pre) {
          consider(e, n, /*place_root=*/true, e + 1, n);
        } else {
          consider(e, n, /*place_root=*/true, e, n + 1);
        }
      }
    }
    return best;
  }

  /// Unwinds node j's merge tree from the root-slot flat index, adding
  /// child replicas to `placement`.
  void reconstruct(NodeId j, std::size_t flat, Placement& placement) const {
    // A sealed leaf owns no slot decisions here: its frozen subtree's
    // placement is reconstructed from the original session cache.
    if (config_.contraction != nullptr &&
        config_.contraction->sealed[topo_.internal_index(j)] != 0) {
      config_.contraction->expand_sealed(out_id(j), flat, placement);
      return;
    }
    // Clean nodes skipped by the warm solve may still be packed; the walk
    // reads their decisions.
    if (cache_ != nullptr) cache_->ensure_unpacked(topo_.internal_index(j));
    const NodeState& s = node_state(topo_.internal_index(j));
    const auto children = topo_.internal_children(j);
    if (children.empty()) {
      TREEPLACE_DCHECK(flat == 0);
      return;
    }
    const dp::MergePlan& mplan = plans_.get(children.size());
    reconstruct_slot(s, children, mplan, mplan.root_slot(), flat, placement);
  }

  void reconstruct_slot(const NodeState& s, std::span<const NodeId> children,
                        const dp::MergePlan& mplan, std::uint32_t slot,
                        std::size_t flat, Placement& placement) const {
    const Decision d = s.slot_decisions[slot][flat];
    if (slot < mplan.num_leaves()) {
      const NodeId c = children[slot];
      if (d.mode >= 0) placement.add(out_id(c), /*mode=*/0);
      reconstruct(c, d.right, placement);
      return;
    }
    const dp::MergePlan::Step& step =
        mplan.steps()[slot - mplan.num_leaves()];
    reconstruct_slot(s, children, mplan, step.left, d.left, placement);
    reconstruct_slot(s, children, mplan, step.right, d.right, placement);
  }

  /// Output-id translation: contracted solves emit original ids.
  NodeId out_id(NodeId c) const {
    return config_.contraction != nullptr
               ? config_.contraction->to_original[static_cast<std::size_t>(c)]
               : c;
  }

  const Topology& topo_;
  const Scenario& scen_;
  const MinCostConfig& config_;
  /// Session-owned states when warm-starting, else this solve's locals.
  dp::MinCostSubtreeCache* const cache_;
  /// Table storage: the cache's arena for warm solves, else a local one.
  TableArena own_arena_;
  TableArena* const arena_;
  mutable std::vector<NodeState> local_states_;
  mutable dp::MergePlanCache plans_;
  dp::JoinScratch scratch_;
  dp::RollingDiffBudget diff_budget_;
  /// Per-slot diff state of the node currently being processed.
  std::vector<SlotDiff> slot_diff_;
  std::vector<std::vector<std::uint32_t>> slot_changed_;
  std::uint64_t merge_iterations_ = 0;
  std::uint64_t merge_steps_ = 0;
  std::uint64_t cells_skipped_ = 0;
};

}  // namespace

MinCostResult solve_min_cost_with_pre(const Topology& topo,
                                      const Scenario& scen,
                                      const MinCostConfig& config) {
  TREEPLACE_CHECK(config.capacity > 0);
  TREEPLACE_CHECK(config.create >= 0.0);
  TREEPLACE_CHECK(config.delete_cost >= 0.0);
  MinCostSolver solver(topo, scen, config);
  MinCostResult result = solver.solve();
  // A contracted solve's placement names original ids, which this
  // topo/scen cannot price; the caller evaluates on the original instance.
  if (result.feasible && config.contraction == nullptr) {
    result.breakdown = evaluate_cost(
        topo, scen, result.placement,
        CostModel::simple(config.create, config.delete_cost));
  }
  return result;
}

namespace {

void reconstruct_min_cost_slot(const Topology& topo,
                               dp::MinCostSubtreeCache& cache,
                               dp::MergePlanCache& plans,
                               const dp::MinCostNodeState& s,
                               std::span<const NodeId> children,
                               const dp::MergePlan& mplan, std::uint32_t slot,
                               std::size_t flat, Placement& placement) {
  const Decision d = s.slot_decisions[slot][flat];
  if (slot < mplan.num_leaves()) {
    const NodeId c = children[slot];
    if (d.mode >= 0) placement.add(c, /*mode=*/0);
    reconstruct_min_cost_subtree(topo, cache, plans, c, d.right, placement);
    return;
  }
  const dp::MergePlan::Step& step = mplan.steps()[slot - mplan.num_leaves()];
  reconstruct_min_cost_slot(topo, cache, plans, s, children, mplan, step.left,
                            d.left, placement);
  reconstruct_min_cost_slot(topo, cache, plans, s, children, mplan,
                            step.right, d.right, placement);
}

}  // namespace

void reconstruct_min_cost_subtree(const Topology& topo,
                                  dp::MinCostSubtreeCache& cache,
                                  dp::MergePlanCache& plans, NodeId j,
                                  std::size_t flat, Placement& placement) {
  const std::size_t i = topo.internal_index(j);
  cache.ensure_unpacked(i);
  const dp::MinCostNodeState& s = cache.state(i);
  const auto children = topo.internal_children(j);
  if (children.empty()) {
    TREEPLACE_DCHECK(flat == 0);
    return;
  }
  const dp::MergePlan& mplan = plans.get(children.size());
  reconstruct_min_cost_slot(topo, cache, plans, s, children, mplan,
                            mplan.root_slot(), flat, placement);
}

}  // namespace treeplace
