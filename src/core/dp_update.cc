#include "core/dp_update.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/dp_util.h"

namespace treeplace {

namespace {

using dp::kInvalidFlow;

/// Externally ownable per-node state and its per-slot decision record
/// (see core/dp_cache.h).
using CellDecision = dp::MinCostCellDecision;
using NodeState = dp::MinCostNodeState;

struct RootChoice {
  int e = 0;
  int n = 0;
  bool place_root = false;
  double cost = std::numeric_limits<double>::infinity();
  int servers = 0;
};

class MinCostSolver {
 public:
  MinCostSolver(const Topology& topo, const Scenario& scen,
                const MinCostConfig& config)
      : topo_(topo), scen_(scen), config_(config), cache_(config.cache),
        local_states_(config.cache ? 0 : topo.num_internal()) {}

  MinCostResult solve() {
    MinCostResult result;
    const dp::DirtyPlan plan = plan_dirty();
    result.signatures_checked = plan.signatures_checked;
    for (NodeId j : topo_.internal_post_order()) {
      const std::size_t i = topo_.internal_index(j);
      if (plan.dirty[i] == 0) {
        ++result.nodes_reused;
        continue;  // splice the cached subtree table in unchanged
      }
      if (!process_node(j, plan)) {
        result.merge_iterations = merge_iterations_;
        result.merge_steps = merge_steps_;
        return result;  // infeasible client mass
      }
      if (cache_ != nullptr) cache_->commit(i, signature(j));
      ++result.nodes_recomputed;
    }
    const RootChoice best = scan_root();
    result.merge_iterations = merge_iterations_;
    result.merge_steps = merge_steps_;
    if (!std::isfinite(best.cost)) return result;
    result.feasible = true;
    if (best.place_root) result.placement.add(topo_.root(), 0);
    reconstruct(topo_.root(), best.e, best.n, result.placement);
    return result;
  }

 private:
  NodeState& node_state(std::size_t i) const {
    return cache_ != nullptr ? cache_->state(i) : local_states_[i];
  }

  /// The DP ignores original modes (single-mode planning): the signature
  /// normalizes a pre-existing node's mode to 0 so mode-only edits never
  /// dirty a subtree.
  dp::NodeSignature signature(NodeId j) const {
    return dp::NodeSignature{scen_.client_mass(j),
                             scen_.pre_existing(j) ? 0 : -1};
  }

  dp::DirtyPlan plan_dirty() {
    // Only W shapes the tables; create/delete costs price the root scan,
    // recomputed every solve.
    return dp::plan_warm_solve(topo_, cache_,
                               {static_cast<std::uint64_t>(config_.capacity)},
                               [this](NodeId j) { return signature(j); },
                               config_.deltas);
  }

  static std::size_t flat_idx(int e, int n, int nb) {
    return static_cast<std::size_t>(e) * static_cast<std::size_t>(nb + 1) +
           static_cast<std::size_t>(n);
  }

  /// (Re)builds node j's table along the merge plan (dp::MergePlan over
  /// its internal children; the node's own client mass folds into the
  /// root slot last).  Returns false when the client mass alone exceeds
  /// W: those requests traverse every ancestor together, so the whole
  /// instance is infeasible (paper Algorithm 2, exit).  With a resumable
  /// cache entry, clean children's slots are spliced in and only dirty
  /// leaves + their root paths + the base fold re-run.
  bool process_node(NodeId j, const dp::DirtyPlan& plan) {
    const std::size_t i = topo_.internal_index(j);
    NodeState& s = node_state(i);
    const RequestCount base = scen_.client_mass(j);
    if (base > config_.capacity) return false;
    const auto children = topo_.internal_children(j);
    const std::size_t k = children.size();
    const dp::MergePlan& mplan = plans_.get(k);
    const std::size_t slots = mplan.num_slots();

    const bool resume = plan.resume[i] != 0;
    const dp::SlotDirtiness slot_dirty =
        dp::plan_slot_dirtiness(plan, topo_, children, mplan, resume);
    if (!resume) {
      s.slot_eb.assign(slots, 0);
      s.slot_nb.assign(slots, 0);
      s.slot_flows.assign(slots, {});
      s.slot_decisions.assign(slots, {});
    }

    for (std::size_t c = 0; c < k; ++c) {
      if (slot_dirty.dirty[c] != 0) expand_leaf(s, c, children[c]);
    }
    for (std::size_t t = 0; t < mplan.steps().size(); ++t) {
      const std::uint32_t out = mplan.step_slot(t);
      if (slot_dirty.dirty[out] != 0) merge_step(s, mplan.steps()[t], out);
    }
    if (!resume || slot_dirty.any || plan.base_changed[i] != 0) {
      fold_base(s, base, mplan);
    }

    if (cache_ == nullptr) {
      // One-shot solve: the slot snapshots are never resumed.  The slot
      // bounds and decisions stay (reconstruction re-derives flat indices
      // from them).
      s.slot_flows.clear();
      s.slot_flows.shrink_to_fit();
    }
    return true;
  }

  /// Fills leaf slot `slot` with child c's table extended by the child's
  /// own placement option: every child state stays open, and a replica on
  /// c (absorbing its flow) bumps the reused or new count.
  void expand_leaf(NodeState& s, std::size_t slot, NodeId c) {
    const NodeState& cs = node_state(topo_.internal_index(c));
    const bool child_pre = scen_.pre_existing(c);
    const int leb = cs.eb + (child_pre ? 1 : 0);
    const int lnb = cs.nb + (child_pre ? 0 : 1);
    const std::size_t size = static_cast<std::size_t>(leb + 1) *
                             static_cast<std::size_t>(lnb + 1);
    std::vector<RequestCount> flow(size, kInvalidFlow);
    std::vector<CellDecision> dec(size);
    ++merge_steps_;
    for (int ec = 0; ec <= cs.eb; ++ec) {
      for (int nc = 0; nc <= cs.nb; ++nc) {
        const RequestCount cf = cs.flow[flat_idx(ec, nc, cs.nb)];
        if (cf == kInvalidFlow) continue;
        ++merge_iterations_;
        // Option A: no replica on c — its flow stays open.
        const std::size_t t = flat_idx(ec, nc, lnb);
        if (cf < flow[t]) {
          flow[t] = cf;
          dec[t] = CellDecision{0, 0, 0};
        }
        // Option B: replica on c absorbs cf (cf <= W by table validity).
        const std::size_t tp = child_pre ? flat_idx(ec + 1, nc, lnb)
                                         : flat_idx(ec, nc + 1, lnb);
        if (RequestCount{0} < flow[tp]) {
          flow[tp] = 0;
          dec[tp] = CellDecision{0, 0, 1};
        }
      }
    }
    s.slot_eb[slot] = leb;
    s.slot_nb[slot] = lnb;
    s.slot_flows[slot] = std::move(flow);
    s.slot_decisions[slot] = std::move(dec);
  }

  /// Joins two merge-plan slots: counts add, flows add under the W cut.
  void merge_step(NodeState& s, const dp::MergePlan::Step& step,
                  std::uint32_t out) {
    const int leb = s.slot_eb[step.left];
    const int lnb = s.slot_nb[step.left];
    const int reb = s.slot_eb[step.right];
    const int rnb = s.slot_nb[step.right];
    const std::vector<RequestCount>& lf = s.slot_flows[step.left];
    const std::vector<RequestCount>& rf = s.slot_flows[step.right];
    const int new_eb = leb + reb;
    const int new_nb = lnb + rnb;
    const std::size_t size = static_cast<std::size_t>(new_eb + 1) *
                             static_cast<std::size_t>(new_nb + 1);
    std::vector<RequestCount> merged(size, kInvalidFlow);
    std::vector<CellDecision> dec(size);
    ++merge_steps_;

    for (int el = 0; el <= leb; ++el) {
      for (int nl = 0; nl <= lnb; ++nl) {
        const RequestCount fl = lf[flat_idx(el, nl, lnb)];
        if (fl == kInvalidFlow) continue;
        for (int er = 0; er <= reb; ++er) {
          for (int nr = 0; nr <= rnb; ++nr) {
            const RequestCount fr = rf[flat_idx(er, nr, rnb)];
            if (fr == kInvalidFlow) continue;
            ++merge_iterations_;
            const RequestCount sum = fl + fr;
            if (sum > config_.capacity) continue;
            const std::size_t t = flat_idx(el + er, nl + nr, new_nb);
            if (sum < merged[t]) {
              merged[t] = sum;
              dec[t] = CellDecision{static_cast<std::uint16_t>(el),
                                    static_cast<std::uint16_t>(nl), 0};
            }
          }
        }
      }
    }

    s.slot_eb[out] = new_eb;
    s.slot_nb[out] = new_nb;
    s.slot_flows[out] = std::move(merged);
    s.slot_decisions[out] = std::move(dec);
  }

  /// Folds the node's own client mass into the root slot; flat indices
  /// are unchanged.
  void fold_base(NodeState& s, RequestCount base,
                 const dp::MergePlan& mplan) {
    if (mplan.num_leaves() == 0) {
      s.eb = 0;
      s.nb = 0;
      s.flow.assign(1, base);
      return;
    }
    const std::uint32_t root = mplan.root_slot();
    s.eb = s.slot_eb[root];
    s.nb = s.slot_nb[root];
    s.flow = s.slot_flows[root];
    for (RequestCount& f : s.flow) {
      if (f == kInvalidFlow) continue;
      f += base;
      if (f > config_.capacity) f = kInvalidFlow;
    }
  }

  /// Paper Algorithm 4, extended: for every (e, n) evaluate both root
  /// options and keep the cheapest overall (ties: fewer servers, then more
  /// reuse).
  RootChoice scan_root() const {
    const NodeId root = topo_.root();
    const NodeState& s = node_state(topo_.internal_index(root));
    const bool root_pre = scen_.pre_existing(root);
    const int e_total = static_cast<int>(scen_.num_pre_existing());
    RootChoice best;

    const auto consider = [&](int e, int n, bool place_root, int reused,
                              int created) {
      const int servers = reused + created;
      const double cost = static_cast<double>(servers) +
                          static_cast<double>(created) * config_.create +
                          static_cast<double>(e_total - reused) *
                              config_.delete_cost;
      constexpr double kTieEps = 1e-9;
      const bool better =
          cost < best.cost - kTieEps ||
          (cost <= best.cost + kTieEps &&
           (servers < best.servers ||
            (servers == best.servers && e + (place_root && root_pre) >
                                            best.e + (best.place_root &&
                                                      root_pre))));
      if (better) best = RootChoice{e, n, place_root, cost, servers};
    };

    for (int e = 0; e <= s.eb; ++e) {
      for (int n = 0; n <= s.nb; ++n) {
        const RequestCount f = s.flow[flat_idx(e, n, s.nb)];
        if (f == kInvalidFlow) continue;
        if (f == 0) {
          consider(e, n, /*place_root=*/false, e, n);
        }
        // Root server absorbs the residual flow f (<= W by table validity).
        if (root_pre) {
          consider(e, n, /*place_root=*/true, e + 1, n);
        } else {
          consider(e, n, /*place_root=*/true, e, n + 1);
        }
      }
    }
    return best;
  }

  /// Unwinds node j's merge tree for target counts (e, n), adding child
  /// replicas to `placement`.
  void reconstruct(NodeId j, int e, int n, Placement& placement) const {
    const NodeState& s = node_state(topo_.internal_index(j));
    const auto children = topo_.internal_children(j);
    if (children.empty()) {
      TREEPLACE_DCHECK(e == 0 && n == 0);
      return;
    }
    const dp::MergePlan& mplan = plans_.get(children.size());
    reconstruct_slot(s, children, mplan, mplan.root_slot(), e, n, placement);
  }

  void reconstruct_slot(const NodeState& s, std::span<const NodeId> children,
                        const dp::MergePlan& mplan, std::uint32_t slot,
                        int e, int n, Placement& placement) const {
    const std::size_t flat = flat_idx(e, n, s.slot_nb[slot]);
    const CellDecision d = s.slot_decisions[slot][flat];
    if (slot < mplan.num_leaves()) {
      const NodeId c = children[slot];
      int child_e = e;
      int child_n = n;
      if (d.place != 0) {
        placement.add(c, /*mode=*/0);
        (scen_.pre_existing(c) ? child_e : child_n) -= 1;
      }
      TREEPLACE_DCHECK(child_e >= 0 && child_n >= 0);
      reconstruct(c, child_e, child_n, placement);
      return;
    }
    const dp::MergePlan::Step& step =
        mplan.steps()[slot - mplan.num_leaves()];
    reconstruct_slot(s, children, mplan, step.left, d.e_prev, d.n_prev,
                     placement);
    reconstruct_slot(s, children, mplan, step.right, e - d.e_prev,
                     n - d.n_prev, placement);
  }

  const Topology& topo_;
  const Scenario& scen_;
  const MinCostConfig& config_;
  /// Session-owned states when warm-starting, else this solve's locals.
  dp::MinCostSubtreeCache* const cache_;
  mutable std::vector<NodeState> local_states_;
  mutable dp::MergePlanCache plans_;
  std::uint64_t merge_iterations_ = 0;
  std::uint64_t merge_steps_ = 0;
};

}  // namespace

MinCostResult solve_min_cost_with_pre(const Topology& topo,
                                      const Scenario& scen,
                                      const MinCostConfig& config) {
  TREEPLACE_CHECK(config.capacity > 0);
  TREEPLACE_CHECK(config.create >= 0.0);
  TREEPLACE_CHECK(config.delete_cost >= 0.0);
  MinCostSolver solver(topo, scen, config);
  MinCostResult result = solver.solve();
  if (result.feasible) {
    result.breakdown = evaluate_cost(
        topo, scen, result.placement,
        CostModel::simple(config.create, config.delete_cost));
  }
  return result;
}

}  // namespace treeplace
