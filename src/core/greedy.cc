#include "core/greedy.h"

#include <algorithm>
#include <vector>

namespace treeplace {

GreedyResult solve_greedy_min_count(const Topology& topo, const Scenario& scen,
                                    RequestCount capacity) {
  GreedyResult result;
  std::vector<RequestCount> outflow(topo.num_internal(), 0);
  std::vector<char> is_server(topo.num_internal(), 0);

  for (NodeId j : topo.internal_post_order()) {
    RequestCount inflow = scen.client_mass(j);
    // Children that were not already made servers forward their flow here.
    std::vector<NodeId> forwarding;
    for (NodeId c : topo.internal_children(j)) {
      const std::size_t ci = topo.internal_index(c);
      if (!is_server[ci]) {
        inflow += outflow[ci];
        if (outflow[ci] > 0) forwarding.push_back(c);
      }
    }
    while (inflow > capacity) {
      // Absorb the child with the largest forwarded flow; smaller id on tie.
      NodeId best = kNoNode;
      RequestCount best_flow = 0;
      for (NodeId c : forwarding) {
        const std::size_t ci = topo.internal_index(c);
        if (is_server[ci]) continue;
        if (outflow[ci] > best_flow ||
            (outflow[ci] == best_flow && best != kNoNode && c < best)) {
          best = c;
          best_flow = outflow[ci];
        }
      }
      if (best == kNoNode) {
        // All child flows absorbed and the local client mass still exceeds
        // W: those clients share every ancestor, so no solution exists.
        return result;
      }
      is_server[topo.internal_index(best)] = 1;
      inflow -= best_flow;
    }
    outflow[topo.internal_index(j)] = inflow;
  }

  const std::size_t root_index = topo.internal_index(topo.root());
  if (outflow[root_index] > 0) is_server[root_index] = 1;

  result.feasible = true;
  for (NodeId j : topo.internal_ids()) {
    if (is_server[topo.internal_index(j)]) result.placement.add(j, /*mode=*/0);
  }
  return result;
}

int greedy_replica_count(const Topology& topo, const Scenario& scen,
                         RequestCount capacity) {
  const GreedyResult r = solve_greedy_min_count(topo, scen, capacity);
  return r.feasible ? static_cast<int>(r.placement.size()) : -1;
}

}  // namespace treeplace
