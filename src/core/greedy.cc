#include "core/greedy.h"

#include <algorithm>
#include <vector>

namespace treeplace {

GreedyResult solve_greedy_min_count(const Tree& tree, RequestCount capacity) {
  GreedyResult result;
  std::vector<RequestCount> outflow(tree.num_internal(), 0);
  std::vector<char> is_server(tree.num_internal(), 0);

  for (NodeId j : tree.internal_post_order()) {
    RequestCount inflow = tree.client_mass(j);
    // Children that were not already made servers forward their flow here.
    std::vector<NodeId> forwarding;
    for (NodeId c : tree.internal_children(j)) {
      const std::size_t ci = tree.internal_index(c);
      if (!is_server[ci]) {
        inflow += outflow[ci];
        if (outflow[ci] > 0) forwarding.push_back(c);
      }
    }
    while (inflow > capacity) {
      // Absorb the child with the largest forwarded flow; smaller id on tie.
      NodeId best = kNoNode;
      RequestCount best_flow = 0;
      for (NodeId c : forwarding) {
        const std::size_t ci = tree.internal_index(c);
        if (is_server[ci]) continue;
        if (outflow[ci] > best_flow ||
            (outflow[ci] == best_flow && best != kNoNode && c < best)) {
          best = c;
          best_flow = outflow[ci];
        }
      }
      if (best == kNoNode) {
        // All child flows absorbed and the local client mass still exceeds
        // W: those clients share every ancestor, so no solution exists.
        return result;
      }
      is_server[tree.internal_index(best)] = 1;
      inflow -= best_flow;
    }
    outflow[tree.internal_index(j)] = inflow;
  }

  const std::size_t root_index = tree.internal_index(tree.root());
  if (outflow[root_index] > 0) is_server[root_index] = 1;

  result.feasible = true;
  for (NodeId j : tree.internal_ids()) {
    if (is_server[tree.internal_index(j)]) result.placement.add(j, /*mode=*/0);
  }
  return result;
}

int greedy_replica_count(const Tree& tree, RequestCount capacity) {
  const GreedyResult r = solve_greedy_min_count(tree, capacity);
  return r.feasible ? static_cast<int>(r.placement.size()) : -1;
}

}  // namespace treeplace
