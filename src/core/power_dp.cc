#include "core/power_dp.h"

#include <algorithm>
#include <cmath>

#include "core/dp_util.h"
#include "core/merge_kernel.h"
#include "support/timer.h"

namespace treeplace {

namespace {

using dp::ArenaTable;
using dp::Box;
using dp::Decision;
using dp::kInvalidFlow;
using dp::TableArena;

/// Externally ownable per-node state (see core/dp_cache.h): the final
/// folded table, the per-slot tables of the balanced merge tree
/// (dp::MergePlan) over the node's children, and the box bounds including
/// this node's own placement possibilities.
using NodeState = dp::PowerNodeState;

/// What a warm re-solve knows about a merge-plan slot's table relative to
/// the previous solve: untouched-or-identical, changed at a known set of
/// flats (the lazy-join input), or changed beyond tracking.
enum class SlotDiff : std::uint8_t { kClean, kChanged, kUnknown };

struct Candidate {
  double cost = 0.0;
  double power = 0.0;
  std::uint32_t flat = 0;
  std::int8_t root_mode = -1;  ///< -1: no server at root
  int servers = 0;
};

class ExactPowerSolver {
 public:
  ExactPowerSolver(const Topology& topo, const Scenario& scen,
                   const ModeSet& modes, const CostModel& costs,
                   const PowerDPOptions& options)
      : topo_(topo),
        scen_(scen),
        modes_(modes),
        costs_(costs),
        m_(modes.count()),
        dims_(static_cast<std::size_t>(m_) +
              static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_)),
        external_pool_(options.pool),
        lazy_pool_(options.pool ? 1 : options.threads),
        cache_(options.cache),
        arena_(options.cache ? &options.cache->arena() : &own_arena_),
        deltas_(options.deltas),
        contraction_(options.contraction),
        local_states_(options.cache ? 0 : topo.num_internal()) {
    if (contraction_ != nullptr) {
      // The contracted scenario under-counts E (sealed interiors are
      // invisible); the session layer totals the original scenario.
      TREEPLACE_CHECK(contraction_->pre_total_per_mode.size() ==
                      static_cast<std::size_t>(m_));
      pre_total_per_mode_ = contraction_->pre_total_per_mode;
      return;
    }
    pre_total_per_mode_.assign(static_cast<std::size_t>(m_), 0);
    for (NodeId e : scen_.pre_existing_nodes()) {
      const int o = scen_.original_mode(e);
      TREEPLACE_CHECK_MSG(o >= 0 && o < m_,
                          "pre-existing node " << e
                                               << " has original mode " << o
                                               << " outside the ModeSet");
      ++pre_total_per_mode_[static_cast<std::size_t>(o)];
    }
  }

  PowerDPResult solve() {
    Stopwatch watch;
    PowerDPResult result;
    const dp::DirtyPlan plan = plan_dirty();
    signatures_checked_ = plan.signatures_checked;
    for (NodeId j : topo_.internal_post_order()) {
      const std::size_t i = topo_.internal_index(j);
      if (plan.dirty[i] == 0) {
        ++nodes_reused_;
        continue;  // splice the cached subtree table in unchanged
      }
      if (!process_node(j, plan)) {
        finish_stats(result, watch);
        return result;  // some client mass exceeds W_M: infeasible
      }
      if (cache_ != nullptr) cache_->commit(i, signature(j));
      ++nodes_recomputed_;
    }
    std::vector<Candidate> candidates = scan_root();
    build_frontier(std::move(candidates), result);
    finish_stats(result, watch);
    return result;
  }

 private:
  NodeState& node_state(std::size_t i) const {
    return cache_ != nullptr ? cache_->state(i) : local_states_[i];
  }

  dp::NodeSignature signature(NodeId j) const {
    return dp::NodeSignature{
        scen_.client_mass(j),
        scen_.pre_existing(j) ? scen_.original_mode(j) : -1};
  }

  dp::DirtyPlan plan_dirty() {
    return dp::plan_warm_solve(
        topo_, cache_, dp::capacity_params(modes_),
        [this](NodeId j) { return signature(j); }, deltas_,
        contraction_ != nullptr ? contraction_->planning_internal : 0);
  }

  void finish_stats(PowerDPResult& result, const Stopwatch& watch) const {
    result.stats.merge_pairs = merge_pairs_;
    result.stats.table_cells = table_cells_;
    result.stats.merge_steps = merge_steps_;
    result.stats.nodes_recomputed = nodes_recomputed_;
    result.stats.nodes_reused = nodes_reused_;
    result.stats.signatures_checked = signatures_checked_;
    result.stats.cells_skipped = cells_skipped_;
    result.stats.table_bytes = arena_->used_bytes();
    result.stats.solve_seconds = watch.seconds();
  }

  std::size_t dim_new(int w) const { return static_cast<std::size_t>(w); }
  std::size_t dim_reused(int o, int w) const {
    return static_cast<std::size_t>(m_) +
           static_cast<std::size_t>(o) * static_cast<std::size_t>(m_) +
           static_cast<std::size_t>(w);
  }
  /// Dimension that a replica on `node` at mode `w` increments.
  std::size_t dim_of(NodeId node, int w) const {
    return scen_.pre_existing(node)
               ? dim_reused(scen_.original_mode(node), w)
               : dim_new(w);
  }

  /// (Re)builds node j's table along the merge plan.  With a resumable
  /// cache entry (plan.resume), only dirty children's leaf slots, the
  /// internal slots on their root paths and — when the node's client mass
  /// changed — the base fold re-run; clean slots are spliced in from the
  /// snapshots (see dp::plan_warm_solve), and root-path joins whose dirty
  /// operand's value diff is small run lazily (core/merge_kernel.h).
  bool process_node(NodeId j, const dp::DirtyPlan& plan) {
    const std::size_t i = topo_.internal_index(j);
    if (cache_ != nullptr) cache_->ensure_unpacked(i);
    NodeState& s = node_state(i);
    const RequestCount base = scen_.client_mass(j);
    if (base > modes_.max_capacity()) return false;
    const auto children = topo_.internal_children(j);
    const std::size_t k = children.size();
    const dp::MergePlan& mplan = plans_.get(k);
    const std::size_t slots = mplan.num_slots();

    const bool resume = plan.resume[i] != 0;
    const dp::SlotDirtiness slot_dirty =
        dp::plan_slot_dirtiness(plan, topo_, children, mplan, resume);
    if (!resume) {
      for (auto& t : s.slot_flows) t.clear(*arena_);
      for (auto& t : s.slot_decisions) t.clear(*arena_);
      s.slot_boxes.assign(slots, Box());
      s.slot_flows.assign(slots, {});
      s.slot_decisions.assign(slots, {});
    }
    slot_diff_.assign(slots, SlotDiff::kClean);
    slot_changed_.resize(slots);
    if (resume) {
      // One rolling changed-cell footprint for the whole rebuild (see
      // dp::RollingDiffBudget): bursty batches that dirty many slots of
      // this node stay lazy as long as their aggregate churn is small.
      std::size_t dirty_cells = 0;
      for (std::size_t t = 0; t < slots; ++t) {
        if (slot_dirty.dirty[t] != 0) dirty_cells += s.slot_flows[t].size();
      }
      diff_budget_.reset(dirty_cells);
    }

    for (std::size_t c = 0; c < k; ++c) {
      if (slot_dirty.dirty[c] != 0) expand_leaf(s, c, children[c], resume);
    }
    for (std::size_t t = 0; t < mplan.steps().size(); ++t) {
      const std::uint32_t out = mplan.step_slot(t);
      if (slot_dirty.dirty[out] != 0) {
        merge_step(s, mplan.steps()[t], out, resume);
      }
    }
    if (!resume || slot_dirty.any || plan.base_changed[i] != 0) {
      fold_base(s, base, mplan);
    }

    // Bounds seen by the parent: ours plus this node's own placement
    // possibilities (one unit in any of its admissible dimensions).
    s.incl_bounds = s.box.bounds();
    for (int w = 0; w < m_; ++w) s.incl_bounds[dim_of(j, w)] += 1;

    if (cache_ == nullptr) {
      // One-shot solve: the slot snapshots are never resumed — drop them,
      // keeping the decisions (reconstruction) and the final table (which
      // the parent's leaf expansion consumes and then clears).
      s.slot_boxes.clear();
      s.slot_boxes.shrink_to_fit();
      for (auto& t : s.slot_flows) t.clear(*arena_);
      s.slot_flows.clear();
      s.slot_flows.shrink_to_fit();
    }
    return true;
  }

  /// Installs a rebuilt slot table, releasing the previous snapshot.  When
  /// resuming, first diffs the new flows against it: the resulting changed
  /// set (or its absence) feeds the lazy-join eligibility of the next step
  /// up the merge tree — and, through the parent's leaf expansion, of the
  /// next node up the topology.
  void finish_slot(NodeState& s, std::size_t slot, Box&& box,
                   ArenaTable<RequestCount>& flow, ArenaTable<Decision>& dec,
                   bool try_diff) {
    if (try_diff) {
      ArenaTable<RequestCount>& old_flow = s.slot_flows[slot];
      if (old_flow.size() == flow.size() &&
          s.slot_boxes[slot].bounds() == box.bounds() &&
          dp::diff_tables(old_flow.span(), flow.span(),
                          diff_budget_.slot_cap(flow.size()),
                          slot_changed_[slot])) {
        diff_budget_.charge(slot_changed_[slot].size());
        slot_diff_[slot] = slot_changed_[slot].empty() ? SlotDiff::kClean
                                                       : SlotDiff::kChanged;
      } else {
        slot_diff_[slot] = SlotDiff::kUnknown;
      }
    }
    s.slot_flows[slot].clear(*arena_);
    s.slot_flows[slot] = flow.take();
    s.slot_decisions[slot].clear(*arena_);
    s.slot_decisions[slot] = dec.take();
    s.slot_boxes[slot] = std::move(box);
  }

  /// Fills leaf slot `slot` with child c's table extended by the child's
  /// own placement options: every child state appears unchanged (no
  /// replica on c, its flow still open) and once per admissible mode w
  /// (replica on c at w absorbs the child's flow).
  void expand_leaf(NodeState& s, std::size_t slot, NodeId c, bool try_diff) {
    // A clean child spliced from a packed cache entry must expose its
    // final table again before this leaf re-expands it.
    if (cache_ != nullptr) cache_->ensure_unpacked(topo_.internal_index(c));
    NodeState& cs = node_state(topo_.internal_index(c));
    Box box{cs.incl_bounds};
    ArenaTable<RequestCount> flow;
    flow.assign(*arena_, box.size(), kInvalidFlow);
    ArenaTable<Decision> dec;
    dec.resize_uninit(*arena_, box.size());
    table_cells_ += box.size();
    ++merge_steps_;
    dp::compact_entries(cs.box, cs.flow.span(), box, scratch_.left);
    const dp::EntryList& entries = scratch_.left;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      const RequestCount ef = entries.flow[e];
      const std::uint32_t eflat = entries.flat[e];
      const std::size_t t = static_cast<std::size_t>(entries.dot[e]);
      if (ef < flow[t]) {
        flow[t] = ef;
        dec[t] = Decision{0, eflat, -1};
      }
      for (int w = modes_.mode_for_load(ef); w < m_; ++w) {
        const std::size_t tw = t + box.stride(dim_of(c, w));
        if (RequestCount{0} < flow[tw]) {
          flow[tw] = 0;
          dec[tw] = Decision{0, eflat, static_cast<std::int8_t>(w)};
        }
      }
    }
    finish_slot(s, slot, std::move(box), flow, dec, try_diff);
    if (cache_ == nullptr) {
      // The child's final table has been consumed; only its decisions are
      // still needed (reconstruction).
      cs.flow.clear(*arena_);
    }
  }

  /// Joins two merge-plan slots: flows add (both stay open) under the
  /// W_M feasibility cut.  Runs through the shared kernel — sharded across
  /// the pool when profitable, lazily against the previous snapshot when
  /// resuming with one cleanly-diffed dirty operand — and is bit-identical
  /// to the serial scalar loop in every configuration.
  void merge_step(NodeState& s, const dp::MergePlan::Step& step,
                  std::uint32_t out, bool resume) {
    const Box& lbox = s.slot_boxes[step.left];
    const Box& rbox = s.slot_boxes[step.right];
    std::vector<int> new_bounds(dims_);
    for (std::size_t d = 0; d < dims_; ++d) {
      new_bounds[d] = lbox.bounds()[d] + rbox.bounds()[d];
    }
    Box new_box(std::move(new_bounds));
    ArenaTable<RequestCount> merged;
    merged.resize_uninit(*arena_, new_box.size());
    ArenaTable<Decision> dec;
    dec.resize_uninit(*arena_, new_box.size());
    table_cells_ += new_box.size();
    ++merge_steps_;

    const dp::JoinInputs in{&lbox,
                            s.slot_flows[step.left].span(),
                            &rbox,
                            s.slot_flows[step.right].span(),
                            &new_box,
                            modes_.max_capacity()};

    dp::LazyJoin lazy;
    const dp::LazyJoin* lazy_ptr = nullptr;
    if (resume) {
      const SlotDiff ld = slot_diff_[step.left];
      const SlotDiff rd = slot_diff_[step.right];
      const ArenaTable<RequestCount>& old_flow = s.slot_flows[out];
      // Both operands may carry small diffs (a rolling multi-delta batch
      // dirties several children of one node); the join then sweeps the
      // changed sets from both sides instead of bailing to a full rebuild.
      if (old_flow.size() == new_box.size() &&
          s.slot_decisions[out].size() == new_box.size() &&
          s.slot_boxes[out].bounds() == new_box.bounds() &&
          ld != SlotDiff::kUnknown && rd != SlotDiff::kUnknown) {
        if (ld == SlotDiff::kChanged) {
          lazy.changed_left = slot_changed_[step.left];
        }
        if (rd == SlotDiff::kChanged) {
          lazy.changed_right = slot_changed_[step.right];
        }
        lazy.old_flow = old_flow.span();
        lazy.old_dec = s.slot_decisions[out].span();
        lazy_ptr = &lazy;
      }
    }

    const dp::JoinStats js =
        dp::join_slots(in, {merged.data(), merged.size()},
                       {dec.data(), dec.size()}, merge_pool(), scratch_,
                       lazy_ptr);
    merge_pairs_ += js.pairs;
    cells_skipped_ += js.cells_skipped;

    finish_slot(s, out, std::move(new_box), merged, dec, resume);
  }

  /// Folds the node's own client mass into the root slot: every open flow
  /// grows by `base`, entries pushed past W_M become invalid.  Flat
  /// indices are unchanged, so reconstruction starts straight at the root
  /// slot.
  void fold_base(NodeState& s, RequestCount base,
                 const dp::MergePlan& mplan) {
    if (mplan.num_leaves() == 0) {
      s.box = Box(std::vector<int>(dims_, 0));
      s.flow.assign(*arena_, 1, base);
      table_cells_ += 1;
      return;
    }
    const RequestCount w_max = modes_.max_capacity();
    const std::uint32_t root = mplan.root_slot();
    s.box = s.slot_boxes[root];
    s.flow.assign_copy(*arena_, s.slot_flows[root].span());
    for (RequestCount& f : s.flow) {
      if (f == kInvalidFlow) continue;
      f += base;
      if (f > w_max) f = kInvalidFlow;
    }
  }

  /// Enumerates root-table states x root options into (cost, power)
  /// candidates.
  std::vector<Candidate> scan_root() const {
    const NodeId root = topo_.root();
    // The root may be clean (and packed) on a fully-warm solve; its table
    // is re-read every solve for the frontier scan.
    if (cache_ != nullptr) {
      cache_->ensure_unpacked(topo_.internal_index(root));
    }
    const NodeState& s = node_state(topo_.internal_index(root));
    std::vector<Candidate> candidates;
    std::vector<int> digits(dims_, 0);
    std::vector<int> counts(dims_);
    for (std::size_t flat = 0; flat < s.box.size(); ++flat) {
      const RequestCount f = s.flow[flat];
      if (f != kInvalidFlow) {
        if (f == 0) {
          counts.assign(digits.begin(), digits.end());
          candidates.push_back(make_candidate(counts, flat, -1));
        }
        for (int w = modes_.mode_for_load(f); w < m_; ++w) {
          counts.assign(digits.begin(), digits.end());
          counts[dim_of(root, w)] += 1;
          candidates.push_back(
              make_candidate(counts, flat, static_cast<std::int8_t>(w)));
        }
      }
      for (std::size_t d = dims_; d-- > 0;) {
        if (++digits[d] <= s.box.bounds()[d]) break;
        digits[d] = 0;
      }
    }
    return candidates;
  }

  Candidate make_candidate(const std::vector<int>& counts, std::size_t flat,
                           std::int8_t root_mode) const {
    int servers = 0;
    double cost = 0.0;
    double power = 0.0;
    for (int w = 0; w < m_; ++w) {
      const int n_w = counts[dim_new(w)];
      servers += n_w;
      cost += static_cast<double>(n_w) * costs_.create(w);
      power += static_cast<double>(n_w) * modes_.power(w);
    }
    std::vector<int> reused_per_mode(static_cast<std::size_t>(m_), 0);
    for (int o = 0; o < m_; ++o) {
      for (int w = 0; w < m_; ++w) {
        const int e_ow = counts[dim_reused(o, w)];
        servers += e_ow;
        reused_per_mode[static_cast<std::size_t>(o)] += e_ow;
        cost += static_cast<double>(e_ow) * costs_.changed(o, w);
        power += static_cast<double>(e_ow) * modes_.power(w);
      }
    }
    cost += static_cast<double>(servers);  // operating cost of 1 per server
    for (int o = 0; o < m_; ++o) {
      const int deleted = pre_total_per_mode_[static_cast<std::size_t>(o)] -
                          reused_per_mode[static_cast<std::size_t>(o)];
      TREEPLACE_DCHECK(deleted >= 0);
      cost += static_cast<double>(deleted) * costs_.del(o);
    }
    return Candidate{cost, power, static_cast<std::uint32_t>(flat), root_mode,
                     servers};
  }

  void build_frontier(std::vector<Candidate> candidates,
                      PowerDPResult& result) const {
    if (candidates.empty()) return;
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                if (a.power != b.power) return a.power < b.power;
                if (a.servers != b.servers) return a.servers < b.servers;
                if (a.flat != b.flat) return a.flat < b.flat;
                return a.root_mode < b.root_mode;
              });
    constexpr double kEps = 1e-9;
    std::vector<Candidate> swept;
    for (const Candidate& c : candidates) {
      if (swept.empty() || c.power < swept.back().power - kEps) {
        if (!swept.empty() && std::fabs(c.cost - swept.back().cost) <= kEps) {
          swept.back() = c;
        } else {
          swept.push_back(c);
        }
      }
    }
    result.feasible = true;
    result.frontier.reserve(swept.size());
    for (const Candidate& c : swept) {
      PowerParetoPoint point;
      if (c.root_mode >= 0) {
        point.placement.add(out_id(topo_.root()), c.root_mode);
      }
      reconstruct(topo_.root(), c.flat, point.placement);
      if (contraction_ != nullptr) {
        // The placement names original ids, which this contracted
        // topo/scen cannot price; the caller re-evaluates every point on
        // the original instance (the exact calls the uncontracted solve
        // makes, so the doubles land bit-identical).
        point.cost = c.cost;
        point.power = c.power;
      } else {
        point.breakdown = evaluate_cost(topo_, scen_, point.placement, costs_);
        point.cost = point.breakdown.cost;
        point.power = total_power(point.placement, modes_);
        TREEPLACE_DCHECK(std::fabs(point.cost - c.cost) < 1e-6);
        TREEPLACE_DCHECK(std::fabs(point.power - c.power) < 1e-6);
      }
      result.frontier.push_back(std::move(point));
    }
  }

  void reconstruct(NodeId j, std::size_t flat, Placement& placement) const {
    // A sealed leaf owns no slot decisions here: its frozen subtree's
    // placement is reconstructed from the original session cache.
    if (contraction_ != nullptr &&
        contraction_->sealed[topo_.internal_index(j)] != 0) {
      contraction_->expand_sealed(out_id(j), flat, placement);
      return;
    }
    // Clean nodes skipped by the warm solve may still be packed; the walk
    // reads their decisions.
    if (cache_ != nullptr) cache_->ensure_unpacked(topo_.internal_index(j));
    const NodeState& s = node_state(topo_.internal_index(j));
    const auto children = topo_.internal_children(j);
    if (children.empty()) {
      TREEPLACE_DCHECK(flat == 0);
      return;
    }
    const dp::MergePlan& mplan = plans_.get(children.size());
    reconstruct_slot(s, children, mplan, mplan.root_slot(), flat, placement);
  }

  void reconstruct_slot(const NodeState& s, std::span<const NodeId> children,
                        const dp::MergePlan& mplan, std::uint32_t slot,
                        std::size_t flat, Placement& placement) const {
    const Decision d = s.slot_decisions[slot][flat];
    if (slot < mplan.num_leaves()) {
      const NodeId c = children[slot];
      if (d.mode >= 0) placement.add(out_id(c), d.mode);
      reconstruct(c, d.right, placement);
      return;
    }
    const dp::MergePlan::Step& step =
        mplan.steps()[slot - mplan.num_leaves()];
    reconstruct_slot(s, children, mplan, step.left, d.left, placement);
    reconstruct_slot(s, children, mplan, step.right, d.right, placement);
  }

  /// Output-id translation: contracted solves emit original ids.
  NodeId out_id(NodeId c) const {
    return contraction_ != nullptr
               ? contraction_->to_original[static_cast<std::size_t>(c)]
               : c;
  }

  const Topology& topo_;
  const Scenario& scen_;
  const ModeSet& modes_;
  const CostModel& costs_;
  /// The configured long-lived pool, else this solve's lazy workers.
  ThreadPool* merge_pool() {
    return external_pool_ != nullptr ? external_pool_ : lazy_pool_.get();
  }

  const int m_;
  const std::size_t dims_;
  ThreadPool* const external_pool_;
  dp::LazyPool lazy_pool_;
  /// Session-owned states when warm-starting, else this solve's locals.
  dp::PowerSubtreeCache* const cache_;
  /// Table storage: the cache's arena for warm solves (tables outlive this
  /// solve), a solver-local one otherwise.
  TableArena own_arena_;
  TableArena* const arena_;
  const std::span<const ScenarioDelta> deltas_;
  const dp::ContractionView* const contraction_;
  mutable std::vector<NodeState> local_states_;
  mutable dp::MergePlanCache plans_;
  std::vector<int> pre_total_per_mode_;
  dp::JoinScratch scratch_;
  dp::RollingDiffBudget diff_budget_;
  /// Per-slot diff state of the node currently being processed.
  std::vector<SlotDiff> slot_diff_;
  std::vector<std::vector<std::uint32_t>> slot_changed_;
  std::uint64_t merge_pairs_ = 0;
  std::uint64_t table_cells_ = 0;
  std::uint64_t merge_steps_ = 0;
  std::uint64_t nodes_recomputed_ = 0;
  std::uint64_t nodes_reused_ = 0;
  std::uint64_t signatures_checked_ = 0;
  std::uint64_t cells_skipped_ = 0;
};

}  // namespace

PowerDPResult solve_power_exact(const Topology& topo, const Scenario& scen,
                                const ModeSet& modes, const CostModel& costs,
                                const PowerDPOptions& options) {
  TREEPLACE_CHECK_MSG(costs.num_modes() == modes.count(),
                      "cost model and mode set disagree on M");
  ExactPowerSolver solver(topo, scen, modes, costs, options);
  return solver.solve();
}

namespace {

void reconstruct_power_slot(const Topology& topo,
                            dp::PowerSubtreeCache& cache,
                            dp::MergePlanCache& plans,
                            const dp::PowerNodeState& s,
                            std::span<const NodeId> children,
                            const dp::MergePlan& mplan, std::uint32_t slot,
                            std::size_t flat, Placement& placement) {
  const Decision d = s.slot_decisions[slot][flat];
  if (slot < mplan.num_leaves()) {
    const NodeId c = children[slot];
    if (d.mode >= 0) placement.add(c, d.mode);
    reconstruct_power_subtree(topo, cache, plans, c, d.right, placement);
    return;
  }
  const dp::MergePlan::Step& step = mplan.steps()[slot - mplan.num_leaves()];
  reconstruct_power_slot(topo, cache, plans, s, children, mplan, step.left,
                         d.left, placement);
  reconstruct_power_slot(topo, cache, plans, s, children, mplan, step.right,
                         d.right, placement);
}

}  // namespace

void reconstruct_power_subtree(const Topology& topo,
                               dp::PowerSubtreeCache& cache,
                               dp::MergePlanCache& plans, NodeId j,
                               std::size_t flat, Placement& placement) {
  const std::size_t i = topo.internal_index(j);
  cache.ensure_unpacked(i);
  const dp::PowerNodeState& s = cache.state(i);
  const auto children = topo.internal_children(j);
  if (children.empty()) {
    TREEPLACE_DCHECK(flat == 0);
    return;
  }
  const dp::MergePlan& mplan = plans.get(children.size());
  reconstruct_power_slot(topo, cache, plans, s, children, mplan,
                         mplan.root_slot(), flat, placement);
}

}  // namespace treeplace
