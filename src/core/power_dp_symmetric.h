// Reduced-state DP for MinPower-BoundedCost under symmetric costs.
//
// When create_i and delete_i do not depend on the mode and changed_{o,i}
// depends only on whether o == i — the structure of every experiment in the
// paper's Section 5.2 — the exact DP's (n_1..n_M, e_{1,1}..e_{M,M}) state
// collapses to
//   (m_1..m_M, e_same, e_changed)
// where m_w counts all servers configured at mode w, e_same the reused
// servers that kept their original mode and e_changed those that moved.
// Cost and power are functions of this reduced vector, so keeping the
// minimal residual flow per reduced state preserves optimality (same
// exchange argument as Lemma 1).  The state space shrinks from
// O(N^M · E^{M²}) to O(N^M · E²), which is what makes the paper-scale
// Figure 8-11 sweeps affordable.  Equality of the produced frontier with
// solve_power_exact() is enforced by randomized property tests and by
// bench/ablation_symmetric.
#pragma once

#include "core/power_common.h"
#include "core/power_dp.h"
#include "model/cost.h"
#include "model/modes.h"
#include "tree/tree.h"

namespace treeplace {

/// Requires costs.is_symmetric(); use solve_power_exact() otherwise.
/// `options.threads` shards the per-child merges (bit-identical results).
PowerDPResult solve_power_symmetric(const Topology& topo,
                                    const Scenario& scen,
                                    const ModeSet& modes,
                                    const CostModel& costs,
                                    const PowerDPOptions& options = {});
inline PowerDPResult solve_power_symmetric(const Tree& tree,
                                           const ModeSet& modes,
                                           const CostModel& costs,
                                           const PowerDPOptions& options = {}) {
  return solve_power_symmetric(tree.topology(), tree.scenario(), modes, costs,
                               options);
}

/// Dispatches to the symmetric DP when the cost model allows it, else to
/// the exact DP.
PowerDPResult solve_power_auto(const Topology& topo, const Scenario& scen,
                               const ModeSet& modes, const CostModel& costs,
                               const PowerDPOptions& options = {});
inline PowerDPResult solve_power_auto(const Tree& tree, const ModeSet& modes,
                                      const CostModel& costs,
                                      const PowerDPOptions& options = {}) {
  return solve_power_auto(tree.topology(), tree.scenario(), modes, costs,
                          options);
}

}  // namespace treeplace
