// What a DP engine needs to know to run on a contracted tree.
//
// Subtree contraction (tree/contract.h) hands an engine a smaller
// Topology/Scenario in which frozen subtrees have become childless sealed
// leaves whose cached root tables are preloaded into the engine's
// SubtreeCache.  The engine itself stays oblivious to *how* the tree was
// contracted — it only needs four things, bundled here:
//
//   * id translation (to_original): every placement entry and frontier
//     point must name original node ids, so the expanded result is
//     bit-identical to an uncontracted warm solve;
//   * the sealed mask: reconstruction must not descend into a sealed leaf
//     (it has no slot decisions in the contracted cache) but instead call
//     expand_sealed, which walks the *original* session cache and emits
//     the frozen subtree's placement for the chosen root-table cell;
//   * planning_internal: the original tree's node count, handed to
//     plan_warm_solve's fast-path size gate so the contracted solve picks
//     the same plan shape (and signature counters) as its twin;
//   * global scenario totals (pre_total_per_mode, num_pre_existing): the
//     root scans price |E| and per-mode pre-existing totals over the
//     *whole* tree, which the contracted scenario under-counts (sealed
//     interiors are invisible) — the session layer computes them on the
//     original scenario and injects them here.
//
// Engines accept a ContractionView through their options/config structs
// (power_dp.h, dp_update.h); the lifecycle that builds one lives in
// solver/contracted.h.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "model/placement.h"
#include "tree/topology.h"

namespace treeplace::dp {

struct ContractionView {
  /// Original id per contracted node id (Contraction::to_original_map).
  std::span<const NodeId> to_original;
  /// Per contracted *internal index*: 1 = sealed leaf (Contraction::sealed).
  std::span<const std::uint8_t> sealed;
  /// num_internal of the original tree (plan_warm_solve's planning_n).
  std::size_t planning_internal = 0;
  /// Pre-existing node count per mode over the original scenario — the
  /// exact power DP's root-scan baseline (sealed interiors included).
  std::vector<int> pre_total_per_mode;
  /// |E| over the original scenario — the symmetric power and MinCost
  /// root scans read it for deletion pricing.
  std::size_t num_pre_existing = 0;
  /// Emits the placement of the frozen subtree rooted at original node
  /// `original_root`, given the chosen flat index into its cached root
  /// table.  Bound by the session layer to a decision walk over the
  /// original (uncontracted) cache.  Engines call it from the serial
  /// frontier-reconstruction pass only, so it may unpack cache entries.
  std::function<void(NodeId original_root, std::size_t flat, Placement&)>
      expand_sealed;
};

}  // namespace treeplace::dp
