#include "core/greedy_power.h"

#include "core/greedy.h"

namespace treeplace {

GreedyPowerResult solve_greedy_power(const Topology& topo,
                                     const Scenario& scen,
                                     const ModeSet& modes,
                                     const CostModel& costs) {
  TREEPLACE_CHECK(costs.num_modes() == modes.count());
  GreedyPowerResult result;
  const RequestCount lo = modes.capacity(0);
  const RequestCount hi = modes.max_capacity();
  for (RequestCount w = lo; w <= hi; ++w) {
    GreedyPowerCandidate candidate;
    candidate.capacity = w;
    GreedyResult greedy = solve_greedy_min_count(topo, scen, w);
    if (greedy.feasible) {
      candidate.feasible = true;
      candidate.placement = std::move(greedy.placement);
      minimize_modes(topo, scen, candidate.placement, modes);
      candidate.breakdown =
          evaluate_cost(topo, scen, candidate.placement, costs);
      candidate.cost = candidate.breakdown.cost;
      candidate.power = total_power(candidate.placement, modes);
    }
    result.candidates.push_back(std::move(candidate));
  }
  return result;
}

}  // namespace treeplace
