// Shared result types for the MinPower-BoundedCost dynamic programs.
//
// Both the exact and the symmetric-cost DP answer every cost bound in one
// pass: the root scan yields the full Pareto frontier of attainable
// (cost, power) pairs, each with a reconstructed placement.  A bounded-cost
// query is then a binary search; MinPower is the frontier's last point.
#pragma once

#include <cstdint>
#include <vector>

#include "model/cost.h"
#include "model/placement.h"

namespace treeplace {

struct PowerParetoPoint {
  double cost = 0.0;
  double power = 0.0;
  Placement placement;
  CostBreakdown breakdown;
};

struct PowerSolveStats {
  std::uint64_t merge_pairs = 0;   ///< (left entry, right entry) pairs visited
  std::uint64_t table_cells = 0;   ///< total DP cells allocated
  /// Merge-plan slots actually built (leaf expansions + internal joins).
  /// A cold solve builds 2k-1 per node with k internal children; a warm
  /// solve with one dirty child builds O(log k) (see dp::MergePlan).
  std::uint64_t merge_steps = 0;
  /// Warm-start accounting: subtree tables rebuilt this solve vs. spliced
  /// in from the cache.  A cold solve recomputes every internal node.
  std::uint64_t nodes_recomputed = 0;
  std::uint64_t nodes_reused = 0;
  /// NodeSignatures compared while planning: num_internal on the full
  /// sweep, the touched-set size on the delta fast path.
  std::uint64_t signatures_checked = 0;
  /// Output cells spliced from snapshots by lazy root-path joins instead
  /// of being recomputed (see core/merge_kernel.h).
  std::uint64_t cells_skipped = 0;
  /// Arena bytes holding flow/decision tables at the end of the solve.
  std::uint64_t table_bytes = 0;
  double solve_seconds = 0.0;
};

struct PowerDPResult {
  bool feasible = false;
  /// Ascending cost, strictly descending power.
  std::vector<PowerParetoPoint> frontier;
  PowerSolveStats stats;

  /// Minimum-power point whose cost is within `bound` (inclusive, with a
  /// 1e-9 tolerance); nullptr when no solution fits the budget.
  const PowerParetoPoint* best_within_cost(double bound) const {
    const PowerParetoPoint* best = nullptr;
    for (const PowerParetoPoint& p : frontier) {
      if (p.cost <= bound + 1e-9) best = &p;  // power decreases along the list
    }
    return best;
  }

  /// Unconstrained minimum power (MinPower); nullptr when infeasible.
  const PowerParetoPoint* min_power() const {
    return frontier.empty() ? nullptr : &frontier.back();
  }
};

}  // namespace treeplace
