// The NP-completeness gadget of paper Section 4.2 (Theorem 2).
//
// Reduction from 2-Partition: given positive integers a_1..a_n with even sum
// S, build a MinPower instance with n+2 modes
//   W_1 = K,  W_{i+1} = K + a_i·X,  W_{n+2} = K + S·X
// where K = n·S² and X = 1/(α·K^{α-1}), a two-level tree (root with a
// client of K + (S/2)·X requests and branches A_i → B_i carrying a_i·X and
// K requests respectively), and the power budget
//   P_max = (K + S·X)^α + n·K^α + S/2 + (n-1)/n.
// The instance has a solution within P_max iff the 2-Partition instance is
// a yes-instance.
//
// We realize the gadget for α = 2, where X = 1/(2K) and multiplying every
// request and capacity by 2K (and powers by (2K)², and the whole budget
// comparison by n) makes all arithmetic exact in integers; deciding the
// gadget via the proof's structural argument (root forced to the top mode,
// exactly one server per branch) is then an exact __int128 computation.
#pragma once

#include <cstdint>
#include <vector>

#include "model/modes.h"
#include "tree/tree.h"

namespace treeplace {

struct TwoPartitionInstance {
  std::vector<std::uint64_t> values;  ///< a_1..a_n, strictly positive

  std::uint64_t sum() const {
    std::uint64_t s = 0;
    for (auto v : values) s += v;
    return s;
  }
};

struct MinPowerGadget {
  Tree tree;  ///< requests scaled by 2K
  /// Capacities scaled by 2K, alpha = 2, no static power.
  ModeSet modes = ModeSet::single(1);
  /// Scaled budget: a solution is within budget iff
  /// n·sum((2K·W_mode)²) <= n_times_power_budget (exact integers).
  /// Stored as the two factors of the comparison.
  __int128 n_times_power_budget = 0;
  std::uint64_t k = 0;      ///< K = n·S²
  std::uint64_t scale = 0;  ///< 2K
  NodeId root = kNoNode;
  std::vector<NodeId> a_nodes;  ///< A_i (children of the root)
  std::vector<NodeId> b_nodes;  ///< B_i (child of A_i)
};

/// Builds the gadget.  Requires a non-empty instance with even sum, every
/// a_i > 0 and — crucially — every a_i < S/2.  The last premise is implicit
/// in the paper's proof: it is what forces the root server to the top mode
/// W_{n+2} (with some a_i >= S/2 the mode K + a_i·X already covers the
/// root's K + (S/2)·X requests and the budget accounting breaks down).
/// Instances violating it are trivially decidable — an element > S/2 makes
/// a no-instance, an element == S/2 a yes-instance — so the reduction loses
/// no generality; see decide_two_partition_via_gadget().
MinPowerGadget build_min_power_gadget(const TwoPartitionInstance& instance);

/// Complete 2-Partition decision through the reduction: shortcuts the
/// trivial cases the gadget premise excludes (odd sum, element >= S/2),
/// otherwise builds the gadget and decides it.  Property-tested to agree
/// with the direct subset-sum solver on random instances.
bool decide_two_partition_via_gadget(const TwoPartitionInstance& instance);

/// Decides the gadget exactly via the structural argument of the proof:
/// enumerates which branch hosts its server at A_i vs B_i (2^n subsets) and
/// checks capacity and the scaled power budget in integer arithmetic.
bool gadget_has_solution(const MinPowerGadget& gadget,
                         const TwoPartitionInstance& instance);

/// Direct 2-Partition decision (meet-in-the-middle-free simple DP over the
/// reachable half-sums); the reference the gadget is validated against.
bool two_partition_brute_force(const TwoPartitionInstance& instance);

/// Scaled power of one server configured at `mode` (0-based) of the gadget:
/// (2K·W_mode)² as an exact integer.  Exposed for tests that recompute the
/// budget comparison independently.
__int128 gadget_mode_power(const MinPowerGadget& gadget, int mode);

}  // namespace treeplace
