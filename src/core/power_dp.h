// Exact DP for MinPower-BoundedCost (paper Section 4.3, Theorem 3).
//
// State per subtree: the exact count vector
//   (n_1..n_M, e_{1,1}..e_{M,M})
// of new servers per mode and reused pre-existing servers per
// (original mode, new mode) pair, with the minimal flow leaving the subtree
// per state (the generalization of Lemma 1: cost and power depend only on
// the counts, and a smaller residual flow never hurts upward feasibility).
//
// The table dimensionality is M + M², exponential in the number of modes —
// the paper's O(N^{2M²+2M+1}) bound — but every dimension is bounded by the
// actual node counts of the partial subtree, which keeps moderate instances
// (M = 2, N ≤ 50) tractable; this is what the paper means by "practical
// usefulness limited to small values of M".  The NoPre variant is the same
// algorithm with all e-dimensions collapsed to zero, recovering the
// O(N^{2M+1}) bound.
//
// For the mode-independent cost structure used in all of the paper's
// experiments, prefer solve_power_symmetric() (core/power_dp_symmetric.h),
// which is orders of magnitude faster and validated to produce an identical
// frontier.
#pragma once

#include "core/dp_cache.h"
#include "core/dp_contract.h"
#include "core/power_common.h"
#include "model/cost.h"
#include "model/modes.h"
#include "tree/tree.h"

namespace treeplace {

class ThreadPool;  // support/thread_pool.h

/// Solver-internal parallelism for the power DPs.  The per-child merge
/// loops are sharded over `threads` workers (see core/merge_kernel.h); the
/// resulting tables — and therefore frontier values, placements and the
/// merge-pair work counter — are bit-identical to the serial solve for any
/// thread count.
struct PowerDPOptions {
  std::size_t threads = 1;  ///< 1 = serial; workers are spawned lazily
  /// Optional long-lived pool to shard on (its size then decides the shard
  /// count); when null and threads > 1, the solve spawns its own workers
  /// lazily.  Registered solvers pass Solver::worker_pool() so repeated
  /// solves never pay per-solve thread churn.
  ThreadPool* pool = nullptr;
  /// Optional externally-owned per-subtree tables (see core/dp_cache.h).
  /// When set, the solve reuses cached tables of internal nodes whose
  /// solver-visible inputs are unchanged since the cache was filled, and
  /// leaves its own tables behind for the next solve — results are
  /// bit-identical to a cold solve, only the work counters shrink.  The
  /// caller must serialize solves sharing one cache.
  dp::PowerSubtreeCache* cache = nullptr;
  /// Optional edit span for cached solves: when it names every edit since
  /// the cache's previous solve (see the fast-path contract in
  /// core/dp_cache.h), planning checks only the touched nodes instead of
  /// sweeping all N signatures.  Empty always means "unknown" and selects
  /// the sweep.  The span must outlive the solve call.
  std::span<const ScenarioDelta> deltas;
  /// Set when `topo`/`scen` are a contracted tree (see core/dp_contract.h):
  /// placements and frontier points are emitted under *original* ids,
  /// sealed leaves reconstruct through view.expand_sealed, and the root
  /// scan prices deletions against the original scenario's totals.  The
  /// caller re-prices frontier breakdowns on the original instance.  The
  /// view must outlive the solve call.
  const dp::ContractionView* contraction = nullptr;
};

/// Solves MinPower-BoundedCost-{No,With}Pre exactly over one scenario of a
/// shared topology (the scenario's pre-existing flags and original modes
/// define E).  `costs` may be fully general (Eq. 4).  Returns the complete
/// cost-power Pareto frontier.
PowerDPResult solve_power_exact(const Topology& topo, const Scenario& scen,
                                const ModeSet& modes, const CostModel& costs,
                                const PowerDPOptions& options = {});
inline PowerDPResult solve_power_exact(const Tree& tree, const ModeSet& modes,
                                       const CostModel& costs,
                                       const PowerDPOptions& options = {}) {
  return solve_power_exact(tree.topology(), tree.scenario(), modes, costs,
                           options);
}

/// Cache-only decision walk: emits the placement of the subtree rooted at
/// `j` for the chosen flat index into its cached root table, reading the
/// per-slot decisions the last completed solve left behind (packed entries
/// are unpacked on the way).  Shared by both power engines — this is what
/// a ContractionView's expand_sealed binds to for the power caches.
void reconstruct_power_subtree(const Topology& topo,
                               dp::PowerSubtreeCache& cache,
                               dp::MergePlanCache& plans, NodeId j,
                               std::size_t flat, Placement& placement);

}  // namespace treeplace
