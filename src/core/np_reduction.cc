#include "core/np_reduction.h"

#include <algorithm>

namespace treeplace {

namespace {

__int128 sq(__int128 x) { return x * x; }

}  // namespace

MinPowerGadget build_min_power_gadget(const TwoPartitionInstance& instance) {
  const std::size_t n = instance.values.size();
  TREEPLACE_CHECK_MSG(n >= 1, "empty 2-Partition instance");
  for (auto v : instance.values) {
    TREEPLACE_CHECK_MSG(v > 0, "2-Partition values must be positive");
  }
  const std::uint64_t s = instance.sum();
  TREEPLACE_CHECK_MSG(s % 2 == 0,
                      "odd sum: trivially a no-instance, no gadget needed");
  for (auto v : instance.values) {
    TREEPLACE_CHECK_MSG(
        2 * v < s,
        "element " << v << " >= S/2: trivially decidable, and the proof's "
                      "root-mode argument needs a_i < S/2 (see header)");
  }

  MinPowerGadget gadget;
  gadget.k = static_cast<std::uint64_t>(n) * s * s;  // K = n·S²
  gadget.scale = 2 * gadget.k;                       // 2K (alpha = 2)
  const std::uint64_t two_k_sq = 2 * gadget.k * gadget.k;  // 2K² = K·(2K)

  // Scaled capacities: W'_1 = 2K², W'_{i+1} = 2K² + a_i, W'_{n+2} = 2K² + S.
  // They must be strictly increasing, so sort a copy of the values; the
  // mode of A_i's server is located by value, not by index.
  std::vector<RequestCount> capacities;
  capacities.push_back(two_k_sq);
  std::vector<std::uint64_t> sorted = instance.values;
  std::sort(sorted.begin(), sorted.end());
  // Strictly increasing capacities require distinct a_i; duplicates share a
  // mode (the reduction still works: a server needs capacity 2K² + a_i and
  // any mode with that exact capacity has the same power).
  for (std::uint64_t a : sorted) {
    if (capacities.back() != two_k_sq + a) {
      capacities.push_back(two_k_sq + a);
    }
  }
  if (capacities.back() != two_k_sq + s) capacities.push_back(two_k_sq + s);
  gadget.modes = ModeSet(std::move(capacities), /*static_power=*/0.0,
                         /*alpha=*/2.0);

  // Tree of paper Figure 3: root with one client of K + (S/2)X requests and
  // n branches A_i (client a_i·X) over B_i (client K).
  TreeBuilder builder;
  gadget.root = builder.add_root();
  builder.add_client(gadget.root, two_k_sq + s / 2);  // (K + (S/2)X)·2K
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId a_node = builder.add_internal(gadget.root);
    builder.add_client(a_node, instance.values[i]);  // (a_i·X)·2K = a_i
    const NodeId b_node = builder.add_internal(a_node);
    builder.add_client(b_node, two_k_sq);  // K·2K
    gadget.a_nodes.push_back(a_node);
    gadget.b_nodes.push_back(b_node);
  }
  gadget.tree = std::move(builder).build();

  // n·P'_max = n(2K²+S)² + n²(2K²)² + n(S/2)(2K)² + (n-1)(2K)².
  const auto nn = static_cast<__int128>(n);
  const auto scale_sq = sq(static_cast<__int128>(gadget.scale));
  gadget.n_times_power_budget =
      nn * sq(static_cast<__int128>(two_k_sq) + s) +
      nn * nn * sq(static_cast<__int128>(two_k_sq)) +
      nn * static_cast<__int128>(s / 2) * scale_sq +
      (nn - 1) * scale_sq;
  return gadget;
}

__int128 gadget_mode_power(const MinPowerGadget& gadget, int mode) {
  return sq(static_cast<__int128>(gadget.modes.capacity(mode)));
}

bool gadget_has_solution(const MinPowerGadget& gadget,
                         const TwoPartitionInstance& instance) {
  const std::size_t n = instance.values.size();
  TREEPLACE_CHECK(n <= 30);  // 2^n enumeration
  const std::uint64_t s = instance.sum();
  const std::uint64_t two_k_sq = 2 * gadget.k * gadget.k;
  const auto nn = static_cast<__int128>(n);

  // Root server is forced to the top mode (its client alone needs
  // 2K² + S/2 > 2K² + a_i for typical instances; in all cases the proof
  // places it at W_{n+2}).
  const __int128 root_power = sq(static_cast<__int128>(two_k_sq) + s);

  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    // i in I  <=> server on A_i (mode with capacity 2K² + a_i);
    // i not in I <=> server on B_i (mode 1, capacity 2K²), a_i flows up.
    __int128 power = root_power;
    std::uint64_t flow_to_root = two_k_sq + s / 2;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) {
        power += sq(static_cast<__int128>(two_k_sq) + instance.values[i]);
      } else {
        power += sq(static_cast<__int128>(two_k_sq));
        flow_to_root += instance.values[i];
      }
    }
    const bool capacity_ok = flow_to_root <= two_k_sq + s;  // W'_{n+2}
    if (capacity_ok && nn * power <= gadget.n_times_power_budget) return true;
  }
  return false;
}

bool decide_two_partition_via_gadget(const TwoPartitionInstance& instance) {
  const std::uint64_t s = instance.sum();
  if (s % 2 != 0) return false;
  for (auto v : instance.values) {
    if (2 * v > s) return false;  // an element larger than S/2 fits nowhere
    if (2 * v == s) return true;  // {v} versus everything else
  }
  const MinPowerGadget gadget = build_min_power_gadget(instance);
  return gadget_has_solution(gadget, instance);
}

bool two_partition_brute_force(const TwoPartitionInstance& instance) {
  const std::uint64_t s = instance.sum();
  if (s % 2 != 0) return false;
  const std::uint64_t half = s / 2;
  // Reachable-subset-sum DP.
  std::vector<char> reachable(half + 1, 0);
  reachable[0] = 1;
  for (std::uint64_t a : instance.values) {
    for (std::uint64_t t = half; t + 1 > a; --t) {
      if (reachable[t - a]) reachable[t] = 1;
    }
  }
  return reachable[half] != 0;
}

}  // namespace treeplace
