// The merge-kernel layer: arena-backed DP tables and the min-plus join.
//
// Every DP engine in this library spends its time in one loop (paper
// Lemma 1 / Section 3.3): joining two per-child tables under the min-flow-
// per-count-vector semiring, `flow[le.dot + re.dot] = min(flow, le.flow +
// re.flow)` below the W_M feasibility cut.  This layer owns that loop so
// the three engines cannot diverge on its contract:
//
//   * Arena tables (TableArena / ArenaTable): flow and decision storage is
//     bump-allocated in cache-line-aligned blocks recycled through
//     size-class free lists — a warm re-solve reallocates its dirty slots
//     out of the blocks the previous solve returned, so steady-state
//     serving performs no heap allocation for tables at all.
//   * Kernel paths: a *sparse* path iterating CompactEntry lists (SoA) and
//     a *dense* path that skips right-operand compaction when occupancy is
//     high and sweeps raw table rows with a branchless, vectorizable
//     min-plus kernel (runtime-dispatched AVX2/NEON, `TREEPLACE_SIMD=off`
//     selects the scalar fallback).  All paths preserve the serial loop's
//     "first occurrence of the minimal flow" tie-break, so flows *and*
//     decisions are bit-identical across paths, SIMD settings, and thread
//     counts (sharded joins reduce in left-index order, replacing only on
//     strictly smaller flow, which reproduces the serial sweep's winner).
//   * Lazy joins (LazyJoin): when a warm re-solve dirties one operand of a
//     root-path slot and the operand's value diff against its snapshot is
//     small, only output cells reachable from the changed cells are
//     recomputed; everything else is spliced from the previous output
//     (counted as cells_skipped).  Cells whose previous winner was a
//     changed cell are re-minimized exactly, so the result — including
//     tie-broken decisions — is bit-identical to a full rebuild.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/dp_util.h"
#include "support/thread_pool.h"
#include "tree/topology.h"

namespace treeplace::dp {

// ---------------------------------------------------------------------------
// Arena tables

/// Bump allocator for DP tables: cache-line-aligned blocks carved from
/// large chunks, recycled through power-of-two size-class free lists.  Not
/// thread-safe — one arena belongs to one solve (or one SolveSession,
/// whose warm solves are serialized by solve_mutex).
class TableArena {
 public:
  static constexpr std::size_t kAlignment = 64;

  TableArena() = default;
  TableArena(const TableArena&) = delete;
  TableArena& operator=(const TableArena&) = delete;
  ~TableArena();

  /// A 64-byte-aligned block of at least `bytes` bytes (rounded up to its
  /// size class).  Returns nullptr for bytes == 0.
  void* allocate(std::size_t bytes);
  /// Returns a block to its size-class free list; `bytes` must be the
  /// value passed to allocate().
  void deallocate(void* p, std::size_t bytes) noexcept;

  /// Invalidates every outstanding block and recycles the chunk memory for
  /// the next fill (chunks are retained, not freed).
  void reset() noexcept;

  /// Bytes handed out and not yet returned (size-class-rounded) — the
  /// `table_bytes` accounting surfaced through solve stats.
  std::size_t used_bytes() const { return used_bytes_; }
  /// Total chunk bytes held from the system allocator.
  std::size_t reserved_bytes() const { return reserved_bytes_; }

 private:
  struct Chunk {
    std::byte* data = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t size_class(std::size_t bytes);

  std::vector<Chunk> chunks_;
  std::vector<std::vector<void*>> free_;  ///< per size-class block lists
  std::size_t used_bytes_ = 0;
  std::size_t reserved_bytes_ = 0;
};

/// A non-owning handle to an arena-backed table.  The owner (a NodeState,
/// via its SubtreeCache's arena, or a solver's local arena) is responsible
/// for returning the block with clear()/assign(); handles die with their
/// arena otherwise.
template <typename T>
class ArenaTable {
 public:
  ArenaTable() = default;

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity_bytes() const { return capacity_bytes_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::span<T> span() { return {data_, size_}; }
  std::span<const T> span() const { return {data_, size_}; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  /// Sizes the table to n elements, reusing the current block when it is
  /// large enough.  Contents are uninitialized.
  void resize_uninit(TableArena& arena, std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (bytes > capacity_bytes_) {
      if (data_ != nullptr) arena.deallocate(data_, capacity_bytes_);
      data_ = static_cast<T*>(arena.allocate(bytes));
      capacity_bytes_ = bytes;
    }
    size_ = n;
  }

  /// Sizes the table and fills it with `value`.
  void assign(TableArena& arena, std::size_t n, const T& value) {
    resize_uninit(arena, n);
    for (std::size_t i = 0; i < size_; ++i) data_[i] = value;
  }

  /// Sizes the table and copies `src` into it.
  void assign_copy(TableArena& arena, std::span<const T> src) {
    resize_uninit(arena, src.size());
    for (std::size_t i = 0; i < size_; ++i) data_[i] = src[i];
  }

  /// Returns the block to the arena and empties the handle.
  void clear(TableArena& arena) noexcept {
    if (data_ != nullptr) arena.deallocate(data_, capacity_bytes_);
    data_ = nullptr;
    size_ = 0;
    capacity_bytes_ = 0;
  }

  /// Detaches without freeing — for handing the block to another handle.
  ArenaTable take() {
    ArenaTable out = *this;
    data_ = nullptr;
    size_ = 0;
    capacity_bytes_ = 0;
    return out;
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_bytes_ = 0;  ///< allocation size passed to the arena
};

// ---------------------------------------------------------------------------
// Packed tables (narrow cells + dead-run elision)

/// A memory-compact, read-only encoding of one flow table.  Two effects
/// stack: invalid cells (kInvalidFlow — the vast majority of cells in
/// high-dimensional boxes, where most count vectors are unreachable) are
/// elided into run-length gaps, and the surviving finite flows are stored
/// at the narrowest width that holds the table's maximum (u16/u32/u64,
/// chosen per table — the W_M feasibility cut keeps every finite flow at
/// or below the largest mode capacity, so most tables pack to u16/u32).
/// pack()/unpack() round-trip bit-exactly; packing cached DP state is
/// therefore invisible to solve results and only shrinks resident session
/// bytes (the 2-4x reduction gated by bench/day_serve) and on-disk
/// session snapshots (core/dp_snapshot.h serializes flow tables packed).
class PackedTable {
 public:
  struct Run {
    std::uint32_t start = 0;   ///< first valid cell of the run
    std::uint32_t length = 0;  ///< consecutive valid cells
  };

  PackedTable() = default;

  /// Encodes `flow`; chooses the cell width from the actual maximum, so
  /// widening can never be needed on unpack (checked in debug builds).
  static PackedTable pack(std::span<const RequestCount> flow);

  /// Rebuilds a snapshot reader's table; validates shape (width, run
  /// ordering and bounds, payload size) and throws CheckError on any
  /// mismatch, so corrupt snapshots fail before allocation.
  static PackedTable from_parts(std::uint64_t cells, std::uint8_t width,
                                std::vector<Run> runs,
                                std::vector<std::uint8_t> payload);

  /// Decodes into `out` (must be exactly cells() long): elided cells
  /// become kInvalidFlow, valid cells their original values.
  void unpack(std::span<RequestCount> out) const;

  bool empty() const { return cells_ == 0; }
  std::uint64_t cells() const { return cells_; }
  std::uint8_t width() const { return width_; }
  const std::vector<Run>& runs() const { return runs_; }
  const std::vector<std::uint8_t>& payload() const { return payload_; }

  /// Heap bytes held by the encoding — the resident-bytes accounting twin
  /// of ArenaTable::capacity_bytes().
  std::size_t heap_bytes() const {
    return runs_.capacity() * sizeof(Run) + payload_.capacity();
  }

  void clear() { *this = PackedTable(); }

 private:
  std::uint64_t cells_ = 0;
  std::uint8_t width_ = 8;  ///< bytes per valid cell: 2, 4 or 8
  std::vector<Run> runs_;
  std::vector<std::uint8_t> payload_;
};

/// Narrow encoding of a Decision table: each cell stores `left` and
/// `right` at the fewest bytes that hold the table's maxima (1, 2 or 4 —
/// operand flats index DP cells, so u32 is already enough) plus the mode
/// byte, vs sizeof(Decision) = 12 with padding.  When the companion flow
/// table is available, dead cells (kInvalidFlow in the flow — their
/// decisions are never read: reconstruction only follows valid cells) are
/// additionally elided behind the flow table's validity runs, which the
/// encoding stores itself so unpacking needs no external mask; elided
/// cells decode to a zeroed Decision.  pack() is deterministic, so
/// serialized bytes agree whether a state is packed in memory or packed
/// on the fly.
class PackedDecisions {
 public:
  PackedDecisions() = default;

  /// Dense encoding: every cell survives (used when no flow table pairs
  /// with the decisions, e.g. after merge-tree snapshots were shed).
  static PackedDecisions pack(std::span<const Decision> dec);

  /// Elided encoding: cells where `flow` holds kInvalidFlow are dropped.
  /// `flow.size()` must equal `dec.size()`.
  static PackedDecisions pack(std::span<const Decision> dec,
                              std::span<const RequestCount> flow);

  /// Rebuilds a snapshot reader's table; validates widths, run shape and
  /// payload size, throwing CheckError before any decode on mismatch.
  /// Empty `runs` with a full-size payload is the dense encoding.
  static PackedDecisions from_parts(std::uint64_t cells, std::uint8_t elided,
                                    std::uint8_t left_width,
                                    std::uint8_t right_width,
                                    std::vector<PackedTable::Run> runs,
                                    std::vector<std::uint8_t> payload);

  /// Decodes into `out` (must be exactly cells() long).
  void unpack(std::span<Decision> out) const;

  bool empty() const { return cells_ == 0; }
  std::uint64_t cells() const { return cells_; }
  bool elided() const { return elided_; }
  std::uint8_t left_width() const { return left_width_; }
  std::uint8_t right_width() const { return right_width_; }
  std::uint8_t cell_bytes() const {
    return static_cast<std::uint8_t>(left_width_ + right_width_ + 1);
  }
  const std::vector<PackedTable::Run>& runs() const { return runs_; }
  const std::vector<std::uint8_t>& payload() const { return payload_; }

  std::size_t heap_bytes() const {
    return runs_.capacity() * sizeof(PackedTable::Run) + payload_.capacity();
  }

  void clear() { *this = PackedDecisions(); }

 private:
  std::uint64_t cells_ = 0;
  bool elided_ = false;
  std::uint8_t left_width_ = 4;
  std::uint8_t right_width_ = 4;
  std::vector<PackedTable::Run> runs_;  ///< empty in the dense encoding
  std::vector<std::uint8_t> payload_;
};

// ---------------------------------------------------------------------------
// Kernel configuration

/// Which inner-loop implementation the join uses.  The process-wide
/// default comes from the environment (kernel_config()); tests pass
/// explicit configs to fuzz every path against every other.
struct KernelConfig {
  /// false = the scalar fallback (TREEPLACE_SIMD=off / 0): the original
  /// branchy loops, guaranteed vectorization-free.
  bool simd = true;
  enum class Path { kAuto, kSparse, kDense };
  /// kAuto picks dense when the right operand's occupancy clears
  /// dense_occupancy; tests force one path to cross-check the other.
  Path path = Path::kAuto;
  /// Minimum valid-cell fraction of the right operand for the dense path.
  double dense_occupancy = 0.5;
  /// Minimum |changed| advantage for the lazy path: lazy runs only when
  /// the dirty operand's diff is at most this fraction of its valid
  /// entries (and falls back mid-join when too many previous winners were
  /// invalidated).  <= 0 disables lazy joins.
  double lazy_max_changed = 0.5;
};

/// The environment-selected process default (TREEPLACE_SIMD=on|off, read
/// once).
const KernelConfig& kernel_config();

// ---------------------------------------------------------------------------
// Compact entries (struct-of-arrays)

/// The valid cells of one operand, SoA so kernels stream each attribute:
/// flat index in the operand's own box, flow, and the digit dot-product
/// against the *output* box strides (combining two entries is then one
/// addition).  Entries are in ascending flat order — the order the serial
/// tie-break is defined over.
struct EntryList {
  std::vector<std::uint32_t> flat;
  std::vector<RequestCount> flow;
  std::vector<std::uint64_t> dot;

  std::size_t size() const { return flat.size(); }
  void clear() {
    flat.clear();
    flow.clear();
    dot.clear();
  }
};

/// Fills `out` with the valid entries of `flow` (a table over `box`),
/// dotted against `target`'s strides.
void compact_entries(const Box& box, std::span<const RequestCount> flow,
                     const Box& target, EntryList& out);

// ---------------------------------------------------------------------------
// The join

/// Reusable per-solver scratch: entry lists, dense row offsets, update
/// masks, shard tables.  Lives as long as the solver so steady-state joins
/// allocate nothing.
struct JoinScratch {
  EntryList left, right;
  std::vector<std::uint64_t> row_dot;     ///< dense: per-row output offset
  std::vector<std::vector<std::uint8_t>> shard_upd;  ///< per-shard lane masks
  std::vector<std::uint8_t> reach;        ///< lazy: output reachability
  std::vector<std::uint8_t> changed_set_left;   ///< lazy: membership masks
  std::vector<std::uint8_t> changed_set_right;
  std::vector<std::uint64_t> changed_dot_left;  ///< lazy: cell offsets
  std::vector<std::uint64_t> changed_dot_right;
  std::vector<std::size_t> rescue;        ///< lazy: cells needing re-min
  std::vector<int> digits;                ///< lazy: decode scratch
  std::vector<int> ldigits;               ///< lazy: left-entry digit matrix
  std::vector<std::vector<RequestCount>> shard_flow;
  std::vector<std::vector<Decision>> shard_dec;
};

/// Inputs of one slot join out = left (+) right under `cap`.
struct JoinInputs {
  const Box* lbox = nullptr;
  std::span<const RequestCount> lflow;
  const Box* rbox = nullptr;
  std::span<const RequestCount> rflow;
  const Box* obox = nullptr;
  RequestCount cap = 0;
};

/// Warm-resume context for a lazy join: the previous output snapshot (same
/// box) and, per operand, the ascending flat indices where its table
/// differs from *its own* snapshot.  An empty span means that operand is
/// bit-identical to the previous solve's; both spans may be non-empty (a
/// rolling multi-delta batch dirties both children of a join), in which
/// case the changed sweeps run from both sides and the both-changed pair
/// grid is reach-marked so stale splices cannot survive.
struct LazyJoin {
  std::span<const RequestCount> old_flow;
  std::span<const Decision> old_dec;
  std::span<const std::uint32_t> changed_left;
  std::span<const std::uint32_t> changed_right;
};

struct JoinStats {
  std::uint64_t pairs = 0;          ///< (left, right) combinations visited
  std::uint64_t cells_skipped = 0;  ///< output cells spliced by a lazy join
  bool lazy = false;                ///< the lazy path ran to completion
};

/// Joins two tables into out_flow/out_dec (sized to obox->size(); filled
/// by the kernel, kInvalidFlow where unreachable).  Sharded over `pool`
/// when profitable; bit-identical to the serial scalar loop for every
/// config/pool combination.  `lazy`, when given and profitable, splices
/// unreachable cells from the snapshot instead of recomputing them.
JoinStats join_slots(const JoinInputs& in, std::span<RequestCount> out_flow,
                     std::span<Decision> out_dec, ThreadPool* pool,
                     JoinScratch& scratch, const LazyJoin* lazy = nullptr,
                     const KernelConfig& cfg = kernel_config());

/// Appends the flat indices where two same-size tables differ (ascending).
/// Returns false — leaving `out` in an unspecified state — once more than
/// `max_changed` differences are found, so callers can cheaply classify a
/// slot as "too churned for a lazy join".
bool diff_tables(std::span<const RequestCount> old_flow,
                 std::span<const RequestCount> new_flow,
                 std::size_t max_changed, std::vector<std::uint32_t>& out);

/// Rolling changed-cell footprint of one node's warm rebuild.  Classifying
/// a slot as lazily joinable used to be purely per-slot (diff at most a
/// fixed fraction of the slot), which made bursty multi-delta batches —
/// many dirty children of one node, each with a modest diff — bail to full
/// joins one slot at a time.  The budget instead grants the whole rebuild
/// one footprint, a fraction of the total dirty-slot cells, and lets any
/// single slot spend up to half its own size from it: a burst whose
/// *aggregate* churn is small stays lazy even when one slot's local ratio
/// is high, while a genuinely churned rebuild exhausts the footprint and
/// degrades to full joins exactly as before.
class RollingDiffBudget {
 public:
  /// Arms the budget for one node rebuild; `dirty_cells_total` is the cell
  /// count of the slots this rebuild will replace (their old snapshots).
  void reset(std::size_t dirty_cells_total) {
    remaining_ = dirty_cells_total / 4 + 8;
  }
  /// The diff cap for one slot of `cells` cells — generous locally, but
  /// never more than what remains of the rolling footprint.
  std::size_t slot_cap(std::size_t cells) const {
    const std::size_t local = cells / 2 + 8;
    return local < remaining_ ? local : remaining_;
  }
  /// Consumes `changed` cells of the footprint after a successful diff.
  void charge(std::size_t changed) {
    remaining_ -= changed < remaining_ ? changed : remaining_;
  }
  std::size_t remaining() const { return remaining_; }

 private:
  std::size_t remaining_ = 0;
};

}  // namespace treeplace::dp
