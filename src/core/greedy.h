// The greedy baseline GR (Wu, Lin & Liu [19]) for MinCost-NoPre.
//
// Bottom-up traversal; at each node, while the inflow (client mass plus the
// flows forwarded by children) exceeds the capacity W, a replica is placed
// on the internal child currently forwarding the largest flow, absorbing it.
// After processing the root, any residual flow forces a replica at the root
// itself.  This is optimal in *replica count* under the closest policy, but
// it is oblivious to pre-existing servers (the paper's Section 3 running
// example) and to power (Section 4) — exactly the gap the DPs close.
//
// Ties between equal child flows are broken towards the smaller node id so
// results are deterministic; see core/heuristics.h for a reuse-aware
// tie-breaking variant.
#pragma once

#include "model/placement.h"
#include "tree/tree.h"

namespace treeplace {

struct GreedyResult {
  /// False iff some node's local client mass alone exceeds W (then no
  /// placement can serve those clients).
  bool feasible = false;
  /// Servers, all at mode 0; use minimize_modes() to map onto a ModeSet.
  Placement placement;
};

/// Runs GR with server capacity `capacity` over one scenario of a shared
/// topology.
GreedyResult solve_greedy_min_count(const Topology& topo, const Scenario& scen,
                                    RequestCount capacity);
inline GreedyResult solve_greedy_min_count(const Tree& tree,
                                           RequestCount capacity) {
  return solve_greedy_min_count(tree.topology(), tree.scenario(), capacity);
}

/// Lower bound certificate used by tests: the number of replicas any valid
/// solution must place strictly within the subtree of each node, derived
/// from the same bottom-up flow argument.  Returns -1 when infeasible.
int greedy_replica_count(const Topology& topo, const Scenario& scen,
                         RequestCount capacity);
inline int greedy_replica_count(const Tree& tree, RequestCount capacity) {
  return greedy_replica_count(tree.topology(), tree.scenario(), capacity);
}

}  // namespace treeplace
