// Polynomial-time heuristics — the "future work" of the paper's Section 6.
//
// The paper's optimal DPs are expensive (O(N^5) and worse); its conclusion
// calls for "polynomial time heuristics with a lower complexity than the
// optimal solution ... local optimizations to better load-balance the
// number of requests per replica, with the goal of minimizing the power
// consumption".  This module provides three such heuristics, all flagged as
// extensions (they are not part of the paper's evaluation; see
// bench/ablation_heuristics for their cost/power gap against the DPs):
//
//  * greedy with reuse-aware tie-breaking — GR that absorbs a pre-existing
//    child when flows tie, keeping GR's count optimality;
//  * reuse local search — hill-climbing swaps of created servers onto
//    pre-existing nodes under validity, improving Eq. 2 cost;
//  * power local search — bounded-cost hill climbing over add/remove/move
//    and mode-minimization moves, improving Eq. 3 power.
#pragma once

#include <cstddef>

#include "core/greedy.h"
#include "model/cost.h"
#include "model/modes.h"
#include "model/placement.h"
#include "tree/tree.h"

namespace treeplace {

/// GR with ties between equal child flows broken towards pre-existing
/// children (then smaller id).  Still optimal in replica count: absorbing
/// any maximal-flow child leaves the same residual.
GreedyResult solve_greedy_prefer_pre(const Topology& topo,
                                     const Scenario& scen,
                                     RequestCount capacity);
inline GreedyResult solve_greedy_prefer_pre(const Tree& tree,
                                            RequestCount capacity) {
  return solve_greedy_prefer_pre(tree.topology(), tree.scenario(), capacity);
}

struct LocalSearchStats {
  std::size_t iterations = 0;  ///< accepted moves
  std::size_t evaluated = 0;   ///< candidate moves examined
};

/// Hill-climbs `placement` (single-mode, capacity W) towards lower Eq. 2
/// cost by replacing created servers with currently unused pre-existing
/// nodes whenever the swap keeps the solution valid.  First-improvement;
/// terminates after `max_moves` accepted moves at the latest.
LocalSearchStats improve_reuse(const Topology& topo, const Scenario& scen,
                               RequestCount capacity, const CostModel& costs,
                               Placement& placement,
                               std::size_t max_moves = 1000);
inline LocalSearchStats improve_reuse(const Tree& tree, RequestCount capacity,
                                      const CostModel& costs,
                                      Placement& placement,
                                      std::size_t max_moves = 1000) {
  return improve_reuse(tree.topology(), tree.scenario(), capacity, costs,
                       placement, max_moves);
}

/// Hill-climbs `placement` towards lower total power while keeping
/// cost <= cost_bound and validity.  Moves: drop a server, add a server on
/// any free internal node, move a server to its parent or to an internal
/// child; after every move all modes are re-minimized.  First-improvement.
LocalSearchStats improve_power(const Topology& topo, const Scenario& scen,
                               const ModeSet& modes, const CostModel& costs,
                               double cost_bound, Placement& placement,
                               std::size_t max_moves = 1000);
inline LocalSearchStats improve_power(const Tree& tree, const ModeSet& modes,
                                      const CostModel& costs,
                                      double cost_bound, Placement& placement,
                                      std::size_t max_moves = 1000) {
  return improve_power(tree.topology(), tree.scenario(), modes, costs,
                       cost_bound, placement, max_moves);
}

}  // namespace treeplace
