#include "core/dp_update.h"

#include <gtest/gtest.h>

#include "core/exhaustive.h"
#include "core/greedy.h"
#include "model/placement.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_fig1;
using testing::make_random_small;

constexpr MinCostConfig kPaperConfig{10, 0.1, 0.01};

TEST(DpUpdateTest, Fig1WithTwoRootRequestsReusesB) {
  // Paper Section 3.1: "if the root r has two client requests, then it was
  // better to keep the pre-existing server B."
  const auto f = make_fig1(2);
  const MinCostResult r = solve_min_cost_with_pre(f.tree, kPaperConfig);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.placement.contains(f.b));
  EXPECT_EQ(r.breakdown.reused, 1);
  EXPECT_EQ(r.breakdown.servers, 2);
  EXPECT_NEAR(r.breakdown.cost, 2.1, 1e-9);  // 2 + 1 create + 0 delete
}

TEST(DpUpdateTest, Fig1WithFourRootRequestsDeletesB) {
  // "if it has four requests ... one can then remove server B ... keep one
  // server at node C and one server at node r."
  const auto f = make_fig1(4);
  const MinCostResult r = solve_min_cost_with_pre(f.tree, kPaperConfig);
  ASSERT_TRUE(r.feasible);
  EXPECT_FALSE(r.placement.contains(f.b));
  EXPECT_TRUE(r.placement.contains(f.c));
  EXPECT_TRUE(r.placement.contains(f.r));
  EXPECT_EQ(r.breakdown.deleted, 1);
  EXPECT_NEAR(r.breakdown.cost, 2.21, 1e-9);  // 2 + 2 create + 1 delete
}

TEST(DpUpdateTest, SolutionsAreAlwaysValid) {
  for (std::uint64_t i = 0; i < 30; ++i) {
    const Tree tree = make_random_small(303, i, 12, 1, 6, 4);
    const MinCostResult r = solve_min_cost_with_pre(tree, kPaperConfig);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(validate(tree, r.placement, ModeSet::single(10)).valid)
        << "tree " << i;
  }
}

TEST(DpUpdateTest, NoPreEqualsGreedyCount) {
  // Without pre-existing servers and with create/delete < 1, the optimal
  // cost solution uses the minimum replica count — the greedy's count.
  for (std::uint64_t i = 0; i < 30; ++i) {
    const Tree tree = make_random_small(404, i, 14, 1, 6, 0);
    const MinCostResult dp = solve_min_cost_with_pre(tree, kPaperConfig);
    const int greedy = greedy_replica_count(tree, 10);
    ASSERT_TRUE(dp.feasible);
    EXPECT_EQ(dp.breakdown.servers, greedy) << "tree " << i;
  }
}

TEST(DpUpdateTest, InfeasibleClientMass) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_client(a, 6);
  builder.add_client(a, 6);
  const Tree tree = std::move(builder).build();
  EXPECT_FALSE(solve_min_cost_with_pre(tree, kPaperConfig).feasible);
}

TEST(DpUpdateTest, EmptyDemandNeedsNoServers) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  builder.add_internal(r);
  const Tree tree = std::move(builder).build();
  const MinCostResult res = solve_min_cost_with_pre(tree, kPaperConfig);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.placement.empty());
  EXPECT_NEAR(res.breakdown.cost, 0.0, 1e-12);
}

TEST(DpUpdateTest, DeletesIdlePreExistingWhenCheap) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.set_pre_existing(a);  // no demand anywhere
  const Tree tree = std::move(builder).build();
  (void)r;
  const MinCostResult res = solve_min_cost_with_pre(tree, kPaperConfig);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.placement.empty());
  EXPECT_NEAR(res.breakdown.cost, 0.01, 1e-12);  // one delete
}

TEST(DpUpdateTest, KeepsIdlePreExistingWhenDeletingIsExpensive) {
  // Deviation covered by our extended root scan (DESIGN.md): with
  // delete > 1, keeping an idle pre-existing server beats deleting it.
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_client(a, 5);
  builder.set_pre_existing(r);
  builder.set_pre_existing(a);
  const Tree tree = std::move(builder).build();
  const MinCostConfig config{10, 0.5, 2.0};
  const MinCostResult res = solve_min_cost_with_pre(tree, config);
  ASSERT_TRUE(res.feasible);
  // Reuse both: cost 2.  Alternatives: reuse A only = 1 + 2 = 3.
  EXPECT_EQ(res.breakdown.reused, 2);
  EXPECT_NEAR(res.breakdown.cost, 2.0, 1e-9);
  EXPECT_TRUE(res.placement.contains(r));
  EXPECT_TRUE(res.placement.contains(a));
}

TEST(DpUpdateTest, AllNodesPreExisting) {
  for (std::uint64_t i = 0; i < 10; ++i) {
    Tree tree = make_random_small(505, i, 8, 1, 6, 8);
    ASSERT_EQ(tree.num_pre_existing(), 8u);
    const MinCostResult res = solve_min_cost_with_pre(tree, kPaperConfig);
    ASSERT_TRUE(res.feasible);
    EXPECT_EQ(res.breakdown.created, 0);  // plenty of reusable servers
  }
}

TEST(DpUpdateTest, BreakdownMatchesIndependentEvaluator) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Tree tree = make_random_small(606, i, 10, 1, 6, 3);
    const MinCostResult res = solve_min_cost_with_pre(tree, kPaperConfig);
    ASSERT_TRUE(res.feasible);
    const CostBreakdown check = evaluate_cost(
        tree, res.placement, CostModel::simple(0.1, 0.01));
    EXPECT_EQ(res.breakdown.servers, check.servers);
    EXPECT_EQ(res.breakdown.reused, check.reused);
    EXPECT_NEAR(res.breakdown.cost, check.cost, 1e-12);
  }
}

TEST(DpUpdateTest, MergeIterationsBelowPaperBound) {
  const Tree tree = make_random_small(707, 0, 15, 1, 6, 5);
  const MinCostResult res = solve_min_cost_with_pre(tree, kPaperConfig);
  ASSERT_TRUE(res.feasible);
  const std::uint64_t n = 15;
  const std::uint64_t e = 5;
  const std::uint64_t paper_bound = n * (n - e + 1) * (n - e + 1) * (e + 1) *
                                    (e + 1);
  EXPECT_LT(res.merge_iterations, paper_bound);
}

TEST(DpUpdateTest, MultipleClientsPerNodeAggregate) {
  // Several clients under one node share every ancestor, so their combined
  // mass acts as one demand (the paper's client(j) sum).  Exercises
  // client_mass() aggregation, which the random generator never does.
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_client(a, 3);
  builder.add_client(a, 4);
  builder.add_client(a, 2);  // mass 9 at A
  builder.add_client(r, 5);
  const Tree tree = std::move(builder).build();
  const MinCostResult res = solve_min_cost_with_pre(tree, kPaperConfig);
  ASSERT_TRUE(res.feasible);
  // 9 + 5 = 14 > 10: two servers needed (A and the root).
  EXPECT_EQ(res.breakdown.servers, 2);
  EXPECT_TRUE(res.placement.contains(a));
  EXPECT_TRUE(res.placement.contains(r));
}

TEST(DpUpdateTest, MultiClientOracleSweep) {
  // Random trees with several clients per node, checked against the
  // exhaustive oracle.
  const CostModel costs = CostModel::simple(0.1, 0.01);
  for (std::uint64_t i = 0; i < 15; ++i) {
    Xoshiro256 rng(derive_seed(31337, i));
    TreeBuilder builder;
    std::vector<NodeId> internals{builder.add_root()};
    for (int k = 0; k < 7; ++k) {
      const NodeId parent = internals[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(internals.size()) - 1))];
      internals.push_back(builder.add_internal(parent));
    }
    for (NodeId node : internals) {
      const int clients = rng.uniform_int(0, 3);
      for (int c = 0; c < clients; ++c) {
        builder.add_client(node, rng.uniform(1, 4));
      }
      if (rng.bernoulli(0.3)) builder.set_pre_existing(node);
    }
    const Tree tree = std::move(builder).build();
    const MinCostResult dp = solve_min_cost_with_pre(tree, kPaperConfig);
    const auto oracle = exhaustive_min_cost(tree, 10, costs);
    ASSERT_EQ(dp.feasible, oracle.has_value()) << "tree " << i;
    if (oracle) {
      EXPECT_NEAR(dp.breakdown.cost, oracle->breakdown.cost, 1e-9)
          << "tree " << i;
    }
  }
}

/// Oracle sweep over tree sizes, pre-existing densities and cost regimes.
struct DpOracleParam {
  int n;
  std::size_t num_pre;
  double create;
  double delete_cost;
};

class DpUpdateOracleTest : public ::testing::TestWithParam<DpOracleParam> {};

TEST_P(DpUpdateOracleTest, MatchesExhaustiveOptimum) {
  const DpOracleParam p = GetParam();
  const MinCostConfig config{10, p.create, p.delete_cost};
  const CostModel costs = CostModel::simple(p.create, p.delete_cost);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Tree tree = make_random_small(
        808 + static_cast<std::uint64_t>(p.n), i, p.n, 1, 6, p.num_pre);
    const auto oracle = exhaustive_min_cost(tree, 10, costs);
    const MinCostResult dp = solve_min_cost_with_pre(tree, config);
    ASSERT_EQ(dp.feasible, oracle.has_value()) << "tree " << i;
    if (oracle.has_value()) {
      EXPECT_NEAR(dp.breakdown.cost, oracle->breakdown.cost, 1e-9)
          << "n=" << p.n << " pre=" << p.num_pre << " create=" << p.create
          << " delete=" << p.delete_cost << " tree=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, DpUpdateOracleTest,
    ::testing::Values(
        DpOracleParam{4, 0, 0.1, 0.01},   // tiny, no pre-existing
        DpOracleParam{6, 2, 0.1, 0.01},   // paper-style costs
        DpOracleParam{8, 3, 0.1, 0.01},
        DpOracleParam{10, 4, 0.1, 0.01},
        DpOracleParam{8, 4, 1.0, 1.0},    // expensive updates (Fig. 11 style)
        DpOracleParam{8, 3, 0.0, 0.0},    // pure replica-count minimization
        DpOracleParam{8, 3, 0.5, 2.0},    // deletion dearer than operating
        DpOracleParam{8, 8, 0.1, 0.01},   // everything pre-existing
        DpOracleParam{9, 3, 0.05, 0.45},  // create + 2*delete < 1 (paper
                                          // replacement-priority regime)
        DpOracleParam{7, 2, 3.0, 0.2}));  // creation very expensive

}  // namespace
}  // namespace treeplace
