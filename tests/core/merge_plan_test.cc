// The balanced child-merge tree (dp::MergePlan) and the DP engines wired
// through it.
//
// Three layers of coverage:
//   * structural properties of the plan itself — slot counts, execution
//     order, contiguous leaf ranges, and the O(log k) root-path depth that
//     warm re-solves rely on;
//   * randomized equivalence fuzz over trees of varying fanout (including
//     wide stars): the merge-tree DPs must reproduce the exhaustive
//     oracles' optimal values and frontiers, and power-exact/power-sym
//     must agree with each other — the merge *order* changed relative to
//     the paper's left-deep chain, the *values* must not;
//   * work-counter sanity: a cold solve builds exactly 2k-1 merge-plan
//     slots per node with k internal children, on all three engines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/dp_update.h"
#include "core/dp_util.h"
#include "core/exhaustive.h"
#include "core/power_dp.h"
#include "core/power_dp_symmetric.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "support/prng.h"
#include "tests/support/test_math.h"

namespace treeplace {
namespace {

using test::ceil_log2;

TEST(MergePlanTest, StructureAndDepth) {
  for (std::uint32_t k = 0; k <= 64; ++k) {
    const dp::MergePlan plan(k);
    ASSERT_EQ(plan.num_leaves(), k);
    if (k == 0) {
      EXPECT_TRUE(plan.steps().empty());
      continue;
    }
    ASSERT_EQ(plan.num_slots(), 2 * k - 1);
    ASSERT_EQ(plan.steps().size(), k - 1);
    EXPECT_EQ(plan.root_slot(), 2 * k - 2);

    std::vector<std::pair<std::uint32_t, std::uint32_t>> range(
        plan.num_slots());
    for (std::uint32_t leaf = 0; leaf < k; ++leaf) range[leaf] = {leaf, leaf};
    std::vector<int> consumed(plan.num_slots(), 0);
    for (std::size_t s = 0; s < plan.steps().size(); ++s) {
      const dp::MergePlan::Step& step = plan.steps()[s];
      const std::uint32_t out = plan.step_slot(s);
      // Operands are produced before they are consumed, exactly once.
      ASSERT_LT(step.left, out);
      ASSERT_LT(step.right, out);
      EXPECT_EQ(consumed[step.left]++, 0);
      EXPECT_EQ(consumed[step.right]++, 0);
      // The step covers exactly its operands' contiguous leaf ranges.
      ASSERT_EQ(range[step.left].second + 1, range[step.right].first)
          << "operands must be adjacent (k=" << k << ", step " << s << ")";
      range[out] = {range[step.left].first, range[step.right].second};
      EXPECT_EQ(range[out].first, step.first_leaf);
      EXPECT_EQ(range[out].second, step.last_leaf);
    }
    EXPECT_EQ(range[plan.root_slot()],
              (std::pair<std::uint32_t, std::uint32_t>{0, k - 1}));

    // O(log k) root paths: every leaf sits inside at most ceil(log2 k)
    // internal slots — the merge redo set of a single dirty child.
    for (std::uint32_t leaf = 0; leaf < k; ++leaf) {
      int depth = 0;
      for (const dp::MergePlan::Step& step : plan.steps()) {
        if (step.first_leaf <= leaf && leaf <= step.last_leaf) ++depth;
      }
      EXPECT_LE(depth, ceil_log2(k)) << "leaf " << leaf << " of k=" << k;
    }
  }
}

Tree make_tree(std::uint64_t seed, std::uint64_t index, int num_internal,
               const TreeShape& shape, int num_modes) {
  TreeGenConfig config;
  config.num_internal = num_internal;
  config.shape = shape;
  config.client_probability = 0.8;
  config.min_requests = 1;
  config.max_requests = 5;
  Tree tree = generate_tree(config, seed, index);
  Xoshiro256 pre_rng = make_rng(seed, index, RngStream::kPreExisting);
  assign_random_pre_existing(tree, num_internal / 4, pre_rng, num_modes);
  return tree;
}

std::uint64_t expected_cold_steps(const Topology& topo) {
  std::uint64_t steps = 0;
  for (NodeId j : topo.internal_post_order()) {
    const std::size_t k = topo.internal_children(j).size();
    if (k > 0) steps += 2 * k - 1;
  }
  return steps;
}

/// The shapes the fuzz sweeps: narrow, paper-fat, and star-like wide
/// fanout (where the balanced tree differs most from the old chain).
const TreeShape kFuzzShapes[] = {{2, 4}, {6, 9}, {12, 16}};

TEST(MergePlanTest, PowerDpMatchesExhaustiveFrontierAcrossFanouts) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (const TreeShape& shape : kFuzzShapes) {
    for (std::uint64_t index = 0; index < 3; ++index) {
      const Tree tree = make_tree(501, index, 9, shape, 2);
      const auto oracle = exhaustive_cost_power_frontier(tree, modes, costs);
      const PowerDPResult exact = solve_power_exact(tree, modes, costs);
      const PowerDPResult sym = solve_power_symmetric(tree, modes, costs);
      ASSERT_EQ(exact.feasible, !oracle.empty());
      ASSERT_EQ(exact.frontier.size(), oracle.size());
      ASSERT_EQ(sym.frontier.size(), oracle.size());
      for (std::size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_NEAR(exact.frontier[i].cost, oracle[i].cost, 1e-9);
        EXPECT_NEAR(exact.frontier[i].power, oracle[i].power, 1e-9);
        EXPECT_NEAR(sym.frontier[i].cost, oracle[i].cost, 1e-9);
        EXPECT_NEAR(sym.frontier[i].power, oracle[i].power, 1e-9);
      }
      // Work-counter sanity: cold solves build every slot exactly once.
      EXPECT_EQ(exact.stats.merge_steps, expected_cold_steps(tree.topology()));
      EXPECT_EQ(sym.stats.merge_steps, expected_cold_steps(tree.topology()));
      EXPECT_EQ(exact.stats.nodes_recomputed, tree.num_internal());
      EXPECT_EQ(sym.stats.nodes_recomputed, tree.num_internal());
    }
  }
}

TEST(MergePlanTest, UpdateDpMatchesExhaustiveCostAcrossFanouts) {
  const CostModel costs = CostModel::simple(0.1, 0.01);
  for (const TreeShape& shape : kFuzzShapes) {
    for (std::uint64_t index = 0; index < 4; ++index) {
      Tree tree = make_tree(502, index, 10, shape, 1);
      const MinCostConfig config{10, 0.1, 0.01};
      const MinCostResult dp = solve_min_cost_with_pre(tree, config);
      const auto oracle = exhaustive_min_cost(tree, 10, costs);
      ASSERT_EQ(dp.feasible, oracle.has_value());
      if (!dp.feasible) continue;
      EXPECT_NEAR(dp.breakdown.cost, oracle->breakdown.cost, 1e-9)
          << "shape [" << shape.min_children << "," << shape.max_children
          << "] tree " << index;
      EXPECT_EQ(dp.merge_steps, expected_cold_steps(tree.topology()));
      EXPECT_EQ(dp.nodes_recomputed, tree.num_internal());
    }
  }
}

TEST(MergePlanTest, SymAgreesWithExactOnLargerWideTrees) {
  // Too large for the oracle: cross-check the two power DPs against each
  // other on star-ish fanouts, where the balanced tree's shape diverges
  // most from the old left-deep chain.
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (std::uint64_t index = 0; index < 2; ++index) {
    const Tree tree = make_tree(503, index, 20, TreeShape{10, 14}, 2);
    const PowerDPResult exact = solve_power_exact(tree, modes, costs);
    const PowerDPResult sym = solve_power_symmetric(tree, modes, costs);
    ASSERT_EQ(exact.feasible, sym.feasible);
    ASSERT_EQ(exact.frontier.size(), sym.frontier.size());
    for (std::size_t i = 0; i < exact.frontier.size(); ++i) {
      EXPECT_NEAR(exact.frontier[i].cost, sym.frontier[i].cost, 1e-9);
      EXPECT_NEAR(exact.frontier[i].power, sym.frontier[i].power, 1e-9);
    }
  }
}

TEST(MergePlanTest, CachedColdSolveMatchesOneShot) {
  // The first solve through a cache must produce the one-shot solve's
  // exact frontier and work counters (same slots built, snapshots kept).
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const Tree tree = make_tree(504, 0, 16, TreeShape{6, 9}, 2);
  const PowerDPResult one_shot = solve_power_symmetric(tree, modes, costs);
  dp::PowerSubtreeCache cache;
  PowerDPOptions options;
  options.cache = &cache;
  const PowerDPResult cached =
      solve_power_symmetric(tree.topology(), tree.scenario(), modes, costs,
                            options);
  ASSERT_EQ(cached.frontier.size(), one_shot.frontier.size());
  for (std::size_t i = 0; i < one_shot.frontier.size(); ++i) {
    EXPECT_EQ(cached.frontier[i].cost, one_shot.frontier[i].cost);
    EXPECT_EQ(cached.frontier[i].power, one_shot.frontier[i].power);
    EXPECT_TRUE(cached.frontier[i].placement ==
                one_shot.frontier[i].placement);
  }
  EXPECT_EQ(cached.stats.merge_pairs, one_shot.stats.merge_pairs);
  EXPECT_EQ(cached.stats.merge_steps, one_shot.stats.merge_steps);
}

}  // namespace
}  // namespace treeplace
