#include "core/power_dp_symmetric.h"

#include <gtest/gtest.h>

#include "core/exhaustive.h"
#include "core/power_dp.h"
#include "model/placement.h"
#include "support/check.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_fig2;
using testing::make_random_small;

TEST(PowerSymmetricTest, RequiresSymmetricCosts) {
  const auto f = make_fig2(4);
  CostModel asym({0.1, 0.2}, {0.01, 0.01}, {{0.0, 0.1}, {0.1, 0.0}});
  EXPECT_THROW(
      solve_power_symmetric(f.tree, ModeSet({7, 10}, 10, 2), asym),
      CheckError);
}

TEST(PowerSymmetricTest, Fig2WorkedExample) {
  const auto f = make_fig2(4);
  const ModeSet modes({7, 10}, 10.0, 2.0);
  const CostModel costs = CostModel::uniform(2, 0.0, 0.0, 0.0);
  const PowerDPResult r = solve_power_symmetric(f.tree, modes, costs);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.min_power()->power, 118.0, 1e-9);
}

TEST(PowerSymmetricTest, SolutionsAreValid) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (std::uint64_t i = 0; i < 15; ++i) {
    const Tree tree = make_random_small(121, i, 12, 1, 9, 4, 2);
    const PowerDPResult r = solve_power_symmetric(tree, modes, costs);
    ASSERT_TRUE(r.feasible);
    for (const PowerParetoPoint& p : r.frontier) {
      EXPECT_TRUE(validate(tree, p.placement, modes).valid) << "tree " << i;
      EXPECT_NEAR(p.power, total_power(p.placement, modes), 1e-9);
      EXPECT_NEAR(p.cost, evaluate_cost(tree, p.placement, costs).cost, 1e-9);
    }
  }
}

TEST(PowerSymmetricTest, AutoDispatch) {
  const auto f = make_fig2(4);
  const ModeSet modes({7, 10}, 10.0, 2.0);
  const CostModel sym = CostModel::uniform(2, 0.1, 0.01, 0.001);
  CostModel asym({0.1, 0.2}, {0.01, 0.01}, {{0.0, 0.1}, {0.1, 0.0}});
  EXPECT_TRUE(solve_power_auto(f.tree, modes, sym).feasible);
  EXPECT_TRUE(solve_power_auto(f.tree, modes, asym).feasible);
}

/// The core guarantee: the reduced state space loses nothing.  Frontier
/// equality with the exact DP over random instances and cost regimes.
struct EquivParam {
  int n;
  std::size_t num_pre;
  double create;
  double del;
  double changed_diff;
  double changed_same;
};

class SymmetricEquivalenceTest
    : public ::testing::TestWithParam<EquivParam> {};

TEST_P(SymmetricEquivalenceTest, FrontierMatchesExactDp) {
  const EquivParam p = GetParam();
  const ModeSet modes({5, 10}, 2.0, 2.0);
  const CostModel costs = CostModel::uniform(2, p.create, p.del,
                                             p.changed_diff, p.changed_same);
  for (std::uint64_t i = 0; i < 12; ++i) {
    const Tree tree = make_random_small(
        232 + static_cast<std::uint64_t>(p.n), i, p.n, 1, 9, p.num_pre, 2);
    const PowerDPResult exact = solve_power_exact(tree, modes, costs);
    const PowerDPResult sym = solve_power_symmetric(tree, modes, costs);
    ASSERT_EQ(exact.feasible, sym.feasible) << "tree " << i;
    ASSERT_EQ(exact.frontier.size(), sym.frontier.size()) << "tree " << i;
    for (std::size_t k = 0; k < exact.frontier.size(); ++k) {
      EXPECT_NEAR(exact.frontier[k].cost, sym.frontier[k].cost, 1e-9)
          << "tree " << i << " point " << k;
      EXPECT_NEAR(exact.frontier[k].power, sym.frontier[k].power, 1e-9)
          << "tree " << i << " point " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CostRegimes, SymmetricEquivalenceTest,
    ::testing::Values(
        EquivParam{8, 3, 0.1, 0.01, 0.001, 0.001},  // paper Exp. 3
        EquivParam{8, 3, 1.0, 1.0, 0.1, 0.1},       // paper Fig. 11
        EquivParam{8, 3, 0.1, 0.01, 0.001, 0.0},    // changed_{o,o} = 0
        EquivParam{10, 0, 0.1, 0.01, 0.001, 0.0},   // NoPre
        EquivParam{9, 9, 0.5, 0.3, 0.2, 0.0},       // all pre-existing
        EquivParam{8, 4, 0.0, 0.0, 0.0, 0.0}));     // pure MinPower

TEST(PowerSymmetricTest, MuchSmallerTablesThanExact) {
  const Tree tree = make_random_small(343, 0, 14, 1, 9, 5, 2);
  const ModeSet modes({5, 10}, 2.0, 2.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001);
  const PowerDPResult exact = solve_power_exact(tree, modes, costs);
  const PowerDPResult sym = solve_power_symmetric(tree, modes, costs);
  ASSERT_TRUE(exact.feasible && sym.feasible);
  EXPECT_LT(sym.stats.table_cells, exact.stats.table_cells);
}

}  // namespace
}  // namespace treeplace
