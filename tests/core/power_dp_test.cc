#include "core/power_dp.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/dp_update.h"
#include "core/exhaustive.h"
#include "model/placement.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_fig2;
using testing::make_random_small;

const ModeSet kFig2Modes({7, 10}, 10.0, 2.0);  // P = 10 + W², paper §4.1

TEST(PowerDpTest, Fig2WithFourRootRequests) {
  // Paper Section 4.1: with four client requests at the root it is better
  // to let 3 requests through (server at C, mode W1) — two W1 servers,
  // power 2·59 = 118 — than to run A at W2 (110 + 59 = 169).
  const auto f = make_fig2(4);
  const CostModel costs = CostModel::uniform(2, 0.0, 0.0, 0.0);
  const PowerDPResult r = solve_power_exact(f.tree, kFig2Modes, costs);
  ASSERT_TRUE(r.feasible);
  const PowerParetoPoint* best = r.min_power();
  ASSERT_NE(best, nullptr);
  EXPECT_NEAR(best->power, 118.0, 1e-9);
  EXPECT_TRUE(best->placement.contains(f.c));
  EXPECT_TRUE(best->placement.contains(f.r));
  EXPECT_EQ(best->placement.mode(f.c), 0);
  EXPECT_EQ(best->placement.mode(f.r), 0);
}

TEST(PowerDpTest, Fig2WithTenRootRequests) {
  // "if it has ten requests, it is necessary to have no request going
  // through A": server at A at W2 plus the root at W2 — power 220.
  const auto f = make_fig2(10);
  const CostModel costs = CostModel::uniform(2, 0.0, 0.0, 0.0);
  const PowerDPResult r = solve_power_exact(f.tree, kFig2Modes, costs);
  ASSERT_TRUE(r.feasible);
  const PowerParetoPoint* best = r.min_power();
  ASSERT_NE(best, nullptr);
  EXPECT_NEAR(best->power, 220.0, 1e-9);
  EXPECT_TRUE(best->placement.contains(f.a));
  EXPECT_EQ(best->placement.mode(f.a), 1);
  EXPECT_TRUE(best->placement.contains(f.r));
}

TEST(PowerDpTest, FrontierPointsAreValidPlacements) {
  for (std::uint64_t i = 0; i < 15; ++i) {
    const Tree tree = make_random_small(111, i, 8, 1, 8, 3, 2);
    const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001);
    const ModeSet modes({5, 10}, 1.0, 2.0);
    const PowerDPResult r = solve_power_exact(tree, modes, costs);
    ASSERT_TRUE(r.feasible);
    for (const PowerParetoPoint& p : r.frontier) {
      EXPECT_TRUE(validate(tree, p.placement, modes).valid) << "tree " << i;
      EXPECT_NEAR(p.power, total_power(p.placement, modes), 1e-9);
      EXPECT_NEAR(p.cost, evaluate_cost(tree, p.placement, costs).cost, 1e-9);
    }
  }
}

TEST(PowerDpTest, FrontierShapeInvariant) {
  for (std::uint64_t i = 0; i < 15; ++i) {
    const Tree tree = make_random_small(222, i, 9, 1, 8, 2, 2);
    const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001);
    const ModeSet modes({5, 10}, 1.0, 2.0);
    const PowerDPResult r = solve_power_exact(tree, modes, costs);
    ASSERT_TRUE(r.feasible);
    for (std::size_t k = 1; k < r.frontier.size(); ++k) {
      EXPECT_GT(r.frontier[k].cost, r.frontier[k - 1].cost);
      EXPECT_LT(r.frontier[k].power, r.frontier[k - 1].power);
    }
  }
}

TEST(PowerDpTest, BoundedCostMonotoneInBound) {
  const Tree tree = make_random_small(333, 0, 10, 1, 8, 3, 2);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001);
  const ModeSet modes({5, 10}, 1.0, 2.0);
  const PowerDPResult r = solve_power_exact(tree, modes, costs);
  ASSERT_TRUE(r.feasible);
  double previous = std::numeric_limits<double>::infinity();
  for (double bound = 2.0; bound <= 20.0; bound += 0.5) {
    const PowerParetoPoint* p = r.best_within_cost(bound);
    if (p == nullptr) continue;
    EXPECT_LE(p->power, previous);
    EXPECT_LE(p->cost, bound + 1e-9);
    previous = p->power;
  }
}

TEST(PowerDpTest, TightBudgetYieldsNull) {
  const auto f = make_fig2(4);
  const CostModel costs = CostModel::uniform(2, 1.0, 1.0, 0.1);
  const PowerDPResult r = solve_power_exact(f.tree, kFig2Modes, costs);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.best_within_cost(0.5), nullptr);  // any solution needs >= 2
  EXPECT_NE(r.best_within_cost(100.0), nullptr);
}

TEST(PowerDpTest, InfeasibleInstance) {
  TreeBuilder builder;
  builder.add_client(builder.add_root(), 11);
  const Tree tree = std::move(builder).build();
  const PowerDPResult r = solve_power_exact(
      tree, ModeSet({5, 10}, 0, 2), CostModel::uniform(2, 0.1, 0.01, 0.001));
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.frontier.empty());
  EXPECT_EQ(r.min_power(), nullptr);
}

TEST(PowerDpTest, SingleModeMatchesCostDp) {
  // With M = 1 the frontier's cheapest point must equal the Section 3 DP's
  // optimal cost, and its power is just R·P(0).
  for (std::uint64_t i = 0; i < 15; ++i) {
    const Tree tree = make_random_small(444, i, 10, 1, 6, 3);
    const CostModel costs = CostModel::simple(0.1, 0.01);
    const ModeSet modes = ModeSet::single(10);
    const PowerDPResult power = solve_power_exact(tree, modes, costs);
    const MinCostResult cost =
        solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
    ASSERT_EQ(power.feasible, cost.feasible);
    if (!power.feasible) continue;
    ASSERT_FALSE(power.frontier.empty());
    EXPECT_NEAR(power.frontier.front().cost, cost.breakdown.cost, 1e-9)
        << "tree " << i;
  }
}

TEST(PowerDpTest, MinPowerMatchesExhaustiveWithZeroCosts) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Tree tree = make_random_small(555, i, 8, 1, 9, 0, 2);
    const ModeSet modes({6, 11}, 3.0, 2.0);
    const CostModel costs = CostModel::uniform(2, 0.0, 0.0, 0.0);
    const PowerDPResult dp = solve_power_exact(tree, modes, costs);
    const auto oracle = exhaustive_min_power(tree, modes);
    ASSERT_EQ(dp.feasible, oracle.has_value()) << "tree " << i;
    if (oracle) {
      EXPECT_NEAR(dp.min_power()->power, *oracle, 1e-9) << "tree " << i;
    }
  }
}

/// Full frontier comparison against the exhaustive oracle across mode
/// structures and pre-existing densities.
struct FrontierParam {
  int n;
  std::size_t num_pre;
  int num_modes;
  double static_power;
  double alpha;
};

class PowerFrontierOracleTest
    : public ::testing::TestWithParam<FrontierParam> {};

TEST_P(PowerFrontierOracleTest, MatchesExhaustiveFrontier) {
  const FrontierParam p = GetParam();
  std::vector<RequestCount> caps;
  for (int m = 0; m < p.num_modes; ++m) {
    caps.push_back(static_cast<RequestCount>(4 + 3 * m));
  }
  const ModeSet modes(caps, p.static_power, p.alpha);
  const CostModel costs = CostModel::uniform(p.num_modes, 0.1, 0.01, 0.001);
  for (std::uint64_t i = 0; i < 12; ++i) {
    const Tree tree =
        make_random_small(666 + static_cast<std::uint64_t>(p.n), i, p.n, 1,
                          modes.max_capacity(), p.num_pre, p.num_modes);
    const PowerDPResult dp = solve_power_exact(tree, modes, costs);
    const auto oracle = exhaustive_cost_power_frontier(tree, modes, costs);
    ASSERT_EQ(dp.feasible, !oracle.empty()) << "tree " << i;
    ASSERT_EQ(dp.frontier.size(), oracle.size()) << "tree " << i;
    for (std::size_t k = 0; k < oracle.size(); ++k) {
      EXPECT_NEAR(dp.frontier[k].cost, oracle[k].cost, 1e-9)
          << "tree " << i << " point " << k;
      EXPECT_NEAR(dp.frontier[k].power, oracle[k].power, 1e-9)
          << "tree " << i << " point " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Structures, PowerFrontierOracleTest,
    ::testing::Values(FrontierParam{6, 0, 2, 1.0, 2.0},
                      FrontierParam{7, 2, 2, 1.0, 2.0},
                      FrontierParam{8, 3, 2, 0.0, 3.0},
                      FrontierParam{6, 2, 3, 2.0, 2.0},
                      FrontierParam{5, 5, 3, 1.0, 2.5},
                      FrontierParam{7, 0, 1, 1.0, 2.0}));

}  // namespace
}  // namespace treeplace
