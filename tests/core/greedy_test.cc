#include "core/greedy.h"

#include <gtest/gtest.h>

#include "core/exhaustive.h"
#include "model/placement.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_fig1;
using testing::make_random_small;

TEST(GreedyTest, Fig1PlacesLargestChildAndRoot) {
  // Inflow at A is 11 > 10: greedy absorbs C (flow 7), leaving 4 through A;
  // the root then serves 4 + its own client.
  const auto f = make_fig1(/*root_requests=*/4);
  const GreedyResult r = solve_greedy_min_count(f.tree, 10);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.placement.size(), 2u);
  EXPECT_TRUE(r.placement.contains(f.c));
  EXPECT_TRUE(r.placement.contains(f.r));
  EXPECT_FALSE(r.placement.contains(f.b));  // GR never reuses B
}

TEST(GreedyTest, ResultIsAlwaysValid) {
  for (std::uint64_t i = 0; i < 30; ++i) {
    const Tree tree = make_random_small(101, i, 10, 1, 6, 0);
    const GreedyResult r = solve_greedy_min_count(tree, 10);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(validate(tree, r.placement, ModeSet::single(10)).valid);
  }
}

TEST(GreedyTest, InfeasibleWhenClientMassExceedsCapacity) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  builder.add_client(r, 11);
  const Tree tree = std::move(builder).build();
  EXPECT_FALSE(solve_greedy_min_count(tree, 10).feasible);
  EXPECT_EQ(greedy_replica_count(tree, 10), -1);
}

TEST(GreedyTest, InfeasibleDeeperInTheTree) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_client(a, 7);
  builder.add_client(a, 7);  // combined mass 14 shares every ancestor
  const Tree tree = std::move(builder).build();
  EXPECT_FALSE(solve_greedy_min_count(tree, 10).feasible);
}

TEST(GreedyTest, NoServersNeededWithoutClients) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  builder.add_internal(r);
  const Tree tree = std::move(builder).build();
  const GreedyResult r2 = solve_greedy_min_count(tree, 10);
  ASSERT_TRUE(r2.feasible);
  EXPECT_TRUE(r2.placement.empty());
}

TEST(GreedyTest, SingleServerAtRootWhenEverythingFits) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_client(a, 3);
  builder.add_client(r, 4);
  const Tree tree = std::move(builder).build();
  const GreedyResult res = solve_greedy_min_count(tree, 10);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.placement.size(), 1u);
  EXPECT_TRUE(res.placement.contains(r));
}

TEST(GreedyTest, ExactCapacityBoundary) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  builder.add_client(r, 10);
  const Tree tree = std::move(builder).build();
  EXPECT_EQ(greedy_replica_count(tree, 10), 1);  // exactly W fits
  EXPECT_EQ(greedy_replica_count(tree, 9), -1);
}

TEST(GreedyTest, DeterministicTieBreaking) {
  // Two children with equal flows: the smaller id is absorbed first.
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_client(a, 6);
  const NodeId b = builder.add_internal(r);
  builder.add_client(b, 6);
  const Tree tree = std::move(builder).build();
  const GreedyResult res = solve_greedy_min_count(tree, 10);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(res.placement.contains(a));
  EXPECT_FALSE(res.placement.contains(b));
}

/// Oracle sweep: GR is optimal in replica count for the closest policy.
class GreedyOptimalityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GreedyOptimalityTest, MatchesExhaustiveMinimum) {
  const auto [n, capacity] = GetParam();
  for (std::uint64_t i = 0; i < 25; ++i) {
    const Tree tree = make_random_small(
        202 + static_cast<std::uint64_t>(n), i, n, 1,
        static_cast<RequestCount>(capacity), 0);
    const auto oracle =
        exhaustive_min_count(tree, static_cast<RequestCount>(capacity));
    const int greedy =
        greedy_replica_count(tree, static_cast<RequestCount>(capacity));
    if (oracle.has_value()) {
      EXPECT_EQ(greedy, *oracle) << "n=" << n << " W=" << capacity
                                 << " tree=" << i;
    } else {
      EXPECT_EQ(greedy, -1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCapacities, GreedyOptimalityTest,
    ::testing::Combine(::testing::Values(2, 4, 6, 8, 10),
                       ::testing::Values(5, 10, 17)));

}  // namespace
}  // namespace treeplace
