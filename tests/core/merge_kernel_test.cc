// Oracle-equivalence fuzz for the merge-kernel layer (core/merge_kernel.h).
//
// The contract under test: every kernel path — sparse/dense, SIMD on/off,
// serial or sharded over a pool, lazy or full — produces flows AND
// decisions bit-identical to the textbook serial double loop with the
// "first occurrence of the minimal flow" tie-break.  Decision tables are
// uninitialized at invalid cells by design, so comparisons only cover
// cells the oracle marks valid.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/merge_kernel.h"
#include "support/check.h"
#include "support/prng.h"
#include "support/thread_pool.h"

namespace treeplace::dp {
namespace {

struct JoinResult {
  std::vector<RequestCount> flow;
  std::vector<Decision> dec;
};

/// The reference loop the paper writes down: left-flat-major, right-flat
/// ascending, first strict minimum wins.
JoinResult naive_join(const JoinInputs& in) {
  JoinResult out;
  out.flow.assign(in.obox->size(), kInvalidFlow);
  out.dec.resize(in.obox->size());
  std::vector<int> digits;
  const auto dot_in_out = [&](const Box& box, std::size_t flat) {
    box.decode(flat, digits);
    std::size_t dot = 0;
    for (std::size_t d = 0; d < digits.size(); ++d) {
      dot += static_cast<std::size_t>(digits[d]) * in.obox->stride(d);
    }
    return dot;
  };
  for (std::size_t lf = 0; lf < in.lflow.size(); ++lf) {
    if (in.lflow[lf] == kInvalidFlow) continue;
    const std::size_t ldot = dot_in_out(*in.lbox, lf);
    for (std::size_t rf = 0; rf < in.rflow.size(); ++rf) {
      if (in.rflow[rf] == kInvalidFlow) continue;
      const RequestCount sum = in.lflow[lf] + in.rflow[rf];
      if (sum > in.cap) continue;
      const std::size_t t = ldot + dot_in_out(*in.rbox, rf);
      if (sum < out.flow[t]) {
        out.flow[t] = sum;
        out.dec[t] = Decision{static_cast<std::uint32_t>(lf),
                              static_cast<std::uint32_t>(rf), -1};
      }
    }
  }
  return out;
}

std::vector<int> random_bounds(Xoshiro256& rng, int max_dims, int max_bound) {
  const int dims = 1 + static_cast<int>(rng.uniform(0, max_dims - 1));
  std::vector<int> bounds(dims);
  for (int& b : bounds) b = static_cast<int>(rng.uniform(0, max_bound));
  return bounds;
}

std::vector<RequestCount> random_table(const Box& box, double occupancy,
                                       RequestCount max_flow,
                                       Xoshiro256& rng) {
  std::vector<RequestCount> flow(box.size(), kInvalidFlow);
  for (RequestCount& f : flow) {
    if (rng.uniform(0, 999) < static_cast<std::uint64_t>(occupancy * 1000)) {
      f = rng.uniform(0, max_flow);
    }
  }
  return flow;
}

void expect_joins_match(const JoinResult& expected,
                        std::span<const RequestCount> flow,
                        std::span<const Decision> dec,
                        const std::string& context) {
  ASSERT_EQ(expected.flow.size(), flow.size()) << context;
  for (std::size_t t = 0; t < flow.size(); ++t) {
    ASSERT_EQ(expected.flow[t], flow[t]) << context << " cell " << t;
    if (expected.flow[t] == kInvalidFlow) continue;  // dec uninitialized
    ASSERT_EQ(expected.dec[t].left, dec[t].left) << context << " cell " << t;
    ASSERT_EQ(expected.dec[t].right, dec[t].right) << context << " cell " << t;
    ASSERT_EQ(expected.dec[t].mode, dec[t].mode) << context << " cell " << t;
  }
}

Box output_box(const Box& lbox, const Box& rbox) {
  std::vector<int> bounds(lbox.bounds().size());
  for (std::size_t d = 0; d < bounds.size(); ++d) {
    bounds[d] = lbox.bounds()[d] + rbox.bounds()[d];
  }
  return Box(bounds);
}

TEST(MergeKernelTest, AllPathsMatchTheSerialOracle) {
  ThreadPool pool(4);
  JoinScratch scratch;
  Xoshiro256 rng(0x5eedu);
  const KernelConfig::Path paths[] = {KernelConfig::Path::kAuto,
                                      KernelConfig::Path::kSparse,
                                      KernelConfig::Path::kDense};
  for (int round = 0; round < 60; ++round) {
    const std::vector<int> lbounds = random_bounds(rng, 3, 6);
    std::vector<int> rbounds = lbounds;  // same dimensionality
    for (int& b : rbounds) b = static_cast<int>(rng.uniform(0, 6));
    const Box lbox(lbounds);
    const Box rbox(rbounds);
    const Box obox = output_box(lbox, rbox);
    const double locc = 0.1 + 0.3 * static_cast<double>(rng.uniform(0, 3));
    const double rocc = 0.1 + 0.3 * static_cast<double>(rng.uniform(0, 3));
    const RequestCount cap = 12;
    const std::vector<RequestCount> lflow = random_table(lbox, locc, 9, rng);
    const std::vector<RequestCount> rflow = random_table(rbox, rocc, 9, rng);
    const JoinInputs in{&lbox, lflow, &rbox, rflow, &obox, cap};
    const JoinResult expected = naive_join(in);

    std::vector<RequestCount> flow(obox.size());
    std::vector<Decision> dec(obox.size());
    for (const KernelConfig::Path path : paths) {
      for (const bool simd : {false, true}) {
        for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
          KernelConfig cfg;
          cfg.simd = simd;
          cfg.path = path;
          const JoinStats stats =
              join_slots(in, flow, dec, p, scratch, nullptr, cfg);
          EXPECT_FALSE(stats.lazy);
          expect_joins_match(
              expected, flow, dec,
              "round " + std::to_string(round) + " path " +
                  std::to_string(static_cast<int>(path)) + " simd " +
                  std::to_string(simd) + " pool " + std::to_string(p != nullptr));
        }
      }
    }
  }
}

namespace {

/// Edits a few cells in place: value changes, invalidations, and newly
/// valid cells all occur.
void dirty_cells(std::vector<RequestCount>& flow, std::size_t edits,
                 Xoshiro256& rng) {
  for (std::size_t e = 0; e < edits; ++e) {
    const std::size_t i = rng.uniform(0, flow.size() - 1);
    switch (rng.uniform(0, 2)) {
      case 0:
        flow[i] = kInvalidFlow;
        break;
      case 1:
        flow[i] = rng.uniform(0, 9);
        break;
      default:
        flow[i] = (flow[i] == kInvalidFlow) ? 3 : flow[i] + 1;
        break;
    }
  }
}

}  // namespace

TEST(MergeKernelTest, LazyJoinMatchesFullRebuild) {
  JoinScratch scratch;
  Xoshiro256 rng(0xfeedu);
  int lazy_runs = 0;
  int both_dirty_runs = 0;
  for (int round = 0; round < 120; ++round) {
    const std::vector<int> lbounds = random_bounds(rng, 2, 7);
    std::vector<int> rbounds = lbounds;
    for (int& b : rbounds) b = static_cast<int>(rng.uniform(1, 7));
    const Box lbox(lbounds);
    const Box rbox(rbounds);
    const Box obox = output_box(lbox, rbox);
    const RequestCount cap = 14;
    std::vector<RequestCount> lflow = random_table(lbox, 0.7, 9, rng);
    std::vector<RequestCount> rflow = random_table(rbox, 0.7, 9, rng);
    // Alternate which side(s) get dirtied: left only, right only, or both
    // (the rolling multi-delta case).
    const bool dirty_left = (round % 3) != 1;
    const bool dirty_right = (round % 3) != 0;

    // The previous solve's output, built by a full join.
    const JoinInputs old_in{&lbox, lflow, &rbox, rflow, &obox, cap};
    const JoinResult old = naive_join(old_in);

    std::vector<std::uint32_t> changed_left;
    std::vector<std::uint32_t> changed_right;
    if (dirty_left) {
      std::vector<RequestCount> dirty = lflow;
      dirty_cells(dirty, 1 + rng.uniform(0, 2), rng);
      ASSERT_TRUE(diff_tables(lflow, dirty, dirty.size(), changed_left));
      lflow = dirty;
    }
    if (dirty_right) {
      std::vector<RequestCount> dirty = rflow;
      dirty_cells(dirty, 1 + rng.uniform(0, 2), rng);
      ASSERT_TRUE(diff_tables(rflow, dirty, dirty.size(), changed_right));
      rflow = dirty;
    }
    if (changed_left.empty() && changed_right.empty()) continue;

    const JoinInputs in{&lbox, lflow, &rbox, rflow, &obox, cap};
    const JoinResult expected = naive_join(in);

    LazyJoin lazy;
    lazy.old_flow = old.flow;
    lazy.old_dec = old.dec;
    lazy.changed_left = changed_left;
    lazy.changed_right = changed_right;
    KernelConfig cfg;
    cfg.lazy_max_changed = 1.0;  // always worth attempting

    std::vector<RequestCount> flow(obox.size());
    std::vector<Decision> dec(obox.size());
    const JoinStats stats = join_slots(in, flow, dec, nullptr, scratch,
                                       &lazy, cfg);
    if (stats.lazy) {
      ++lazy_runs;
      if (!changed_left.empty() && !changed_right.empty()) ++both_dirty_runs;
      EXPECT_LE(stats.cells_skipped, obox.size());
    } else {
      EXPECT_EQ(stats.cells_skipped, 0u);
    }
    expect_joins_match(expected, flow, dec,
                       "lazy round " + std::to_string(round) + " dirty " +
                           (dirty_left ? "L" : "") +
                           (dirty_right ? "R" : ""));
  }
  // The point of the fuzz is the lazy path; make sure it actually ran,
  // including the two-dirty-operand generalization.
  EXPECT_GT(lazy_runs, 30);
  EXPECT_GT(both_dirty_runs, 10);
}

TEST(MergeKernelTest, DiffTablesListsChangesAndBails) {
  const std::vector<RequestCount> a{1, kInvalidFlow, 3, 4, 5};
  std::vector<std::uint32_t> out{99};
  EXPECT_TRUE(diff_tables(a, a, 0, out));
  EXPECT_TRUE(out.empty());

  std::vector<RequestCount> b = a;
  b[1] = 2;
  b[4] = kInvalidFlow;
  EXPECT_TRUE(diff_tables(a, b, 2, out));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 4}));

  EXPECT_FALSE(diff_tables(a, b, 1, out));
}

TEST(MergeKernelTest, CompactEntriesAreAscendingWithOutputDots) {
  const Box box({2, 1});
  const Box target({4, 3});
  std::vector<RequestCount> flow(box.size(), kInvalidFlow);
  flow[1] = 7;   // (0, 1)
  flow[4] = 2;   // (2, 0)
  EntryList out;
  compact_entries(box, flow, target, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.flat[0], 1u);
  EXPECT_EQ(out.flow[0], 7u);
  EXPECT_EQ(out.dot[0], 0u * target.stride(0) + 1u * target.stride(1));
  EXPECT_EQ(out.flat[1], 4u);
  EXPECT_EQ(out.flow[1], 2u);
  EXPECT_EQ(out.dot[1], 2u * target.stride(0));
}

TEST(MergeKernelTest, ArenaRecyclesBlocksThroughSizeClasses) {
  TableArena arena;
  EXPECT_EQ(arena.used_bytes(), 0u);
  void* a = arena.allocate(100);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % TableArena::kAlignment, 0u);
  EXPECT_EQ(arena.used_bytes(), 128u);  // size-class-rounded
  arena.deallocate(a, 100);
  EXPECT_EQ(arena.used_bytes(), 0u);
  // Same size class -> the freed block comes straight back.
  void* b = arena.allocate(120);
  EXPECT_EQ(b, a);
  const std::size_t reserved = arena.reserved_bytes();
  EXPECT_GT(reserved, 0u);
  // reset() recycles chunk memory without returning it to the system.
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(MergeKernelTest, ArenaTablesReuseTheirBlockAcrossResizes) {
  TableArena arena;
  ArenaTable<RequestCount> t;
  t.assign(arena, 64, 5);
  ASSERT_EQ(t.size(), 64u);
  EXPECT_EQ(t[63], 5u);
  const void* block = t.data();
  t.resize_uninit(arena, 32);  // shrinking keeps the block
  EXPECT_EQ(t.data(), block);
  ArenaTable<RequestCount> moved = t.take();
  EXPECT_EQ(t.data(), nullptr);
  EXPECT_EQ(moved.data(), block);
  moved.clear(arena);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(MergeKernelTest, BoxRejectsTablesBeyond32BitCells) {
  // 70001^2 cells > 2^32: Decision/CompactEntry store 32-bit flats, so the
  // constructor must refuse instead of silently narrowing.
  EXPECT_THROW(Box({70000, 70000}), CheckError);
  EXPECT_NO_THROW(Box({70000, 1}));
}

TEST(MergeKernelTest, PackedTableRoundTripsRandomTables) {
  Xoshiro256 rng(0xbeefu);
  for (int round = 0; round < 200; ++round) {
    const std::size_t cells = rng.uniform(0, 300);
    std::vector<RequestCount> flow(cells, kInvalidFlow);
    // Mixed density: some tables nearly empty, some nearly full, values
    // spanning all three widths.
    const std::uint64_t density = rng.uniform(0, 10);
    for (auto& cell : flow) {
      if (rng.uniform(0, 9) >= density) continue;
      switch (rng.uniform(0, 2)) {
        case 0: cell = rng.uniform(0, 0xFFFF); break;
        case 1: cell = rng.uniform(0, 0xFFFFFFFFull); break;
        default: cell = rng.uniform(0, kInvalidFlow - 1); break;
      }
    }
    const PackedTable packed = PackedTable::pack(flow);
    ASSERT_EQ(packed.cells(), cells);
    std::vector<RequestCount> out(cells, 0);
    packed.unpack(out);
    EXPECT_EQ(out, flow) << "round " << round;
  }
}

TEST(MergeKernelTest, PackedTablePicksTheNarrowestWidth) {
  const std::vector<RequestCount> small{1, kInvalidFlow, 0xFFFF};
  EXPECT_EQ(PackedTable::pack(small).width(), 2);
  const std::vector<RequestCount> medium{1, 0x10000};
  EXPECT_EQ(PackedTable::pack(medium).width(), 4);
  const std::vector<RequestCount> wide{1, 0x100000000ull};
  EXPECT_EQ(PackedTable::pack(wide).width(), 8);
  // All-invalid tables carry no payload at all.
  const std::vector<RequestCount> dead(64, kInvalidFlow);
  const PackedTable packed = PackedTable::pack(dead);
  EXPECT_TRUE(packed.runs().empty());
  EXPECT_TRUE(packed.payload().empty());
  std::vector<RequestCount> out(64, 0);
  packed.unpack(out);
  EXPECT_EQ(out, dead);
}

TEST(MergeKernelTest, PackedTableElidesDeadCells) {
  // A sparse table: the encoding must cost ~valid_cells * width, not
  // cells * 8 — the >= 2x session-bytes claim rests on this.
  std::vector<RequestCount> flow(1024, kInvalidFlow);
  for (std::size_t i = 0; i < flow.size(); i += 16) flow[i] = i;
  const PackedTable packed = PackedTable::pack(flow);
  EXPECT_EQ(packed.width(), 2);
  EXPECT_LE(packed.heap_bytes(),
            flow.size() * sizeof(RequestCount) / 4);
}

TEST(MergeKernelTest, PackedDecisionsRoundTripAtNarrowWidths) {
  Xoshiro256 rng(0xdecau);
  for (int round = 0; round < 100; ++round) {
    const std::size_t cells = rng.uniform(0, 200);
    const std::uint32_t left_max =
        round % 3 == 0 ? 0xFF : round % 3 == 1 ? 0xFFFF : 0xFFFFFF;
    std::vector<Decision> dec(cells);
    for (Decision& d : dec) {
      d.left = static_cast<std::uint32_t>(rng.uniform(0, left_max));
      d.right = static_cast<std::uint32_t>(rng.uniform(0, 0xFFFF));
      d.mode = static_cast<std::int8_t>(
          static_cast<int>(rng.uniform(0, 5)) - 1);
    }
    const PackedDecisions packed = PackedDecisions::pack(dec);
    EXPECT_LE(packed.cell_bytes(), 7);  // never the padded 12 bytes
    std::vector<Decision> out(cells);
    packed.unpack(out);
    for (std::size_t i = 0; i < cells; ++i) {
      EXPECT_EQ(out[i].left, dec[i].left);
      EXPECT_EQ(out[i].right, dec[i].right);
      EXPECT_EQ(out[i].mode, dec[i].mode);
    }
  }
}

TEST(MergeKernelTest, PackedDecisionsElideDeadCellsBehindFlowRuns) {
  // A sparse companion flow table shrinks the decision encoding to the
  // valid cells (plus the shared run list); dead cells decode zeroed and
  // garbage operands in them must not widen the chosen flats.
  Xoshiro256 rng(0xe11du);
  std::vector<RequestCount> flow(512, kInvalidFlow);
  std::vector<Decision> dec(512);
  for (std::size_t i = 0; i < dec.size(); ++i) {
    dec[i].left = 0xFFFFFFFFu;  // garbage everywhere...
    dec[i].right = 0xFFFFFFFFu;
    dec[i].mode = -1;
    if (i % 8 == 0) {  // ...except the valid 1/8 of cells
      flow[i] = static_cast<RequestCount>(rng.uniform(0, 1000));
      dec[i].left = static_cast<std::uint32_t>(rng.uniform(0, 200));
      dec[i].right = static_cast<std::uint32_t>(rng.uniform(0, 200));
      dec[i].mode = static_cast<std::int8_t>(rng.uniform(0, 3));
    }
  }
  const PackedDecisions packed = PackedDecisions::pack(dec, flow);
  EXPECT_TRUE(packed.elided());
  EXPECT_EQ(packed.cell_bytes(), 3);  // garbage did not force width 4
  EXPECT_LE(packed.heap_bytes(), dec.size() * sizeof(Decision) / 4);
  std::vector<Decision> out(dec.size());
  packed.unpack(out);
  for (std::size_t i = 0; i < dec.size(); ++i) {
    if (flow[i] != kInvalidFlow) {
      EXPECT_EQ(out[i].left, dec[i].left);
      EXPECT_EQ(out[i].right, dec[i].right);
      EXPECT_EQ(out[i].mode, dec[i].mode);
    } else {
      EXPECT_EQ(out[i].left, 0u);
      EXPECT_EQ(out[i].right, 0u);
      EXPECT_EQ(out[i].mode, -1);
    }
  }
}

TEST(MergeKernelTest, PackedDecisionsFromPartsRejectsCorruptShapes) {
  using Run = PackedTable::Run;
  const auto payload = [](std::size_t n) {
    return std::vector<std::uint8_t>(n, 0);
  };
  EXPECT_NO_THROW(PackedDecisions::from_parts(4, 0, 1, 2, {}, payload(16)));
  // Bad widths.
  EXPECT_THROW(PackedDecisions::from_parts(4, 0, 3, 2, {}, payload(24)),
               CheckError);
  EXPECT_THROW(PackedDecisions::from_parts(4, 0, 1, 8, {}, payload(40)),
               CheckError);
  // Payload size mismatch.
  EXPECT_THROW(PackedDecisions::from_parts(4, 0, 1, 2, {}, payload(15)),
               CheckError);
  // Dense encodings must not carry runs.
  EXPECT_THROW(
      PackedDecisions::from_parts(4, 0, 1, 2, {Run{0, 4}}, payload(16)),
      CheckError);
  // Elided: run out of bounds / overlapping, payload vs covered cells.
  EXPECT_NO_THROW(
      PackedDecisions::from_parts(8, 1, 1, 2, {Run{2, 2}}, payload(8)));
  EXPECT_THROW(
      PackedDecisions::from_parts(8, 1, 1, 2, {Run{6, 4}}, payload(16)),
      CheckError);
  EXPECT_THROW(PackedDecisions::from_parts(
                   8, 1, 1, 2, {Run{2, 2}, Run{1, 2}}, payload(16)),
               CheckError);
  EXPECT_THROW(
      PackedDecisions::from_parts(8, 1, 1, 2, {Run{2, 2}}, payload(12)),
      CheckError);
}

TEST(MergeKernelTest, PackedTableFromPartsRejectsCorruptShapes) {
  using Run = PackedTable::Run;
  const auto payload = [](std::size_t n) {
    return std::vector<std::uint8_t>(n, 0);
  };
  // Valid baseline.
  EXPECT_NO_THROW(PackedTable::from_parts(8, 2, {Run{1, 3}}, payload(6)));
  // Bad width.
  EXPECT_THROW(PackedTable::from_parts(8, 3, {Run{1, 3}}, payload(9)),
               CheckError);
  // Zero-length run.
  EXPECT_THROW(PackedTable::from_parts(8, 2, {Run{1, 0}}, payload(0)),
               CheckError);
  // Overlapping / non-ascending runs.
  EXPECT_THROW(
      PackedTable::from_parts(8, 2, {Run{0, 3}, Run{2, 2}}, payload(10)),
      CheckError);
  // Run past the end of the table.
  EXPECT_THROW(PackedTable::from_parts(8, 2, {Run{6, 3}}, payload(6)),
               CheckError);
  // Payload size mismatch.
  EXPECT_THROW(PackedTable::from_parts(8, 2, {Run{1, 3}}, payload(7)),
               CheckError);
}

}  // namespace
}  // namespace treeplace::dp
