// Oracle-equivalence fuzz for the merge-kernel layer (core/merge_kernel.h).
//
// The contract under test: every kernel path — sparse/dense, SIMD on/off,
// serial or sharded over a pool, lazy or full — produces flows AND
// decisions bit-identical to the textbook serial double loop with the
// "first occurrence of the minimal flow" tie-break.  Decision tables are
// uninitialized at invalid cells by design, so comparisons only cover
// cells the oracle marks valid.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/merge_kernel.h"
#include "support/check.h"
#include "support/prng.h"
#include "support/thread_pool.h"

namespace treeplace::dp {
namespace {

struct JoinResult {
  std::vector<RequestCount> flow;
  std::vector<Decision> dec;
};

/// The reference loop the paper writes down: left-flat-major, right-flat
/// ascending, first strict minimum wins.
JoinResult naive_join(const JoinInputs& in) {
  JoinResult out;
  out.flow.assign(in.obox->size(), kInvalidFlow);
  out.dec.resize(in.obox->size());
  std::vector<int> digits;
  const auto dot_in_out = [&](const Box& box, std::size_t flat) {
    box.decode(flat, digits);
    std::size_t dot = 0;
    for (std::size_t d = 0; d < digits.size(); ++d) {
      dot += static_cast<std::size_t>(digits[d]) * in.obox->stride(d);
    }
    return dot;
  };
  for (std::size_t lf = 0; lf < in.lflow.size(); ++lf) {
    if (in.lflow[lf] == kInvalidFlow) continue;
    const std::size_t ldot = dot_in_out(*in.lbox, lf);
    for (std::size_t rf = 0; rf < in.rflow.size(); ++rf) {
      if (in.rflow[rf] == kInvalidFlow) continue;
      const RequestCount sum = in.lflow[lf] + in.rflow[rf];
      if (sum > in.cap) continue;
      const std::size_t t = ldot + dot_in_out(*in.rbox, rf);
      if (sum < out.flow[t]) {
        out.flow[t] = sum;
        out.dec[t] = Decision{static_cast<std::uint32_t>(lf),
                              static_cast<std::uint32_t>(rf), -1};
      }
    }
  }
  return out;
}

std::vector<int> random_bounds(Xoshiro256& rng, int max_dims, int max_bound) {
  const int dims = 1 + static_cast<int>(rng.uniform(0, max_dims - 1));
  std::vector<int> bounds(dims);
  for (int& b : bounds) b = static_cast<int>(rng.uniform(0, max_bound));
  return bounds;
}

std::vector<RequestCount> random_table(const Box& box, double occupancy,
                                       RequestCount max_flow,
                                       Xoshiro256& rng) {
  std::vector<RequestCount> flow(box.size(), kInvalidFlow);
  for (RequestCount& f : flow) {
    if (rng.uniform(0, 999) < static_cast<std::uint64_t>(occupancy * 1000)) {
      f = rng.uniform(0, max_flow);
    }
  }
  return flow;
}

void expect_joins_match(const JoinResult& expected,
                        std::span<const RequestCount> flow,
                        std::span<const Decision> dec,
                        const std::string& context) {
  ASSERT_EQ(expected.flow.size(), flow.size()) << context;
  for (std::size_t t = 0; t < flow.size(); ++t) {
    ASSERT_EQ(expected.flow[t], flow[t]) << context << " cell " << t;
    if (expected.flow[t] == kInvalidFlow) continue;  // dec uninitialized
    ASSERT_EQ(expected.dec[t].left, dec[t].left) << context << " cell " << t;
    ASSERT_EQ(expected.dec[t].right, dec[t].right) << context << " cell " << t;
    ASSERT_EQ(expected.dec[t].mode, dec[t].mode) << context << " cell " << t;
  }
}

Box output_box(const Box& lbox, const Box& rbox) {
  std::vector<int> bounds(lbox.bounds().size());
  for (std::size_t d = 0; d < bounds.size(); ++d) {
    bounds[d] = lbox.bounds()[d] + rbox.bounds()[d];
  }
  return Box(bounds);
}

TEST(MergeKernelTest, AllPathsMatchTheSerialOracle) {
  ThreadPool pool(4);
  JoinScratch scratch;
  Xoshiro256 rng(0x5eedu);
  const KernelConfig::Path paths[] = {KernelConfig::Path::kAuto,
                                      KernelConfig::Path::kSparse,
                                      KernelConfig::Path::kDense};
  for (int round = 0; round < 60; ++round) {
    const std::vector<int> lbounds = random_bounds(rng, 3, 6);
    std::vector<int> rbounds = lbounds;  // same dimensionality
    for (int& b : rbounds) b = static_cast<int>(rng.uniform(0, 6));
    const Box lbox(lbounds);
    const Box rbox(rbounds);
    const Box obox = output_box(lbox, rbox);
    const double locc = 0.1 + 0.3 * static_cast<double>(rng.uniform(0, 3));
    const double rocc = 0.1 + 0.3 * static_cast<double>(rng.uniform(0, 3));
    const RequestCount cap = 12;
    const std::vector<RequestCount> lflow = random_table(lbox, locc, 9, rng);
    const std::vector<RequestCount> rflow = random_table(rbox, rocc, 9, rng);
    const JoinInputs in{&lbox, lflow, &rbox, rflow, &obox, cap};
    const JoinResult expected = naive_join(in);

    std::vector<RequestCount> flow(obox.size());
    std::vector<Decision> dec(obox.size());
    for (const KernelConfig::Path path : paths) {
      for (const bool simd : {false, true}) {
        for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
          KernelConfig cfg;
          cfg.simd = simd;
          cfg.path = path;
          const JoinStats stats =
              join_slots(in, flow, dec, p, scratch, nullptr, cfg);
          EXPECT_FALSE(stats.lazy);
          expect_joins_match(
              expected, flow, dec,
              "round " + std::to_string(round) + " path " +
                  std::to_string(static_cast<int>(path)) + " simd " +
                  std::to_string(simd) + " pool " + std::to_string(p != nullptr));
        }
      }
    }
  }
}

TEST(MergeKernelTest, LazyJoinMatchesFullRebuild) {
  JoinScratch scratch;
  Xoshiro256 rng(0xfeedu);
  int lazy_runs = 0;
  for (int round = 0; round < 80; ++round) {
    const std::vector<int> lbounds = random_bounds(rng, 2, 7);
    std::vector<int> rbounds = lbounds;
    for (int& b : rbounds) b = static_cast<int>(rng.uniform(1, 7));
    const Box lbox(lbounds);
    const Box rbox(rbounds);
    const Box obox = output_box(lbox, rbox);
    const RequestCount cap = 14;
    std::vector<RequestCount> lflow = random_table(lbox, 0.7, 9, rng);
    std::vector<RequestCount> rflow = random_table(rbox, 0.7, 9, rng);
    const bool dirty_is_left = (round % 2) == 0;

    // The previous solve's output, built by a full join.
    const JoinInputs old_in{&lbox, lflow, &rbox, rflow, &obox, cap};
    const JoinResult old = naive_join(old_in);

    // Dirty one operand in a few cells: value changes, invalidations, and
    // newly valid cells all occur.
    std::vector<RequestCount> dirty = dirty_is_left ? lflow : rflow;
    const std::size_t edits = 1 + rng.uniform(0, 2);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t i = rng.uniform(0, dirty.size() - 1);
      switch (rng.uniform(0, 2)) {
        case 0:
          dirty[i] = kInvalidFlow;
          break;
        case 1:
          dirty[i] = rng.uniform(0, 9);
          break;
        default:
          dirty[i] = (dirty[i] == kInvalidFlow) ? 3 : dirty[i] + 1;
          break;
      }
    }
    std::vector<std::uint32_t> changed;
    ASSERT_TRUE(diff_tables(dirty_is_left ? lflow : rflow, dirty,
                            dirty.size(), changed));
    if (changed.empty()) continue;  // edits cancelled out
    if (dirty_is_left) {
      lflow = dirty;
    } else {
      rflow = dirty;
    }

    const JoinInputs in{&lbox, lflow, &rbox, rflow, &obox, cap};
    const JoinResult expected = naive_join(in);

    LazyJoin lazy;
    lazy.old_flow = old.flow;
    lazy.old_dec = old.dec;
    lazy.changed = changed;
    lazy.dirty_is_left = dirty_is_left;
    KernelConfig cfg;
    cfg.lazy_max_changed = 1.0;  // always worth attempting

    std::vector<RequestCount> flow(obox.size());
    std::vector<Decision> dec(obox.size());
    const JoinStats stats = join_slots(in, flow, dec, nullptr, scratch,
                                       &lazy, cfg);
    if (stats.lazy) {
      ++lazy_runs;
      EXPECT_LE(stats.cells_skipped, obox.size());
    } else {
      EXPECT_EQ(stats.cells_skipped, 0u);
    }
    expect_joins_match(expected, flow, dec,
                       "lazy round " + std::to_string(round) +
                           (dirty_is_left ? " dirty-left" : " dirty-right"));
  }
  // The point of the fuzz is the lazy path; make sure it actually ran.
  EXPECT_GT(lazy_runs, 20);
}

TEST(MergeKernelTest, DiffTablesListsChangesAndBails) {
  const std::vector<RequestCount> a{1, kInvalidFlow, 3, 4, 5};
  std::vector<std::uint32_t> out{99};
  EXPECT_TRUE(diff_tables(a, a, 0, out));
  EXPECT_TRUE(out.empty());

  std::vector<RequestCount> b = a;
  b[1] = 2;
  b[4] = kInvalidFlow;
  EXPECT_TRUE(diff_tables(a, b, 2, out));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 4}));

  EXPECT_FALSE(diff_tables(a, b, 1, out));
}

TEST(MergeKernelTest, CompactEntriesAreAscendingWithOutputDots) {
  const Box box({2, 1});
  const Box target({4, 3});
  std::vector<RequestCount> flow(box.size(), kInvalidFlow);
  flow[1] = 7;   // (0, 1)
  flow[4] = 2;   // (2, 0)
  EntryList out;
  compact_entries(box, flow, target, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.flat[0], 1u);
  EXPECT_EQ(out.flow[0], 7u);
  EXPECT_EQ(out.dot[0], 0u * target.stride(0) + 1u * target.stride(1));
  EXPECT_EQ(out.flat[1], 4u);
  EXPECT_EQ(out.flow[1], 2u);
  EXPECT_EQ(out.dot[1], 2u * target.stride(0));
}

TEST(MergeKernelTest, ArenaRecyclesBlocksThroughSizeClasses) {
  TableArena arena;
  EXPECT_EQ(arena.used_bytes(), 0u);
  void* a = arena.allocate(100);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % TableArena::kAlignment, 0u);
  EXPECT_EQ(arena.used_bytes(), 128u);  // size-class-rounded
  arena.deallocate(a, 100);
  EXPECT_EQ(arena.used_bytes(), 0u);
  // Same size class -> the freed block comes straight back.
  void* b = arena.allocate(120);
  EXPECT_EQ(b, a);
  const std::size_t reserved = arena.reserved_bytes();
  EXPECT_GT(reserved, 0u);
  // reset() recycles chunk memory without returning it to the system.
  arena.reset();
  EXPECT_EQ(arena.used_bytes(), 0u);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(MergeKernelTest, ArenaTablesReuseTheirBlockAcrossResizes) {
  TableArena arena;
  ArenaTable<RequestCount> t;
  t.assign(arena, 64, 5);
  ASSERT_EQ(t.size(), 64u);
  EXPECT_EQ(t[63], 5u);
  const void* block = t.data();
  t.resize_uninit(arena, 32);  // shrinking keeps the block
  EXPECT_EQ(t.data(), block);
  ArenaTable<RequestCount> moved = t.take();
  EXPECT_EQ(t.data(), nullptr);
  EXPECT_EQ(moved.data(), block);
  moved.clear(arena);
  EXPECT_EQ(arena.used_bytes(), 0u);
}

TEST(MergeKernelTest, BoxRejectsTablesBeyond32BitCells) {
  // 70001^2 cells > 2^32: Decision/CompactEntry store 32-bit flats, so the
  // constructor must refuse instead of silently narrowing.
  EXPECT_THROW(Box({70000, 70000}), CheckError);
  EXPECT_NO_THROW(Box({70000, 1}));
}

}  // namespace
}  // namespace treeplace::dp
