// Shared instances for the core-algorithm tests: the paper's two worked
// examples (Figures 1 and 2) and a seeded random-small-tree factory for
// oracle sweeps.
#pragma once

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "support/prng.h"
#include "tree/tree.h"

namespace treeplace::testing {

/// Paper Figure 1: root r (local client), child A, grandchildren B (4
/// requests below, pre-existing server) and C (7 requests below), W = 10.
struct Fig1 {
  Tree tree;
  NodeId r, a, b, c;
};

inline Fig1 make_fig1(RequestCount root_requests) {
  TreeBuilder builder;
  Fig1 f;
  f.r = builder.add_root();
  builder.add_client(f.r, root_requests);
  f.a = builder.add_internal(f.r);
  f.b = builder.add_internal(f.a);
  builder.add_client(f.b, 4);
  f.c = builder.add_internal(f.a);
  builder.add_client(f.c, 7);
  builder.set_pre_existing(f.b, 0);
  return Fig1{std::move(builder).build(), f.r, f.a, f.b, f.c};
}

/// Paper Figure 2: root r (local client), child A, grandchildren B (3
/// requests) and C (7 requests); modes W1=7, W2=10, power 10 + W².
struct Fig2 {
  Tree tree;
  NodeId r, a, b, c;
};

inline Fig2 make_fig2(RequestCount root_requests) {
  TreeBuilder builder;
  Fig2 f;
  f.r = builder.add_root();
  builder.add_client(f.r, root_requests);
  f.a = builder.add_internal(f.r);
  f.b = builder.add_internal(f.a);
  builder.add_client(f.b, 3);
  f.c = builder.add_internal(f.a);
  builder.add_client(f.c, 7);
  return Fig2{std::move(builder).build(), f.r, f.a, f.b, f.c};
}

/// A small random instance for oracle sweeps: `n` internal nodes,
/// every internal node carries a client, `num_pre` random pre-existing
/// servers with original modes in [0, num_modes).
inline Tree make_random_small(std::uint64_t seed, std::uint64_t index, int n,
                              RequestCount min_req, RequestCount max_req,
                              std::size_t num_pre, int num_modes = 1) {
  TreeGenConfig config;
  config.num_internal = n;
  config.shape = TreeShape{1, 3};
  config.client_probability = 0.8;
  config.min_requests = min_req;
  config.max_requests = max_req;
  Tree tree = generate_tree(config, seed, index);
  Xoshiro256 rng = make_rng(seed, index, RngStream::kPreExisting);
  assign_random_pre_existing(tree, num_pre, rng, num_modes);
  return tree;
}

}  // namespace treeplace::testing
