#include "core/heuristics.h"

#include <gtest/gtest.h>

#include "core/dp_update.h"
#include "core/greedy_power.h"
#include "core/power_dp_symmetric.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_fig1;
using testing::make_fig2;
using testing::make_random_small;

TEST(GreedyPreferPreTest, SameCountAsPlainGreedy) {
  for (std::uint64_t i = 0; i < 25; ++i) {
    Tree tree = make_random_small(71, i, 12, 1, 6, 4);
    const GreedyResult plain = solve_greedy_min_count(tree, 10);
    const GreedyResult pre = solve_greedy_prefer_pre(tree, 10);
    ASSERT_EQ(plain.feasible, pre.feasible);
    if (plain.feasible) {
      EXPECT_EQ(plain.placement.size(), pre.placement.size()) << "tree " << i;
      EXPECT_TRUE(validate(tree, pre.placement, ModeSet::single(10)).valid);
    }
  }
}

TEST(GreedyPreferPreTest, PicksPreExistingOnTie) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_client(a, 6);
  const NodeId b = builder.add_internal(r);
  builder.add_client(b, 6);
  builder.set_pre_existing(b);
  const Tree tree = std::move(builder).build();
  // Plain greedy breaks the 6-6 tie towards the smaller id (a).
  const GreedyResult plain = solve_greedy_min_count(tree, 10);
  ASSERT_TRUE(plain.feasible);
  EXPECT_TRUE(plain.placement.contains(a));
  // The reuse-aware variant picks the pre-existing b instead.
  const GreedyResult pre = solve_greedy_prefer_pre(tree, 10);
  ASSERT_TRUE(pre.feasible);
  EXPECT_TRUE(pre.placement.contains(b));
  EXPECT_EQ(pre.placement.size(), plain.placement.size());
}

TEST(ImproveReuseTest, RecoversFig1Reuse) {
  // GR on Figure 1 (2 root requests) places {A or C, root} with no reuse;
  // local search should swap onto the pre-existing B when profitable.
  const auto f = make_fig1(2);
  GreedyResult gr = solve_greedy_min_count(f.tree, 10);
  ASSERT_TRUE(gr.feasible);
  const CostModel costs = CostModel::simple(0.1, 0.01);
  const double before = evaluate_cost(f.tree, gr.placement, costs).cost;
  improve_reuse(f.tree, 10, costs, gr.placement);
  const double after = evaluate_cost(f.tree, gr.placement, costs).cost;
  EXPECT_LT(after, before);
  EXPECT_TRUE(gr.placement.contains(f.b));
  // Matches the DP optimum on this instance.
  const MinCostResult dp =
      solve_min_cost_with_pre(f.tree, MinCostConfig{10, 0.1, 0.01});
  EXPECT_NEAR(after, dp.breakdown.cost, 1e-9);
}

TEST(ImproveReuseTest, NeverWorsensAndStaysValid) {
  const CostModel costs = CostModel::simple(0.1, 0.01);
  for (std::uint64_t i = 0; i < 20; ++i) {
    Tree tree = make_random_small(82, i, 14, 1, 6, 5);
    GreedyResult gr = solve_greedy_min_count(tree, 10);
    ASSERT_TRUE(gr.feasible);
    const double before = evaluate_cost(tree, gr.placement, costs).cost;
    improve_reuse(tree, 10, costs, gr.placement);
    const double after = evaluate_cost(tree, gr.placement, costs).cost;
    EXPECT_LE(after, before + 1e-12);
    EXPECT_TRUE(validate(tree, gr.placement, ModeSet::single(10)).valid);
  }
}

TEST(ImproveReuseTest, NeverBeatsTheDp) {
  const CostModel costs = CostModel::simple(0.1, 0.01);
  for (std::uint64_t i = 0; i < 20; ++i) {
    Tree tree = make_random_small(93, i, 12, 1, 6, 4);
    GreedyResult gr = solve_greedy_min_count(tree, 10);
    ASSERT_TRUE(gr.feasible);
    improve_reuse(tree, 10, costs, gr.placement);
    const double heuristic = evaluate_cost(tree, gr.placement, costs).cost;
    const MinCostResult dp =
        solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
    EXPECT_GE(heuristic, dp.breakdown.cost - 1e-9) << "tree " << i;
  }
}

TEST(ImprovePowerTest, ReachesFig2Optimum) {
  const auto f = make_fig2(4);
  const ModeSet modes({7, 10}, 10.0, 2.0);
  const CostModel costs = CostModel::uniform(2, 0.0, 0.0, 0.0);
  // Start from the worst valid solution: a server everywhere.
  Placement p;
  for (NodeId id : f.tree.internal_ids()) p.add(id, 0);
  minimize_modes(f.tree, p, modes);
  improve_power(f.tree, modes, costs, /*cost_bound=*/1e9, p);
  EXPECT_NEAR(total_power(p, modes), 118.0, 1e-9);
}

TEST(ImprovePowerTest, RespectsBudgetAndValidity) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (std::uint64_t i = 0; i < 15; ++i) {
    Tree tree = make_random_small(104, i, 12, 1, 5, 3, 2);
    const GreedyPowerResult gr = solve_greedy_power(tree, modes, costs);
    const GreedyPowerCandidate* start = gr.best_within_cost(40.0);
    ASSERT_NE(start, nullptr);
    Placement p = start->placement;
    const double before = start->power;
    improve_power(tree, modes, costs, 40.0, p);
    EXPECT_TRUE(validate(tree, p, modes).valid);
    EXPECT_LE(evaluate_cost(tree, p, costs).cost, 40.0 + 1e-9);
    EXPECT_LE(total_power(p, modes), before + 1e-12);
  }
}

TEST(ImprovePowerTest, NeverBeatsTheDp) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Tree tree = make_random_small(115, i, 12, 1, 5, 3, 2);
    const GreedyPowerResult gr = solve_greedy_power(tree, modes, costs);
    const GreedyPowerCandidate* start = gr.best_within_cost(40.0);
    ASSERT_NE(start, nullptr);
    Placement p = start->placement;
    improve_power(tree, modes, costs, 40.0, p);
    const PowerDPResult dp = solve_power_symmetric(tree, modes, costs);
    const PowerParetoPoint* opt = dp.best_within_cost(40.0);
    ASSERT_NE(opt, nullptr);
    EXPECT_GE(total_power(p, modes), opt->power - 1e-9) << "tree " << i;
  }
}

TEST(ImprovePowerTest, InvalidStartThrows) {
  const auto f = make_fig2(4);
  const ModeSet modes({7, 10}, 10.0, 2.0);
  const CostModel costs = CostModel::uniform(2, 0.0, 0.0, 0.0);
  Placement empty;  // serves nobody: invalid start
  EXPECT_THROW(improve_power(f.tree, modes, costs, 1e9, empty), CheckError);
}

}  // namespace
}  // namespace treeplace
