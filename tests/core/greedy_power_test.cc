#include "core/greedy_power.h"

#include <gtest/gtest.h>

#include "core/power_dp_symmetric.h"
#include "model/placement.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_fig2;
using testing::make_random_small;

const ModeSet kModes({5, 10}, 12.5, 3.0);  // paper Experiment 3
const CostModel kCosts = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);

TEST(GreedyPowerTest, SweepsAllIntegerCapacities) {
  const Tree tree = make_random_small(11, 0, 10, 1, 5, 2, 2);
  const GreedyPowerResult r = solve_greedy_power(tree, kModes, kCosts);
  ASSERT_EQ(r.candidates.size(), 6u);  // W in {5,...,10}
  for (std::size_t i = 0; i < r.candidates.size(); ++i) {
    EXPECT_EQ(r.candidates[i].capacity, 5u + i);
  }
}

TEST(GreedyPowerTest, CandidatesAreValidAndMinimallyModed) {
  for (std::uint64_t i = 0; i < 15; ++i) {
    const Tree tree = make_random_small(22, i, 12, 1, 5, 3, 2);
    const GreedyPowerResult r = solve_greedy_power(tree, kModes, kCosts);
    for (const GreedyPowerCandidate& c : r.candidates) {
      if (!c.feasible) continue;
      EXPECT_TRUE(validate(tree, c.placement, kModes).valid);
      // Paper fairness rule: <= 5 requests run at W1.
      const FlowResult flows = compute_flows(tree, c.placement);
      for (NodeId node : c.placement.nodes()) {
        EXPECT_EQ(c.placement.mode(node),
                  kModes.mode_for_load(flows.load(tree, node)));
      }
    }
  }
}

TEST(GreedyPowerTest, BestWithinCostRespectsBudget) {
  const Tree tree = make_random_small(33, 1, 12, 1, 5, 3, 2);
  const GreedyPowerResult r = solve_greedy_power(tree, kModes, kCosts);
  const GreedyPowerCandidate* best = r.best_within_cost(50.0);
  ASSERT_NE(best, nullptr);
  EXPECT_LE(best->cost, 50.0 + 1e-9);
  for (const GreedyPowerCandidate& c : r.candidates) {
    if (c.feasible && c.cost <= 50.0) EXPECT_LE(best->power, c.power);
  }
}

TEST(GreedyPowerTest, ImpossibleBudgetGivesNull) {
  const Tree tree = make_random_small(44, 2, 12, 1, 5, 3, 2);
  const GreedyPowerResult r = solve_greedy_power(tree, kModes, kCosts);
  EXPECT_EQ(r.best_within_cost(0.0), nullptr);
}

TEST(GreedyPowerTest, NeverBeatsTheDp) {
  // The DP is optimal: for any budget, GR's power is >= DP's.
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Tree tree = make_random_small(55, i, 14, 1, 5, 4, 2);
    const GreedyPowerResult gr = solve_greedy_power(tree, kModes, kCosts);
    const PowerDPResult dp = solve_power_symmetric(tree, kModes, kCosts);
    ASSERT_TRUE(dp.feasible);
    for (double bound : {15.0, 20.0, 25.0, 30.0, 40.0}) {
      const GreedyPowerCandidate* g = gr.best_within_cost(bound);
      const PowerParetoPoint* d = dp.best_within_cost(bound);
      if (g != nullptr) {
        ASSERT_NE(d, nullptr) << "DP must solve whenever GR does";
        EXPECT_GE(g->power, d->power - 1e-9) << "tree " << i << " bound "
                                             << bound;
      }
    }
  }
}

TEST(GreedyPowerTest, Fig2CapacitySweep) {
  const auto f = make_fig2(4);
  const ModeSet modes({7, 10}, 10.0, 2.0);
  const CostModel costs = CostModel::uniform(2, 0.0, 0.0, 0.0);
  const GreedyPowerResult r = solve_greedy_power(f.tree, modes, costs);
  ASSERT_EQ(r.candidates.size(), 4u);  // W in {7,8,9,10}
  // At W = 7 greedy absorbs C (7) at A's level, root serves 4+3 = 7.
  ASSERT_TRUE(r.candidates[0].feasible);
  EXPECT_NEAR(r.candidates[0].power, 118.0, 1e-9);
  // The unconstrained best GR finds equals the optimum here.
  const GreedyPowerCandidate* best = r.best_within_cost(1e9);
  ASSERT_NE(best, nullptr);
  EXPECT_NEAR(best->power, 118.0, 1e-9);
}

TEST(GreedyPowerTest, InfeasibleTreeHasNoFeasibleCandidates) {
  TreeBuilder builder;
  builder.add_client(builder.add_root(), 11);
  const Tree tree = std::move(builder).build();
  const GreedyPowerResult r = solve_greedy_power(tree, kModes, kCosts);
  for (const GreedyPowerCandidate& c : r.candidates) {
    EXPECT_FALSE(c.feasible);
  }
  EXPECT_EQ(r.best_within_cost(1e9), nullptr);
}

}  // namespace
}  // namespace treeplace
