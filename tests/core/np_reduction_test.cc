#include "core/np_reduction.h"

#include <gtest/gtest.h>

#include "core/exhaustive.h"
#include "support/check.h"
#include "support/prng.h"

namespace treeplace {
namespace {

TEST(TwoPartitionTest, BruteForceKnownInstances) {
  EXPECT_TRUE(two_partition_brute_force({{1, 1}}));
  EXPECT_TRUE(two_partition_brute_force({{2, 4, 6}}));       // {2,4} vs {6}
  EXPECT_TRUE(two_partition_brute_force({{3, 5, 8, 2, 2}})); // {8,2} vs rest
  EXPECT_FALSE(two_partition_brute_force({{1, 3}}));
  EXPECT_FALSE(two_partition_brute_force({{1, 1, 4}}));
  EXPECT_FALSE(two_partition_brute_force({{2, 2, 2}}));
  EXPECT_FALSE(two_partition_brute_force({{1, 2}}));  // odd sum
}

TEST(NpGadgetTest, StructureMatchesFigure3) {
  const TwoPartitionInstance inst{{1, 3, 4, 2}};  // S = 10, all a_i < 5
  const MinPowerGadget g = build_min_power_gadget(inst);
  EXPECT_EQ(g.k, 4u * 100u);                // K = n·S² = 400
  EXPECT_EQ(g.scale, 2u * 400u);            // 2K
  EXPECT_EQ(g.a_nodes.size(), 4u);
  EXPECT_EQ(g.b_nodes.size(), 4u);
  // 1 + 2n internal nodes; 1 + 2n clients.
  EXPECT_EQ(g.tree.num_internal(), 9u);
  EXPECT_EQ(g.tree.num_clients(), 9u);
  // n + 2 modes (all a_i distinct here).
  EXPECT_EQ(g.modes.count(), 6);
  // Capacities: 2K², then 2K²+a in ascending a order, then 2K²+S.
  const std::uint64_t base = 2 * g.k * g.k;
  EXPECT_EQ(g.modes.capacity(0), base);
  EXPECT_EQ(g.modes.capacity(1), base + 1);
  EXPECT_EQ(g.modes.capacity(2), base + 2);
  EXPECT_EQ(g.modes.capacity(3), base + 3);
  EXPECT_EQ(g.modes.capacity(4), base + 4);
  EXPECT_EQ(g.modes.capacity(5), base + 10);
}

TEST(NpGadgetTest, BranchStructure) {
  const TwoPartitionInstance inst{{2, 2, 2}};
  const MinPowerGadget g = build_min_power_gadget(inst);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(g.tree.parent(g.a_nodes[i]), g.root);
    EXPECT_EQ(g.tree.parent(g.b_nodes[i]), g.a_nodes[i]);
    // A_i carries a client with a_i (scaled) requests; B_i carries K·2K.
    EXPECT_EQ(g.tree.client_mass(g.a_nodes[i]), 2u);
    EXPECT_EQ(g.tree.client_mass(g.b_nodes[i]), 2 * g.k * g.k);
  }
  // Root client: 2K² + S/2.
  EXPECT_EQ(g.tree.client_mass(g.root), 2 * g.k * g.k + 3);
}

TEST(NpGadgetTest, DuplicateValuesShareModes) {
  const TwoPartitionInstance inst{{2, 2, 4, 4}};  // S = 12, max < 6
  const MinPowerGadget g = build_min_power_gadget(inst);
  // Capacities: 2K², 2K²+2, 2K²+4, 2K²+12 — duplicates collapse.
  EXPECT_EQ(g.modes.count(), 4);
  const std::uint64_t base = 2 * g.k * g.k;
  EXPECT_EQ(g.modes.capacity(1), base + 2);
  EXPECT_EQ(g.modes.capacity(2), base + 4);
  EXPECT_EQ(g.modes.capacity(3), base + 12);
}

TEST(NpGadgetTest, OddSumRejected) {
  EXPECT_THROW(build_min_power_gadget({{1, 2}}), CheckError);
}

TEST(NpGadgetTest, ZeroValueRejected) {
  EXPECT_THROW(build_min_power_gadget({{0, 2, 2}}), CheckError);
}

TEST(NpGadgetTest, LargeElementRejected) {
  // a_i >= S/2 violates the proof premise (root no longer forced to the
  // top mode) and is trivially decidable anyway.
  EXPECT_THROW(build_min_power_gadget({{1, 3}}), CheckError);
  EXPECT_THROW(build_min_power_gadget({{1, 1}}), CheckError);  // a = S/2
  EXPECT_THROW(build_min_power_gadget({{2, 4, 6}}), CheckError);
}

TEST(NpGadgetTest, Equation5HoldsExactly) {
  // Eq. 5 for alpha = 2 reduces to n·a_i² <= 4K² (see DESIGN.md §4.4);
  // the paper's K = n·S² satisfies it with huge slack.
  for (const auto& values :
       {std::vector<std::uint64_t>{1, 1}, {3, 5, 8, 2, 2}, {10, 10, 20}}) {
    const TwoPartitionInstance inst{values};
    const std::uint64_t n = values.size();
    const std::uint64_t k = n * inst.sum() * inst.sum();
    for (std::uint64_t a : values) {
      EXPECT_LE(static_cast<__int128>(n) * a * a,
                static_cast<__int128>(4) * k * k);
    }
  }
}

TEST(NpGadgetTest, YesInstancesHaveSolutions) {
  for (const auto& values :
       {std::vector<std::uint64_t>{1, 2, 3, 4}, {2, 4, 6, 8},
        {3, 5, 8, 2, 2}, {7, 3, 2, 2, 4}}) {
    const TwoPartitionInstance inst{values};
    ASSERT_TRUE(two_partition_brute_force(inst));
    const MinPowerGadget g = build_min_power_gadget(inst);
    EXPECT_TRUE(gadget_has_solution(g, inst));
  }
}

TEST(NpGadgetTest, NoInstancesHaveNoSolutions) {
  for (const auto& values :
       {std::vector<std::uint64_t>{2, 2, 2}, {3, 3, 3, 3, 2},
        {2, 2, 2, 2, 2}}) {
    const TwoPartitionInstance inst{values};
    ASSERT_FALSE(two_partition_brute_force(inst));
    const MinPowerGadget g = build_min_power_gadget(inst);
    EXPECT_FALSE(gadget_has_solution(g, inst));
  }
}

TEST(NpGadgetTest, FullDecisionHandlesTrivialCases) {
  EXPECT_FALSE(decide_two_partition_via_gadget({{1, 2}}));     // odd
  EXPECT_FALSE(decide_two_partition_via_gadget({{1, 3}}));     // 3 > S/2
  EXPECT_TRUE(decide_two_partition_via_gadget({{1, 1}}));      // 1 == S/2
  EXPECT_TRUE(decide_two_partition_via_gadget({{2, 4, 6}}));   // 6 == S/2
  EXPECT_FALSE(decide_two_partition_via_gadget({{2, 2, 2}}));  // via gadget
  EXPECT_TRUE(decide_two_partition_via_gadget({{1, 2, 3, 4}}));
}

TEST(NpGadgetTest, RandomizedAgreementWithDirectSolver) {
  // The reduction (plus trivial-case shortcuts) is a complete decision
  // procedure: sweep random instances against the subset-sum reference.
  Xoshiro256 rng(2024);
  int yes = 0;
  int no = 0;
  for (int trial = 0; trial < 80; ++trial) {
    TwoPartitionInstance inst;
    const int n = rng.uniform_int(2, 7);
    for (int i = 0; i < n; ++i) inst.values.push_back(rng.uniform(1, 9));
    const bool direct = two_partition_brute_force(inst);
    EXPECT_EQ(decide_two_partition_via_gadget(inst), direct)
        << "trial " << trial << " n=" << n;
    (direct ? yes : no) += 1;
  }
  // The sweep must exercise both outcomes to be meaningful.
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
}

TEST(NpGadgetTest, GenericSolverAgreesOnTinyGadgets) {
  // For small instances the scaled powers stay below 2^53, so the
  // double-based exhaustive oracle is exact.  It explores *all* placements
  // (not just the proof's structural form), so agreement here validates the
  // structural argument itself: within the budget, only root-at-top-mode
  // one-server-per-branch solutions exist.
  for (const auto& values :
       {std::vector<std::uint64_t>{2, 2, 2}, {1, 2, 3, 4}, {2, 2, 4, 4},
        {3, 3, 3, 3, 2}}) {
    const TwoPartitionInstance inst{values};
    const MinPowerGadget g = build_min_power_gadget(inst);
    const auto min_power = exhaustive_min_power(g.tree, g.modes);
    ASSERT_TRUE(min_power.has_value());
    const double budget = static_cast<double>(g.n_times_power_budget) /
                          static_cast<double>(values.size());
    EXPECT_EQ(*min_power <= budget, gadget_has_solution(g, inst))
        << "instance size " << values.size();
  }
}

TEST(NpGadgetTest, ModePowerIsExactSquare) {
  const MinPowerGadget g = build_min_power_gadget({{2, 2, 2}});
  const auto c0 = static_cast<__int128>(g.modes.capacity(0));
  EXPECT_EQ(gadget_mode_power(g, 0), c0 * c0);
}

}  // namespace
}  // namespace treeplace
