// Sharded DP merges must be bit-identical to the serial solve.
//
// dp::sharded_merge promises that the parallel per-child merges reproduce
// the serial tables — flows *and* decisions — exactly, for any thread
// count.  These tests assert the user-visible consequence on both power
// DPs: identical frontiers (values and witness placements), identical
// selected placements and identical work counters across thread counts,
// over a batch of randomized instances.  Run under TSan in CI, they are
// also the race-freedom net for the solver-internal parallelism.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/power_dp.h"
#include "core/power_dp_symmetric.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "solver/registry.h"
#include "support/prng.h"

namespace treeplace {
namespace {

Tree make_instance_tree(std::uint64_t index, int num_internal) {
  TreeGenConfig config;
  config.num_internal = num_internal;
  config.shape = TreeShape{2, 4};
  config.client_probability = 0.8;
  config.min_requests = 1;
  config.max_requests = 5;
  Tree tree = generate_tree(config, /*seed=*/1234, index);
  Xoshiro256 pre_rng = make_rng(1234, index, RngStream::kPreExisting);
  assign_random_pre_existing(tree, num_internal / 4, pre_rng,
                             /*num_modes=*/2);
  return tree;
}

void expect_identical(const PowerDPResult& serial,
                      const PowerDPResult& parallel) {
  ASSERT_EQ(parallel.feasible, serial.feasible);
  ASSERT_EQ(parallel.frontier.size(), serial.frontier.size());
  for (std::size_t i = 0; i < serial.frontier.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel.frontier[i].cost, serial.frontier[i].cost);
    EXPECT_DOUBLE_EQ(parallel.frontier[i].power, serial.frontier[i].power);
    EXPECT_EQ(parallel.frontier[i].placement, serial.frontier[i].placement);
  }
  // The shards visit exactly the serial pair set.
  EXPECT_EQ(parallel.stats.merge_pairs, serial.stats.merge_pairs);
  EXPECT_EQ(parallel.stats.table_cells, serial.stats.table_cells);
}

TEST(PowerParallelTest, SymmetricDpIdenticalAcrossThreadCounts) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (std::uint64_t index = 0; index < 4; ++index) {
    const Tree tree = make_instance_tree(index, 24);
    const PowerDPResult serial = solve_power_symmetric(tree, modes, costs);
    for (const std::size_t threads : {2, 3, 8}) {
      const PowerDPResult parallel =
          solve_power_symmetric(tree, modes, costs, PowerDPOptions{threads});
      expect_identical(serial, parallel);
    }
  }
}

TEST(PowerParallelTest, ExactDpIdenticalAcrossThreadCounts) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const Tree tree = make_instance_tree(/*index=*/1, /*num_internal=*/14);
  const PowerDPResult serial = solve_power_exact(tree, modes, costs);
  ASSERT_TRUE(serial.feasible);
  for (const std::size_t threads : {2, 4}) {
    const PowerDPResult parallel =
        solve_power_exact(tree, modes, costs, PowerDPOptions{threads});
    expect_identical(serial, parallel);
  }
}

TEST(PowerParallelTest, SolverOptionsThreadsGivesIdenticalSolution) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const Tree tree = make_instance_tree(/*index=*/2, /*num_internal=*/30);
  const Instance instance{tree.topology_ptr(), tree.scenario(), modes, costs,
                          std::nullopt};

  const auto serial = make_solver("power-sym");
  const Solution expected = serial->solve(instance);

  const auto threaded = make_solver("power-sym");
  threaded->set_options(Solver::Options{8});
  const Solution actual = threaded->solve(instance);

  ASSERT_EQ(actual.feasible, expected.feasible);
  EXPECT_EQ(actual.placement, expected.placement);
  EXPECT_DOUBLE_EQ(actual.breakdown.cost, expected.breakdown.cost);
  EXPECT_DOUBLE_EQ(actual.power, expected.power);
  EXPECT_EQ(actual.stats.work, expected.stats.work);
  ASSERT_EQ(actual.frontier.size(), expected.frontier.size());
}

TEST(PowerParallelTest, OptionsRejectNonPositiveThreads) {
  const auto solver = make_solver("power-sym");
  EXPECT_THROW(solver->set_options(Solver::Options{0}), CheckError);
  EXPECT_THROW(solver->set_options(Solver::Options{-3}), CheckError);
}

}  // namespace
}  // namespace treeplace
