#include "core/exhaustive.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_fig1;
using testing::make_fig2;

TEST(ExhaustiveTest, MinCountOnFig1) {
  const auto f = make_fig1(4);
  EXPECT_EQ(exhaustive_min_count(f.tree, 10), 2);
  EXPECT_EQ(exhaustive_min_count(f.tree, 15), 1);
  EXPECT_EQ(exhaustive_min_count(f.tree, 4), std::nullopt);  // C has 7
}

TEST(ExhaustiveTest, MinCostPrefersReuse) {
  const auto f = make_fig1(2);
  const auto sol = exhaustive_min_cost(f.tree, 10, CostModel::simple(0.1, 0.01));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->breakdown.reused, 1);
  EXPECT_NEAR(sol->breakdown.cost, 2.1, 1e-9);
}

TEST(ExhaustiveTest, MinPowerOnFig2) {
  // Worked example of paper Section 4.1 (see power_dp_test.cc).
  const ModeSet modes({7, 10}, 10.0, 2.0);
  EXPECT_NEAR(*exhaustive_min_power(make_fig2(4).tree, modes), 118.0, 1e-9);
  EXPECT_NEAR(*exhaustive_min_power(make_fig2(10).tree, modes), 220.0, 1e-9);
}

TEST(ExhaustiveTest, MinPowerInfeasible) {
  TreeBuilder builder;
  builder.add_client(builder.add_root(), 11);
  const Tree tree = std::move(builder).build();
  EXPECT_EQ(exhaustive_min_power(tree, ModeSet({5, 10}, 0, 2)), std::nullopt);
}

TEST(ExhaustiveTest, FrontierIsSortedAndDominant) {
  const auto f = make_fig2(4);
  const ModeSet modes({7, 10}, 10.0, 2.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001);
  const auto frontier = exhaustive_cost_power_frontier(f.tree, modes, costs);
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].cost, frontier[i - 1].cost);
    EXPECT_LT(frontier[i].power, frontier[i - 1].power);
  }
  // The unconstrained optimum appears at the high-cost end.
  EXPECT_NEAR(frontier.back().power, 118.0, 1e-9);
}

TEST(ExhaustiveTest, SizeGuardThrows) {
  TreeGenConfig config;
  config.num_internal = 25;
  const Tree tree = generate_tree(config, 1, 0);
  EXPECT_THROW(exhaustive_min_count(tree, 10), CheckError);
}

TEST(ParetoFrontierTest, PrunesDominatedPoints) {
  const auto frontier = pareto_frontier({{3.0, 10.0},
                                         {1.0, 20.0},
                                         {2.0, 15.0},
                                         {2.5, 18.0},   // dominated
                                         {4.0, 10.0}}); // dominated (same power)
  ASSERT_EQ(frontier.size(), 3u);
  EXPECT_DOUBLE_EQ(frontier[0].cost, 1.0);
  EXPECT_DOUBLE_EQ(frontier[1].cost, 2.0);
  EXPECT_DOUBLE_EQ(frontier[2].cost, 3.0);
}

TEST(ParetoFrontierTest, SameCostKeepsBestPower) {
  const auto frontier = pareto_frontier({{1.0, 20.0}, {1.0, 15.0}});
  ASSERT_EQ(frontier.size(), 1u);
  EXPECT_DOUBLE_EQ(frontier[0].power, 15.0);
}

TEST(ParetoFrontierTest, EmptyInput) {
  EXPECT_TRUE(pareto_frontier({}).empty());
}

}  // namespace
}  // namespace treeplace
