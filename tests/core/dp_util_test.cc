#include "core/dp_util.h"

#include <gtest/gtest.h>

namespace treeplace::dp {
namespace {

TEST(BoxTest, ZeroDimensionalBoxHasOneState) {
  const Box box{std::vector<int>{}};
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.dims(), 0u);
  EXPECT_EQ(box.flat({}), 0u);
}

TEST(BoxTest, AllZeroBoundsBoxHasOneState) {
  const Box box{std::vector<int>{0, 0, 0}};
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.flat({0, 0, 0}), 0u);
}

TEST(BoxTest, SizeIsProductOfExtents) {
  const Box box{std::vector<int>{2, 3, 1}};
  EXPECT_EQ(box.size(), 3u * 4u * 2u);
}

TEST(BoxTest, FlatDecodeRoundTrip) {
  const Box box{std::vector<int>{2, 3, 1}};
  std::vector<int> digits;
  for (std::size_t flat = 0; flat < box.size(); ++flat) {
    box.decode(flat, digits);
    EXPECT_EQ(box.flat(digits), flat);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(digits[d], 0);
      EXPECT_LE(digits[d], box.bounds()[d]);
    }
  }
}

TEST(BoxTest, FlatIsInjective) {
  const Box box{std::vector<int>{1, 2, 2}};
  std::vector<bool> seen(box.size(), false);
  std::vector<int> digits(3);
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 2; ++b) {
      for (int c = 0; c <= 2; ++c) {
        digits = {a, b, c};
        const std::size_t flat = box.flat(digits);
        ASSERT_LT(flat, box.size());
        EXPECT_FALSE(seen[flat]);
        seen[flat] = true;
      }
    }
  }
}

TEST(BoxTest, StridesMatchFlat) {
  const Box box{std::vector<int>{3, 4}};
  // Incrementing digit d by one moves flat by stride(d).
  EXPECT_EQ(box.flat({1, 0}) - box.flat({0, 0}), box.stride(0));
  EXPECT_EQ(box.flat({0, 1}) - box.flat({0, 0}), box.stride(1));
}

TEST(CompactEntriesTest, SkipsInvalidAndComputesDots) {
  const Box box{std::vector<int>{1, 1}};      // 4 states
  const Box target{std::vector<int>{2, 3}};   // different strides
  std::vector<RequestCount> flow(box.size(), kInvalidFlow);
  std::vector<int> digits;
  // Mark states (0,1) and (1,0) valid.
  flow[box.flat({0, 1})] = 7;
  flow[box.flat({1, 0})] = 9;
  const auto entries = compact_valid_entries(box, flow, target);
  ASSERT_EQ(entries.size(), 2u);
  for (const CompactEntry& e : entries) {
    box.decode(e.flat, digits);
    std::uint64_t expected_dot = 0;
    for (std::size_t d = 0; d < 2; ++d) {
      expected_dot += static_cast<std::uint64_t>(digits[d]) * target.stride(d);
    }
    EXPECT_EQ(e.dot, expected_dot);
    EXPECT_EQ(e.flow, flow[e.flat]);
  }
}

TEST(CompactEntriesTest, EmptyWhenAllInvalid) {
  const Box box{std::vector<int>{2}};
  const std::vector<RequestCount> flow(box.size(), kInvalidFlow);
  EXPECT_TRUE(compact_valid_entries(box, flow, box).empty());
}

TEST(CompactEntriesTest, ZeroDimensionalTable) {
  const Box box{std::vector<int>{}};
  const std::vector<RequestCount> flow{5};
  const auto entries = compact_valid_entries(box, flow, box);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].flow, 5u);
  EXPECT_EQ(entries[0].dot, 0u);
}

}  // namespace
}  // namespace treeplace::dp
