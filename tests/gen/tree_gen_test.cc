#include "gen/tree_gen.h"

#include <gtest/gtest.h>

#include "tree/io.h"
#include "tree/metrics.h"

namespace treeplace {
namespace {

TEST(TreeGenTest, ExactInternalNodeCount) {
  for (int n : {1, 2, 7, 50, 100, 333}) {
    TreeGenConfig config;
    config.num_internal = n;
    const Tree t = generate_tree(config, 1, 0);
    EXPECT_EQ(t.num_internal(), static_cast<std::size_t>(n));
  }
}

TEST(TreeGenTest, DeterministicForSameSeed) {
  TreeGenConfig config;
  config.num_internal = 80;
  const Tree a = generate_tree(config, 5, 3);
  const Tree b = generate_tree(config, 5, 3);
  EXPECT_EQ(serialize_tree(a), serialize_tree(b));
}

TEST(TreeGenTest, DifferentTreeIndicesDiffer) {
  TreeGenConfig config;
  config.num_internal = 80;
  const Tree a = generate_tree(config, 5, 0);
  const Tree b = generate_tree(config, 5, 1);
  EXPECT_NE(serialize_tree(a), serialize_tree(b));
}

TEST(TreeGenTest, FanoutWithinShapeBounds) {
  // Every internal node that received children and is not at the budget
  // frontier has fan-out within [min, max]; the max can never be exceeded.
  TreeGenConfig config;
  config.num_internal = 200;
  config.shape = kFatShape;
  for (std::uint64_t t = 0; t < 5; ++t) {
    const Tree tree = generate_tree(config, 11, t);
    for (NodeId id : tree.internal_ids()) {
      EXPECT_LE(tree.internal_children(id).size(), 9u);
    }
  }
}

TEST(TreeGenTest, ClientProbabilityRespected) {
  TreeGenConfig config;
  config.num_internal = 1000;
  config.client_probability = 0.5;
  const Tree t = generate_tree(config, 21, 0);
  // ~500 clients expected; allow generous slack.
  EXPECT_GT(t.num_clients(), 400u);
  EXPECT_LT(t.num_clients(), 600u);
}

TEST(TreeGenTest, NoClientsAtZeroProbability) {
  TreeGenConfig config;
  config.num_internal = 50;
  config.client_probability = 0.0;
  const Tree t = generate_tree(config, 21, 0);
  EXPECT_EQ(t.num_clients(), 0u);
}

TEST(TreeGenTest, AllClientsAtProbabilityOne) {
  TreeGenConfig config;
  config.num_internal = 50;
  config.client_probability = 1.0;
  const Tree t = generate_tree(config, 21, 0);
  EXPECT_EQ(t.num_clients(), 50u);
}

TEST(TreeGenTest, RequestRangeRespected) {
  TreeGenConfig config;
  config.num_internal = 300;
  config.min_requests = 2;
  config.max_requests = 5;
  const Tree t = generate_tree(config, 31, 0);
  for (NodeId c : t.client_ids()) {
    EXPECT_GE(t.requests(c), 2u);
    EXPECT_LE(t.requests(c), 5u);
  }
}

TEST(TreeGenTest, RequestStreamIndependentOfClientStream) {
  // Re-generating with a different client probability must not change the
  // topology (shape stream is independent).
  TreeGenConfig a;
  a.num_internal = 60;
  a.client_probability = 0.2;
  TreeGenConfig b = a;
  b.client_probability = 0.9;
  const Tree ta = generate_tree(a, 77, 0);
  const Tree tb = generate_tree(b, 77, 0);
  ASSERT_EQ(ta.num_internal(), tb.num_internal());
  for (std::size_t i = 0; i < ta.num_internal(); ++i) {
    const NodeId id = ta.internal_ids()[i];
    EXPECT_EQ(ta.parent(id), tb.parent(id));
  }
}

TEST(TreeGenTest, SingleInternalNode) {
  TreeGenConfig config;
  config.num_internal = 1;
  config.client_probability = 1.0;
  const Tree t = generate_tree(config, 1, 0);
  EXPECT_EQ(t.num_internal(), 1u);
  EXPECT_EQ(t.num_clients(), 1u);
}

TEST(TreeGenTest, PaperFatShapeDepth) {
  TreeGenConfig config;
  config.num_internal = 100;
  config.shape = kFatShape;
  const TreeMetrics m = compute_metrics(generate_tree(config, 41, 0));
  // 6-9 children per node: 100 nodes need at most 4 BFS levels
  // (1 + 6 + 36 = 43 < 100 <= 1 + 9 + 81 + 729).
  EXPECT_LE(m.depth, 4u);
}

TEST(TreeGenTest, InvalidConfigsThrow) {
  TreeGenConfig config;
  config.num_internal = 0;
  EXPECT_THROW(generate_tree(config, 1, 0), CheckError);
  config.num_internal = 10;
  config.client_probability = 1.5;
  EXPECT_THROW(generate_tree(config, 1, 0), CheckError);
  config.client_probability = 0.5;
  config.min_requests = 6;
  config.max_requests = 5;
  EXPECT_THROW(generate_tree(config, 1, 0), CheckError);
  config.min_requests = 1;
  config.shape = TreeShape{5, 3};
  EXPECT_THROW(generate_tree(config, 1, 0), CheckError);
}

// ---------------------------------------------------------------------------
// Skew trees (the million-user serving shape)

TEST(SkewTreeTest, ExactCountsAndRequestRange) {
  SkewTreeConfig config;
  config.num_internal = 150;
  config.num_users = 5000;
  config.min_requests = 2;
  config.max_requests = 4;
  const Tree t = generate_skew_tree(config, 3, 0);
  EXPECT_EQ(t.num_internal(), 150u);
  EXPECT_EQ(t.num_clients(), 5000u);
  for (NodeId client : t.client_ids()) {
    EXPECT_GE(t.requests(client), 2u);
    EXPECT_LE(t.requests(client), 4u);
  }
}

TEST(SkewTreeTest, DeterministicForSameSeedDistinctAcrossIndices) {
  SkewTreeConfig config;
  config.num_internal = 80;
  config.num_users = 1000;
  const Tree a = generate_skew_tree(config, 11, 0);
  const Tree b = generate_skew_tree(config, 11, 0);
  const Tree c = generate_skew_tree(config, 11, 1);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.total_requests(), b.total_requests());
  for (NodeId node : a.internal_ids()) {
    EXPECT_EQ(a.client_mass(node), b.client_mass(node));
  }
  bool differs = c.num_nodes() != a.num_nodes() ||
                 c.total_requests() != a.total_requests();
  if (!differs) {
    for (NodeId node : a.internal_ids()) {
      if (a.client_mass(node) != c.client_mass(node)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SkewTreeTest, ZipfAttachmentConcentratesUsers) {
  // With attach_skew > 0 the hottest attachment points own far more than
  // a uniform share of the users.
  SkewTreeConfig config;
  config.num_internal = 200;
  config.num_users = 20000;
  config.attach_skew = 0.8;
  const Tree t = generate_skew_tree(config, 5, 0);
  std::vector<std::uint64_t> users_per_node;
  for (NodeId node : t.internal_ids()) {
    std::uint64_t users = 0;
    for (NodeId child : t.children(node)) {
      if (t.is_client(child)) ++users;
    }
    users_per_node.push_back(users);
  }
  std::sort(users_per_node.rbegin(), users_per_node.rend());
  const double uniform_share =
      static_cast<double>(config.num_users) / 200.0;  // = 100
  EXPECT_GT(users_per_node.front(), 5 * uniform_share);
  // Top 10% of attachment points own ~4x their uniform share.
  std::uint64_t top = 0;
  for (std::size_t i = 0; i < 20; ++i) top += users_per_node[i];
  EXPECT_GT(top, config.num_users * 2 / 5);
}

TEST(SkewTreeTest, HubsWidenTheFanout) {
  SkewTreeConfig config;
  config.num_internal = 400;
  config.num_users = 100;
  config.shape = TreeShape{2, 4};
  config.hub_probability = 0.2;
  config.hub_fanout = 24;
  const Tree t = generate_skew_tree(config, 9, 0);
  std::size_t max_internal_fanout = 0;
  for (NodeId node : t.internal_ids()) {
    max_internal_fanout =
        std::max(max_internal_fanout, t.internal_children(node).size());
  }
  EXPECT_GT(max_internal_fanout, 4u);   // some hub exceeded the base shape
  EXPECT_LE(max_internal_fanout, 24u);  // but respected the hub ceiling
}

TEST(SkewTreeTest, InvalidConfigsThrow) {
  SkewTreeConfig bad;
  bad.hub_fanout = 1;  // below shape.max_children
  EXPECT_THROW(generate_skew_tree(bad, 1, 0), CheckError);
  SkewTreeConfig negative_skew;
  negative_skew.attach_skew = -0.5;
  EXPECT_THROW(generate_skew_tree(negative_skew, 1, 0), CheckError);
}

}  // namespace
}  // namespace treeplace
