#include "gen/preexisting.h"

#include <gtest/gtest.h>

#include "gen/tree_gen.h"

namespace treeplace {
namespace {

Tree make_tree(int n = 50) {
  TreeGenConfig config;
  config.num_internal = n;
  return generate_tree(config, 3, 0);
}

TEST(PreExistingTest, AssignsExactCount) {
  Tree t = make_tree();
  Xoshiro256 rng(1);
  assign_random_pre_existing(t, 12, rng);
  EXPECT_EQ(t.num_pre_existing(), 12u);
}

TEST(PreExistingTest, NodesAreDistinctInternal) {
  Tree t = make_tree();
  Xoshiro256 rng(2);
  assign_random_pre_existing(t, 20, rng);
  const auto nodes = t.pre_existing_nodes();
  EXPECT_EQ(nodes.size(), 20u);
  for (NodeId id : nodes) EXPECT_TRUE(t.is_internal(id));
}

TEST(PreExistingTest, CountClampedToInternalNodes) {
  Tree t = make_tree(10);
  Xoshiro256 rng(3);
  assign_random_pre_existing(t, 100, rng);
  EXPECT_EQ(t.num_pre_existing(), 10u);
}

TEST(PreExistingTest, ZeroClearsEverything) {
  Tree t = make_tree();
  Xoshiro256 rng(4);
  assign_random_pre_existing(t, 10, rng);
  assign_random_pre_existing(t, 0, rng);
  EXPECT_EQ(t.num_pre_existing(), 0u);
}

TEST(PreExistingTest, ReassignmentReplacesOldSet) {
  Tree t = make_tree();
  Xoshiro256 rng(5);
  assign_random_pre_existing(t, 30, rng);
  assign_random_pre_existing(t, 5, rng);
  EXPECT_EQ(t.num_pre_existing(), 5u);
}

TEST(PreExistingTest, ModesDrawnWithinRange) {
  Tree t = make_tree();
  Xoshiro256 rng(6);
  assign_random_pre_existing(t, 25, rng, /*num_modes=*/3);
  for (NodeId id : t.pre_existing_nodes()) {
    EXPECT_GE(t.original_mode(id), 0);
    EXPECT_LT(t.original_mode(id), 3);
  }
}

TEST(PreExistingTest, SingleModeAlwaysZero) {
  Tree t = make_tree();
  Xoshiro256 rng(7);
  assign_random_pre_existing(t, 25, rng, /*num_modes=*/1);
  for (NodeId id : t.pre_existing_nodes()) {
    EXPECT_EQ(t.original_mode(id), 0);
  }
}

TEST(PreExistingTest, DeterministicGivenRngState) {
  Tree t1 = make_tree();
  Tree t2 = make_tree();
  Xoshiro256 rng1(8);
  Xoshiro256 rng2(8);
  assign_random_pre_existing(t1, 15, rng1, 2);
  assign_random_pre_existing(t2, 15, rng2, 2);
  EXPECT_EQ(t1.pre_existing_nodes(), t2.pre_existing_nodes());
}

TEST(PreExistingTest, FromPlacementInstallsModes) {
  Tree t = make_tree();
  Placement p;
  p.add(t.internal_ids()[2], 1);
  p.add(t.internal_ids()[7], 0);
  set_pre_existing_from_placement(t, p);
  EXPECT_EQ(t.num_pre_existing(), 2u);
  EXPECT_TRUE(t.pre_existing(t.internal_ids()[2]));
  EXPECT_EQ(t.original_mode(t.internal_ids()[2]), 1);
  EXPECT_EQ(t.original_mode(t.internal_ids()[7]), 0);
}

TEST(PreExistingTest, FromPlacementClearsPrevious) {
  Tree t = make_tree();
  Xoshiro256 rng(9);
  assign_random_pre_existing(t, 20, rng);
  Placement p;
  p.add(t.internal_ids()[0], 0);
  set_pre_existing_from_placement(t, p);
  EXPECT_EQ(t.num_pre_existing(), 1u);
}

}  // namespace
}  // namespace treeplace
