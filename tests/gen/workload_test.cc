#include "gen/workload.h"

#include <gtest/gtest.h>

#include "gen/tree_gen.h"

namespace treeplace {
namespace {

Tree make_tree() {
  TreeGenConfig config;
  config.num_internal = 200;
  config.client_probability = 1.0;
  return generate_tree(config, 13, 0);
}

TEST(WorkloadTest, RedrawStaysInRange) {
  Tree t = make_tree();
  Xoshiro256 rng(1);
  redraw_requests(t, 2, 6, rng);
  for (NodeId c : t.client_ids()) {
    EXPECT_GE(t.requests(c), 2u);
    EXPECT_LE(t.requests(c), 6u);
  }
}

TEST(WorkloadTest, RedrawChangesSomething) {
  Tree t = make_tree();
  const RequestCount before = t.total_requests();
  Xoshiro256 rng(2);
  redraw_requests(t, 1, 100, rng);
  EXPECT_NE(t.total_requests(), before);
}

TEST(WorkloadTest, RedrawDeterministic) {
  Tree t1 = make_tree();
  Tree t2 = make_tree();
  Xoshiro256 rng1(3);
  Xoshiro256 rng2(3);
  redraw_requests(t1, 1, 6, rng1);
  redraw_requests(t2, 1, 6, rng2);
  for (NodeId c : t1.client_ids()) {
    EXPECT_EQ(t1.requests(c), t2.requests(c));
  }
}

TEST(WorkloadTest, RedrawDegenerateRange) {
  Tree t = make_tree();
  Xoshiro256 rng(4);
  redraw_requests(t, 3, 3, rng);
  for (NodeId c : t.client_ids()) EXPECT_EQ(t.requests(c), 3u);
}

TEST(WorkloadTest, PerturbStaysInRangeAndNearOriginal) {
  Tree t = make_tree();
  Xoshiro256 rng(5);
  redraw_requests(t, 5, 10, rng);
  std::vector<RequestCount> before;
  for (NodeId c : t.client_ids()) before.push_back(t.requests(c));
  perturb_requests(t, 1, 20, /*max_delta=*/2, rng);
  std::size_t i = 0;
  for (NodeId c : t.client_ids()) {
    const auto now = static_cast<std::int64_t>(t.requests(c));
    const auto old = static_cast<std::int64_t>(before[i++]);
    EXPECT_LE(std::abs(now - old), 2);
    EXPECT_GE(t.requests(c), 1u);
    EXPECT_LE(t.requests(c), 20u);
  }
}

TEST(WorkloadTest, PerturbClampsAtBounds) {
  Tree t = make_tree();
  Xoshiro256 rng(6);
  redraw_requests(t, 1, 1, rng);  // everyone at the lower bound
  perturb_requests(t, 1, 6, /*max_delta=*/5, rng);
  for (NodeId c : t.client_ids()) {
    EXPECT_GE(t.requests(c), 1u);
    EXPECT_LE(t.requests(c), 6u);
  }
}

}  // namespace
}  // namespace treeplace
