#include "gen/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "gen/tree_gen.h"

namespace treeplace {
namespace {

Tree make_tree() {
  TreeGenConfig config;
  config.num_internal = 200;
  config.client_probability = 1.0;
  return generate_tree(config, 13, 0);
}

TEST(WorkloadTest, RedrawStaysInRange) {
  Tree t = make_tree();
  Xoshiro256 rng(1);
  redraw_requests(t, 2, 6, rng);
  for (NodeId c : t.client_ids()) {
    EXPECT_GE(t.requests(c), 2u);
    EXPECT_LE(t.requests(c), 6u);
  }
}

TEST(WorkloadTest, RedrawChangesSomething) {
  Tree t = make_tree();
  const RequestCount before = t.total_requests();
  Xoshiro256 rng(2);
  redraw_requests(t, 1, 100, rng);
  EXPECT_NE(t.total_requests(), before);
}

TEST(WorkloadTest, RedrawDeterministic) {
  Tree t1 = make_tree();
  Tree t2 = make_tree();
  Xoshiro256 rng1(3);
  Xoshiro256 rng2(3);
  redraw_requests(t1, 1, 6, rng1);
  redraw_requests(t2, 1, 6, rng2);
  for (NodeId c : t1.client_ids()) {
    EXPECT_EQ(t1.requests(c), t2.requests(c));
  }
}

TEST(WorkloadTest, RedrawDegenerateRange) {
  Tree t = make_tree();
  Xoshiro256 rng(4);
  redraw_requests(t, 3, 3, rng);
  for (NodeId c : t.client_ids()) EXPECT_EQ(t.requests(c), 3u);
}

TEST(WorkloadTest, PerturbStaysInRangeAndNearOriginal) {
  Tree t = make_tree();
  Xoshiro256 rng(5);
  redraw_requests(t, 5, 10, rng);
  std::vector<RequestCount> before;
  for (NodeId c : t.client_ids()) before.push_back(t.requests(c));
  perturb_requests(t, 1, 20, /*max_delta=*/2, rng);
  std::size_t i = 0;
  for (NodeId c : t.client_ids()) {
    const auto now = static_cast<std::int64_t>(t.requests(c));
    const auto old = static_cast<std::int64_t>(before[i++]);
    EXPECT_LE(std::abs(now - old), 2);
    EXPECT_GE(t.requests(c), 1u);
    EXPECT_LE(t.requests(c), 20u);
  }
}

TEST(WorkloadTest, PerturbClampsAtBounds) {
  Tree t = make_tree();
  Xoshiro256 rng(6);
  redraw_requests(t, 1, 1, rng);  // everyone at the lower bound
  perturb_requests(t, 1, 6, /*max_delta=*/5, rng);
  for (NodeId c : t.client_ids()) {
    EXPECT_GE(t.requests(c), 1u);
    EXPECT_LE(t.requests(c), 6u);
  }
}

// ---------------------------------------------------------------------------
// Diurnal workload engine

TEST(WorkloadTest, DiurnalTicksPerDayFromCadence) {
  const Tree t = make_tree();
  DiurnalConfig config;
  config.day_seconds = 86400.0;
  config.tick_seconds = 300.0;
  DiurnalWorkload workload(t.topology_ptr(), config, Xoshiro256(5));
  EXPECT_EQ(workload.ticks_per_day(), 288u);
}

TEST(WorkloadTest, DiurnalIsDeterministicInTheSeed) {
  const Tree t = make_tree();
  DiurnalConfig config;
  DiurnalWorkload a(t.topology_ptr(), config, Xoshiro256(17));
  DiurnalWorkload b(t.topology_ptr(), config, Xoshiro256(17));
  for (int i = 0; i < 50; ++i) {
    const DiurnalWorkload::Tick ta = a.next();
    const DiurnalWorkload::Tick tb = b.next();
    EXPECT_DOUBLE_EQ(ta.multiplier, tb.multiplier);
    ASSERT_EQ(ta.deltas.size(), tb.deltas.size());
    for (std::size_t k = 0; k < ta.deltas.size(); ++k) {
      EXPECT_EQ(ta.deltas[k].node, tb.deltas[k].node);
      EXPECT_EQ(ta.deltas[k].requests, tb.deltas[k].requests);
    }
  }
}

TEST(WorkloadTest, DiurnalDeltasNameClientsAndSizeWithTouchFraction) {
  Tree t = make_tree();
  DiurnalConfig config;
  config.touch_fraction = 0.05;
  DiurnalWorkload workload(t.topology_ptr(), config, Xoshiro256(3));
  const std::size_t expected =
      static_cast<std::size_t>(t.client_ids().size() * 0.05);
  for (int i = 0; i < 20; ++i) {
    DiurnalWorkload::Tick tick = workload.next();
    EXPECT_EQ(tick.deltas.size(), std::max<std::size_t>(1, expected));
    for (const ScenarioDelta& d : tick.deltas) {
      EXPECT_EQ(d.op, ScenarioDelta::Op::kSetRequests);
      EXPECT_TRUE(t.is_client(d.node));
      EXPECT_GE(d.requests, 1u);
      // Deltas are native serve vocabulary — applying them must be legal.
      apply_delta(t.scenario(), d);
    }
  }
}

TEST(WorkloadTest, DiurnalMultiplierPeaksMidDayAndTroughsAtNight) {
  const Tree t = make_tree();
  DiurnalConfig config;
  config.tick_seconds = 3600.0;  // 24 ticks/day
  config.amplitude = 0.6;
  config.peak_fraction = 0.58;
  config.flash_probability = 0.0;  // isolate the sine
  DiurnalWorkload workload(t.topology_ptr(), config, Xoshiro256(9));
  std::vector<double> mult;
  for (std::size_t i = 0; i < workload.ticks_per_day(); ++i) {
    mult.push_back(workload.next().multiplier);
  }
  // Peak lands at ~14:00 (hour 14 of 24 at peak_fraction 0.58), trough
  // ~12 hours away; the diurnal swing covers [1-a, 1+a].
  const auto peak = std::max_element(mult.begin(), mult.end());
  const auto trough = std::min_element(mult.begin(), mult.end());
  EXPECT_NEAR(*peak, 1.6, 0.05);
  EXPECT_NEAR(*trough, 0.4, 0.05);
  const auto peak_hour = std::distance(mult.begin(), peak);
  EXPECT_NEAR(static_cast<double>(peak_hour), 14.0, 1.5);
}

TEST(WorkloadTest, DiurnalFlashCrowdsRampAndDecay) {
  const Tree t = make_tree();
  DiurnalConfig config;
  config.flash_probability = 0.2;  // frequent, to observe several spikes
  config.flash_magnitude = 4.0;
  config.flash_ticks = 6;
  config.amplitude = 0.0;  // isolate the flash ramp
  DiurnalWorkload workload(t.topology_ptr(), config, Xoshiro256(21));
  int flash_ticks_seen = 0;
  double max_mult = 0.0;
  for (int i = 0; i < 400; ++i) {
    const DiurnalWorkload::Tick tick = workload.next();
    if (tick.flash) {
      ++flash_ticks_seen;
      EXPECT_GE(tick.multiplier, 1.0);
      EXPECT_LE(tick.multiplier, config.flash_magnitude + 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(tick.multiplier, 1.0);
    }
    max_mult = std::max(max_mult, tick.multiplier);
  }
  EXPECT_GT(flash_ticks_seen, 10);
  // The triangular ramp approaches (not necessarily hits) the magnitude.
  EXPECT_GT(max_mult, 2.0);
}

}  // namespace
}  // namespace treeplace
