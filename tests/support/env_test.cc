#include "support/env.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace treeplace {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("TREEPLACE_TEST_VAR");
    unsetenv("TREEPLACE_SCALE");
  }
};

TEST_F(EnvTest, StringFallback) {
  EXPECT_EQ(env_string("TREEPLACE_TEST_VAR", "fallback"), "fallback");
}

TEST_F(EnvTest, StringReadsValue) {
  setenv("TREEPLACE_TEST_VAR", "hello", 1);
  EXPECT_EQ(env_string("TREEPLACE_TEST_VAR", "fallback"), "hello");
}

TEST_F(EnvTest, EmptyValueUsesFallback) {
  setenv("TREEPLACE_TEST_VAR", "", 1);
  EXPECT_EQ(env_string("TREEPLACE_TEST_VAR", "fb"), "fb");
}

TEST_F(EnvTest, SizeTParsing) {
  setenv("TREEPLACE_TEST_VAR", "123", 1);
  EXPECT_EQ(env_size_t("TREEPLACE_TEST_VAR", 7), 123u);
}

TEST_F(EnvTest, SizeTGarbageFallsBack) {
  setenv("TREEPLACE_TEST_VAR", "notanumber", 1);
  EXPECT_EQ(env_size_t("TREEPLACE_TEST_VAR", 7), 7u);
}

TEST_F(EnvTest, Int64Negative) {
  setenv("TREEPLACE_TEST_VAR", "-42", 1);
  EXPECT_EQ(env_int64("TREEPLACE_TEST_VAR", 0), -42);
}

TEST_F(EnvTest, DoubleParsing) {
  setenv("TREEPLACE_TEST_VAR", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("TREEPLACE_TEST_VAR", 0.0), 2.5);
}

TEST_F(EnvTest, ScaleDefaultsToQuick) {
  EXPECT_EQ(bench_scale(), BenchScale::kQuick);
  EXPECT_EQ(scaled(10, 200), 10);
}

TEST_F(EnvTest, ScalePaper) {
  setenv("TREEPLACE_SCALE", "paper", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kPaper);
  EXPECT_EQ(scaled(10, 200), 200);
}

TEST_F(EnvTest, UnknownScaleIsQuick) {
  setenv("TREEPLACE_SCALE", "huge", 1);
  EXPECT_EQ(bench_scale(), BenchScale::kQuick);
}

}  // namespace
}  // namespace treeplace
