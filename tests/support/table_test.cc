#include "support/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.h"

namespace treeplace {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"E", "reused"});
  t.add_row({std::int64_t{0}, 0.0});
  t.add_row({std::int64_t{50}, 12.3456});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("E"), std::string::npos);
  EXPECT_NE(out.find("reused"), std::string::npos);
  EXPECT_NE(out.find("12.3456"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, TitleIsPrinted) {
  Table t({"x"});
  t.set_title("Figure 4");
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().rfind("Figure 4", 0), 0u);  // starts with title
}

TEST(TableTest, CsvFormat) {
  Table t({"a", "b", "c"});
  t.add_row({std::string("x"), 1.5, std::int64_t{-2}});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nx,1.5000,-2\n");
}

TEST(TableTest, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), CheckError);
}

TEST(TableTest, EmptyColumnsThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), CheckError);
}

TEST(TableTest, CountsRowsAndColumns) {
  Table t({"a", "b"});
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({1.0, 2.0});
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace treeplace
