#include "support/prng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace treeplace {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42;
  std::uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  std::uint64_t s1 = 1;
  std::uint64_t s2 = 2;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

TEST(DeriveSeedTest, IsDeterministic) {
  EXPECT_EQ(derive_seed(123, 7), derive_seed(123, 7));
}

TEST(DeriveSeedTest, StreamsAreIndependent) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(derive_seed(99, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions among 1000 streams
}

TEST(Xoshiro256Test, SameSeedSameSequence) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, DifferentSeedsDifferentSequences) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro256Test, UniformRespectsBounds) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Xoshiro256Test, UniformSingletonRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(3, 3), 3u);
}

TEST(Xoshiro256Test, UniformCoversWholeRange) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 5));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Xoshiro256Test, UniformIsApproximatelyUniform) {
  Xoshiro256 rng(17);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(0, 9)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 / 5);  // within 20%
  }
}

TEST(Xoshiro256Test, UniformIntNegativeRange) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Xoshiro256Test, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Xoshiro256Test, BernoulliMatchesProbability) {
  Xoshiro256 rng(29);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.02);
}

TEST(Xoshiro256Test, BernoulliDegenerateProbabilities) {
  Xoshiro256 rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(MakeRngTest, StreamsForDifferentTreesDiffer) {
  Xoshiro256 a = make_rng(1, 0, RngStream::kTreeShape);
  Xoshiro256 b = make_rng(1, 1, RngStream::kTreeShape);
  EXPECT_NE(a(), b());
}

TEST(MakeRngTest, StreamsForDifferentPurposesDiffer) {
  Xoshiro256 a = make_rng(1, 0, RngStream::kTreeShape);
  Xoshiro256 b = make_rng(1, 0, RngStream::kClients);
  EXPECT_NE(a(), b());
}

TEST(MakeRngTest, Reproducible) {
  Xoshiro256 a = make_rng(5, 3, RngStream::kRequests);
  Xoshiro256 b = make_rng(5, 3, RngStream::kRequests);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace treeplace
