// Shared arithmetic helpers for test assertions.
#pragma once

#include <cstddef>

namespace treeplace::test {

/// ceil(log2(k)) (0 for k <= 1): the dp::MergePlan root-path depth bound
/// that the warm-redo assertions check against.
inline int ceil_log2(std::size_t k) {
  int depth = 0;
  std::size_t reach = 1;
  while (reach < k) {
    reach *= 2;
    ++depth;
  }
  return depth;
}

}  // namespace treeplace::test
