#include "support/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace treeplace {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(IntHistogramTest, CountsAndTotals) {
  IntHistogram h;
  h.add(3);
  h.add(3);
  h.add(-2);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(-2), 1u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.min_value(), -2);
  EXPECT_EQ(h.max_value(), 3);
}

TEST(IntHistogramTest, WeightedAdd) {
  IntHistogram h;
  h.add(1, 5);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(1), 5u);
}

TEST(IntHistogramTest, MergePreservesMass) {
  IntHistogram a, b;
  a.add(0, 2);
  a.add(1, 1);
  b.add(1, 3);
  b.add(5, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 7u);
  EXPECT_EQ(a.count(1), 4u);
  EXPECT_EQ(a.count(5), 1u);
}

TEST(IntHistogramTest, Mean) {
  IntHistogram h;
  h.add(2, 2);
  h.add(-1, 2);
  EXPECT_DOUBLE_EQ(h.mean(), 0.5);
}

TEST(QuantileTest, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(quantile({3, 1, 2}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  EXPECT_DOUBLE_EQ(quantile({5, 1, 9}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({5, 1, 9}, 1.0), 9.0);
}

TEST(QuantileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.25), 2.5);
}

}  // namespace
}  // namespace treeplace
