#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "support/parallel.h"

namespace treeplace {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  auto a = pool.submit([] { return 1; });
  auto b = pool.submit([] { return 2; });
  EXPECT_EQ(a.get() + b.get(), 3);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  ThreadPool pool(8);
  const auto results =
      parallel_map(pool, 64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelMapTest, MatchesSequentialExactly) {
  ThreadPool pool(8);
  auto work = [](std::size_t i) {
    // Something order-sensitive if results were misplaced.
    double x = static_cast<double>(i);
    for (int k = 0; k < 100; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  const auto parallel = parallel_map(pool, 40, work);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(parallel[i], work(i));
  }
}

TEST(ParallelMapTest, ZeroTasks) {
  ThreadPool pool(2);
  const auto results = parallel_map(pool, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(ParallelMapTest, SingleThreadPool) {
  ThreadPool pool(1);
  const auto results =
      parallel_map(pool, 16, [](std::size_t i) { return i + 1; });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(results[i], i + 1);
}

TEST(ParallelMapTest, MoreThreadsThanTasks) {
  ThreadPool pool(16);
  const auto results =
      parallel_map(pool, 3, [](std::size_t i) { return 10 * i; });
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(results[i], 10 * i);
}

TEST(ParallelMapTest, PropagatesTaskExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_map(pool, 8,
                            [](std::size_t i) -> int {
                              if (i == 5) throw std::runtime_error("boom");
                              return static_cast<int>(i);
                            }),
               std::runtime_error);
  // The pool survives a throwing batch and keeps serving tasks.
  const auto results =
      parallel_map(pool, 4, [](std::size_t i) { return i; });
  ASSERT_EQ(results.size(), 4u);
}

TEST(ParallelMapTest, MoveOnlyResults) {
  ThreadPool pool(4);
  const auto results = parallel_map(pool, 8, [](std::size_t i) {
    return std::make_unique<std::size_t>(i);
  });
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(*results[i], i);
}

TEST(ParallelForTest, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  parallel_for(pool, 32, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroTasks) {
  ThreadPool pool(2);
  int touched = 0;
  parallel_for(pool, 0, [&](std::size_t) { ++touched; });
  EXPECT_EQ(touched, 0);
}

TEST(ParallelForTest, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t i) {
                              if (i == 2) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, MoreThreadsThanTasks) {
  ThreadPool pool(16);
  std::atomic<int> count{0};
  parallel_for(pool, 2, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace treeplace
