#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "support/parallel.h"

namespace treeplace {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  auto a = pool.submit([] { return 1; });
  auto b = pool.submit([] { return 2; });
  EXPECT_EQ(a.get() + b.get(), 3);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  ThreadPool pool(8);
  const auto results =
      parallel_map(pool, 64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelMapTest, MatchesSequentialExactly) {
  ThreadPool pool(8);
  auto work = [](std::size_t i) {
    // Something order-sensitive if results were misplaced.
    double x = static_cast<double>(i);
    for (int k = 0; k < 100; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  const auto parallel = parallel_map(pool, 40, work);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(parallel[i], work(i));
  }
}

TEST(ParallelMapTest, ZeroTasks) {
  ThreadPool pool(2);
  const auto results = parallel_map(pool, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(results.empty());
}

TEST(ParallelForTest, CoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(32);
  parallel_for(pool, 32, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace treeplace
