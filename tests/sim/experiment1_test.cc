#include "sim/experiment1.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace treeplace {
namespace {

Experiment1Config small_config() {
  Experiment1Config config;
  config.num_trees = 8;
  config.tree.num_internal = 30;
  config.tree.shape = kFatShape;
  config.capacity = 10;
  config.pre_existing_counts = {0, 5, 15, 30};
  config.seed = 1001;
  config.threads = 4;
  return config;
}

TEST(Experiment1Test, ProducesOneRowPerSweptValue) {
  const auto rows = run_experiment1(small_config());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].num_pre_existing, 0u);
  EXPECT_EQ(rows[3].num_pre_existing, 30u);
}

TEST(Experiment1Test, NoPreExistingMeansNoReuse) {
  const auto rows = run_experiment1(small_config());
  EXPECT_DOUBLE_EQ(rows[0].reused_dp, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].reused_gr, 0.0);
}

TEST(Experiment1Test, DpReusesAtLeastAsMuchAsGreedy) {
  // Both return minimum-count solutions under the paper cost parameters;
  // the DP maximizes reuse among them, so per tree DP >= GR — and so in
  // the mean.
  const auto rows = run_experiment1(small_config());
  for (const auto& row : rows) {
    EXPECT_GE(row.reused_dp, row.reused_gr - 1e-12)
        << "E=" << row.num_pre_existing;
    EXPECT_LE(row.cost_dp, row.cost_gr + 1e-12);
  }
}

TEST(Experiment1Test, BothAlgorithmsUseMinimumReplicaCount) {
  const auto rows = run_experiment1(small_config());
  for (const auto& row : rows) {
    EXPECT_NEAR(row.servers_dp, row.servers_gr, 1e-12)
        << "E=" << row.num_pre_existing;
  }
}

TEST(Experiment1Test, FullySeededReuseEqualsServerCount) {
  // With every internal node pre-existing, every placed server is a reuse.
  const auto rows = run_experiment1(small_config());
  const auto& full = rows.back();  // E = 30 = all internal nodes
  EXPECT_NEAR(full.reused_dp, full.servers_dp, 1e-12);
}

TEST(Experiment1Test, DeterministicAcrossRuns) {
  const auto a = run_experiment1(small_config());
  const auto b = run_experiment1(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].reused_dp, b[i].reused_dp);
    EXPECT_DOUBLE_EQ(a[i].reused_gr, b[i].reused_gr);
    EXPECT_DOUBLE_EQ(a[i].cost_dp, b[i].cost_dp);
  }
}

TEST(Experiment1Test, ThreadCountDoesNotChangeResults) {
  Experiment1Config c1 = small_config();
  c1.threads = 1;
  Experiment1Config c8 = small_config();
  c8.threads = 8;
  const auto a = run_experiment1(c1);
  const auto b = run_experiment1(c8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].reused_dp, b[i].reused_dp);
    EXPECT_DOUBLE_EQ(a[i].cost_gr, b[i].cost_gr);
  }
}

TEST(Experiment1Test, EmptySweepRejected) {
  Experiment1Config config = small_config();
  config.pre_existing_counts.clear();
  EXPECT_THROW(run_experiment1(config), CheckError);
}

}  // namespace
}  // namespace treeplace
