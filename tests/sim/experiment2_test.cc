#include "sim/experiment2.h"

#include <gtest/gtest.h>

namespace treeplace {
namespace {

Experiment2Config small_config() {
  Experiment2Config config;
  config.num_trees = 6;
  config.tree.num_internal = 25;
  config.capacity = 10;
  config.num_steps = 8;
  config.seed = 2002;
  config.threads = 4;
  return config;
}

TEST(Experiment2Test, SeriesHaveOneEntryPerStep) {
  const Experiment2Result r = run_experiment2(small_config());
  EXPECT_EQ(r.step_reused_dp.size(), 8u);
  EXPECT_EQ(r.cumulative_reused_dp.size(), 8u);
  EXPECT_EQ(r.step_reused_gr.size(), 8u);
  EXPECT_EQ(r.num_steps, 8u);
  EXPECT_EQ(r.num_trees, 6u);
}

TEST(Experiment2Test, FirstStepHasNoReuse) {
  // "Initially, there are no pre-existing servers."
  const Experiment2Result r = run_experiment2(small_config());
  EXPECT_DOUBLE_EQ(r.step_reused_dp[0], 0.0);
  EXPECT_DOUBLE_EQ(r.step_reused_gr[0], 0.0);
}

TEST(Experiment2Test, CumulativeSeriesAreNonDecreasing) {
  const Experiment2Result r = run_experiment2(small_config());
  for (std::size_t s = 1; s < r.cumulative_reused_dp.size(); ++s) {
    EXPECT_GE(r.cumulative_reused_dp[s], r.cumulative_reused_dp[s - 1]);
    EXPECT_GE(r.cumulative_reused_gr[s], r.cumulative_reused_gr[s - 1]);
  }
}

TEST(Experiment2Test, DpAccumulatesMoreReuseThanGreedy) {
  // The paper's headline for Figure 5 (left): "the DP algorithm makes a
  // better reuse of pre-existing replicas".
  const Experiment2Result r = run_experiment2(small_config());
  EXPECT_GE(r.cumulative_reused_dp.back(), r.cumulative_reused_gr.back());
  EXPECT_GT(r.cumulative_reused_dp.back(), 0.0);
}

TEST(Experiment2Test, HistogramMassEqualsTreeSteps) {
  const Experiment2Result r = run_experiment2(small_config());
  EXPECT_EQ(r.diff_histogram.total(), 6u * 8u);
}

TEST(Experiment2Test, HistogramMeanIsNonNegative) {
  // Occasional negative diffs are expected (the chains diverge; paper:
  // "It occasionally happens that the greedy algorithm performs a better
  // reuse") but the average favours the DP.
  const Experiment2Result r = run_experiment2(small_config());
  EXPECT_GE(r.diff_histogram.mean(), 0.0);
}

TEST(Experiment2Test, Deterministic) {
  const Experiment2Result a = run_experiment2(small_config());
  const Experiment2Result b = run_experiment2(small_config());
  EXPECT_EQ(a.cumulative_reused_dp, b.cumulative_reused_dp);
  EXPECT_EQ(a.cumulative_reused_gr, b.cumulative_reused_gr);
  EXPECT_EQ(a.diff_histogram.bins(), b.diff_histogram.bins());
}

TEST(Experiment2Test, ThreadCountInvariant) {
  Experiment2Config c1 = small_config();
  c1.threads = 1;
  Experiment2Config c6 = small_config();
  c6.threads = 6;
  const Experiment2Result a = run_experiment2(c1);
  const Experiment2Result b = run_experiment2(c6);
  EXPECT_EQ(a.cumulative_reused_dp, b.cumulative_reused_dp);
  EXPECT_EQ(a.diff_histogram.bins(), b.diff_histogram.bins());
}

TEST(Experiment2Test, SingleStepWorks) {
  Experiment2Config config = small_config();
  config.num_steps = 1;
  const Experiment2Result r = run_experiment2(config);
  EXPECT_EQ(r.step_reused_dp.size(), 1u);
  EXPECT_EQ(r.diff_histogram.total(), 6u);
}

}  // namespace
}  // namespace treeplace
