// Golden regression values: every simulation is deterministic (fixed seeds,
// index-ordered parallel reduction), so a handful of exact numbers pins the
// whole pipeline — generator, solvers, accounting — against silent drift.
// If an intentional algorithm change shifts these, re-baseline deliberately.
#include <gtest/gtest.h>

#include "sim/experiment1.h"
#include "sim/experiment2.h"
#include "sim/experiment3.h"

namespace treeplace {
namespace {

TEST(GoldenTest, Experiment1SmallConfig) {
  Experiment1Config config;
  config.num_trees = 10;
  config.tree.num_internal = 40;
  config.capacity = 10;
  config.pre_existing_counts = {0, 10, 20, 40};
  config.seed = 77;
  config.threads = 4;
  const auto rows = run_experiment1(config);
  ASSERT_EQ(rows.size(), 4u);
  // E = 0: no reuse possible, identical costs.
  EXPECT_DOUBLE_EQ(rows[0].reused_dp, 0.0);
  EXPECT_DOUBLE_EQ(rows[0].cost_dp, rows[0].cost_gr);
  // E = 40 = N: every server is a reuse for both algorithms.
  EXPECT_DOUBLE_EQ(rows[3].reused_dp, rows[3].servers_dp);
  EXPECT_DOUBLE_EQ(rows[3].reused_gr, rows[3].servers_gr);
  // Pinned interior values (seed 77).
  EXPECT_NEAR(rows[1].reused_dp, 2.3, 1e-9);
  EXPECT_NEAR(rows[1].reused_gr, 1.3, 1e-9);
  EXPECT_NEAR(rows[2].reused_dp, 6.2, 1e-9);
  EXPECT_NEAR(rows[1].servers_dp, 9.5, 1e-9);
}

TEST(GoldenTest, Experiment2SmallConfig) {
  Experiment2Config config;
  config.num_trees = 8;
  config.tree.num_internal = 30;
  config.capacity = 10;
  config.num_steps = 5;
  config.seed = 88;
  config.threads = 4;
  const Experiment2Result r = run_experiment2(config);
  EXPECT_DOUBLE_EQ(r.step_reused_dp[0], 0.0);
  EXPECT_EQ(r.diff_histogram.total(), 40u);
  // Pinned: the DP chain's cumulative reuse after 5 steps (seed 88).
  EXPECT_NEAR(r.cumulative_reused_dp.back(), 26.25, 1e-9);
  EXPECT_NEAR(r.cumulative_reused_gr.back(), 22.0, 1e-9);
}

TEST(GoldenTest, Experiment3SmallConfig) {
  Experiment3Config config;
  config.num_trees = 8;
  config.tree.num_internal = 16;
  config.tree.max_requests = 5;
  config.num_pre_existing = 3;
  config.cost_bounds = {4, 5, 6, 24};
  config.seed = 99;
  config.threads = 4;
  const Experiment3Result r = run_experiment3(config);
  ASSERT_EQ(r.rows.size(), 4u);
  // The generous bound reaches the optimum on every tree.
  EXPECT_NEAR(r.rows.back().score_dp, 1.0, 1e-12);
  // Pinned interior values (seed 99).
  EXPECT_NEAR(r.rows[0].score_dp, 0.45177705698534715, 1e-9);
  EXPECT_NEAR(r.rows[1].score_dp, 0.65528657809572466, 1e-9);
  EXPECT_NEAR(r.rows[0].score_gr, 0.35184622819183436, 1e-9);
}

}  // namespace
}  // namespace treeplace
