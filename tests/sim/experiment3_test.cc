#include "sim/experiment3.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace treeplace {
namespace {

Experiment3Config small_config() {
  Experiment3Config config;
  config.num_trees = 6;
  config.tree.num_internal = 14;
  config.tree.max_requests = 5;
  config.num_pre_existing = 3;
  config.cost_bounds = {2, 6, 10, 14, 18, 30};
  config.seed = 3003;
  config.threads = 4;
  return config;
}

TEST(Experiment3Test, OneRowPerBound) {
  const Experiment3Result r = run_experiment3(small_config());
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_DOUBLE_EQ(r.rows.front().cost_bound, 2.0);
  EXPECT_DOUBLE_EQ(r.rows.back().cost_bound, 30.0);
}

TEST(Experiment3Test, ScoresAreNormalized) {
  const Experiment3Result r = run_experiment3(small_config());
  for (const auto& row : r.rows) {
    EXPECT_GE(row.score_dp, 0.0);
    EXPECT_LE(row.score_dp, 1.0 + 1e-9);
    EXPECT_GE(row.score_gr, 0.0);
    EXPECT_LE(row.score_gr, 1.0 + 1e-9);
  }
}

TEST(Experiment3Test, DpDominatesGreedyEverywhere) {
  // Per tree and bound: if GR solves, the DP solves with no more power, so
  // every aggregate satisfies score_dp >= score_gr and ratio >= 1.
  const Experiment3Result r = run_experiment3(small_config());
  for (const auto& row : r.rows) {
    EXPECT_GE(row.score_dp, row.score_gr - 1e-12);
    EXPECT_GE(row.solved_dp, row.solved_gr - 1e-12);
    if (row.both_solved > 0) EXPECT_GE(row.power_ratio, 1.0 - 1e-9);
  }
}

TEST(Experiment3Test, ScoreIsMonotoneInBound) {
  const Experiment3Result r = run_experiment3(small_config());
  for (std::size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i].score_dp, r.rows[i - 1].score_dp - 1e-12);
  }
}

TEST(Experiment3Test, GenerousBoundReachesOptimum) {
  const Experiment3Result r = run_experiment3(small_config());
  // Bound 30 admits every server the tree could need (N=14 servers at
  // create 0.1 each cost < 16), so the DP's score reaches 1.
  EXPECT_NEAR(r.rows.back().score_dp, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.rows.back().solved_dp, 1.0);
}

TEST(Experiment3Test, Deterministic) {
  const Experiment3Result a = run_experiment3(small_config());
  const Experiment3Result b = run_experiment3(small_config());
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rows[i].score_dp, b.rows[i].score_dp);
    EXPECT_DOUBLE_EQ(a.rows[i].score_gr, b.rows[i].score_gr);
  }
}

TEST(Experiment3Test, ExactDpAgreesWithSymmetricDp) {
  Experiment3Config sym_config = small_config();
  sym_config.num_trees = 3;
  sym_config.tree.num_internal = 10;
  Experiment3Config exact_config = sym_config;
  exact_config.use_exact_dp = true;
  const Experiment3Result sym = run_experiment3(sym_config);
  const Experiment3Result exact = run_experiment3(exact_config);
  ASSERT_EQ(sym.rows.size(), exact.rows.size());
  for (std::size_t i = 0; i < sym.rows.size(); ++i) {
    EXPECT_NEAR(sym.rows[i].score_dp, exact.rows[i].score_dp, 1e-9);
  }
}

TEST(Experiment3Test, NoPreVariantRuns) {
  Experiment3Config config = small_config();
  config.num_pre_existing = 0;  // Figure 9 setting
  const Experiment3Result r = run_experiment3(config);
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_GT(r.rows.back().score_dp, 0.0);
}

TEST(Experiment3Test, EmptyBoundsRejected) {
  Experiment3Config config = small_config();
  config.cost_bounds.clear();
  EXPECT_THROW(run_experiment3(config), CheckError);
}

}  // namespace
}  // namespace treeplace
