#include "model/modes.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace treeplace {
namespace {

TEST(ModeSetTest, PaperExperiment3Powers) {
  // P_i = W1^3/10 + W_i^3 with W1=5, W2=10 (paper Section 5.2).
  const ModeSet modes({5, 10}, /*static_power=*/12.5, /*alpha=*/3.0);
  EXPECT_EQ(modes.count(), 2);
  EXPECT_DOUBLE_EQ(modes.power(0), 137.5);
  EXPECT_DOUBLE_EQ(modes.power(1), 1012.5);
  EXPECT_EQ(modes.max_capacity(), 10u);
}

TEST(ModeSetTest, PaperSection41Example) {
  // Figure 2 example: power 10 + W_i^2 with W1=7, W2=10.
  const ModeSet modes({7, 10}, 10.0, 2.0);
  EXPECT_DOUBLE_EQ(modes.power(0), 59.0);
  EXPECT_DOUBLE_EQ(modes.power(1), 110.0);
  // "20 + 2x7^2 > 10 + 10^2": two slow servers beat one fast one — not.
  EXPECT_GT(2 * modes.power(0), modes.power(1));
}

TEST(ModeSetTest, ModeForLoad) {
  const ModeSet modes({5, 10}, 0.0, 2.0);
  EXPECT_EQ(modes.mode_for_load(0), 0);
  EXPECT_EQ(modes.mode_for_load(5), 0);
  EXPECT_EQ(modes.mode_for_load(6), 1);
  EXPECT_EQ(modes.mode_for_load(10), 1);
  EXPECT_EQ(modes.mode_for_load(11), -1);
}

TEST(ModeSetTest, SingleMode) {
  const ModeSet modes = ModeSet::single(10);
  EXPECT_EQ(modes.count(), 1);
  EXPECT_EQ(modes.max_capacity(), 10u);
  EXPECT_EQ(modes.mode_for_load(10), 0);
  EXPECT_EQ(modes.mode_for_load(11), -1);
}

TEST(ModeSetTest, PowerIsIncreasingInMode) {
  const ModeSet modes({2, 5, 9, 14}, 1.0, 2.5);
  for (int m = 1; m < modes.count(); ++m) {
    EXPECT_GT(modes.power(m), modes.power(m - 1));
  }
}

TEST(ModeSetTest, NonIncreasingCapacitiesThrow) {
  EXPECT_THROW(ModeSet({5, 5}, 0.0, 2.0), CheckError);
  EXPECT_THROW(ModeSet({10, 5}, 0.0, 2.0), CheckError);
}

TEST(ModeSetTest, EmptyThrows) {
  EXPECT_THROW(ModeSet({}, 0.0, 2.0), CheckError);
}

TEST(ModeSetTest, NegativeStaticPowerThrows) {
  EXPECT_THROW(ModeSet({5}, -1.0, 2.0), CheckError);
}

TEST(ModeSetTest, AlphaBelowOneThrows) {
  EXPECT_THROW(ModeSet({5}, 0.0, 0.5), CheckError);
}

TEST(ModeSetTest, Equality) {
  EXPECT_EQ(ModeSet({5, 10}, 1.0, 2.0), ModeSet({5, 10}, 1.0, 2.0));
  EXPECT_NE(ModeSet({5, 10}, 1.0, 2.0), ModeSet({5, 10}, 2.0, 2.0));
}

}  // namespace
}  // namespace treeplace
