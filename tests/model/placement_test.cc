#include "model/placement.h"

#include <gtest/gtest.h>

#include "gen/tree_gen.h"
#include "support/check.h"
#include "support/prng.h"

namespace treeplace {
namespace {

/// Paper Figure 2 topology: r -> A -> {B, C}; clients: 4 at r, 3 at B, 7 at
/// C (see tests/core/power_dp_test.cc for the full worked example).
struct Fig2Tree {
  Tree tree;
  NodeId r, a, b, c;
};

Fig2Tree make_fig2(RequestCount root_requests = 4) {
  TreeBuilder builder;
  Fig2Tree f;
  f.r = builder.add_root();
  builder.add_client(f.r, root_requests);
  f.a = builder.add_internal(f.r);
  f.b = builder.add_internal(f.a);
  builder.add_client(f.b, 3);
  f.c = builder.add_internal(f.a);
  builder.add_client(f.c, 7);
  f.tree = std::move(builder).build();
  return f;
}

TEST(PlacementTest, AddRemoveContains) {
  Placement p;
  EXPECT_TRUE(p.empty());
  p.add(5, 1);
  p.add(2, 0);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_TRUE(p.contains(5));
  EXPECT_TRUE(p.contains(2));
  EXPECT_FALSE(p.contains(3));
  p.remove(5);
  EXPECT_FALSE(p.contains(5));
  p.remove(5);  // idempotent
  EXPECT_EQ(p.size(), 1u);
}

TEST(PlacementTest, NodesSortedAndModesParallel) {
  Placement p;
  p.add(9, 2);
  p.add(1, 0);
  p.add(4, 1);
  ASSERT_EQ(p.nodes().size(), 3u);
  EXPECT_EQ(p.nodes()[0], 1);
  EXPECT_EQ(p.nodes()[1], 4);
  EXPECT_EQ(p.nodes()[2], 9);
  EXPECT_EQ(p.mode(1), 0);
  EXPECT_EQ(p.mode(4), 1);
  EXPECT_EQ(p.mode(9), 2);
}

TEST(PlacementTest, DuplicateAddThrows) {
  Placement p;
  p.add(3);
  EXPECT_THROW(p.add(3), CheckError);
}

TEST(PlacementTest, ModeOfAbsentThrows) {
  Placement p;
  EXPECT_THROW(p.mode(3), CheckError);
  EXPECT_THROW(p.set_mode(3, 1), CheckError);
}

TEST(ComputeFlowsTest, NoServersEverythingEscapes) {
  Fig2Tree f = make_fig2();
  const FlowResult flows = compute_flows(f.tree, {});
  EXPECT_EQ(flows.unserved, 14u);  // 4 + 3 + 7
  EXPECT_EQ(flows.through[f.tree.internal_index(f.a)], 10u);
}

TEST(ComputeFlowsTest, ServerAbsorbsSubtree) {
  Fig2Tree f = make_fig2();
  Placement p;
  p.add(f.a, 1);
  const FlowResult flows = compute_flows(f.tree, p);
  EXPECT_EQ(flows.load(f.tree, f.a), 10u);  // 3 + 7
  EXPECT_EQ(flows.unserved, 4u);            // root's own client
}

TEST(ComputeFlowsTest, ClosestServerWins) {
  Fig2Tree f = make_fig2();
  Placement p;
  p.add(f.a, 1);
  p.add(f.c, 0);
  const FlowResult flows = compute_flows(f.tree, p);
  EXPECT_EQ(flows.load(f.tree, f.c), 7u);  // C's client served at C
  EXPECT_EQ(flows.load(f.tree, f.a), 3u);  // only B's client reaches A
}

TEST(ComputeFlowsTest, RootServerServesAll) {
  Fig2Tree f = make_fig2();
  Placement p;
  p.add(f.r, 1);
  const FlowResult flows = compute_flows(f.tree, p);
  EXPECT_EQ(flows.load(f.tree, f.r), 14u);
  EXPECT_EQ(flows.unserved, 0u);
}

TEST(ComputeFlowsTest, AgreesWithPerClientAssignment) {
  // Cross-check the aggregate flow computation against the client-by-client
  // closest-ancestor scan, over random trees and random placements.
  TreeGenConfig config;
  config.num_internal = 60;
  for (std::uint64_t t = 0; t < 10; ++t) {
    const Tree tree = generate_tree(config, 99, t);
    Xoshiro256 rng(derive_seed(99, t));
    Placement p;
    for (NodeId id : tree.internal_ids()) {
      if (rng.bernoulli(0.3)) p.add(id, 0);
    }
    const FlowResult flows = compute_flows(tree, p);
    const std::vector<NodeId> serving = assign_clients(tree, p);

    std::vector<RequestCount> expected_load(tree.num_internal(), 0);
    RequestCount expected_unserved = 0;
    for (std::size_t i = 0; i < tree.client_ids().size(); ++i) {
      const NodeId client = tree.client_ids()[i];
      if (serving[i] == kNoNode) {
        expected_unserved += tree.requests(client);
      } else {
        expected_load[tree.internal_index(serving[i])] +=
            tree.requests(client);
      }
    }
    EXPECT_EQ(flows.unserved, expected_unserved);
    for (NodeId node : p.nodes()) {
      EXPECT_EQ(flows.load(tree, node),
                expected_load[tree.internal_index(node)]);
    }
  }
}

TEST(ValidateTest, AcceptsValidPlacement) {
  Fig2Tree f = make_fig2();
  const ModeSet modes({7, 10}, 10.0, 2.0);
  Placement p;
  p.add(f.a, 1);  // load 10 <= W2
  p.add(f.r, 0);  // load 4 <= W1
  EXPECT_TRUE(validate(f.tree, p, modes).valid);
}

TEST(ValidateTest, RejectsUnserved) {
  Fig2Tree f = make_fig2();
  const ModeSet modes({7, 10}, 10.0, 2.0);
  Placement p;
  p.add(f.a, 1);
  const ValidationResult v = validate(f.tree, p, modes);
  EXPECT_FALSE(v.valid);
  EXPECT_NE(v.reason.find("unserved"), std::string::npos);
}

TEST(ValidateTest, RejectsOverload) {
  Fig2Tree f = make_fig2();
  const ModeSet modes({7, 10}, 10.0, 2.0);
  Placement p;
  p.add(f.a, 0);  // load 10 > W1 = 7
  p.add(f.r, 0);
  const ValidationResult v = validate(f.tree, p, modes);
  EXPECT_FALSE(v.valid);
  EXPECT_NE(v.reason.find("overloaded"), std::string::npos);
}

TEST(ValidateTest, RejectsServerOnClient) {
  Fig2Tree f = make_fig2();
  const ModeSet modes = ModeSet::single(20);
  Placement p;
  p.add(f.r, 0);
  p.add(1, 0);  // node 1 is the root's client
  EXPECT_FALSE(validate(f.tree, p, modes).valid);
}

TEST(ValidateTest, RejectsOutOfRangeMode) {
  Fig2Tree f = make_fig2();
  const ModeSet modes = ModeSet::single(20);
  Placement p;
  p.add(f.r, 5);
  EXPECT_FALSE(validate(f.tree, p, modes).valid);
}

TEST(TotalPowerTest, SumsConfiguredModes) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  Placement p;
  p.add(0, 0);
  p.add(2, 1);
  p.add(3, 0);
  EXPECT_DOUBLE_EQ(total_power(p, modes), 137.5 + 1012.5 + 137.5);
}

TEST(EvaluateCostTest, Equation2Accounting) {
  // R=2 servers, e=1 reused, E=2 pre-existing: cost = 2 + 1*c + 1*d.
  Fig2Tree f = make_fig2();
  f.tree.set_pre_existing(f.b, 0);
  f.tree.set_pre_existing(f.c, 0);
  const CostModel costs = CostModel::simple(0.5, 0.25);
  Placement p;
  p.add(f.c, 0);
  p.add(f.r, 0);
  const CostBreakdown b = evaluate_cost(f.tree, p, costs);
  EXPECT_EQ(b.servers, 2);
  EXPECT_EQ(b.reused, 1);
  EXPECT_EQ(b.created, 1);
  EXPECT_EQ(b.deleted, 1);
  EXPECT_DOUBLE_EQ(b.cost, 2 + 0.5 + 0.25);
}

TEST(EvaluateCostTest, Equation4ModeChanges) {
  Fig2Tree f = make_fig2();
  f.tree.set_pre_existing(f.a, /*original_mode=*/0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001);
  Placement p;
  p.add(f.a, 1);  // upgrade 0 -> 1
  p.add(f.r, 0);  // new at mode 0
  const CostBreakdown b = evaluate_cost(f.tree, p, costs);
  EXPECT_EQ(b.reused, 1);
  EXPECT_EQ(b.mode_changes, 1);
  EXPECT_DOUBLE_EQ(b.cost, 2 + 0.1 + 0.001);
}

TEST(EvaluateCostTest, NoChangeCostWhenModeKept) {
  Fig2Tree f = make_fig2();
  f.tree.set_pre_existing(f.a, 1);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001);
  Placement p;
  p.add(f.a, 1);
  p.add(f.r, 0);
  const CostBreakdown b = evaluate_cost(f.tree, p, costs);
  EXPECT_EQ(b.mode_changes, 0);
  EXPECT_DOUBLE_EQ(b.cost, 2 + 0.1);  // changed_same = 0 by default
}

TEST(MinimizeModesTest, LowersToSmallestCoveringMode) {
  Fig2Tree f = make_fig2();
  const ModeSet modes({7, 10}, 10.0, 2.0);
  Placement p;
  p.add(f.c, 1);  // load 7 fits mode 0
  p.add(f.r, 1);  // load 7 (4 root + 3 from B) fits mode 0
  minimize_modes(f.tree, p, modes);
  EXPECT_EQ(p.mode(f.c), 0);
  EXPECT_EQ(p.mode(f.r), 0);
}

TEST(MinimizeModesTest, KeepsNecessaryHighMode) {
  Fig2Tree f = make_fig2();
  const ModeSet modes({7, 10}, 10.0, 2.0);
  Placement p;
  p.add(f.a, 0);  // load 10 needs mode 1
  p.add(f.r, 1);
  minimize_modes(f.tree, p, modes);
  EXPECT_EQ(p.mode(f.a), 1);
  EXPECT_EQ(p.mode(f.r), 0);  // load 4
}

TEST(AssignClientsTest, ClosestAncestor) {
  Fig2Tree f = make_fig2();
  Placement p;
  p.add(f.a, 0);
  p.add(f.r, 0);
  const std::vector<NodeId> serving = assign_clients(f.tree, p);
  // Client order: root's client, B's client, C's client (id order).
  ASSERT_EQ(serving.size(), 3u);
  EXPECT_EQ(serving[0], f.r);
  EXPECT_EQ(serving[1], f.a);
  EXPECT_EQ(serving[2], f.a);
}

TEST(AssignClientsTest, UnservedIsNoNode) {
  Fig2Tree f = make_fig2();
  Placement p;
  p.add(f.a, 0);
  const std::vector<NodeId> serving = assign_clients(f.tree, p);
  EXPECT_EQ(serving[0], kNoNode);  // root's client has no server above
}

}  // namespace
}  // namespace treeplace
