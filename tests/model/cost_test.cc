#include "model/cost.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace treeplace {
namespace {

TEST(CostModelTest, SimpleEquation2Parameters) {
  const CostModel costs = CostModel::simple(0.1, 0.01);
  EXPECT_EQ(costs.num_modes(), 1);
  EXPECT_DOUBLE_EQ(costs.new_server_cost(0), 1.1);
  EXPECT_DOUBLE_EQ(costs.reused_server_cost(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(costs.delete_server_cost(0), 0.01);
}

TEST(CostModelTest, UniformExperiment3Parameters) {
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  EXPECT_DOUBLE_EQ(costs.create(0), 0.1);
  EXPECT_DOUBLE_EQ(costs.create(1), 0.1);
  EXPECT_DOUBLE_EQ(costs.del(0), 0.01);
  EXPECT_DOUBLE_EQ(costs.changed(0, 1), 0.001);
  EXPECT_DOUBLE_EQ(costs.changed(0, 0), 0.001);
}

TEST(CostModelTest, UniformDefaultChangedSameIsZero) {
  const CostModel costs = CostModel::uniform(3, 0.5, 0.2, 0.1);
  EXPECT_DOUBLE_EQ(costs.changed(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(costs.changed(1, 2), 0.1);
}

TEST(CostModelTest, SymmetryDetection) {
  EXPECT_TRUE(CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001).is_symmetric());
  EXPECT_TRUE(CostModel::uniform(3, 1, 1, 0.1).is_symmetric());
  EXPECT_TRUE(CostModel::simple(0.1, 0.01).is_symmetric());
}

TEST(CostModelTest, AsymmetricCreateDetected) {
  CostModel costs({0.1, 0.2}, {0.01, 0.01},
                  {{0.0, 0.1}, {0.1, 0.0}});
  EXPECT_FALSE(costs.is_symmetric());
}

TEST(CostModelTest, AsymmetricChangedDetected) {
  CostModel costs({0.1, 0.1}, {0.01, 0.01},
                  {{0.0, 0.1}, {0.2, 0.0}});
  EXPECT_FALSE(costs.is_symmetric());
}

TEST(CostModelTest, SymmetricAccessors) {
  const CostModel costs = CostModel::uniform(2, 0.3, 0.2, 0.1, 0.05);
  EXPECT_DOUBLE_EQ(costs.symmetric_create(), 0.3);
  EXPECT_DOUBLE_EQ(costs.symmetric_delete(), 0.2);
  EXPECT_DOUBLE_EQ(costs.symmetric_changed_same(), 0.05);
  EXPECT_DOUBLE_EQ(costs.symmetric_changed_diff(), 0.1);
}

TEST(CostModelTest, SymmetricAccessorsOnAsymmetricThrow) {
  CostModel costs({0.1, 0.2}, {0.01, 0.01}, {{0.0, 0.1}, {0.1, 0.0}});
  EXPECT_THROW(costs.symmetric_create(), CheckError);
}

TEST(CostModelTest, NegativeCostsRejected) {
  EXPECT_THROW(CostModel::simple(-0.1, 0.0), CheckError);
  EXPECT_THROW(CostModel::simple(0.1, -0.1), CheckError);
}

TEST(CostModelTest, DimensionMismatchRejected) {
  EXPECT_THROW(CostModel({0.1}, {0.1, 0.2}, {{0.0}}), CheckError);
  EXPECT_THROW(CostModel({0.1, 0.1}, {0.1, 0.1}, {{0.0, 0.0}}), CheckError);
}

TEST(CostModelTest, SingleModeSymmetricChangedDiffFallsBack) {
  const CostModel costs = CostModel::uniform(1, 0.1, 0.2, 0.3, 0.4);
  // With M=1 there is no o != i pair; diff falls back to same.
  EXPECT_DOUBLE_EQ(costs.symmetric_changed_diff(), 0.4);
}

}  // namespace
}  // namespace treeplace
